"""End-to-end integration tests across the whole stack.

These exercise realistic multi-module flows: the taxi/weather dataset
search story from the paper's introduction, the document-similarity
pipeline of Figure 6, and cross-method agreement on one workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.median import MedianBoosted
from repro.core.theory import wmh_advantage
from repro.core.wmh import WeightedMinHash
from repro.data.newsgroups import NewsgroupsConfig, generate_corpus
from repro.data.synthetic import SyntheticConfig, generate_pair
from repro.datasearch.index import SketchIndex
from repro.datasearch.join_estimates import JoinSketch, JoinStatisticsEstimator
from repro.datasearch.search import DatasetSearch
from repro.datasearch.table import Table
from repro.experiments.runner import PAPER_METHODS, method_registry
from repro.text.tfidf import TfidfVectorizer
from repro.vectors.ops import cosine_similarity


class TestTaxiWeatherStory:
    """The paper's Section 1.2 walkthrough, end to end on sketches."""

    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(11)
        days_2022 = [f"2022-{m:02d}-{d:02d}" for m in range(1, 13) for d in range(1, 29)]
        # Weather data spans a *much longer* period than the taxi table
        # (the paper's 1960-present example -> low Jaccard similarity).
        days_all = [
            f"{year}-{m:02d}-{d:02d}"
            for year in range(2013, 2023)
            for m in range(1, 13)
            for d in range(1, 29)
        ]
        precipitation_all = np.abs(rng.normal(size=len(days_all))) * 8
        precipitation_2022 = precipitation_all[-len(days_2022):]
        rides = 9_000 - 400 * precipitation_2022 + rng.normal(scale=150, size=len(days_2022))

        taxi = Table("taxi_2022", keys=days_2022, columns={"rides": rides})
        weather = Table("weather_1960", keys=days_all, columns={"precip": precipitation_all})
        unrelated = Table(
            "stations",
            keys=[f"station-{i}" for i in range(400)],
            columns={"capacity": rng.uniform(5, 50, size=400)},
        )
        index = SketchIndex(WeightedMinHash(m=3_000, seed=7, L=1 << 22))
        index.add_all([weather, unrelated])
        search = DatasetSearch(index, min_containment=0.3)
        return taxi, weather, search

    def test_low_jaccard_high_containment(self, setup):
        taxi, weather, search = setup
        query = search.sketch_query(taxi)
        joinable = search.joinable(query)
        names = [name for name, _, _ in joinable]
        assert "weather_1960" in names
        # Jaccard is ~1/10 but containment of the query is ~1.
        _, join_size, containment = joinable[names.index("weather_1960")]
        assert containment > 0.7
        assert join_size == pytest.approx(taxi.num_rows, rel=0.3)

    def test_search_surfaces_precipitation(self, setup):
        taxi, _, search = setup
        hits = search.search(search.sketch_query(taxi), query_column="rides")
        assert hits[0].table_name == "weather_1960"
        assert hits[0].correlation < -0.2

    def test_estimated_correlation_tracks_exact(self, setup):
        taxi, weather, search = setup
        exact = taxi.join(weather).correlation("rides", "precip")
        estimator = JoinStatisticsEstimator(
            search.sketch_query(taxi), search.index.get("weather_1960")
        )
        estimate = estimator.correlation("rides", "precip")
        assert exact < -0.8
        assert estimate == pytest.approx(exact, abs=0.4)


class TestDocumentPipeline:
    def test_cosine_estimation_over_corpus(self):
        documents = generate_corpus(NewsgroupsConfig(num_documents=40), seed=3)
        vectors = TfidfVectorizer().fit_transform([d.tokens for d in documents])
        sketcher = WeightedMinHash.from_storage(400, seed=5)
        sketches = [sketcher.sketch(v) for v in vectors]
        errors = []
        rng = np.random.default_rng(0)
        for _ in range(40):
            i, j = rng.choice(40, size=2, replace=False)
            estimate = sketcher.estimate(sketches[int(i)], sketches[int(j)])
            errors.append(abs(estimate - cosine_similarity(vectors[int(i)], vectors[int(j)])))
        assert float(np.median(errors)) < 0.05


class TestCrossMethodAgreement:
    def test_all_methods_converge_on_large_budget(self, pair_factory):
        a, b = pair_factory(n=400, nnz=100, overlap=0.5, seed=13)
        truth = a.dot(b)
        scale = a.norm() * b.norm()
        registry = method_registry()
        for method in PAPER_METHODS:
            errors = [
                abs(registry[method].build(2_000, seed).estimate_pair(a, b) - truth)
                / scale
                for seed in range(5)
            ]
            assert float(np.median(errors)) < 0.08, method


class TestPaperHeadline:
    def test_wmh_beats_linear_at_low_overlap_end_to_end(self):
        """The paper's headline claim on its own synthetic workload."""
        config = SyntheticConfig(n=4_000, nnz=800, overlap=0.02)
        a, b = generate_pair(config, seed=1)
        assert wmh_advantage(a, b) > 2.0  # the bound predicts a big win
        truth = a.dot(b)
        scale = a.norm() * b.norm()
        registry = method_registry()

        def median_error(method: str) -> float:
            errors = [
                abs(registry[method].build(300, seed).estimate_pair(a, b) - truth)
                / scale
                for seed in range(9)
            ]
            return float(np.median(errors))

        assert median_error("WMH") < median_error("JL")

    def test_median_boosting_controls_tails_in_application(self, pair_factory):
        a, b = pair_factory(n=400, nnz=100, overlap=0.1, seed=17, values="outliers")
        truth = a.dot(b)
        scale = a.norm() * b.norm()
        boosted = MedianBoosted(
            lambda seed: WeightedMinHash(m=128, seed=seed, L=1 << 20), t=5, seed=0
        )
        estimate = boosted.estimate(boosted.sketch(a), boosted.sketch(b))
        assert abs(estimate - truth) / scale < 0.2
