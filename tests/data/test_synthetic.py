"""Tests for the Section 5.1 synthetic workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import PAPER_CONFIG, SyntheticConfig, generate_pair
from repro.vectors.ops import overlap_ratio, support_intersection


class TestConfigValidation:
    def test_paper_defaults(self):
        assert PAPER_CONFIG.n == 10_000
        assert PAPER_CONFIG.nnz == 2_000
        assert PAPER_CONFIG.outlier_fraction == 0.1
        assert PAPER_CONFIG.outlier_low == 20.0
        assert PAPER_CONFIG.outlier_high == 30.0

    def test_rejects_nnz_above_n(self):
        with pytest.raises(ValueError, match="cannot exceed"):
            SyntheticConfig(n=10, nnz=20)

    def test_rejects_bad_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            SyntheticConfig(overlap=1.5)

    def test_rejects_bad_outlier_fraction(self):
        with pytest.raises(ValueError, match="outlier_fraction"):
            SyntheticConfig(outlier_fraction=-0.1)

    def test_rejects_domain_too_small_for_disjoint_supports(self):
        with pytest.raises(ValueError, match="domain too small"):
            SyntheticConfig(n=100, nnz=80, overlap=0.0)

    def test_with_overlap(self):
        config = SyntheticConfig().with_overlap(0.5)
        assert config.overlap == 0.5
        assert config.n == 10_000


class TestGeneratedPairs:
    @pytest.mark.parametrize("overlap", [0.01, 0.05, 0.1, 0.5])
    def test_overlap_is_exact(self, overlap):
        config = SyntheticConfig(n=4_000, nnz=800, overlap=overlap, outlier_fraction=0.0)
        a, b = generate_pair(config, seed=0)
        expected_shared = int(round(overlap * 800))
        assert support_intersection(a, b).size == expected_shared
        assert overlap_ratio(a, b) == pytest.approx(overlap, abs=0.01)

    def test_support_sizes(self):
        config = SyntheticConfig(n=2_000, nnz=400, overlap=0.1)
        a, b = generate_pair(config, seed=1)
        assert a.nnz == 400
        assert b.nnz == 400

    def test_deterministic_given_seed(self):
        config = SyntheticConfig(n=2_000, nnz=400, overlap=0.1)
        a1, b1 = generate_pair(config, seed=5)
        a2, b2 = generate_pair(config, seed=5)
        assert a1 == a2
        assert b1 == b2

    def test_different_seeds_differ(self):
        config = SyntheticConfig(n=2_000, nnz=400, overlap=0.1)
        a1, _ = generate_pair(config, seed=5)
        a2, _ = generate_pair(config, seed=6)
        assert a1 != a2

    def test_outlier_fraction_and_range(self):
        config = SyntheticConfig(n=2_000, nnz=400, overlap=0.1)
        a, _ = generate_pair(config, seed=2)
        outliers = a.values[(a.values >= 20.0) & (a.values <= 30.0)]
        assert outliers.size == pytest.approx(40, abs=2)

    def test_body_values_within_unit_range(self):
        config = SyntheticConfig(n=2_000, nnz=400, overlap=0.1)
        a, _ = generate_pair(config, seed=3)
        body = a.values[a.values < 20.0]
        assert np.all(np.abs(body) <= 1.0)

    def test_no_outliers_when_disabled(self):
        config = SyntheticConfig(n=2_000, nnz=400, overlap=0.1, outlier_fraction=0.0)
        a, _ = generate_pair(config, seed=4)
        assert np.all(np.abs(a.values) <= 1.0)

    def test_indices_within_domain(self):
        config = SyntheticConfig(n=2_000, nnz=400, overlap=0.1)
        a, b = generate_pair(config, seed=5)
        assert int(a.indices.max()) < 2_000
        assert int(b.indices.max()) < 2_000
