"""Tests for the synthetic newsgroups corpus."""

from __future__ import annotations

import numpy as np

from repro.data.newsgroups import NewsgroupsConfig, generate_corpus
from repro.text.tfidf import TfidfVectorizer
from repro.vectors.ops import cosine_similarity


class TestCorpusShape:
    def test_document_count(self):
        docs = generate_corpus(NewsgroupsConfig(num_documents=25), seed=0)
        assert len(docs) == 25

    def test_min_length_respected(self):
        config = NewsgroupsConfig(num_documents=50, min_length=30)
        docs = generate_corpus(config, seed=1)
        assert min(doc.num_words for doc in docs) >= 30

    def test_long_document_stratum_exists(self):
        # Figure 6(b) needs documents > 700 words.
        docs = generate_corpus(NewsgroupsConfig(num_documents=300), seed=2)
        assert sum(doc.num_words > 700 for doc in docs) >= 15

    def test_topics_within_range(self):
        config = NewsgroupsConfig(num_documents=50, num_topics=7)
        docs = generate_corpus(config, seed=3)
        assert all(0 <= doc.topic < 7 for doc in docs)

    def test_tokens_are_vocabulary_words(self):
        config = NewsgroupsConfig(num_documents=10, vocabulary_size=100)
        docs = generate_corpus(config, seed=4)
        for doc in docs:
            for token in doc.tokens:
                assert token.startswith("w")
                assert 0 <= int(token[1:]) < 100

    def test_deterministic(self):
        config = NewsgroupsConfig(num_documents=10)
        first = generate_corpus(config, seed=5)
        second = generate_corpus(config, seed=5)
        assert [d.tokens for d in first] == [d.tokens for d in second]

    def test_doc_ids_sequential(self):
        docs = generate_corpus(NewsgroupsConfig(num_documents=10), seed=6)
        assert [doc.doc_id for doc in docs] == list(range(10))


class TestTopicStructure:
    def test_same_topic_documents_more_similar(self):
        # The property Figure 6 needs: topical cosine structure.
        docs = generate_corpus(NewsgroupsConfig(num_documents=80), seed=7)
        vectorizer = TfidfVectorizer()
        vectors = vectorizer.fit_transform([doc.tokens for doc in docs])
        same_topic, cross_topic = [], []
        for i in range(40):
            for j in range(i + 1, 40):
                similarity = cosine_similarity(vectors[i], vectors[j])
                if docs[i].topic == docs[j].topic:
                    same_topic.append(similarity)
                else:
                    cross_topic.append(similarity)
        assert same_topic and cross_topic
        assert np.mean(same_topic) > np.mean(cross_topic) + 0.1

    def test_zipfian_head_dominates(self):
        # A few head words should account for a large token share.
        docs = generate_corpus(NewsgroupsConfig(num_documents=50), seed=8)
        from collections import Counter

        counts = Counter(token for doc in docs for token in doc.tokens)
        total = sum(counts.values())
        top_share = sum(count for _, count in counts.most_common(50)) / total
        assert top_share > 0.25
