"""Tests for the World-Bank-like column-pair generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.worldbank import (
    WorldBankConfig,
    generate_column_pair,
    generate_corpus,
)


class TestGenerateColumnPair:
    def test_rejects_bad_overlap(self):
        with pytest.raises(ValueError):
            generate_column_pair(overlap=1.2, outlier_rate=0.0, seed=0)

    def test_unit_norm_columns(self):
        pair = generate_column_pair(overlap=0.3, outlier_rate=0.05, seed=1)
        assert pair.left.norm() == pytest.approx(1.0, abs=1e-9)
        assert pair.right.norm() == pytest.approx(1.0, abs=1e-9)

    def test_measured_overlap_close_to_requested(self):
        pair = generate_column_pair(overlap=0.4, outlier_rate=0.0, seed=2)
        assert pair.overlap == pytest.approx(0.4, abs=0.02)

    def test_zero_overlap(self):
        pair = generate_column_pair(overlap=0.0, outlier_rate=0.0, seed=3)
        assert pair.overlap == 0.0
        assert pair.left.dot(pair.right) == 0.0

    def test_full_overlap(self):
        pair = generate_column_pair(overlap=1.0, outlier_rate=0.0, seed=4)
        assert pair.overlap == pytest.approx(1.0)

    def test_outliers_raise_kurtosis(self):
        calm = generate_column_pair(overlap=0.5, outlier_rate=0.0, seed=5)
        heavy = generate_column_pair(overlap=0.5, outlier_rate=0.15, seed=5)
        assert heavy.kurtosis > calm.kurtosis

    def test_gaussian_columns_have_normal_kurtosis(self):
        pair = generate_column_pair(
            overlap=0.5,
            outlier_rate=0.0,
            seed=6,
            config=WorldBankConfig(rows_low=1_900, rows_high=2_000),
        )
        assert pair.kurtosis == pytest.approx(3.0, abs=1.0)

    def test_deterministic(self):
        first = generate_column_pair(overlap=0.3, outlier_rate=0.05, seed=7)
        second = generate_column_pair(overlap=0.3, outlier_rate=0.05, seed=7)
        assert first.left == second.left
        assert first.right == second.right

    def test_row_count_range_respected(self):
        config = WorldBankConfig(rows_low=50, rows_high=60)
        pair = generate_column_pair(overlap=0.5, outlier_rate=0.0, seed=8, config=config)
        assert 50 <= pair.left.nnz <= 60


class TestGenerateCorpus:
    def test_pair_count(self):
        pairs = list(generate_corpus(25, seed=0))
        assert len(pairs) == 25

    def test_deterministic(self):
        first = [p.overlap for p in generate_corpus(10, seed=1)]
        second = [p.overlap for p in generate_corpus(10, seed=1)]
        assert first == second

    def test_overlap_marginal_skews_low(self):
        # Paper: 42% of World Bank pairs had overlap < 0.1.
        pairs = list(generate_corpus(300, seed=2))
        overlaps = np.array([p.overlap for p in pairs])
        assert np.mean(overlaps < 0.25) > 0.3
        assert overlaps.max() > 0.7  # but the high range is populated too

    def test_kurtosis_spans_bins(self):
        pairs = list(generate_corpus(300, seed=3))
        kurtoses = np.array([p.kurtosis for p in pairs])
        assert (kurtoses < 5).any()
        assert (kurtoses > 50).any()
