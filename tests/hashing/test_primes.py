"""Tests for primality utilities."""

from __future__ import annotations

import pytest

from repro.hashing.primes import MERSENNE_31, MERSENNE_61, is_prime, next_prime


class TestIsPrime:
    @pytest.mark.parametrize("prime", [2, 3, 5, 7, 11, 13, 97, 7919, 104729])
    def test_known_primes(self, prime):
        assert is_prime(prime)

    @pytest.mark.parametrize("composite", [0, 1, 4, 6, 9, 15, 91, 7917, 104730])
    def test_known_composites(self, composite):
        assert not is_prime(composite)

    def test_negative(self):
        assert not is_prime(-7)

    def test_mersenne_constants_are_prime(self):
        assert is_prime(MERSENNE_31)
        assert is_prime(MERSENNE_61)

    def test_mersenne_values(self):
        assert MERSENNE_31 == 2**31 - 1
        assert MERSENNE_61 == 2**61 - 1

    def test_carmichael_number_rejected(self):
        # 561 = 3 * 11 * 17 fools the Fermat test but not Miller-Rabin.
        assert not is_prime(561)

    def test_large_semiprime_rejected(self):
        assert not is_prime(MERSENNE_31 * 3)


class TestNextPrime:
    def test_from_prime_returns_itself(self):
        assert next_prime(97) == 97

    def test_from_composite(self):
        assert next_prime(90) == 97

    def test_small_floors(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 2
        assert next_prime(3) == 3

    def test_above_mersenne(self):
        assert next_prime(MERSENNE_31 + 1) > MERSENNE_31

    def test_result_is_prime(self):
        for floor in (10, 1000, 12345, 2**20):
            assert is_prime(next_prime(floor))
