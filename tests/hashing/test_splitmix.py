"""Tests for the splitmix64 counter-based stream."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.splitmix import (
    counter_uniform,
    derive_key,
    derive_key_grid,
    hash_bytes,
    hash_string,
    mix64,
    uniform_from_bits,
)


class TestMix64:
    def test_scalar_returns_uint64(self):
        out = mix64(12345)
        assert isinstance(out, np.uint64)

    def test_array_shape_preserved(self):
        data = np.arange(100, dtype=np.uint64)
        assert mix64(data).shape == (100,)

    def test_deterministic(self):
        assert mix64(987654321) == mix64(987654321)

    def test_bijective_on_sample(self):
        # mix64 is a bijection; a large sample must have no collisions.
        inputs = np.arange(100_000, dtype=np.uint64)
        outputs = np.asarray(mix64(inputs))
        assert np.unique(outputs).size == inputs.size

    def test_avalanche_single_bit_flip(self):
        # Flipping one input bit should flip ~half the output bits.
        base = np.uint64(0xDEADBEEF)
        flipped = base ^ np.uint64(1)
        difference = int(mix64(base)) ^ int(mix64(flipped))
        assert 20 <= bin(difference).count("1") <= 44

    def test_zero_is_the_only_fixed_point_nearby(self):
        # The splitmix64 finalizer maps 0 -> 0 (known fixed point);
        # derive_key avoids it by folding in nonzero constants.
        assert int(mix64(0)) == 0
        assert int(mix64(1)) != 1

    def test_matches_reference_vector(self):
        # Reference value from the canonical splitmix64 finalizer
        # applied to state 1 (computed independently in Python ints).
        mul1, mul2, mask = 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, (1 << 64) - 1
        z = 1
        z = ((z ^ (z >> 30)) * mul1) & mask
        z = ((z ^ (z >> 27)) * mul2) & mask
        expected = z ^ (z >> 31)
        assert int(mix64(1)) == expected


class TestDeriveKey:
    def test_deterministic(self):
        assert derive_key(1, 2, 3) == derive_key(1, 2, 3)

    def test_order_sensitive(self):
        assert derive_key(1, 2) != derive_key(2, 1)

    def test_distinct_for_distinct_parts(self):
        keys = {int(derive_key(seed, rep)) for seed in range(20) for rep in range(20)}
        assert len(keys) == 400

    def test_grid_matches_elementwise_derivation(self):
        rows = np.arange(5)
        cols = np.array([7, 100, 4096])
        grid = derive_key_grid(3, rows, cols)
        assert grid.shape == (5, 3)
        for i in range(5):
            for j in range(3):
                assert int(grid[i, j]) == int(derive_key(3, int(rows[i]), int(cols[j])))

    def test_grid_distinct_across_seeds(self):
        rows = np.arange(4)
        cols = np.arange(4)
        grid_a = derive_key_grid(0, rows, cols)
        grid_b = derive_key_grid(1, rows, cols)
        assert not np.any(grid_a == grid_b)


class TestCounterUniform:
    def test_range_strictly_inside_unit_interval(self):
        keys = np.asarray(mix64(np.arange(10_000, dtype=np.uint64)))
        for counter in (0, 1, 17):
            draws = counter_uniform(keys, counter)
            assert draws.min() > 0.0
            assert draws.max() < 1.0

    def test_pure_function_of_key_and_counter(self):
        key = derive_key(5, 6)
        assert counter_uniform(key, 9) == counter_uniform(key, 9)
        assert counter_uniform(key, 9) != counter_uniform(key, 10)

    def test_mean_and_variance_are_uniform(self):
        keys = np.asarray(mix64(np.arange(200_000, dtype=np.uint64)))
        draws = counter_uniform(keys, 0)
        assert abs(draws.mean() - 0.5) < 0.005
        assert abs(draws.var() - 1.0 / 12.0) < 0.005

    def test_stream_independence_across_counters(self):
        # Correlation between consecutive counters should vanish.
        keys = np.asarray(mix64(np.arange(100_000, dtype=np.uint64)))
        first = counter_uniform(keys, 0)
        second = counter_uniform(keys, 1)
        correlation = np.corrcoef(first, second)[0, 1]
        assert abs(correlation) < 0.02

    def test_uniform_from_bits_endpoints_excluded(self):
        assert uniform_from_bits(np.uint64(0)) > 0.0
        assert uniform_from_bits(np.uint64(2**64 - 1)) < 1.0


class TestByteHashing:
    def test_hash_bytes_deterministic(self):
        assert hash_bytes(b"abc") == hash_bytes(b"abc")

    def test_hash_bytes_distinct(self):
        digests = {hash_bytes(bytes([i, j])) for i in range(30) for j in range(30)}
        assert len(digests) == 900

    def test_hash_string_utf8(self):
        assert hash_string("héllo") == hash_bytes("héllo".encode("utf-8"))

    def test_empty_input(self):
        assert isinstance(hash_bytes(b""), int)

    def test_hash_string_differs_from_similar(self):
        assert hash_string("w1") != hash_string("w2")


@pytest.mark.parametrize("counter", [0, 1, 2, 1000])
def test_counter_uniform_matches_inline_expansion(counter):
    """The fast WMH loop inlines this computation; keep them in sync."""
    golden = np.uint64(0x9E3779B97F4A7C15)
    keys = np.asarray(mix64(np.arange(50, dtype=np.uint64) + np.uint64(99)))
    with np.errstate(over="ignore"):
        state = keys + np.uint64(counter) * golden
        word = state
        word = (word ^ (word >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        word = (word ^ (word >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        word = word ^ (word >> np.uint64(31))
        inline = ((word >> np.uint64(12)).astype(np.float64) + 0.5) * 2.0**-52
    np.testing.assert_array_equal(counter_uniform(keys, counter), inline)
