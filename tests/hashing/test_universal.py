"""Tests for the Carter–Wegman 2-wise hash family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.primes import MERSENNE_31
from repro.hashing.universal import TwoWiseHashFamily, fold_to_domain


class TestConstruction:
    def test_rejects_zero_functions(self):
        with pytest.raises(ValueError):
            TwoWiseHashFamily(0, seed=1)

    def test_rejects_tiny_prime(self):
        with pytest.raises(ValueError):
            TwoWiseHashFamily(4, seed=1, prime=2)

    def test_same_seed_same_family(self):
        idx = np.arange(50)
        a = TwoWiseHashFamily(8, seed=3).hash_unit(idx)
        b = TwoWiseHashFamily(8, seed=3).hash_unit(idx)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        idx = np.arange(50)
        a = TwoWiseHashFamily(8, seed=3).hash_unit(idx)
        b = TwoWiseHashFamily(8, seed=4).hash_unit(idx)
        assert not np.allclose(a, b)


class TestHashing:
    def test_unit_range_half_open(self):
        family = TwoWiseHashFamily(16, seed=0)
        values = family.hash_unit(np.arange(10_000))
        assert values.min() > 0.0
        assert values.max() <= 1.0

    def test_matrix_shape(self):
        family = TwoWiseHashFamily(7, seed=0)
        assert family.hash_ints(np.arange(13)).shape == (7, 13)

    def test_rejects_indices_outside_domain(self):
        family = TwoWiseHashFamily(2, seed=0)
        with pytest.raises(ValueError, match="fold"):
            family.hash_ints(np.array([MERSENNE_31 + 5]))

    def test_single_unit_matches_matrix_row(self):
        family = TwoWiseHashFamily(5, seed=9)
        idx = np.arange(100)
        matrix = family.hash_unit(idx)
        for row in range(5):
            np.testing.assert_array_equal(family.single_unit(row, idx), matrix[row])

    def test_collision_rate_is_birthday_bounded(self):
        # Distinct indices collide with probability 1/p per function.
        family = TwoWiseHashFamily(1, seed=2)
        values = family.hash_ints(np.arange(50_000))[0]
        assert np.unique(values).size >= 49_990

    def test_uniformity_of_single_function(self):
        family = TwoWiseHashFamily(1, seed=5)
        values = family.hash_unit(np.arange(200_000))[0]
        assert abs(values.mean() - 0.5) < 0.01
        # Linear functions on consecutive inputs wrap uniformly.
        histogram, _ = np.histogram(values, bins=10, range=(0, 1))
        assert histogram.min() > 15_000

    def test_pairwise_independence_statistic(self):
        # For 2-wise independence, P[h(i) < 1/2 and h(j) < 1/2] ~ 1/4.
        family = TwoWiseHashFamily(200, seed=8)
        pair = family.hash_unit(np.array([123, 9_876]))
        joint = np.mean((pair[:, 0] < 0.5) & (pair[:, 1] < 0.5))
        assert abs(joint - 0.25) < 0.1


class TestFoldToDomain:
    def test_output_within_domain(self):
        folded = fold_to_domain(np.arange(10_000))
        assert folded.min() >= 0
        assert folded.max() < MERSENNE_31

    def test_deterministic(self):
        idx = np.array([1, 2, 3, 2**40])
        np.testing.assert_array_equal(fold_to_domain(idx), fold_to_domain(idx))

    def test_injective_on_small_sets(self):
        folded = fold_to_domain(np.arange(10_000))
        assert np.unique(folded).size == 10_000

    def test_custom_prime(self):
        folded = fold_to_domain(np.arange(100), prime=101)
        assert folded.max() < 101
