"""Tests for the plain-text report renderers."""

from __future__ import annotations

from repro.experiments.report import format_matrix, format_series_panel, format_table


class TestFormatTable:
    def test_includes_headers_and_rows(self):
        text = format_table(["x", "y"], [[1, 2.5], [3, 4.0]])
        assert "x" in text and "y" in text
        assert "2.5000" in text

    def test_title_first_line(self):
        text = format_table(["a"], [[1]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_alignment_consistent_width(self):
        text = format_table(["method", "err"], [["JL", 0.5], ["WMH", 0.25]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_nan_rendered_as_dashes(self):
        text = format_table(["v"], [[float("nan")]])
        assert "--" in text

    def test_small_values_keep_sign_and_precision(self):
        text = format_table(["v"], [[-0.003], [0.004]])
        assert "-0.0030" in text
        assert "+0.0040" in text


class TestPanels:
    def test_series_panel_layout(self):
        text = format_series_panel(
            "Panel", [100, 200], {"JL": [0.1, 0.2], "WMH": [0.05, 0.1]}
        )
        assert "Panel" in text
        assert "100" in text and "200" in text
        assert "JL" in text and "WMH" in text

    def test_matrix_layout(self):
        text = format_matrix(
            "Grid",
            ["low", "high"],
            ["c1", "c2"],
            [[1.0, 2.0], [3.0, 4.0]],
            corner="kurt",
        )
        assert "Grid" in text
        assert "kurt" in text
        assert "low" in text and "c2" in text
