"""Tests for the storage-equalized sweep runner."""

from __future__ import annotations

import pytest

from repro.experiments.runner import (
    EXTENDED_METHODS,
    PAPER_METHODS,
    method_registry,
    run_sweep,
)
from repro.vectors.sparse import SparseVector


class TestRegistry:
    def test_paper_methods_present(self):
        registry = method_registry()
        assert set(PAPER_METHODS) <= set(registry)

    def test_extended_methods_present(self):
        registry = method_registry()
        assert set(EXTENDED_METHODS) <= set(registry)

    def test_storage_equalization(self):
        # The paper's accounting: linear = 1 word/row, sampling =
        # 1.5 words/sample; CS splits into 5 repetitions.
        registry = method_registry()
        assert registry["JL"].build(300, 0).m == 300
        assert registry["MH"].build(300, 0).m == 200
        assert registry["KMV"].build(300, 0).k == 200
        assert registry["WMH"].build(300, 0).m == 200
        cs = registry["CS"].build(300, 0)
        assert cs.repetitions * cs.width == 300

    def test_wmh_L_override(self):
        registry = method_registry(wmh_L=1 << 12)
        assert registry["WMH"].build(100, 0).L == 1 << 12

    def test_builders_apply_seed(self):
        registry = method_registry()
        assert registry["JL"].build(100, 7).seed == 7


class TestRunSweep:
    @pytest.fixture
    def tiny_pairs(self, pair_factory):
        return [
            pair_factory(n=200, nnz=40, overlap=0.3, seed=s) for s in range(2)
        ]

    def test_record_count(self, tiny_pairs):
        records = run_sweep(
            tiny_pairs, storages=[60, 120], trials=2, methods=("JL", "WMH")
        )
        # methods x storages x trials x pairs
        assert len(records) == 2 * 2 * 2 * 2

    def test_records_labelled(self, tiny_pairs):
        records = run_sweep(tiny_pairs, storages=[60], trials=1, methods=("JL",))
        assert {record.method for record in records} == {"JL"}
        assert {record.storage for record in records} == {60}
        assert {record.pair_id for record in records} == {0, 1}

    def test_unknown_method_rejected(self, tiny_pairs):
        with pytest.raises(ValueError, match="unknown methods"):
            run_sweep(tiny_pairs, storages=[60], methods=("JL", "Oracle"))

    def test_errors_are_finite_and_nonnegative(self, tiny_pairs):
        records = run_sweep(
            tiny_pairs, storages=[90], trials=2, methods=PAPER_METHODS
        )
        assert all(record.error >= 0.0 for record in records)
        assert all(record.error < 10.0 for record in records)

    def test_sketch_cache_consistent_with_fresh_sketches(self, pair_factory):
        # A vector appearing in two pairs must produce identical
        # estimates whether or not the cache is involved.
        a, b = pair_factory(n=200, nnz=40, overlap=0.5, seed=9)
        records_shared = run_sweep(
            [(a, b), (a, b)], storages=[90], trials=1, methods=("WMH",), seed=1
        )
        records_single = run_sweep(
            [(a, b)], storages=[90], trials=1, methods=("WMH",), seed=1
        )
        assert records_shared[0].error == pytest.approx(records_single[0].error)
        assert records_shared[1].error == pytest.approx(records_single[0].error)

    def test_zero_vector_pair_handled(self):
        zero = SparseVector.zero()
        records = run_sweep(
            [(zero, zero)], storages=[60], trials=1, methods=("WMH", "JL")
        )
        assert all(record.error == 0.0 for record in records)


class TestRunSweepCandidates:
    """The serving-side candidates knob on the sweep driver."""

    def overlapping_pairs(self, seed=0, count=6):
        import numpy as np

        rng = np.random.default_rng(seed)
        pairs = []
        for _ in range(count):
            shared = rng.choice(500, size=40, replace=False)
            a = SparseVector(np.sort(shared), rng.normal(size=40))
            b_idx = np.sort(
                np.concatenate(
                    [shared[:30], 500 + rng.choice(100, size=10, replace=False)]
                )
            )
            pairs.append((a, SparseVector(b_idx, rng.normal(size=40))))
        return pairs

    def test_lsh_records_are_subset_of_scan(self):
        pairs = self.overlapping_pairs()
        scan = run_sweep(pairs, storages=[96], trials=2, methods=["WMH"], seed=1)
        lsh = run_sweep(
            pairs,
            storages=[96],
            trials=2,
            methods=["WMH"],
            seed=1,
            candidates="lsh",
        )
        scan_cells = {(r.pair_id, r.trial): r.error for r in scan}
        lsh_cells = {(r.pair_id, r.trial): r.error for r in lsh}
        assert set(lsh_cells) <= set(scan_cells)
        assert all(scan_cells[cell] == lsh_cells[cell] for cell in lsh_cells)

    def test_signatureless_methods_estimate_every_pair(self):
        pairs = self.overlapping_pairs(seed=2)
        scan = run_sweep(pairs, storages=[64], trials=1, methods=["JL"], seed=1)
        lsh = run_sweep(
            pairs, storages=[64], trials=1, methods=["JL"], seed=1, candidates="lsh"
        )
        assert len(lsh) == len(scan)

    def test_unknown_candidates_rejected(self):
        with pytest.raises(ValueError, match="candidate generator"):
            run_sweep(
                self.overlapping_pairs(), storages=[64], candidates="psychic"
            )
