"""Smoke and shape tests for every figure/table driver (quick scale)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments import ablations, figure4, figure5, figure6, table1


class TestFigure4:
    @pytest.fixture(scope="class")
    def quick_result(self):
        config = figure4.Figure4Config.quick()
        return config, figure4.run(config)

    def test_panels_match_overlaps(self, quick_result):
        config, panels = quick_result
        assert set(panels) == set(config.overlaps)

    def test_records_cover_grid(self, quick_result):
        config, panels = quick_result
        for records in panels.values():
            assert len(records) == (
                len(config.methods) * len(config.storages) * config.trials
            )

    def test_render_contains_all_methods(self, quick_result):
        config, panels = quick_result
        text = figure4.render(panels, config)
        for method in config.methods:
            assert method in text

    def test_summaries_are_finite(self, quick_result):
        config, panels = quick_result
        for series in figure4.summarize_panels(panels, config).values():
            for values in series.values():
                assert all(math.isfinite(v) for v in values)


class TestFigure5:
    @pytest.fixture(scope="class")
    def quick_result(self):
        return figure5.run(figure5.Figure5Config.quick())

    def test_matrices_for_both_comparisons(self, quick_result):
        assert set(quick_result.matrices) == {"JL", "MH"}

    def test_counts_total_matches_pairs(self, quick_result):
        assert int(quick_result.counts.sum()) == figure5.Figure5Config.quick().num_pairs

    def test_render_mentions_winning_tables(self, quick_result):
        text = figure5.render(quick_result)
        assert "WMH error - JL error" in text
        assert "pair counts" in text

    def test_matrix_shapes(self, quick_result):
        config = figure5.Figure5Config.quick()
        rows = len(config.kurtosis_bins) - 1
        columns = len(config.overlap_bins) - 1
        for matrix in quick_result.matrices.values():
            assert matrix.shape == (rows, columns)

    def test_bin_index_clamps_to_last_bin(self):
        assert figure5._bin_index(2.0, (0.0, 0.5, 1.01)) == 1
        assert figure5._bin_index(0.2, (0.0, 0.5, 1.01)) == 0


class TestFigure6:
    @pytest.fixture(scope="class")
    def quick_result(self):
        config = figure6.Figure6Config.quick()
        return config, figure6.run(config)

    def test_both_strata_present(self, quick_result):
        _, results = quick_result
        assert set(results) == {"all", "long"}

    def test_all_stratum_has_records(self, quick_result):
        config, results = quick_result
        assert len(results["all"]) > 0

    def test_render(self, quick_result):
        config, results = quick_result
        text = figure6.render(results, config)
        assert "Figure 6(a)" in text
        assert "Figure 6(b)" in text

    def test_vectors_are_unit_norm(self):
        config = figure6.Figure6Config.quick()
        vectors, lengths = figure6.build_vectors(config)
        assert len(vectors) == len(lengths)
        for vector in vectors[:5]:
            assert vector.norm() == pytest.approx(1.0)


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1.run(m=64, trials=2, seed=0)

    def test_all_families_present(self, rows):
        assert {row.family for row in rows} == set(table1.VECTOR_FAMILIES)

    def test_wmh_bound_never_exceeds_linear(self, rows):
        for row in rows:
            assert row.wmh_bound <= row.linear_bound * (1 + 1e-12)

    def test_binary_family_bounds_coincide(self, rows):
        binary = next(row for row in rows if row.family.startswith("binary"))
        assert binary.wmh_bound == pytest.approx(binary.minhash_bound)

    def test_dense_family_has_no_advantage(self, rows):
        dense = next(row for row in rows if row.family == "dense")
        assert dense.advantage == pytest.approx(1.0, abs=0.05)

    def test_render(self, rows):
        text = table1.render(rows)
        assert "Table 1" in text
        assert "bound WMH" in text


class TestAblations:
    def test_run_all_sections(self):
        report = ablations.run_all(ablations.AblationConfig.quick())
        assert "choice of L" in report
        assert "weighted union" in report
        assert "norm scaling" in report
        assert "median-of-t" in report
        assert "SimHash" in report

    def test_choice_of_L_shows_degradation(self):
        config = ablations.AblationConfig.quick()
        text = ablations.ablate_choice_of_L(config)
        # The table must include the sub-n and the 1000n settings.
        assert "L = 0.1 n" in text
        assert "L = 1000 n" in text


class TestMains:
    def test_figure4_main_quick(self, capsys):
        figure4.main(["--quick"])
        assert "Figure 4" in capsys.readouterr().out

    def test_figure5_main_quick(self, capsys):
        figure5.main(["--quick"])
        assert "Figure 5" in capsys.readouterr().out

    def test_figure6_main_quick(self, capsys):
        figure6.main(["--quick"])
        assert "Figure 6" in capsys.readouterr().out

    def test_table1_main(self, capsys):
        table1.main(["--m", "36", "--trials", "1"])
        assert "Table 1" in capsys.readouterr().out

    def test_ablations_main_quick(self, capsys):
        ablations.main(["--quick"])
        assert "Ablation" in capsys.readouterr().out
