"""Tests for experiment metrics and aggregation."""

from __future__ import annotations

import math

import pytest

from repro.experiments.metrics import (
    ErrorRecord,
    group_mean,
    group_median,
    normalized_error,
    summarize,
    summarize_median,
)
from repro.vectors.sparse import SparseVector


class TestNormalizedError:
    def test_manual(self):
        a = SparseVector([1], [3.0])
        b = SparseVector([1], [4.0])
        # truth 12, estimate 15, norms 3*4: (15-12)/12 = 0.25.
        assert normalized_error(15.0, 12.0, a, b) == pytest.approx(0.25)

    def test_zero_error(self):
        a = SparseVector([1], [1.0])
        assert normalized_error(1.0, 1.0, a, a) == 0.0

    def test_zero_norms_exact(self):
        z = SparseVector.zero()
        assert normalized_error(0.0, 0.0, z, z) == 0.0

    def test_zero_norms_wrong_estimate(self):
        z = SparseVector.zero()
        assert math.isinf(normalized_error(1.0, 0.0, z, z))


def _records():
    return [
        ErrorRecord(method="JL", storage=100, error=0.1),
        ErrorRecord(method="JL", storage=100, error=0.3),
        ErrorRecord(method="JL", storage=200, error=0.05),
        ErrorRecord(method="WMH", storage=100, error=1.0),
    ]


class TestAggregation:
    def test_group_mean(self):
        means = group_mean(_records(), key=lambda r: (r.method, r.storage))
        assert means[("JL", 100)] == pytest.approx(0.2)
        assert means[("WMH", 100)] == pytest.approx(1.0)

    def test_group_median_robust_to_outlier(self):
        records = [
            ErrorRecord(method="WMH", storage=100, error=e)
            for e in (0.01, 0.02, 5.0)
        ]
        medians = group_median(records, key=lambda r: r.method)
        assert medians["WMH"] == pytest.approx(0.02)

    def test_summarize_series_order(self):
        series = summarize(_records(), methods=["JL", "WMH"], storages=[100, 200])
        assert series["JL"] == [pytest.approx(0.2), pytest.approx(0.05)]

    def test_summarize_missing_cells_are_nan(self):
        series = summarize(_records(), methods=["WMH"], storages=[100, 200])
        assert math.isnan(series["WMH"][1])

    def test_summarize_median(self):
        records = [
            ErrorRecord(method="JL", storage=100, error=e) for e in (0.1, 0.2, 9.0)
        ]
        series = summarize_median(records, methods=["JL"], storages=[100])
        assert series["JL"][0] == pytest.approx(0.2)
