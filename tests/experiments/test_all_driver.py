"""Tests for the consolidated experiments driver."""

from __future__ import annotations

import pytest

from repro.experiments.all import main, run_all


class TestRunAll:
    def test_rejects_unknown_scale(self):
        with pytest.raises(ValueError, match="scale"):
            run_all("enormous")

    @pytest.fixture(scope="class")
    def quick_report(self):
        return run_all("quick")

    def test_contains_every_section(self, quick_report):
        assert "Table 1" in quick_report
        assert "Figure 4" in quick_report
        assert "Figure 5" in quick_report
        assert "Figure 6" in quick_report
        assert "Ablation" in quick_report

    def test_reports_timings(self, quick_report):
        assert "Wall-clock per experiment" in quick_report

    def test_main_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        main(["--quick", "--out", str(out)])
        assert "Table 1" in capsys.readouterr().out
        assert "Figure 6" in out.read_text()
