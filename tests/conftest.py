"""Shared test fixtures.

Statistical tests in this suite follow one discipline: fixed seeds,
pre-verified tolerances, and aggregation over enough repetitions that
the asserted inequality holds with very large margin.  Nothing here is
allowed to be flaky under the pinned seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.vectors.sparse import SparseVector


def make_overlapping_pair(
    n: int,
    nnz: int,
    overlap: float,
    seed: int,
    values: str = "normal",
) -> tuple[SparseVector, SparseVector]:
    """Two sparse vectors with an exact support-overlap fraction.

    ``values`` selects the entry distribution: ``"normal"``,
    ``"binary"`` (all ones), or ``"outliers"`` (uniform body with 10%
    heavy entries in [20, 30], the paper's synthetic profile).
    """
    rng = np.random.default_rng(seed)
    shared_count = int(round(overlap * nnz))
    permutation = rng.permutation(n)
    shared = permutation[:shared_count]
    only_a = permutation[shared_count : shared_count + nnz - shared_count]
    only_b = permutation[
        shared_count + nnz - shared_count : shared_count + 2 * (nnz - shared_count)
    ]

    def draw(size: int) -> np.ndarray:
        if values == "binary":
            return np.ones(size)
        if values == "outliers":
            vals = rng.uniform(-1, 1, size=size)
            heavy = rng.choice(size, size=max(size // 10, 1), replace=False)
            vals[heavy] = rng.uniform(20, 30, size=heavy.size)
            return vals
        vals = rng.normal(size=size)
        vals[vals == 0.0] = 1e-9
        return vals

    a = SparseVector(np.concatenate([shared, only_a]), draw(nnz), n=n)
    b = SparseVector(np.concatenate([shared, only_b]), draw(nnz), n=n)
    return a, b


@pytest.fixture
def pair_factory():
    return make_overlapping_pair


@pytest.fixture
def small_pair():
    """A deterministic mid-sized pair with 20% overlap."""
    return make_overlapping_pair(n=1_000, nnz=200, overlap=0.2, seed=42)


@pytest.fixture
def outlier_pair():
    """The paper's outlier-heavy synthetic profile, reduced."""
    return make_overlapping_pair(
        n=1_000, nnz=200, overlap=0.2, seed=43, values="outliers"
    )
