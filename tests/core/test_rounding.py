"""Tests for Algorithm 4 (vector rounding) — the Lemma 3 invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rounding import round_unit_vector, round_vector
from repro.vectors.sparse import SparseVector


def random_unit_values(size: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    values = rng.normal(size=size)
    values[values == 0.0] = 0.5
    return values / np.linalg.norm(values)


class TestRoundUnitVector:
    @pytest.mark.parametrize("L", [1, 7, 64, 1024, 1 << 20])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_counts_sum_to_exactly_L(self, L, seed):
        _, counts = round_unit_vector(random_unit_values(50, seed), L)
        assert int(counts.sum()) == L

    @pytest.mark.parametrize("L", [64, 1024, 1 << 20])
    def test_output_is_unit_norm(self, L):
        rounded, _ = round_unit_vector(random_unit_values(50, 3), L)
        assert np.linalg.norm(rounded) == pytest.approx(1.0, abs=1e-12)

    @pytest.mark.parametrize("L", [64, 1024])
    def test_squared_entries_are_integer_multiples(self, L):
        rounded, counts = round_unit_vector(random_unit_values(30, 4), L)
        np.testing.assert_allclose(rounded**2 * L, counts, atol=1e-6)

    def test_all_entries_rounded_down_except_largest(self):
        values = random_unit_values(40, 5)
        rounded, _ = round_unit_vector(values, 256)
        largest = int(np.argmax(np.abs(values)))
        for position in range(40):
            if position == largest:
                assert abs(rounded[position]) >= abs(values[position]) - 1e-12
            else:
                assert abs(rounded[position]) <= abs(values[position]) + 1e-12

    def test_signs_preserved(self):
        values = np.array([0.6, -0.8])
        rounded, _ = round_unit_vector(values, 100)
        assert rounded[0] > 0 > rounded[1]

    def test_idempotent_on_discrete_vectors(self):
        # A vector whose squared entries are already multiples of 1/L
        # must round to itself (Lemma 3 claim 1 + the snap tolerance).
        L = 1000
        counts = np.array([300, 500, 200])
        values = np.sqrt(counts / L)
        rounded, new_counts = round_unit_vector(values, L)
        np.testing.assert_array_equal(new_counts, counts)
        np.testing.assert_allclose(rounded, values, rtol=1e-15)

    def test_small_entries_round_to_zero(self):
        # With L = 4, an entry of squared mass 0.1 < 1/4 must vanish.
        values = np.array([np.sqrt(0.9), np.sqrt(0.1)])
        rounded, counts = round_unit_vector(values, 4)
        assert counts[1] == 0
        assert rounded[1] == 0.0

    def test_single_entry_vector(self):
        rounded, counts = round_unit_vector(np.array([1.0]), 17)
        assert counts[0] == 17
        assert rounded[0] == pytest.approx(1.0)

    def test_L_one_concentrates_everything_on_largest(self):
        values = random_unit_values(10, 6)
        rounded, counts = round_unit_vector(values, 1)
        largest = int(np.argmax(np.abs(values)))
        assert counts[largest] == 1
        assert counts.sum() == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            round_unit_vector(np.array([]), 10)

    def test_rejects_bad_L(self):
        with pytest.raises(ValueError, match="L must be >= 1"):
            round_unit_vector(np.array([1.0]), 0)

    def test_rejects_super_unit_input(self):
        with pytest.raises(ValueError, match="not a unit vector"):
            round_unit_vector(np.array([2.0, 2.0]), 100)


class TestRoundVector:
    def test_preserves_original_norm_metadata(self):
        vector = SparseVector([1, 2], [3.0, 4.0])
        rounded = round_vector(vector, 1024)
        assert rounded.norm == pytest.approx(5.0)
        assert rounded.L == 1024

    def test_rounded_support_is_subset(self):
        rng = np.random.default_rng(7)
        vector = SparseVector(np.arange(100), rng.normal(size=100))
        rounded = round_vector(vector, 64)  # L < nnz: most entries vanish
        assert rounded.nnz <= vector.nnz
        assert np.all(np.isin(rounded.indices, vector.indices))
        assert int(rounded.counts.sum()) == 64

    def test_counts_strictly_positive(self):
        vector = SparseVector([5, 9], [1.0, 2.0])
        rounded = round_vector(vector, 128)
        assert np.all(rounded.counts >= 1)

    def test_as_sparse_is_unit(self):
        vector = SparseVector([1, 4, 9], [1.0, -2.0, 3.0])
        assert round_vector(vector, 4096).as_sparse().norm() == pytest.approx(
            1.0, abs=1e-9
        )

    def test_scale_invariance(self):
        # round(c * a) must equal round(a) for any c > 0 — this is what
        # makes WMH sketches scale-consistent.
        vector = SparseVector([1, 2, 3], [0.1, 0.5, -0.3])
        base = round_vector(vector, 2048)
        scaled = round_vector(vector.scaled(1000.0), 2048)
        np.testing.assert_array_equal(base.counts, scaled.counts)
        np.testing.assert_allclose(base.values, scaled.values)

    def test_zero_vector_raises(self):
        with pytest.raises(ValueError, match="zero vector"):
            round_vector(SparseVector.zero(), 10)

    def test_lemma3_rounding_fixpoint(self):
        # a' = ||a|| * round(a/||a||) rounds to the same RoundedVector
        # as a itself (Lemma 3 claim 2's precondition).
        vector = SparseVector([2, 3, 5], [1.5, -0.7, 2.2])
        first = round_vector(vector, 4096)
        reconstructed = SparseVector(
            first.indices, first.values * first.norm
        )
        second = round_vector(reconstructed, 4096)
        np.testing.assert_array_equal(first.counts, second.counts)
        np.testing.assert_allclose(first.values, second.values, rtol=1e-12)
