"""Tests for the SketchBank container and the generic batch fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bank import SketchBank
from repro.core.wmh import WeightedMinHash
from repro.sketches.simhash import SimHash
from repro.vectors.sparse import SparseMatrix, SparseVector, as_sparse_matrix


def make_vectors(count: int = 6, seed: int = 0) -> list[SparseVector]:
    rng = np.random.default_rng(seed)
    vectors = []
    for _ in range(count):
        indices = rng.choice(500, size=40, replace=False)
        vectors.append(SparseVector(indices, rng.normal(size=40)))
    return vectors


class TestSketchBank:
    def test_requires_columns(self):
        with pytest.raises(ValueError, match="at least one column"):
            SketchBank(kind="x", params={}, columns={})

    def test_rejects_ragged_columns(self):
        with pytest.raises(ValueError, match="disagree"):
            SketchBank(
                kind="x",
                params={},
                columns={"a": np.zeros(3), "b": np.zeros((4, 2))},
            )

    def test_len_and_storage(self):
        sketcher = WeightedMinHash(m=16, seed=0)
        bank = sketcher.sketch_batch(make_vectors(5))
        assert len(bank) == 5
        assert bank.storage_words() == pytest.approx(5 * sketcher.storage_words())

    def test_slicing_is_row_selection(self):
        sketcher = WeightedMinHash(m=16, seed=0)
        bank = sketcher.sketch_batch(make_vectors(6))
        part = bank[1:4]
        assert len(part) == 3
        np.testing.assert_array_equal(
            part.columns["hashes"], bank.columns["hashes"][1:4]
        )
        single = bank[2]
        assert len(single) == 1

    def test_boolean_mask_selection(self):
        sketcher = WeightedMinHash(m=16, seed=0)
        bank = sketcher.sketch_batch(make_vectors(6))
        mask = np.array([True, False, True, False, True, False])
        assert len(bank[mask]) == 3

    def test_concat_roundtrip(self):
        sketcher = WeightedMinHash(m=16, seed=0)
        vectors = make_vectors(6)
        whole = sketcher.sketch_batch(vectors)
        glued = SketchBank.concat([whole[0:2], whole[2:6]])
        np.testing.assert_array_equal(
            glued.columns["hashes"], whole.columns["hashes"]
        )

    def test_concat_rejects_mismatched_params(self):
        a = WeightedMinHash(m=16, seed=0).sketch_batch(make_vectors(2))
        b = WeightedMinHash(m=16, seed=1).sketch_batch(make_vectors(2))
        with pytest.raises(ValueError, match="cannot concatenate"):
            SketchBank.concat([a, b])


class TestGenericFallback:
    """SimHash has no vectorized override: the object-bank path runs."""

    def test_object_bank_shape(self):
        sketcher = SimHash(m=64, seed=0)
        bank = sketcher.sketch_batch(make_vectors(4))
        assert bank.is_object_bank()
        assert len(bank) == 4

    def test_estimate_many_matches_scalar(self):
        sketcher = SimHash(m=64, seed=0)
        vectors = make_vectors(5)
        bank = sketcher.sketch_batch(vectors)
        query = sketcher.sketch(vectors[0])
        loop = np.array(
            [sketcher.estimate(query, sketcher.sketch(v)) for v in vectors]
        )
        np.testing.assert_array_equal(sketcher.estimate_many(query, bank), loop)

    def test_bank_row_returns_scalar_sketch(self):
        sketcher = SimHash(m=64, seed=0)
        vectors = make_vectors(3)
        bank = sketcher.sketch_batch(vectors)
        row = sketcher.bank_row(bank, 1)
        expected = sketcher.sketch(vectors[1])
        np.testing.assert_array_equal(row.bits, expected.bits)


class TestSparseMatrix:
    def test_from_rows_roundtrip(self):
        vectors = make_vectors(4)
        matrix = SparseMatrix.from_rows(vectors)
        assert matrix.num_rows == 4
        assert matrix.nnz == sum(v.nnz for v in vectors)
        for i, vector in enumerate(vectors):
            assert matrix.row(i) == vector

    def test_from_dense(self):
        dense = np.array([[0.0, 1.0, 0.0], [2.0, 0.0, 3.0]])
        matrix = SparseMatrix.from_dense(dense)
        np.testing.assert_array_equal(matrix.row(1).to_dense(3), dense[1])

    def test_empty_rows_kept(self):
        matrix = SparseMatrix.from_rows([SparseVector.zero(), make_vectors(1)[0]])
        assert matrix.num_rows == 2
        assert matrix.row(0).nnz == 0

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            SparseMatrix([1, 2], [0], [1.0])

    def test_as_sparse_matrix_coercions(self):
        vectors = make_vectors(2)
        assert isinstance(as_sparse_matrix(vectors), SparseMatrix)
        matrix = SparseMatrix.from_rows(vectors)
        assert as_sparse_matrix(matrix) is matrix
        assert as_sparse_matrix(np.eye(3)).num_rows == 3
        with pytest.raises(TypeError, match="single SparseVector"):
            as_sparse_matrix(vectors[0])

    def test_iteration(self):
        vectors = make_vectors(3)
        matrix = SparseMatrix.from_rows(vectors)
        assert [v.nnz for v in matrix] == [v.nnz for v in vectors]
