"""Segmented reductions: exactness against the per-segment numpy ops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.segments import (
    chunk_boundaries,
    segmented_min_argmin,
    segmented_min_argmin_rows,
)


def random_segments(rng, num_segments: int, m: int):
    sizes = rng.integers(1, 9, size=num_segments)
    indptr = np.concatenate([[0], np.cumsum(sizes)])
    matrix = rng.normal(size=(m, int(indptr[-1])))
    return matrix, indptr


class TestColumnMajor:
    def test_matches_per_segment_numpy(self):
        rng = np.random.default_rng(0)
        matrix, indptr = random_segments(rng, 17, 5)
        mins, argpos = segmented_min_argmin(matrix, indptr)
        for s in range(17):
            lo, hi = indptr[s], indptr[s + 1]
            np.testing.assert_array_equal(mins[:, s], matrix[:, lo:hi].min(axis=1))
            np.testing.assert_array_equal(
                argpos[:, s], lo + np.argmin(matrix[:, lo:hi], axis=1)
            )


class TestRowMajor:
    def test_matches_per_segment_numpy(self):
        rng = np.random.default_rng(1)
        matrix, indptr = random_segments(rng, 23, 4)
        rows = np.ascontiguousarray(matrix.T)  # (total, m)
        mins, argpos = segmented_min_argmin_rows(rows, indptr)
        for s in range(23):
            lo, hi = indptr[s], indptr[s + 1]
            np.testing.assert_array_equal(mins[s], rows[lo:hi].min(axis=0))
            np.testing.assert_array_equal(
                argpos[s], lo + np.argmin(rows[lo:hi], axis=0)
            )

    def test_tie_breaks_to_first_row_like_argmin(self):
        rows = np.array([[2.0, 1.0], [1.0, 1.0], [1.0, 3.0], [1.0, 0.5]])
        mins, argpos = segmented_min_argmin_rows(rows, np.array([0, 3, 4]))
        np.testing.assert_array_equal(mins, [[1.0, 1.0], [1.0, 0.5]])
        np.testing.assert_array_equal(argpos, [[1, 0], [3, 3]])

    def test_empty_and_invalid_segments(self):
        mins, argpos = segmented_min_argmin_rows(np.empty((0, 3)), np.array([0]))
        assert mins.shape == (0, 3) and argpos.shape == (0, 3)
        with pytest.raises(ValueError):
            segmented_min_argmin_rows(np.zeros((4, 2)), np.array([0, 2, 2, 4]))
        with pytest.raises(ValueError):
            segmented_min_argmin_rows(np.zeros((4, 2)), np.array([0, 3]))

    def test_agrees_with_column_major(self):
        rng = np.random.default_rng(2)
        matrix, indptr = random_segments(rng, 31, 6)
        mins_c, arg_c = segmented_min_argmin(matrix, indptr)
        mins_r, arg_r = segmented_min_argmin_rows(
            np.ascontiguousarray(matrix.T), indptr
        )
        np.testing.assert_array_equal(mins_r, mins_c.T)
        np.testing.assert_array_equal(arg_r, arg_c.T)


class TestChunkBoundaries:
    def test_covers_all_rows(self):
        indptr = np.array([0, 5, 5, 9, 40, 41])
        chunks = chunk_boundaries(indptr, target_nnz=10)
        covered = [r for lo, hi in chunks for r in range(lo, hi)]
        assert covered == list(range(5))
