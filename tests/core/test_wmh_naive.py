"""Tests for the naive expanded-vector reference, and fast-vs-naive checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import estimate_inner_product
from repro.core.rounding import round_vector
from repro.core.wmh import WeightedMinHash
from repro.core.wmh_naive import NaiveWeightedMinHash
from repro.vectors.ops import weighted_jaccard_similarity
from repro.vectors.sparse import SparseVector


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            NaiveWeightedMinHash(m=0, n=10)
        with pytest.raises(ValueError):
            NaiveWeightedMinHash(m=4, n=0)
        with pytest.raises(ValueError):
            NaiveWeightedMinHash(m=4, n=10, L=0)

    def test_rejects_vector_outside_domain(self):
        sketcher = NaiveWeightedMinHash(m=4, n=10, L=16)
        with pytest.raises(ValueError, match="domain"):
            sketcher.sketch(SparseVector([100], [1.0]))


class TestExpandedSlots:
    def test_slot_counts_match_rounding(self):
        vector = SparseVector([2, 5], [3.0, 4.0])
        sketcher = NaiveWeightedMinHash(m=2, n=10, L=100)
        slots, slot_values = sketcher.expanded_slots(vector)
        rounded = round_vector(vector, 100)
        assert slots.size == int(rounded.counts.sum()) == 100
        assert slot_values.size == slots.size

    def test_slots_lie_in_their_blocks(self):
        vector = SparseVector([2, 5], [3.0, 4.0])
        L = 64
        sketcher = NaiveWeightedMinHash(m=2, n=10, L=L)
        slots, _ = sketcher.expanded_slots(vector)
        blocks = slots // L
        assert set(np.unique(blocks).tolist()) <= {2, 5}
        # Occupied slots are the *first* k of each block.
        for block in (2, 5):
            within = np.sort(slots[blocks == block] - block * L)
            np.testing.assert_array_equal(within, np.arange(within.size))

    def test_slot_values_constant_per_block(self):
        vector = SparseVector([1, 3], [1.0, 2.0])
        sketcher = NaiveWeightedMinHash(m=2, n=5, L=50)
        slots, slot_values = sketcher.expanded_slots(vector)
        blocks = slots // 50
        for block in np.unique(blocks):
            assert np.unique(slot_values[blocks == block]).size == 1


class TestNaiveSketching:
    def test_deterministic(self, pair_factory):
        a, _ = pair_factory(n=100, nnz=20, overlap=0.5, seed=0)
        s1 = NaiveWeightedMinHash(m=16, n=100, seed=4, L=256).sketch(a)
        s2 = NaiveWeightedMinHash(m=16, n=100, seed=4, L=256).sketch(a)
        np.testing.assert_array_equal(s1.hashes, s2.hashes)

    def test_zero_vector(self):
        sketch = NaiveWeightedMinHash(m=8, n=10, L=32).sketch(SparseVector.zero())
        assert sketch.norm == 0.0
        assert np.all(np.isinf(sketch.hashes))

    def test_collision_rate_matches_weighted_jaccard(self, pair_factory):
        a, b = pair_factory(n=100, nnz=30, overlap=0.4, seed=2)
        expected = weighted_jaccard_similarity(a, b)
        rates = []
        for seed in range(12):
            sketcher = NaiveWeightedMinHash(m=400, n=100, seed=seed, L=512)
            rates.append(
                float(np.mean(sketcher.sketch(a).hashes == sketcher.sketch(b).hashes))
            )
        assert np.mean(rates) == pytest.approx(expected, rel=0.2)

    def test_estimator_accuracy(self, pair_factory):
        a, b = pair_factory(n=100, nnz=30, overlap=0.4, seed=3)
        truth = a.dot(b)
        estimates = [
            NaiveWeightedMinHash(m=300, n=100, seed=seed, L=1024).estimate_pair(a, b)
            for seed in range(15)
        ]
        scale = a.norm() * b.norm()
        assert abs(np.mean(estimates) - truth) / scale < 0.1


class TestFastMatchesNaive:
    """The fast record-process sketcher must be *statistically*
    indistinguishable from the literal expanded-vector implementation
    (they use different hash constructions, so sketches differ bitwise
    but all distributions must agree)."""

    def test_collision_rates_agree(self, pair_factory):
        a, b = pair_factory(n=150, nnz=40, overlap=0.3, seed=4)
        L = 1 << 10
        fast_rates, naive_rates = [], []
        for seed in range(12):
            fast = WeightedMinHash(m=300, seed=seed, L=L)
            naive = NaiveWeightedMinHash(m=300, n=150, seed=seed, L=L)
            fast_rates.append(
                float(np.mean(fast.sketch(a).hashes == fast.sketch(b).hashes))
            )
            naive_rates.append(
                float(np.mean(naive.sketch(a).hashes == naive.sketch(b).hashes))
            )
        assert np.mean(fast_rates) == pytest.approx(np.mean(naive_rates), abs=0.02)

    def test_estimates_agree_in_distribution(self, pair_factory):
        a, b = pair_factory(n=150, nnz=40, overlap=0.3, seed=5)
        truth = a.dot(b)
        L = 1 << 10
        fast_errors, naive_errors = [], []
        for seed in range(12):
            fast = WeightedMinHash(m=300, seed=seed, L=L)
            naive = NaiveWeightedMinHash(m=300, n=150, seed=seed, L=L)
            fast_errors.append(abs(fast.estimate_pair(a, b) - truth))
            naive_errors.append(abs(naive.estimate_pair(a, b) - truth))
        scale = a.norm() * b.norm()
        assert abs(np.mean(fast_errors) - np.mean(naive_errors)) / scale < 0.05

    def test_union_minima_distribution_agrees(self, pair_factory):
        # min(W_hash_a, W_hash_b) drives the M-tilde estimator; its mean
        # must agree between implementations.
        a, b = pair_factory(n=150, nnz=40, overlap=0.3, seed=6)
        L = 1 << 10
        fast_means, naive_means = [], []
        for seed in range(10):
            fast = WeightedMinHash(m=400, seed=seed, L=L)
            naive = NaiveWeightedMinHash(m=400, n=150, seed=seed, L=L)
            fast_means.append(
                float(
                    np.minimum(
                        fast.sketch(a).hashes, fast.sketch(b).hashes
                    ).mean()
                )
            )
            naive_means.append(
                float(
                    np.minimum(
                        naive.sketch(a).hashes, naive.sketch(b).hashes
                    ).mean()
                )
            )
        # The naive path hashes with a 2-wise CW family whose minimum
        # statistics deviate from the idealized uniform minimum by a
        # small constant factor (the classic limitation Lemma 1's
        # idealization papers over), so only coarse agreement holds.
        assert np.mean(fast_means) == pytest.approx(np.mean(naive_means), rel=0.35)

    def test_estimate_via_sketcher_method(self, pair_factory):
        a, b = pair_factory(n=100, nnz=20, overlap=0.5, seed=7)
        naive = NaiveWeightedMinHash(m=64, n=100, seed=0, L=256)
        direct = estimate_inner_product(naive.sketch(a), naive.sketch(b))
        assert naive.estimate(naive.sketch(a), naive.sketch(b)) == pytest.approx(direct)
