"""Weighted MinHash minima memo cache: bit-identity and bounds.

The cache's one invariant: it can change sketching *time*, never
sketching *bits*.  Cold, warm, disabled, private, or mid-eviction, the
scalar and batch paths must produce identical sketches; the LRU must
respect its byte budget; and eviction must keep accounting exact.
"""

from __future__ import annotations

import numpy as np

from repro.core.wmh import (
    MinimaCache,
    WeightedMinHash,
    shared_minima_cache,
    simulate_block_minima,
)
from repro.vectors.sparse import SparseMatrix, SparseVector


def make_corpus(rows: int = 25, seed: int = 0) -> list[SparseVector]:
    rng = np.random.default_rng(seed)
    vectors = []
    for _ in range(rows):
        nnz = int(rng.integers(4, 40))
        indices = rng.choice(300, size=nnz, replace=False)
        vectors.append(SparseVector(indices, rng.normal(size=nnz), n=300))
    return vectors


def bank_columns(sketcher, corpus):
    bank = sketcher.sketch_batch(SparseMatrix.from_rows(corpus))
    return {name: column.copy() for name, column in bank.columns.items()}


class TestCacheEquivalence:
    def test_cold_warm_disabled_and_private_agree(self):
        corpus = make_corpus()
        reference = bank_columns(
            WeightedMinHash(m=32, seed=9, L=1 << 16, cache_bytes=0), corpus
        )
        shared = WeightedMinHash(m=32, seed=9, L=1 << 16)
        shared_minima_cache().clear()
        cold = bank_columns(shared, corpus)
        warm = bank_columns(shared, corpus)  # served from the cache
        private = bank_columns(
            WeightedMinHash(m=32, seed=9, L=1 << 16, cache_bytes=1 << 20), corpus
        )
        for name in reference:
            np.testing.assert_array_equal(cold[name], reference[name])
            np.testing.assert_array_equal(warm[name], reference[name])
            np.testing.assert_array_equal(private[name], reference[name])

    def test_scalar_path_uses_and_fills_cache(self):
        corpus = make_corpus(rows=8, seed=3)
        sketcher = WeightedMinHash(m=16, seed=2, L=1 << 14, cache_bytes=1 << 20)
        cache = sketcher._cache
        first = [sketcher.sketch(v) for v in corpus]
        assert len(cache) > 0
        hits_before = cache.hits
        second = [sketcher.sketch(v) for v in corpus]
        assert cache.hits > hits_before
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.hashes, b.hashes)
            np.testing.assert_array_equal(a.values, b.values)

    def test_eviction_pressure_keeps_results_identical(self):
        corpus = make_corpus(rows=30, seed=5)
        # Budget of a handful of columns: constant eviction churn.
        tiny = WeightedMinHash(m=32, seed=9, L=1 << 16, cache_bytes=2048)
        reference = bank_columns(
            WeightedMinHash(m=32, seed=9, L=1 << 16, cache_bytes=0), corpus
        )
        for _ in range(2):
            got = bank_columns(tiny, corpus)
            for name in reference:
                np.testing.assert_array_equal(got[name], reference[name])
        assert tiny._cache.evictions > 0
        assert tiny._cache.nbytes <= 2048

    def test_cache_shared_across_same_seed_sketchers_only(self):
        cache = MinimaCache(1 << 20)
        a = simulate_block_minima(1, 8, np.array([5]), np.array([100]))
        cache.put((1, 8, 5, 100), np.ascontiguousarray(a[:, 0]))
        assert cache.get((1, 8, 5, 100)) is not None
        assert cache.get((2, 8, 5, 100)) is None  # different seed
        assert cache.get((1, 16, 5, 100)) is None  # different m


class TestCacheMechanics:
    def test_lru_evicts_least_recently_used(self):
        column = np.zeros(4)  # 32 bytes
        cache = MinimaCache(96)  # room for three columns
        for key in ("a", "b", "c"):
            cache.put((key,), column.copy())
        cache.get(("a",))  # refresh "a"; "b" becomes the LRU entry
        cache.put(("d",), column.copy())
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.get(("d",)) is not None

    def test_put_replaces_without_leaking_bytes(self):
        cache = MinimaCache(1 << 10)
        cache.put(("k",), np.zeros(8))
        cache.put(("k",), np.zeros(16))
        assert len(cache) == 1
        assert cache.nbytes == 16 * 8

    def test_put_many_accounts_and_evicts(self):
        cache = MinimaCache(10 * 8 * 4)  # ten 4-double columns
        block = np.arange(48.0).reshape(12, 4)
        cache.put_many([(i,) for i in range(12)], block)
        assert cache.nbytes <= cache.max_bytes
        assert cache.evictions == 2
        assert cache.get((0,)) is None  # oldest rows evicted first
        np.testing.assert_array_equal(cache.get((11,)), block[11])

    def test_zero_budget_disables_storage(self):
        cache = MinimaCache(0)
        cache.put(("k",), np.zeros(4))
        cache.put_many([("j",)], np.zeros((1, 4)))
        assert len(cache) == 0
        assert not cache.enabled

    def test_clear_resets_counters_payload(self):
        cache = MinimaCache(1 << 10)
        cache.put(("k",), np.zeros(4))
        cache.clear()
        assert len(cache) == 0
        assert cache.nbytes == 0
        stats = cache.stats()
        assert stats["entries"] == 0 and stats["bytes"] == 0

    def test_sketcher_pickles_without_cache_payload(self):
        import pickle

        sketcher = WeightedMinHash(m=16, seed=4, L=1 << 14)
        shared_minima_cache().clear()
        [sketcher.sketch(v) for v in make_corpus(rows=5)]
        assert len(shared_minima_cache()) > 0
        payload = pickle.dumps(sketcher)
        # The pickle must stay configuration-sized even with a hot
        # shared cache (a 256 MB cache must never ride along to
        # parallel workers).
        assert len(payload) < 4096
        clone = pickle.loads(payload)
        assert (clone.m, clone.seed, clone.L) == (16, 4, 1 << 14)
        assert clone._cache is shared_minima_cache()


class TestCacheMemoryBound:
    def test_put_many_entries_own_their_buffers(self):
        cache = MinimaCache(1 << 20)
        block = np.arange(64.0).reshape(16, 4)
        cache.put_many([(i,) for i in range(16)], block)
        entry = cache.get((3,))
        # Entries must not alias the bulk-insert buffer (a surviving
        # view would pin the whole batch allocation past eviction,
        # breaking the max_bytes bound).
        assert entry.base is None
        block[3] = -1.0
        np.testing.assert_array_equal(cache.get((3,)), [12.0, 13.0, 14.0, 15.0])
