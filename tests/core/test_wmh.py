"""Tests for the fast Weighted MinHash sketcher (Algorithm 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rounding import round_vector
from repro.core.wmh import DEFAULT_L, WeightedMinHash, simulate_block_minima
from repro.vectors.ops import weighted_jaccard_similarity
from repro.vectors.sparse import SparseVector


class TestConstruction:
    def test_rejects_bad_m(self):
        with pytest.raises(ValueError, match="m must be positive"):
            WeightedMinHash(m=0)

    def test_rejects_bad_L(self):
        with pytest.raises(ValueError, match="L must be >= 1"):
            WeightedMinHash(m=4, L=0)

    def test_from_storage_applies_sampling_cost(self):
        # 1.5 words per sample: 300 words -> 200 samples.
        sketcher = WeightedMinHash.from_storage(300, seed=1)
        assert sketcher.m == 200
        assert sketcher.L == DEFAULT_L

    def test_from_storage_floor_at_one(self):
        assert WeightedMinHash.from_storage(1).m == 1

    def test_storage_words(self):
        assert WeightedMinHash(m=100).storage_words() == pytest.approx(151.0)


class TestSketchBasics:
    def test_deterministic(self, small_pair):
        a, _ = small_pair
        first = WeightedMinHash(m=32, seed=9, L=1 << 16).sketch(a)
        second = WeightedMinHash(m=32, seed=9, L=1 << 16).sketch(a)
        np.testing.assert_array_equal(first.hashes, second.hashes)
        np.testing.assert_array_equal(first.values, second.values)

    def test_different_seeds_differ(self, small_pair):
        a, _ = small_pair
        first = WeightedMinHash(m=32, seed=1, L=1 << 16).sketch(a)
        second = WeightedMinHash(m=32, seed=2, L=1 << 16).sketch(a)
        assert not np.array_equal(first.hashes, second.hashes)

    def test_shapes_and_metadata(self, small_pair):
        a, _ = small_pair
        sketch = WeightedMinHash(m=64, seed=0, L=1 << 16).sketch(a)
        assert sketch.hashes.shape == (64,)
        assert sketch.values.shape == (64,)
        assert sketch.m == 64
        assert sketch.norm == pytest.approx(a.norm())

    def test_hashes_in_unit_interval(self, small_pair):
        a, _ = small_pair
        sketch = WeightedMinHash(m=64, seed=0, L=1 << 16).sketch(a)
        assert sketch.hashes.min() > 0.0
        assert sketch.hashes.max() < 1.0

    def test_values_come_from_rounded_vector(self, small_pair):
        a, _ = small_pair
        L = 1 << 16
        sketch = WeightedMinHash(m=64, seed=0, L=L).sketch(a)
        rounded_values = set(round_vector(a, L).values.tolist())
        assert set(sketch.values.tolist()) <= rounded_values

    def test_zero_vector_sketch(self):
        sketch = WeightedMinHash(m=8, seed=0).sketch(SparseVector.zero())
        assert sketch.norm == 0.0
        assert np.all(np.isinf(sketch.hashes))
        assert np.all(sketch.values == 0.0)

    def test_scale_invariance_of_hashes_and_values(self, small_pair):
        # Algorithm 3 sketches a/||a||, so sketches of a and 1000a
        # differ only in the stored norm.
        a, _ = small_pair
        sketcher = WeightedMinHash(m=48, seed=3, L=1 << 18)
        base = sketcher.sketch(a)
        scaled = sketcher.sketch(a.scaled(1000.0))
        np.testing.assert_array_equal(base.hashes, scaled.hashes)
        np.testing.assert_array_equal(base.values, scaled.values)
        assert scaled.norm == pytest.approx(1000.0 * base.norm)

    def test_identical_vectors_fully_collide(self, small_pair):
        a, _ = small_pair
        sketcher = WeightedMinHash(m=64, seed=5, L=1 << 16)
        np.testing.assert_array_equal(
            sketcher.sketch(a).hashes, sketcher.sketch(a).hashes
        )

    def test_sketch_rounded_requires_matching_L(self, small_pair):
        a, _ = small_pair
        rounded = round_vector(a, 1 << 10)
        with pytest.raises(ValueError, match="L="):
            WeightedMinHash(m=8, L=1 << 12).sketch_rounded(rounded)


class TestRecordSimulation:
    def test_minimum_of_k_uniforms_distribution(self):
        # For a single block with k slots, the simulated minimum must be
        # distributed as the min of k uniforms: mean 1/(k+1).
        for k in (1, 4, 64):
            minima = simulate_block_minima(
                seed=0, m=20_000, block_ids=np.array([7]), counts=np.array([k])
            ).ravel()
            assert minima.mean() == pytest.approx(1.0 / (k + 1), rel=0.05)

    def test_k_equals_one_uses_first_record_only(self):
        minima = simulate_block_minima(
            seed=3, m=100, block_ids=np.array([1]), counts=np.array([1])
        )
        again = simulate_block_minima(
            seed=3, m=100, block_ids=np.array([1]), counts=np.array([1])
        )
        np.testing.assert_array_equal(minima, again)

    def test_nested_prefix_consistency(self):
        # The min over a longer prefix is <= the min over a shorter one,
        # and they agree exactly when no record lands in between.
        short = simulate_block_minima(
            seed=1, m=500, block_ids=np.array([42]), counts=np.array([100])
        ).ravel()
        long = simulate_block_minima(
            seed=1, m=500, block_ids=np.array([42]), counts=np.array([10_000])
        ).ravel()
        assert np.all(long <= short + 1e-18)
        # Agreement probability should be about 100/10000 = 1% ... but
        # conditioned on the record structure it is exactly the fraction
        # of repetitions whose overall argmin falls in the first 100.
        agreement = float(np.mean(long == short))
        assert agreement == pytest.approx(0.01, abs=0.02)

    def test_blocks_are_independent(self):
        minima = simulate_block_minima(
            seed=2,
            m=4_000,
            block_ids=np.array([1, 2]),
            counts=np.array([50, 50]),
        )
        correlation = np.corrcoef(minima[:, 0], minima[:, 1])[0, 1]
        assert abs(correlation) < 0.05

    def test_rejects_zero_counts(self):
        with pytest.raises(ValueError, match=">= 1"):
            simulate_block_minima(
                seed=0, m=4, block_ids=np.array([1]), counts=np.array([0])
            )


class TestCollisionStatistics:
    def test_collision_rate_matches_weighted_jaccard(self, pair_factory):
        # Fact 5 claim 1, aggregated over seeds for tight confidence.
        a, b = pair_factory(n=300, nnz=60, overlap=0.3, seed=3)
        expected = weighted_jaccard_similarity(a, b)
        rates = []
        for seed in range(20):
            sketcher = WeightedMinHash(m=500, seed=seed, L=1 << 16)
            rates.append(
                float(
                    np.mean(
                        sketcher.sketch(a).hashes == sketcher.sketch(b).hashes
                    )
                )
            )
        assert np.mean(rates) == pytest.approx(expected, rel=0.15)

    def test_disjoint_vectors_never_collide(self):
        a = SparseVector(np.arange(0, 50), np.ones(50))
        b = SparseVector(np.arange(100, 150), np.ones(50))
        sketcher = WeightedMinHash(m=300, seed=0, L=1 << 14)
        matches = sketcher.sketch(a).hashes == sketcher.sketch(b).hashes
        assert matches.sum() == 0

    def test_matched_values_are_consistent(self, pair_factory):
        # Fact 5 claim 2: on a hash match, stored values must be the
        # rounded entries of the *same* index in both vectors.
        a, b = pair_factory(n=200, nnz=80, overlap=0.5, seed=4)
        L = 1 << 16
        rounded_a = round_vector(a, L)
        rounded_b = round_vector(b, L)

        def indices_for(rounded, value):
            return {
                int(i)
                for i, v in zip(rounded.indices, rounded.values)
                if v == value
            }

        sketcher = WeightedMinHash(m=400, seed=6, L=L)
        sketch_a = sketcher.sketch(a)
        sketch_b = sketcher.sketch(b)
        matches = sketch_a.hashes == sketch_b.hashes
        assert matches.any()
        for position in np.flatnonzero(matches):
            candidates_a = indices_for(rounded_a, sketch_a.values[position])
            candidates_b = indices_for(rounded_b, sketch_b.values[position])
            # The matched sample must be explainable by a shared index.
            assert candidates_a & candidates_b


class TestGroupedSimulation:
    """The fused grouped simulator against the scalar reference."""

    def test_matches_scalar_per_query(self):
        from repro.core.wmh import simulate_block_minima_grouped

        rng = np.random.default_rng(0)
        blocks = np.sort(rng.choice(500, size=12, replace=False))
        indptr = [0]
        counts: list[int] = []
        for _ in blocks:
            ks = sorted(set(rng.integers(1, 10_000, size=3).tolist()))
            counts.extend(ks)
            indptr.append(len(counts))
        grouped = simulate_block_minima_grouped(
            11, 9, blocks, np.array(indptr), np.array(counts)
        )
        column = 0
        for j, block in enumerate(blocks):
            for k in counts[indptr[j] : indptr[j + 1]]:
                reference = simulate_block_minima(
                    11, 9, np.array([block]), np.array([k])
                )
                np.testing.assert_array_equal(grouped[:, column], reference[:, 0])
                column += 1

    def test_rejects_unsorted_counts_within_block(self):
        from repro.core.wmh import simulate_block_minima_grouped

        with pytest.raises(ValueError, match="ascending"):
            simulate_block_minima_grouped(
                0, 4, np.array([3]), np.array([0, 2]), np.array([9, 5])
            )

    def test_descending_across_block_boundary_allowed(self):
        from repro.core.wmh import simulate_block_minima_grouped

        result = simulate_block_minima_grouped(
            0, 4, np.array([3, 7]), np.array([0, 1, 2]), np.array([9, 5])
        )
        assert result.shape == (4, 2)


class TestBatchZeroRows:
    def test_explicit_zero_rows_get_empty_sentinel(self):
        from repro.vectors.sparse import SparseMatrix

        # The CSR constructor, unlike SparseVector, keeps explicit
        # zeros; an all-zero row is the zero vector and must sketch to
        # the empty sentinel, not crash the rounding.
        matrix = SparseMatrix(
            np.array([0, 2, 4]),
            np.array([1, 2, 3, 4]),
            np.array([0.0, 0.0, 1.0, 2.0]),
        )
        sketcher = WeightedMinHash(m=8, seed=1, L=1 << 12, cache_bytes=0)
        bank = sketcher.sketch_batch(matrix)
        zero_row = sketcher.bank_row(bank, 0)
        assert np.all(np.isinf(zero_row.hashes))
        assert np.all(zero_row.values == 0.0)
        assert zero_row.norm == 0.0
        # Mixed rows (explicit zero next to real entries) must match
        # the scalar path, which drops the zeros in SparseVector.
        scalar = sketcher.sketch(matrix.row(1))
        live_row = sketcher.bank_row(bank, 1)
        np.testing.assert_array_equal(live_row.hashes, scalar.hashes)
        np.testing.assert_array_equal(live_row.values, scalar.values)
