"""Tests for the Algorithm 5 estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SketchMismatchError
from repro.core.estimator import (
    estimate_inner_product,
    estimate_weighted_union,
    estimate_weighted_union_from_jaccard,
)
from repro.core.theory import wmh_bound
from repro.core.wmh import WeightedMinHash
from repro.vectors.sparse import SparseVector


class TestCompatibilityChecks:
    def test_mismatched_m(self, small_pair):
        a, b = small_pair
        sketch_a = WeightedMinHash(m=16, seed=0).sketch(a)
        sketch_b = WeightedMinHash(m=32, seed=0).sketch(b)
        with pytest.raises(SketchMismatchError, match="sample counts"):
            estimate_inner_product(sketch_a, sketch_b)

    def test_mismatched_seed(self, small_pair):
        a, b = small_pair
        sketch_a = WeightedMinHash(m=16, seed=0).sketch(a)
        sketch_b = WeightedMinHash(m=16, seed=1).sketch(b)
        with pytest.raises(SketchMismatchError, match="seeds"):
            estimate_inner_product(sketch_a, sketch_b)

    def test_mismatched_L(self, small_pair):
        a, b = small_pair
        sketch_a = WeightedMinHash(m=16, seed=0, L=1 << 10).sketch(a)
        sketch_b = WeightedMinHash(m=16, seed=0, L=1 << 11).sketch(b)
        with pytest.raises(SketchMismatchError, match="discretization"):
            estimate_inner_product(sketch_a, sketch_b)

    def test_unknown_union_variant(self, small_pair):
        a, b = small_pair
        sketcher = WeightedMinHash(m=16, seed=0)
        with pytest.raises(ValueError, match="weighted_union"):
            estimate_inner_product(
                sketcher.sketch(a), sketcher.sketch(b), weighted_union="bogus"
            )


class TestDegenerateInputs:
    def test_zero_vector_estimates_zero(self, small_pair):
        a, _ = small_pair
        sketcher = WeightedMinHash(m=16, seed=0)
        estimate = estimate_inner_product(
            sketcher.sketch(a), sketcher.sketch(SparseVector.zero())
        )
        assert estimate == 0.0

    def test_both_zero(self):
        sketcher = WeightedMinHash(m=16, seed=0)
        zero_sketch = sketcher.sketch(SparseVector.zero())
        assert estimate_inner_product(zero_sketch, zero_sketch) == 0.0

    def test_disjoint_supports_estimate_near_zero(self):
        a = SparseVector(np.arange(50), np.ones(50))
        b = SparseVector(np.arange(100, 150), np.ones(50))
        sketcher = WeightedMinHash(m=200, seed=1, L=1 << 14)
        estimate = estimate_inner_product(sketcher.sketch(a), sketcher.sketch(b))
        assert estimate == 0.0  # no collisions -> empty sum


class TestAccuracy:
    def test_identical_vectors_recover_squared_norm(self, small_pair):
        a, _ = small_pair
        sketcher = WeightedMinHash(m=256, seed=2, L=1 << 20)
        estimate = estimate_inner_product(sketcher.sketch(a), sketcher.sketch(a))
        # Every repetition matches; the only noise is the union estimate.
        assert estimate == pytest.approx(a.norm() ** 2, rel=0.15)

    def test_mean_estimate_is_unbiased(self, pair_factory):
        a, b = pair_factory(n=500, nnz=100, overlap=0.4, seed=5)
        truth = a.dot(b)
        estimates = [
            estimate_inner_product(
                WeightedMinHash(m=200, seed=seed, L=1 << 18).sketch(a),
                WeightedMinHash(m=200, seed=seed, L=1 << 18).sketch(b),
            )
            for seed in range(60)
        ]
        standard_error = np.std(estimates) / np.sqrt(len(estimates))
        assert abs(np.mean(estimates) - truth) < 4.0 * standard_error + 0.02 * abs(truth)

    def test_error_shrinks_with_m(self, pair_factory):
        a, b = pair_factory(n=500, nnz=100, overlap=0.4, seed=6)
        truth = a.dot(b)

        def mean_error(m: int) -> float:
            errors = []
            for seed in range(25):
                sketcher = WeightedMinHash(m=m, seed=seed, L=1 << 18)
                estimate = estimate_inner_product(
                    sketcher.sketch(a), sketcher.sketch(b)
                )
                errors.append(abs(estimate - truth))
            return float(np.mean(errors))

        assert mean_error(512) < mean_error(32)

    def test_theorem2_bound_holds_with_high_probability(self, pair_factory):
        # Theorem 2 at constant failure probability: with m samples,
        # error <= eps * max(...) should hold for most seeds (we allow a
        # generous constant of 3 and require >= 80% success).
        a, b = pair_factory(n=500, nnz=100, overlap=0.3, seed=7)
        truth = a.dot(b)
        m = 256
        bound = 3.0 * wmh_bound(a, b, m)
        successes = 0
        for seed in range(30):
            sketcher = WeightedMinHash(m=m, seed=seed, L=1 << 18)
            estimate = estimate_inner_product(sketcher.sketch(a), sketcher.sketch(b))
            successes += abs(estimate - truth) <= bound
        assert successes >= 24

    def test_scale_covariance(self, pair_factory):
        # estimate(a, c*b) should track c * estimate(a, b) through the
        # norm bookkeeping (hashes/values are identical).
        a, b = pair_factory(n=300, nnz=60, overlap=0.5, seed=8)
        sketcher = WeightedMinHash(m=128, seed=3, L=1 << 16)
        base = estimate_inner_product(sketcher.sketch(a), sketcher.sketch(b))
        scaled = estimate_inner_product(
            sketcher.sketch(a), sketcher.sketch(b.scaled(50.0))
        )
        assert scaled == pytest.approx(50.0 * base, rel=1e-9)

    def test_jaccard_variant_agrees_with_fm(self, pair_factory):
        a, b = pair_factory(n=500, nnz=150, overlap=0.5, seed=9)
        truth = a.dot(b)
        fm_errors, jaccard_errors = [], []
        for seed in range(20):
            sketcher = WeightedMinHash(m=300, seed=seed, L=1 << 18)
            sketch_a, sketch_b = sketcher.sketch(a), sketcher.sketch(b)
            fm_errors.append(
                abs(estimate_inner_product(sketch_a, sketch_b, "fm") - truth)
            )
            jaccard_errors.append(
                abs(estimate_inner_product(sketch_a, sketch_b, "jaccard") - truth)
            )
        scale = a.norm() * b.norm()
        assert np.mean(fm_errors) / scale < 0.2
        assert np.mean(jaccard_errors) / scale < 0.2


class TestWeightedUnionEstimators:
    def test_fm_union_estimate_accuracy(self, pair_factory):
        from repro.core.rounding import round_vector

        a, b = pair_factory(n=400, nnz=100, overlap=0.3, seed=10)
        L = 1 << 16
        rounded_a = round_vector(a, L)
        rounded_b = round_vector(b, L)
        weights_a = dict(zip(rounded_a.indices.tolist(), (rounded_a.values**2).tolist()))
        weights_b = dict(zip(rounded_b.indices.tolist(), (rounded_b.values**2).tolist()))
        exact = sum(
            max(weights_a.get(k, 0.0), weights_b.get(k, 0.0))
            for k in set(weights_a) | set(weights_b)
        )
        estimates = []
        for seed in range(15):
            sketcher = WeightedMinHash(m=400, seed=seed, L=L)
            estimates.append(
                estimate_weighted_union(sketcher.sketch(a), sketcher.sketch(b))
            )
        assert np.mean(estimates) == pytest.approx(exact, rel=0.1)

    def test_jaccard_identity_endpoints(self):
        # J = 1 (identical unit vectors) -> M = 1; J = 0 -> M = 2.
        assert estimate_weighted_union_from_jaccard(1.0) == pytest.approx(1.0)
        assert estimate_weighted_union_from_jaccard(0.0) == pytest.approx(2.0)

    def test_jaccard_identity_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="match fraction"):
            estimate_weighted_union_from_jaccard(1.5)

    def test_fm_union_rejects_empty_sketches(self):
        sketcher = WeightedMinHash(m=8, seed=0)
        zero = sketcher.sketch(SparseVector.zero())
        with pytest.raises(ValueError, match="empty"):
            estimate_weighted_union(zero, zero)
