"""Tests for the Table 1 bound formulas."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.theory import (
    compare_bounds,
    epsilon_for_samples,
    linear_sketch_bound,
    minhash_bound,
    samples_for_epsilon,
    wmh_advantage,
    wmh_bound,
)
from repro.vectors.sparse import SparseVector


class TestEpsilonConversions:
    def test_epsilon_for_samples(self):
        assert epsilon_for_samples(100) == pytest.approx(0.1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            epsilon_for_samples(0)

    def test_samples_for_epsilon(self):
        assert samples_for_epsilon(0.1) == 100

    def test_rejects_out_of_range_epsilon(self):
        with pytest.raises(ValueError):
            samples_for_epsilon(0.0)
        with pytest.raises(ValueError):
            samples_for_epsilon(2.0)

    def test_roundtrip_upper_bound(self):
        # ceil() of 1/eps^2 may land one above m due to float rounding.
        for m in (4, 100, 1234):
            assert m <= samples_for_epsilon(epsilon_for_samples(m)) <= m + 1


class TestBoundFormulas:
    def test_linear_bound_manual(self):
        a = SparseVector([1, 2], [3.0, 4.0])  # norm 5
        b = SparseVector([1], [2.0])  # norm 2
        assert linear_sketch_bound(a, b, 100) == pytest.approx(0.1 * 10.0)

    def test_wmh_bound_manual(self):
        # a = (3, 4) on {1, 2}; b = (2) on {1}. I = {1}:
        # ||a_I|| = 3, ||b_I|| = 2 -> max(3*2, 5*2) = 10 ... careful:
        # max(||a_I|| ||b||, ||a|| ||b_I||) = max(3*2, 5*2) = 10.
        a = SparseVector([1, 2], [3.0, 4.0])
        b = SparseVector([1], [2.0])
        assert wmh_bound(a, b, 100) == pytest.approx(0.1 * 10.0)

    def test_wmh_never_exceeds_linear(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            a = SparseVector(rng.permutation(200)[:50], rng.normal(size=50))
            b = SparseVector(rng.permutation(200)[:50], rng.normal(size=50))
            assert wmh_bound(a, b, 64) <= linear_sketch_bound(a, b, 64) + 1e-12

    def test_wmh_bound_zero_for_disjoint(self):
        a = SparseVector([1], [5.0])
        b = SparseVector([2], [5.0])
        assert wmh_bound(a, b, 16) == 0.0

    def test_minhash_bound_binary_matches_wmh(self):
        # Section 2: for binary vectors the two bounds coincide.
        a = SparseVector([1, 2, 3, 4], np.ones(4))
        b = SparseVector([3, 4, 5], np.ones(3))
        assert minhash_bound(a, b, 25) == pytest.approx(wmh_bound(a, b, 25))

    def test_minhash_bound_blows_up_with_outliers(self):
        base_a = SparseVector([1, 2, 3], [1.0, 1.0, 1.0])
        base_b = SparseVector([2, 3, 4], [1.0, 1.0, 1.0])
        heavy_a = SparseVector([1, 2, 3], [30.0, 1.0, 1.0])
        heavy_b = SparseVector([2, 3, 4], [1.0, 1.0, 30.0])
        assert minhash_bound(heavy_a, heavy_b, 25) > 100 * minhash_bound(
            base_a, base_b, 25
        )

    def test_bounds_decrease_with_m(self):
        a = SparseVector([1, 2], [1.0, 2.0])
        b = SparseVector([2, 3], [1.0, 2.0])
        assert wmh_bound(a, b, 400) < wmh_bound(a, b, 100)
        assert linear_sketch_bound(a, b, 400) < linear_sketch_bound(a, b, 100)


class TestAdvantage:
    def test_advantage_at_least_one(self):
        rng = np.random.default_rng(1)
        for trial in range(10):
            a = SparseVector(rng.permutation(100)[:30], rng.normal(size=30))
            b = SparseVector(rng.permutation(100)[:30], rng.normal(size=30))
            assert wmh_advantage(a, b) >= 1.0 - 1e-12

    def test_advantage_disjoint_is_infinite(self):
        a = SparseVector([1], [1.0])
        b = SparseVector([2], [1.0])
        assert math.isinf(wmh_advantage(a, b))

    def test_advantage_full_overlap_is_one(self):
        a = SparseVector([1, 2], [1.0, 2.0])
        assert wmh_advantage(a, a) == pytest.approx(1.0)

    def test_advantage_tracks_sqrt_gamma(self):
        # "Typical case": a gamma fraction of mass overlaps -> advantage
        # about 1/sqrt(gamma) (paper, Section 1.1).
        n, nnz = 10_000, 1_000
        gamma = 0.04
        rng = np.random.default_rng(2)
        shared = int(gamma * nnz)
        permutation = rng.permutation(n)
        idx_a = np.concatenate([permutation[:shared], permutation[shared : shared + nnz - shared]])
        idx_b = np.concatenate(
            [permutation[:shared], permutation[shared + nnz - shared : shared + 2 * (nnz - shared)]]
        )
        a = SparseVector(idx_a, np.ones(nnz))
        b = SparseVector(idx_b, np.ones(nnz))
        assert wmh_advantage(a, b) == pytest.approx(1.0 / math.sqrt(gamma), rel=0.05)


class TestCompareBounds:
    def test_fields_consistent(self):
        a = SparseVector([1, 2], [1.0, 1.0])
        b = SparseVector([2, 3], [1.0, 1.0])
        comparison = compare_bounds(a, b, 49)
        assert comparison.linear == pytest.approx(linear_sketch_bound(a, b, 49))
        assert comparison.minhash == pytest.approx(minhash_bound(a, b, 49))
        assert comparison.wmh == pytest.approx(wmh_bound(a, b, 49))
        assert comparison.m == 49

    def test_ratio_property(self):
        a = SparseVector([1, 2], [1.0, 1.0])
        b = SparseVector([2, 3], [1.0, 1.0])
        comparison = compare_bounds(a, b, 49)
        assert comparison.wmh_vs_linear == pytest.approx(
            comparison.linear / comparison.wmh
        )

    def test_ratio_disjoint(self):
        comparison = compare_bounds(
            SparseVector([1], [1.0]), SparseVector([2], [1.0]), 4
        )
        assert math.isinf(comparison.wmh_vs_linear)
