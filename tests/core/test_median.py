"""Tests for median-of-t boosting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SketchMismatchError
from repro.core.median import MedianBoosted, MedianSketch
from repro.core.wmh import WeightedMinHash
from repro.sketches.minhash import MinHash


class TestConstruction:
    def test_rejects_bad_t(self):
        with pytest.raises(ValueError, match="t must be positive"):
            MedianBoosted(lambda seed: WeightedMinHash(m=4, seed=seed), t=0)

    def test_name_reflects_inner_method(self):
        boosted = MedianBoosted(lambda seed: WeightedMinHash(m=4, seed=seed), t=3)
        assert boosted.name == "median3(WMH)"

    def test_parts_have_distinct_seeds(self, small_pair):
        a, _ = small_pair
        boosted = MedianBoosted(
            lambda seed: WeightedMinHash(m=16, seed=seed, L=1 << 14), t=3
        )
        sketch = boosted.sketch(a)
        hashes = [tuple(part.hashes.tolist()) for part in sketch.parts]
        assert len(set(hashes)) == 3

    def test_from_storage_is_disabled(self):
        with pytest.raises(NotImplementedError):
            MedianBoosted.from_storage(100)

    def test_split_storage_divides_budget(self):
        boosted = MedianBoosted.split_storage(WeightedMinHash, words=300, t=3)
        # Each part gets ~100 words -> 66 samples each.
        assert all(part.m == 66 for part in boosted._parts)

    def test_generic_over_sketchers(self, small_pair):
        a, b = small_pair
        boosted = MedianBoosted(lambda seed: MinHash(m=64, seed=seed), t=3)
        estimate = boosted.estimate(boosted.sketch(a), boosted.sketch(b))
        assert np.isfinite(estimate)


class TestEstimation:
    def test_median_of_singleton_equals_inner(self, small_pair):
        a, b = small_pair
        inner = WeightedMinHash(m=64, seed=1_000_003 + 1, L=1 << 16)
        boosted = MedianBoosted(
            lambda seed: WeightedMinHash(m=64, seed=seed, L=1 << 16), t=1, seed=1
        )
        assert boosted.estimate(
            boosted.sketch(a), boosted.sketch(b)
        ) == pytest.approx(inner.estimate(inner.sketch(a), inner.sketch(b)))

    def test_mismatched_t_rejected(self, small_pair):
        a, b = small_pair
        boosted3 = MedianBoosted(lambda s: WeightedMinHash(m=8, seed=s), t=3)
        boosted5 = MedianBoosted(lambda s: WeightedMinHash(m=8, seed=s), t=5)
        with pytest.raises(SketchMismatchError):
            boosted3.estimate(boosted3.sketch(a), boosted5.sketch(b))

    def test_median_sketch_reports_t(self, small_pair):
        a, _ = small_pair
        boosted = MedianBoosted(lambda s: WeightedMinHash(m=8, seed=s), t=5)
        assert boosted.sketch(a).t == 5

    def test_storage_words_sums_parts(self):
        boosted = MedianBoosted(lambda s: WeightedMinHash(m=10, seed=s), t=4)
        assert boosted.storage_words() == pytest.approx(4 * (15.0 + 1.0))

    def test_boosting_reduces_failure_rate(self, pair_factory):
        # On a heavy-tailed workload, median-of-5 must fail (exceed a
        # fixed error threshold) less often than a single sketch of the
        # same per-part size.
        a, b = pair_factory(n=400, nnz=100, overlap=0.2, seed=11, values="outliers")
        truth = a.dot(b)
        scale = a.norm() * b.norm()
        threshold = 0.08 * scale

        def failure_rate(t: int) -> float:
            failures = 0
            runs = 30
            for trial in range(runs):
                boosted = MedianBoosted(
                    lambda seed: WeightedMinHash(m=96, seed=seed, L=1 << 18),
                    t=t,
                    seed=trial,
                )
                estimate = boosted.estimate(boosted.sketch(a), boosted.sketch(b))
                failures += abs(estimate - truth) > threshold
            return failures / runs

        assert failure_rate(5) <= failure_rate(1) + 0.05


class TestMedianSketchDataclass:
    def test_parts_tuple(self):
        sketch = MedianSketch(parts=(1, 2, 3))
        assert sketch.t == 3
