"""Tests for sketch serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.wmh import WeightedMinHash
from repro.io.serialize import (
    SerializationError,
    pack_bank,
    pack_shard,
    pack_sketch,
    packed_size_words,
    unpack_bank,
    unpack_shard,
    unpack_sketch,
)
from repro.sketches.countsketch import CountSketch
from repro.sketches.icws import ICWS
from repro.sketches.jl import JohnsonLindenstrauss
from repro.sketches.bbit import BbitMinHash
from repro.sketches.kmv import KMinimumValues
from repro.sketches.minhash import MinHash
from repro.sketches.priority import PrioritySampling
from repro.vectors.sparse import SparseVector

SKETCHERS = {
    "WMH": lambda: WeightedMinHash(m=64, seed=3, L=1 << 16),
    "MH": lambda: MinHash(m=64, seed=3),
    "KMV": lambda: KMinimumValues(k=32, seed=3),
    "JL": lambda: JohnsonLindenstrauss(m=64, seed=3),
    "CS": lambda: CountSketch(width=32, seed=3),
    "ICWS": lambda: ICWS(m=64, seed=3),
    "PS": lambda: PrioritySampling(k=32, seed=3),
    "bbit": lambda: BbitMinHash(m=64, b=2, seed=3),
}


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(SKETCHERS))
    def test_estimates_survive_round_trip(self, name, small_pair):
        a, b = small_pair
        sketcher = SKETCHERS[name]()
        sketch_a, sketch_b = sketcher.sketch(a), sketcher.sketch(b)
        direct = sketcher.estimate(sketch_a, sketch_b)
        restored_a = unpack_sketch(pack_sketch(sketch_a))
        restored_b = unpack_sketch(pack_sketch(sketch_b))
        round_tripped = sketcher.estimate(restored_a, restored_b)
        # Hash quantization to 32 bits perturbs only the FM union term.
        assert round_tripped == pytest.approx(direct, rel=1e-5, abs=1e-8)

    @pytest.mark.parametrize("name", sorted(SKETCHERS))
    def test_mixed_round_trip_preserves_matching(self, name, small_pair):
        # A freshly computed sketch must remain comparable with a
        # round-tripped one ONLY for methods whose comparison is
        # equality-free (linear sketches); for hash-equality methods
        # both sides must be round-tripped.  Here we check the
        # both-round-tripped contract, which is the deployment reality
        # (the index stores packed sketches).
        a, b = small_pair
        sketcher = SKETCHERS[name]()
        packed_twice_a = unpack_sketch(pack_sketch(sketcher.sketch(a)))
        packed_twice_b = unpack_sketch(pack_sketch(sketcher.sketch(b)))
        estimate = sketcher.estimate(packed_twice_a, packed_twice_b)
        assert np.isfinite(estimate)

    def test_wmh_match_pattern_preserved(self, small_pair):
        a, b = small_pair
        sketcher = WeightedMinHash(m=256, seed=5, L=1 << 16)
        sketch_a, sketch_b = sketcher.sketch(a), sketcher.sketch(b)
        original_matches = sketch_a.hashes == sketch_b.hashes
        restored_a = unpack_sketch(pack_sketch(sketch_a))
        restored_b = unpack_sketch(pack_sketch(sketch_b))
        restored_matches = restored_a.hashes == restored_b.hashes
        np.testing.assert_array_equal(original_matches, restored_matches)

    def test_zero_vector_sentinel_round_trip(self):
        sketcher = WeightedMinHash(m=8, seed=0)
        restored = unpack_sketch(pack_sketch(sketcher.sketch(SparseVector.zero())))
        assert restored.norm == 0.0
        assert np.all(np.isinf(restored.hashes))

    def test_kmv_exact_flag_round_trip(self):
        vector = SparseVector([1, 2], [1.0, 2.0])
        sketcher = KMinimumValues(k=16, seed=0)
        restored = unpack_sketch(pack_sketch(sketcher.sketch(vector)))
        assert restored.exact
        assert restored.hashes.size == 2

    def test_metadata_round_trip(self, small_pair):
        a, _ = small_pair
        sketch = WeightedMinHash(m=32, seed=17, L=1 << 20).sketch(a)
        restored = unpack_sketch(pack_sketch(sketch))
        assert restored.m == 32
        assert restored.seed == 17
        assert restored.L == 1 << 20
        assert restored.norm == pytest.approx(sketch.norm)


class TestBankRoundTrip:
    """Banks serialize losslessly: estimate_many must be bit-identical."""

    @pytest.mark.parametrize("name", sorted(SKETCHERS))
    def test_estimate_many_identical_after_round_trip(self, name, small_pair):
        a, b = small_pair
        sketcher = SKETCHERS[name]()
        vectors = [a, b, a.scaled(0.5)]
        bank = sketcher.sketch_batch(vectors)
        query = sketcher.sketch(a)
        restored = unpack_bank(pack_bank(bank))
        assert restored.kind == bank.kind
        assert dict(restored.params) == dict(bank.params)
        assert len(restored) == len(bank)
        direct = sketcher.estimate_many(query, bank)
        after = sketcher.estimate_many(query, restored)
        # Object banks nest the per-sketch wire format, whose 32-bit
        # hash quantization perturbs estimates slightly; columnar banks
        # round-trip raw float64 and must match exactly.
        if bank.is_object_bank():
            np.testing.assert_allclose(after, direct, rtol=1e-5, atol=1e-8)
        else:
            np.testing.assert_array_equal(after, direct)

    def test_round_trip_idempotent(self, small_pair):
        a, b = small_pair
        sketcher = SKETCHERS["WMH"]()
        payload = pack_bank(sketcher.sketch_batch([a, b]))
        assert pack_bank(unpack_bank(payload)) == payload

    def test_storage_words_preserved(self, small_pair):
        a, b = small_pair
        sketcher = SKETCHERS["MH"]()
        bank = sketcher.sketch_batch([a, b])
        assert unpack_bank(pack_bank(bank)).storage_words() == bank.storage_words()

    def test_bank_payload_rejected_by_unpack_sketch(self, small_pair):
        a, _ = small_pair
        payload = pack_bank(SKETCHERS["WMH"]().sketch_batch([a]))
        with pytest.raises(SerializationError):
            unpack_sketch(payload)

    def test_sketch_payload_rejected_by_unpack_bank(self, small_pair):
        a, _ = small_pair
        payload = pack_sketch(SKETCHERS["WMH"]().sketch(a))
        with pytest.raises(SerializationError, match="not a sketch bank"):
            unpack_bank(payload)

    def test_truncated_bank_payload(self, small_pair):
        a, b = small_pair
        payload = pack_bank(SKETCHERS["KMV"]().sketch_batch([a, b]))
        with pytest.raises(SerializationError):
            unpack_bank(payload[: len(payload) - 24])


class TestStorageAccounting:
    def test_wmh_payload_is_1_5_words_per_sample(self, small_pair):
        # The paper's accounting, byte-for-byte: 32-bit hash + 64-bit
        # value = 12 bytes = 1.5 words per sample.
        a, _ = small_pair
        sketch = WeightedMinHash(m=100, seed=0, L=1 << 16).sketch(a)
        assert packed_size_words(sketch) == pytest.approx(150.0)

    def test_jl_payload_is_one_word_per_row(self, small_pair):
        a, _ = small_pair
        sketch = JohnsonLindenstrauss(m=100, seed=0).sketch(a)
        assert packed_size_words(sketch) == pytest.approx(100.0)

    def test_countsketch_payload(self, small_pair):
        a, _ = small_pair
        sketch = CountSketch(width=20, repetitions=5, seed=0).sketch(a)
        assert packed_size_words(sketch) == pytest.approx(100.0)


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(SerializationError, match="magic"):
            unpack_sketch(b"NOPE" + b"\x00" * 20)

    def test_bad_version(self):
        with pytest.raises(SerializationError, match="version"):
            unpack_sketch(b"RPRO" + bytes([99, 1]) + b"\x00" * 20)

    def test_unknown_kind(self):
        with pytest.raises(SerializationError, match="kind"):
            unpack_sketch(b"RPRO" + bytes([1, 200]) + b"\x00" * 20)

    def test_truncated_payload(self, small_pair):
        a, _ = small_pair
        payload = pack_sketch(WeightedMinHash(m=64, seed=0).sketch(a))
        with pytest.raises(SerializationError):
            unpack_sketch(payload[: len(payload) // 2])

    def test_unsupported_type(self):
        with pytest.raises(SerializationError, match="cannot serialize"):
            pack_sketch("not a sketch")

    def test_empty_payload(self):
        with pytest.raises(SerializationError):
            unpack_sketch(b"")


class TestBankEdgeCases:
    """Edge cases the persistent store depends on."""

    def test_empty_bank_round_trip(self):
        sketcher = SKETCHERS["WMH"]()
        bank = sketcher.sketch_batch([])
        assert len(bank) == 0
        restored = unpack_bank(pack_bank(bank))
        assert len(restored) == 0
        assert restored.kind == bank.kind
        assert dict(restored.params) == dict(bank.params)

    def test_zero_row_slice_round_trip(self, small_pair):
        a, b = small_pair
        sketcher = SKETCHERS["MH"]()
        bank = sketcher.sketch_batch([a, b])[0:0]
        assert len(bank) == 0
        restored = unpack_bank(pack_bank(bank))
        assert len(restored) == 0
        assert set(restored.columns) == set(bank.columns)

    def test_zero_row_object_bank_round_trip(self):
        sketcher = SKETCHERS["PS"]()
        bank = sketcher.sketch_batch([])
        restored = unpack_bank(pack_bank(bank))
        assert len(restored) == 0

    @pytest.mark.parametrize("cut", [1, 7, 64])
    def test_truncation_anywhere_raises_cleanly(self, cut, small_pair):
        a, b = small_pair
        payload = pack_bank(SKETCHERS["WMH"]().sketch_batch([a, b]))
        with pytest.raises(SerializationError):
            unpack_bank(payload[:cut])

    def test_wrong_version_header(self, small_pair):
        a, _ = small_pair
        payload = bytearray(pack_bank(SKETCHERS["WMH"]().sketch_batch([a])))
        payload[4] = 99  # version byte follows the 4-byte magic
        with pytest.raises(SerializationError, match="version"):
            unpack_bank(bytes(payload))

    def test_zero_copy_views_reference_payload(self, small_pair):
        a, b = small_pair
        sketcher = SKETCHERS["WMH"]()
        bank = sketcher.sketch_batch([a, b])
        payload = pack_bank(bank)
        zero_copy = unpack_bank(payload, copy=False)
        for name, array in zero_copy.columns.items():
            assert array.base is not None, f"column {name} was copied"
            assert not array.flags.writeable
        query = sketcher.sketch(a)
        np.testing.assert_array_equal(
            sketcher.estimate_many(query, zero_copy),
            sketcher.estimate_many(query, bank),
        )


class TestShardContainer:
    def test_round_trip(self, small_pair):
        a, b = small_pair
        sketcher = SKETCHERS["WMH"]()
        bank = sketcher.sketch_batch([a, b])
        restored = unpack_shard(pack_shard(bank))
        query = sketcher.sketch(a)
        np.testing.assert_array_equal(
            sketcher.estimate_many(query, restored),
            sketcher.estimate_many(query, bank),
        )

    def test_truncated_shard_rejected(self, small_pair):
        a, _ = small_pair
        payload = pack_shard(SKETCHERS["WMH"]().sketch_batch([a]))
        with pytest.raises(SerializationError, match="truncated shard"):
            unpack_shard(payload[: len(payload) - 5])

    def test_bit_flip_detected_by_checksum(self, small_pair):
        a, _ = small_pair
        payload = bytearray(pack_shard(SKETCHERS["WMH"]().sketch_batch([a])))
        payload[-3] ^= 0x40
        with pytest.raises(SerializationError, match="checksum"):
            unpack_shard(bytes(payload))

    def test_bank_payload_rejected_by_unpack_shard(self, small_pair):
        a, _ = small_pair
        payload = pack_bank(SKETCHERS["WMH"]().sketch_batch([a]))
        with pytest.raises(SerializationError, match="not a shard"):
            unpack_shard(payload)

    def test_shard_payload_rejected_by_unpack_bank(self, small_pair):
        a, _ = small_pair
        payload = pack_shard(SKETCHERS["WMH"]().sketch_batch([a]))
        with pytest.raises(SerializationError, match="not a sketch bank"):
            unpack_bank(payload)
