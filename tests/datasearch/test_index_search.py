"""Tests for the sketch index and dataset search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.wmh import WeightedMinHash
from repro.datasearch.index import SketchIndex
from repro.datasearch.search import DatasetSearch
from repro.datasearch.table import Table


def make_lake(seed: int = 0):
    """A query table plus a lake with one planted correlated table.

    The query is "taxi rides per day"; the lake contains a weather
    table over the same dates whose precipitation strongly
    anti-correlates with ridership, plus unrelated tables over disjoint
    key spaces.
    """
    rng = np.random.default_rng(seed)
    dates = [f"2022-{month:02d}-{day:02d}" for month in range(1, 13) for day in range(1, 28)]
    precipitation = np.abs(rng.normal(size=len(dates))) * 10
    rides = 10_000 - 500 * precipitation + rng.normal(scale=200, size=len(dates))

    query = Table("taxi", keys=dates, columns={"rides": rides})
    weather = Table("weather", keys=dates, columns={"precipitation": precipitation})
    unrelated = Table(
        "census",
        keys=[f"tract-{i}" for i in range(300)],
        columns={"population": rng.uniform(100, 10_000, size=300)},
    )
    noise = Table(
        "noise",
        keys=dates,
        columns={"random": rng.normal(size=len(dates))},
    )
    return query, [weather, unrelated, noise]


class TestSketchIndex:
    def test_add_and_get(self):
        _, tables = make_lake()
        index = SketchIndex(WeightedMinHash(m=128, seed=0))
        index.add(tables[0])
        assert "weather" in index
        assert index.get("weather").table_name == "weather"

    def test_len_and_iter(self):
        _, tables = make_lake()
        index = SketchIndex(WeightedMinHash(m=128, seed=0))
        index.add_all(tables)
        assert len(index) == 3
        assert {sketch.table_name for sketch in index} == {
            "weather",
            "census",
            "noise",
        }

    def test_get_missing_raises(self):
        index = SketchIndex(WeightedMinHash(m=16, seed=0))
        with pytest.raises(KeyError):
            index.get("nope")

    def test_replace_same_name(self):
        index = SketchIndex(WeightedMinHash(m=16, seed=0))
        table = Table("t", keys=[1], columns={"v": [1.0]})
        index.add(table)
        index.add(table)
        assert len(index) == 1

    def test_storage_accounting(self):
        _, tables = make_lake()
        sketcher = WeightedMinHash(m=64, seed=0)
        index = SketchIndex(sketcher)
        index.add_all(tables)
        # Exact bank accounting: every table stores one indicator
        # sketch plus a (value, square) pair per numeric column, each
        # costing sketcher.storage_words().
        expected = sum(
            sketcher.storage_words() * (1 + 2 * len(table.columns))
            for table in tables
        )
        assert index.storage_words() == pytest.approx(expected)


class TestColumnarIndex:
    def test_banks_align_with_tables(self):
        _, tables = make_lake()
        index = SketchIndex(WeightedMinHash(m=64, seed=0))
        index.add_all(tables)
        assert index.table_names() == ["weather", "census", "noise"]
        assert len(index.indicator_bank) == 3
        assert index.value_owners() == [
            ("weather", "precipitation"),
            ("census", "population"),
            ("noise", "random"),
        ]
        assert len(index.value_bank) == len(index.value_owners())
        assert len(index.square_bank) == len(index.value_bank)

    def test_add_all_matches_incremental_add(self):
        _, tables = make_lake()
        sketcher = WeightedMinHash(m=64, seed=0)
        bulk = SketchIndex(sketcher)
        bulk.add_all(tables)
        incremental = SketchIndex(sketcher)
        for table in tables:
            incremental.add(table)
        np.testing.assert_array_equal(
            bulk.indicator_bank.columns["hashes"],
            incremental.indicator_bank.columns["hashes"],
        )
        np.testing.assert_array_equal(
            bulk.value_bank.columns["values"],
            incremental.value_bank.columns["values"],
        )

    def test_get_reconstructs_join_sketch_from_banks(self):
        _, tables = make_lake()
        sketcher = WeightedMinHash(m=64, seed=0)
        index = SketchIndex(sketcher)
        index.add_all(tables)
        from repro.datasearch.join_estimates import JoinSketch

        direct = JoinSketch.build(tables[0], sketcher)
        via_index = index.get("weather")
        np.testing.assert_array_equal(
            via_index.indicator.hashes, direct.indicator.hashes
        )
        np.testing.assert_array_equal(
            via_index.values["precipitation"].values,
            direct.values["precipitation"].values,
        )
        assert via_index.num_rows == direct.num_rows

    def test_empty_index_banks_raise(self):
        index = SketchIndex(WeightedMinHash(m=16, seed=0))
        with pytest.raises(ValueError, match="empty"):
            _ = index.indicator_bank


class TestDatasetSearch:
    @pytest.fixture(scope="class")
    def search_setup(self):
        query, tables = make_lake(seed=1)
        index = SketchIndex(WeightedMinHash(m=2_000, seed=3, L=1 << 20))
        index.add_all(tables)
        search = DatasetSearch(index, min_containment=0.2)
        return search, search.sketch_query(query)

    def test_bad_containment_rejected(self):
        index = SketchIndex(WeightedMinHash(m=16, seed=0))
        with pytest.raises(ValueError):
            DatasetSearch(index, min_containment=1.5)

    def test_joinable_filters_disjoint_tables(self, search_setup):
        search, query_sketch = search_setup
        joinable_names = [name for name, _, _ in search.joinable(query_sketch)]
        assert "weather" in joinable_names
        assert "noise" in joinable_names
        assert "census" not in joinable_names

    def test_containment_near_one_for_shared_keys(self, search_setup):
        search, query_sketch = search_setup
        results = {name: containment for name, _, containment in search.joinable(query_sketch)}
        assert results["weather"] == pytest.approx(1.0, abs=0.25)

    def test_search_ranks_planted_table_first(self, search_setup):
        search, query_sketch = search_setup
        hits = search.search(query_sketch, query_column="rides", top_k=5)
        assert hits[0].table_name == "weather"
        assert hits[0].column == "precipitation"
        assert hits[0].correlation < -0.3  # strongly negative

    def test_search_by_inner_product(self, search_setup):
        search, query_sketch = search_setup
        hits = search.search(
            query_sketch, query_column="rides", top_k=5, by="inner_product"
        )
        assert len(hits) >= 1

    def test_unknown_ranking_criterion(self, search_setup):
        search, query_sketch = search_setup
        with pytest.raises(ValueError, match="criterion"):
            search.search(query_sketch, query_column="rides", by="vibes")

    def test_top_k_limits_results(self, search_setup):
        search, query_sketch = search_setup
        assert len(search.search(query_sketch, query_column="rides", top_k=1)) == 1


class TestFromBanks:
    """Reconstruction from stored banks (the repro.store load path)."""

    def entries_for(self, index, tables):
        for table in tables:
            entry = index._entries[table.name]
            from repro.core.bank import SketchBank

            bank = SketchBank.concat([entry.indicator, entry.values, entry.squares])
            yield table.name, table.num_rows, entry.columns, bank

    def test_from_banks_matches_original(self):
        query, tables = make_lake()
        sketcher = WeightedMinHash(m=64, seed=0, L=1 << 16)
        original = SketchIndex(sketcher)
        original.add_all(tables)

        rebuilt = SketchIndex.from_banks(
            sketcher, self.entries_for(original, tables)
        )
        assert rebuilt.table_names() == original.table_names()
        assert rebuilt.value_owners() == original.value_owners()

        engine_a = DatasetSearch(original)
        engine_b = DatasetSearch(rebuilt)
        query_sketch = engine_a.sketch_query(query)
        hits_a = engine_a.search(query_sketch, "rides", top_k=5)
        hits_b = engine_b.search(query_sketch, "rides", top_k=5)
        assert [(h.table_name, h.column, h.score) for h in hits_a] == [
            (h.table_name, h.column, h.score) for h in hits_b
        ]

    def test_attach_rejects_wrong_row_count(self):
        _, tables = make_lake()
        sketcher = WeightedMinHash(m=32, seed=0, L=1 << 16)
        index = SketchIndex(sketcher)
        bank = sketcher.sketch_batch(SketchIndex.encode_table(tables[0]))
        with pytest.raises(ValueError, match="bank rows"):
            index.attach("bad", 10, ("only", "two", "cols"), bank)

    def test_attach_rejects_mismatched_bank(self):
        from repro.core.base import SketchMismatchError

        _, tables = make_lake()
        index = SketchIndex(WeightedMinHash(m=32, seed=0, L=1 << 16))
        other = WeightedMinHash(m=32, seed=9, L=1 << 16)
        bank = other.sketch_batch(SketchIndex.encode_table(tables[0]))
        with pytest.raises(SketchMismatchError):
            index.attach(tables[0].name, tables[0].num_rows, tables[0].columns, bank)


class TestCompactCache:
    """Interleaved add/query must not re-concatenate the whole lake."""

    def make_table(self, name, seed):
        rng = np.random.default_rng(seed)
        keys = [f"k{i}" for i in rng.choice(500, size=50, replace=False)]
        return Table(name, keys, {"v": rng.normal(size=50)})

    def test_appends_reuse_cached_prefix(self, monkeypatch):
        from repro.core.bank import SketchBank

        index = SketchIndex(WeightedMinHash(m=16, seed=0, L=1 << 16))
        index.add(self.make_table("t0", 0))
        index.add(self.make_table("t1", 1))
        _ = index.indicator_bank  # warm the cache

        concat_sizes: list[int] = []
        original = SketchBank.concat.__func__

        def counting(cls, banks):
            concat_sizes.append(len(banks))
            return original(cls, banks)

        monkeypatch.setattr(SketchBank, "concat", classmethod(counting))
        index.add(self.make_table("t2", 2))
        _ = index.indicator_bank
        # Each of the three banks concats [cached_prefix, new_tail] —
        # never one piece per indexed table.
        assert concat_sizes == [2, 2, 2]

    def test_query_after_each_add_stays_correct(self):
        index = SketchIndex(WeightedMinHash(m=16, seed=0, L=1 << 16))
        for i in range(5):
            index.add(self.make_table(f"t{i}", i))
            bank = index.indicator_bank
            assert len(bank) == i + 1
            assert index.table_names() == [f"t{j}" for j in range(i + 1)]

    def test_replacement_invalidates_cache(self):
        index = SketchIndex(WeightedMinHash(m=16, seed=0, L=1 << 16))
        index.add(self.make_table("t0", 0))
        index.add(self.make_table("t1", 1))
        before = index.indicator_bank
        replacement = self.make_table("t0", 99)
        index.add(replacement)
        after = index.indicator_bank
        assert len(after) == 2
        assert after is not before
        # Replacement moves the entry to the end of the table order —
        # matching the persistent store's live-span order, where the
        # replacing span lives in the newest shard — and the moved row
        # must reflect the new table's sketches.
        assert index.table_names() == ["t1", "t0"]
        fresh = SketchIndex(WeightedMinHash(m=16, seed=0, L=1 << 16))
        fresh.add(replacement)
        np.testing.assert_array_equal(
            after.column("hashes")[-1], fresh.indicator_bank.column("hashes")[0]
        )

    def test_cached_banks_returned_unchanged_when_clean(self):
        index = SketchIndex(WeightedMinHash(m=16, seed=0, L=1 << 16))
        index.add(self.make_table("t0", 0))
        first = index.indicator_bank
        assert index.indicator_bank is first
