"""Tests for sketched join statistics against exact ground truth."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.wmh import WeightedMinHash
from repro.datasearch.join_estimates import JoinSketch, JoinStatisticsEstimator
from repro.datasearch.table import Table
from repro.sketches.jl import JohnsonLindenstrauss


@pytest.fixture
def figure2_tables():
    table_a = Table(
        "T_A",
        keys=[1, 3, 4, 5, 6, 7, 8, 9, 11],
        columns={"V": [6.0, 2.0, 6.0, 1.0, 4.0, 2.0, 2.0, 8.0, 3.0]},
    )
    table_b = Table(
        "T_B",
        keys=[2, 4, 5, 8, 10, 11, 12, 15, 16],
        columns={"V": [1.0, 5.0, 1.0, 2.0, 4.0, 2.5, 6.0, 6.0, 3.7]},
    )
    return table_a, table_b


@pytest.fixture
def estimator(figure2_tables):
    """A high-budget WMH estimator over the Figure 2 tables."""
    table_a, table_b = figure2_tables
    sketcher = WeightedMinHash(m=4_000, seed=5, L=1 << 20)
    return JoinStatisticsEstimator(
        JoinSketch.build(table_a, sketcher), JoinSketch.build(table_b, sketcher)
    )


class TestJoinSketch:
    def test_build_covers_all_columns(self, figure2_tables):
        table_a, _ = figure2_tables
        sketch = JoinSketch.build(table_a, WeightedMinHash(m=32, seed=0))
        assert set(sketch.values) == {"V"}
        assert set(sketch.squares) == {"V"}
        assert sketch.num_rows == 9

    def test_storage_accounting(self, figure2_tables):
        table_a, _ = figure2_tables
        sketcher = WeightedMinHash(m=32, seed=0)
        sketch = JoinSketch.build(table_a, sketcher)
        # indicator + (value + square) per column = 3 sketches.
        assert sketch.storage_words() == pytest.approx(3 * sketcher.storage_words())

    def test_mixed_methods_rejected(self, figure2_tables):
        table_a, table_b = figure2_tables
        left = JoinSketch.build(table_a, WeightedMinHash(m=32, seed=0))
        right = JoinSketch.build(table_b, JohnsonLindenstrauss(m=32, seed=0))
        with pytest.raises(ValueError, match="same method"):
            JoinStatisticsEstimator(left, right)


class TestFigure2Estimates:
    """Sketched estimates track the exact Figure 2 statistics."""

    def test_join_size(self, estimator):
        assert estimator.join_size() == pytest.approx(4.0, abs=0.6)

    def test_sum_left(self, estimator):
        assert estimator.sum_left("V") == pytest.approx(12.0, abs=2.0)

    def test_sum_right(self, estimator):
        assert estimator.sum_right("V") == pytest.approx(10.5, abs=2.0)

    def test_mean_left(self, estimator):
        assert estimator.mean_left("V") == pytest.approx(3.0, abs=0.8)

    def test_inner_product(self, estimator):
        assert estimator.inner_product("V", "V") == pytest.approx(42.5, abs=7.0)

    def test_join_size_clamped_nonnegative(self, figure2_tables):
        table_a, _ = figure2_tables
        disjoint = Table("d", keys=[100, 200], columns={"V": [1.0, 1.0]})
        sketcher = WeightedMinHash(m=256, seed=1)
        estimator = JoinStatisticsEstimator(
            JoinSketch.build(table_a, sketcher), JoinSketch.build(disjoint, sketcher)
        )
        assert estimator.join_size() >= 0.0


class TestDerivedStatistics:
    def _make_estimator(self, correlation_sign: float, m: int = 4_000):
        rng = np.random.default_rng(3)
        keys = list(range(200))
        x = rng.normal(size=200)
        y = correlation_sign * x + 0.2 * rng.normal(size=200)
        left = Table("l", keys=keys, columns={"x": x})
        right = Table("r", keys=keys, columns={"y": y})
        sketcher = WeightedMinHash(m=m, seed=2, L=1 << 20)
        return (
            JoinStatisticsEstimator(
                JoinSketch.build(left, sketcher), JoinSketch.build(right, sketcher)
            ),
            left.join(right),
        )

    def test_variance_estimate(self):
        estimator, join = self._make_estimator(1.0)
        exact = float(np.var(join.left_columns["x"]))
        assert estimator.variance_left("x") == pytest.approx(exact, rel=0.4)

    def test_positive_correlation_detected(self):
        estimator, join = self._make_estimator(1.0)
        exact = join.correlation("x", "y")
        assert exact > 0.9
        assert estimator.correlation("x", "y") > 0.5

    def test_negative_correlation_detected(self):
        estimator, join = self._make_estimator(-1.0)
        assert estimator.correlation("x", "y") < -0.5

    def test_correlation_clamped(self):
        estimator, _ = self._make_estimator(1.0, m=64)
        correlation = estimator.correlation("x", "y")
        assert math.isnan(correlation) or -1.0 <= correlation <= 1.0

    def test_mean_nan_for_empty_join(self):
        left = Table("l", keys=[1], columns={"x": [1.0]})
        right = Table("r", keys=[999], columns={"y": [1.0]})
        sketcher = WeightedMinHash(m=256, seed=0)
        estimator = JoinStatisticsEstimator(
            JoinSketch.build(left, sketcher), JoinSketch.build(right, sketcher)
        )
        assert math.isnan(estimator.mean_left("x"))

    def test_variance_clamped_nonnegative(self):
        estimator, _ = self._make_estimator(1.0, m=32)
        variance = estimator.variance_left("x")
        assert math.isnan(variance) or variance >= 0.0
