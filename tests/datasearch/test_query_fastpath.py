"""Query-serving fast-path tests: pruning and multi-query batching.

The serving engine's two structural promises, asserted bit-for-bit
across every registered sketcher:

* **candidate pruning** — restricting the five relevance statistics to
  joinable rows returns *identical* hits to scoring the full lake
  (``prune=False``), for every statistic, every ranking criterion, and
  the degenerate shapes (no candidates, all candidates, single-row
  lake, zero-norm query column);
* **multi-query batching** — ``search_many`` returns exactly the hit
  lists of looping ``search``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.wmh import WeightedMinHash
from repro.datasearch.index import SketchIndex
from repro.datasearch.search import DatasetSearch
from repro.datasearch.table import Table
from repro.experiments.runner import method_registry

REGISTRY = method_registry()
ALL_METHODS = sorted(REGISTRY)


def build_sketcher(name: str, storage: int = 120, seed: int = 5):
    return REGISTRY[name].build(storage, seed)


def make_lake(seed: int = 0, tables: int = 12, rows: int = 60) -> list[Table]:
    """Half the tables share the query key domain, half are disjoint."""
    rng = np.random.default_rng(seed)
    lake = []
    for i in range(tables):
        if i % 2 == 0:
            keys = [f"k{j}" for j in rng.choice(150, size=rows, replace=False)]
        else:
            keys = [f"only{i}-{j}" for j in range(rows)]
        lake.append(
            Table(
                f"t{i}",
                keys,
                {"a": rng.normal(size=rows), "b": rng.normal(size=rows)},
            )
        )
    return lake


def make_queries(count: int = 4, seed: int = 99, rows: int = 50) -> list[Table]:
    rng = np.random.default_rng(seed)
    queries = []
    for qi in range(count):
        keys = [f"k{j}" for j in rng.choice(150, size=rows, replace=False)]
        queries.append(Table(f"q{qi}", keys, {"v": rng.normal(size=rows)}))
    return queries


def build_index(name: str, lake) -> SketchIndex:
    index = SketchIndex(build_sketcher(name))
    index.add_all(lake)
    return index


class TestPrunedEqualsFullLake:
    @pytest.mark.parametrize("name", ALL_METHODS)
    @pytest.mark.parametrize("by", ["correlation", "inner_product"])
    def test_hits_identical(self, name, by):
        index = build_index(name, make_lake())
        pruned = DatasetSearch(index, min_containment=0.2)
        full = DatasetSearch(index, min_containment=0.2, prune=False)
        for query_table in make_queries(2):
            query = pruned.sketch_query(query_table)
            assert pruned.search(query, "v", top_k=5, by=by) == full.search(
                query, "v", top_k=5, by=by
            )

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_every_statistic_survives_row_selection(self, name):
        """Each of the six Figure 2 statistics is bit-identical when the
        bank is pruned to candidate rows first."""
        index = build_index(name, make_lake())
        engine = DatasetSearch(index, min_containment=0.0)
        query = engine.sketch_query(make_queries(1)[0])
        sketcher = index.sketcher
        table_rows = np.array([0, 2, 5, 11])
        val_rows = np.flatnonzero(np.isin(index.owner_positions(), table_rows))
        statistics = [
            (query.indicator, index.indicator_bank, table_rows),   # SIZE
            (query.values["v"], index.indicator_bank, table_rows),  # SUM left
            (query.squares["v"], index.indicator_bank, table_rows),  # E[V^2] left
            (query.indicator, index.value_bank, val_rows),          # SUM right
            (query.indicator, index.square_bank, val_rows),         # E[V^2] right
            (query.values["v"], index.value_bank, val_rows),        # <Va, Vb>
        ]
        for sketch, bank, rows in statistics:
            np.testing.assert_array_equal(
                sketcher.estimate_many(sketch, bank[rows]),
                sketcher.estimate_many(sketch, bank)[rows],
            )

    def test_empty_candidate_set(self):
        """A lake with no joinable table returns [] on both paths."""
        rng = np.random.default_rng(1)
        lake = [
            Table(f"t{i}", [f"only{i}-{j}" for j in range(30)],
                  {"a": rng.normal(size=30)})
            for i in range(4)
        ]
        index = SketchIndex(WeightedMinHash(m=32, seed=2, L=1 << 16))
        index.add_all(lake)
        query = make_queries(1)[0]
        pruned = DatasetSearch(index, min_containment=0.5)
        full = DatasetSearch(index, min_containment=0.5, prune=False)
        sketch = pruned.sketch_query(query)
        assert pruned.search(sketch, "v") == []
        assert full.search(sketch, "v") == []
        assert pruned.search_many([sketch, sketch], "v") == [[], []]

    @pytest.mark.parametrize("by", ["correlation", "inner_product"])
    def test_all_candidate_set(self, by):
        """min_containment=0 keeps every table: pruning selects the
        whole lake and must still match exactly."""
        index = build_index("WMH", make_lake())
        pruned = DatasetSearch(index, min_containment=0.0)
        full = DatasetSearch(index, min_containment=0.0, prune=False)
        query = pruned.sketch_query(make_queries(1)[0])
        hits = pruned.search(query, "v", top_k=0, by=by)
        assert hits == full.search(query, "v", top_k=0, by=by)

    def test_single_row_lake(self):
        rng = np.random.default_rng(3)
        keys = [f"k{j}" for j in range(40)]
        lake = [Table("only", keys, {"a": rng.normal(size=40)})]
        index = SketchIndex(WeightedMinHash(m=32, seed=2, L=1 << 16))
        index.add_all(lake)
        pruned = DatasetSearch(index, min_containment=0.0)
        full = DatasetSearch(index, min_containment=0.0, prune=False)
        query = pruned.sketch_query(Table("q", keys[:30], {"v": rng.normal(size=30)}))
        hits = pruned.search(query, "v")
        assert hits == full.search(query, "v")
        assert len(hits) == 1 and hits[0].table_name == "only"
        assert pruned.search_many([query], "v") == [hits]

    def test_zero_norm_query_column(self):
        """An all-zero query column sketches to a zero-norm vector; the
        pruned, full, and batched paths must agree exactly."""
        index = build_index("WMH", make_lake())
        pruned = DatasetSearch(index, min_containment=0.1)
        full = DatasetSearch(index, min_containment=0.1, prune=False)
        rng = np.random.default_rng(7)
        keys = [f"k{j}" for j in rng.choice(150, size=40, replace=False)]
        query = pruned.sketch_query(Table("qz", keys, {"v": np.zeros(40)}))
        hits = pruned.search(query, "v")
        assert hits == full.search(query, "v")
        assert pruned.search_many([query], "v") == [hits]


class TestSearchMany:
    @pytest.mark.parametrize("name", ALL_METHODS)
    @pytest.mark.parametrize("by", ["correlation", "inner_product"])
    def test_batch_equals_loop(self, name, by):
        index = build_index(name, make_lake())
        engine = DatasetSearch(index, min_containment=0.2)
        queries = [engine.sketch_query(t) for t in make_queries(4)]
        batched = engine.search_many(queries, "v", top_k=5, by=by)
        loop = [engine.search(q, "v", top_k=5, by=by) for q in queries]
        assert batched == loop

    def test_batch_equals_loop_unpruned(self):
        index = build_index("WMH", make_lake())
        engine = DatasetSearch(index, min_containment=0.2, prune=False)
        queries = [engine.sketch_query(t) for t in make_queries(3)]
        assert engine.search_many(queries, "v") == [
            engine.search(q, "v") for q in queries
        ]

    def test_per_query_columns(self):
        """One column name per query, mixed across the batch."""
        rng = np.random.default_rng(13)
        index = build_index("WMH", make_lake())
        engine = DatasetSearch(index, min_containment=0.1)
        keys = [f"k{j}" for j in rng.choice(150, size=45, replace=False)]
        table = Table(
            "multi", keys,
            {"x": rng.normal(size=45), "y": rng.normal(size=45)},
        )
        query = engine.sketch_query(table)
        batched = engine.search_many([query, query], ["x", "y"], top_k=4)
        assert batched == [
            engine.search(query, "x", top_k=4),
            engine.search(query, "y", top_k=4),
        ]

    def test_mismatched_column_count_rejected(self):
        index = build_index("WMH", make_lake())
        engine = DatasetSearch(index, min_containment=0.1)
        query = engine.sketch_query(make_queries(1)[0])
        with pytest.raises(ValueError, match="query columns"):
            engine.search_many([query, query], ["v"])

    def test_unknown_column_rejected(self):
        index = build_index("WMH", make_lake())
        engine = DatasetSearch(index, min_containment=0.1)
        query = engine.sketch_query(make_queries(1)[0])
        with pytest.raises(KeyError, match="no column"):
            engine.search_many([query], "nope")

    def test_empty_batch(self):
        index = build_index("WMH", make_lake())
        engine = DatasetSearch(index, min_containment=0.1)
        assert engine.search_many([], "v") == []

    def test_empty_index(self):
        engine = DatasetSearch(
            SketchIndex(WeightedMinHash(m=32, seed=2, L=1 << 16)),
            min_containment=0.1,
        )
        probe = DatasetSearch(
            build_index("WMH", make_lake()), min_containment=0.1
        )
        query = probe.sketch_query(make_queries(1)[0])
        assert engine.search_many([query], "v") == [[]]

    def test_mixed_joinable_and_disjoint_queries(self):
        """Queries with disjoint candidate sets batch correctly."""
        rng = np.random.default_rng(21)
        index = build_index("WMH", make_lake())
        engine = DatasetSearch(index, min_containment=0.2)
        joinable = engine.sketch_query(make_queries(1)[0])
        disjoint = engine.sketch_query(
            Table("qd", [f"zz{j}" for j in range(30)],
                  {"v": rng.normal(size=30)})
        )
        batched = engine.search_many([joinable, disjoint], "v")
        assert batched[0] == engine.search(joinable, "v")
        assert batched[1] == []


class TestJoinableFilter:
    def test_matches_python_reference(self):
        """The numpy containment filter/sort reproduces the old
        list-of-tuples implementation, stable ties included."""
        engine = DatasetSearch(
            build_index("WMH", make_lake()), min_containment=0.25
        )
        names = [f"t{i}" for i in range(6)]
        sizes = np.array([10.0, 30.0, 30.0, 5.0, 50.0, 30.0])
        num_rows = 100

        containments = sizes / max(num_rows, 1)
        reference = [
            (name, float(size), float(containment))
            for name, size, containment in zip(names, sizes, containments)
            if containment >= engine.min_containment
        ]
        reference.sort(key=lambda item: item[2], reverse=True)

        assert engine._filter_joinable(names, sizes, num_rows) == reference

    def test_empty_lake(self):
        engine = DatasetSearch(
            build_index("WMH", make_lake()), min_containment=0.25
        )
        assert engine._filter_joinable([], np.zeros(0), 10) == []

    def test_joinable_api_unchanged(self):
        index = build_index("WMH", make_lake())
        engine = DatasetSearch(index, min_containment=0.2)
        query = engine.sketch_query(make_queries(1)[0])
        joinable = engine.joinable(query)
        assert joinable
        for name, size, containment in joinable:
            assert isinstance(name, str)
            assert isinstance(size, float)
            assert isinstance(containment, float)
        # sorted by containment descending
        conts = [c for _, _, c in joinable]
        assert conts == sorted(conts, reverse=True)


class TestOwnerPositions:
    def test_matches_value_owners(self):
        index = build_index("WMH", make_lake())
        names = index.table_names()
        owners = index.value_owners()
        positions = index.owner_positions()
        assert positions.shape == (len(owners),)
        for (table, _), pos in zip(owners, positions.tolist()):
            assert names[pos] == table

    def test_append_extends_cache(self):
        lake = make_lake()
        index = build_index("WMH", lake[:8])
        first = index.owner_positions()
        assert first.size == 16
        index.add(lake[8])
        second = index.owner_positions()
        assert second.size == 18
        np.testing.assert_array_equal(second[:16], first)

    def test_replacement_invalidates_cache(self):
        rng = np.random.default_rng(17)
        lake = make_lake()
        index = build_index("WMH", lake[:4])
        assert index.owner_positions().size == 8
        # Replace table 1 with a three-column version: the entry moves
        # to the end of the table order (live-span order) and its value
        # rows move with it.
        keys = [f"k{j}" for j in range(30)]
        index.add(
            Table(
                "t1",
                keys,
                {
                    "a": rng.normal(size=30),
                    "b": rng.normal(size=30),
                    "c": rng.normal(size=30),
                },
            )
        )
        assert index.table_names() == ["t0", "t2", "t3", "t1"]
        positions = index.owner_positions()
        assert positions.size == 9
        assert index.value_owners()[6:9] == [("t1", "a"), ("t1", "b"), ("t1", "c")]
        np.testing.assert_array_equal(positions[6:9], [3, 3, 3])
