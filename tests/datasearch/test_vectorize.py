"""Tests for the Figure 3 vector encodings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasearch.table import Table
from repro.datasearch.vectorize import (
    indicator_vector,
    key_to_index,
    keys_to_indices,
    squared_value_vector,
    value_vector,
)
from repro.hashing.primes import MERSENNE_31


@pytest.fixture
def figure2_tables():
    table_a = Table(
        "T_A",
        keys=[1, 3, 4, 5, 6, 7, 8, 9, 11],
        columns={"V": [6.0, 2.0, 6.0, 1.0, 4.0, 2.0, 2.0, 8.0, 3.0]},
    )
    table_b = Table(
        "T_B",
        keys=[2, 4, 5, 8, 10, 11, 12, 15, 16],
        columns={"V": [1.0, 5.0, 1.0, 2.0, 4.0, 2.5, 6.0, 6.0, 3.7]},
    )
    return table_a, table_b


class TestKeyDigests:
    def test_deterministic_across_calls(self):
        assert key_to_index("2022-06-01") == key_to_index("2022-06-01")

    def test_within_domain(self):
        for key in (0, 1, "x", b"y", 3.5, ("a", 1)):
            assert 0 <= key_to_index(key) < MERSENNE_31

    def test_int_and_string_keys_disagree(self):
        # int 1 and "1" are distinct keys.
        assert key_to_index(1) != key_to_index("1")

    def test_numpy_integers_match_python_ints(self):
        assert key_to_index(np.int64(42)) == key_to_index(42)

    def test_collision_free_on_realistic_key_sets(self):
        dates = [f"2022-{month:02d}-{day:02d}" for month in range(1, 13) for day in range(1, 29)]
        digests = keys_to_indices(dates)
        assert np.unique(digests).size == len(dates)

    def test_custom_domain(self):
        assert 0 <= key_to_index("k", domain=101) < 101


class TestEncodings:
    def test_indicator_is_binary(self, figure2_tables):
        table_a, _ = figure2_tables
        vector = indicator_vector(table_a)
        assert np.all(vector.values == 1.0)
        assert vector.nnz == 9

    def test_indicator_inner_product_is_join_size(self, figure2_tables):
        # <x_1[K_A], x_1[K_B]> = |K_A ∩ K_B| = 4 (Figure 2).
        table_a, table_b = figure2_tables
        assert indicator_vector(table_a).dot(indicator_vector(table_b)) == 4.0

    def test_value_indicator_product_is_post_join_sum(self, figure2_tables):
        # <x_{V_A}, x_1[K_B]> = SUM(V_A after join) = 12.0.
        table_a, table_b = figure2_tables
        assert value_vector(table_a, "V").dot(
            indicator_vector(table_b)
        ) == pytest.approx(12.0)

    def test_value_value_product_is_post_join_inner_product(self, figure2_tables):
        # <x_{V_A}, x_{V_B}> = 42.5 (Figure 2/3, bold entries).
        table_a, table_b = figure2_tables
        assert value_vector(table_a, "V").dot(
            value_vector(table_b, "V")
        ) == pytest.approx(42.5)

    def test_squared_value_vector(self, figure2_tables):
        # <x_{V_A^2}, x_1[K_B]> = 36 + 1 + 4 + 9 = 50 (post-join second moment).
        table_a, table_b = figure2_tables
        assert squared_value_vector(table_a, "V").dot(
            indicator_vector(table_b)
        ) == pytest.approx(50.0)

    def test_consistent_indices_across_encodings(self, figure2_tables):
        table_a, _ = figure2_tables
        np.testing.assert_array_equal(
            indicator_vector(table_a).indices, value_vector(table_a, "V").indices
        )

    def test_string_keys_work(self):
        table = Table("t", keys=["a", "b"], columns={"v": [1.0, 2.0]})
        assert value_vector(table, "v").nnz == 2

    def test_zero_values_drop_from_value_vector(self):
        table = Table("t", keys=[1, 2], columns={"v": [0.0, 2.0]})
        assert value_vector(table, "v").nnz == 1
        assert indicator_vector(table).nnz == 2
