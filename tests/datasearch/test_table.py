"""Tests for tables and exact join statistics (the Figure 2 example)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.datasearch.table import AGGREGATORS, Table


@pytest.fixture
def figure2_tables():
    """The exact tables T_A and T_B from Figure 2 of the paper."""
    table_a = Table(
        "T_A",
        keys=[1, 3, 4, 5, 6, 7, 8, 9, 11],
        columns={"V": [6.0, 2.0, 6.0, 1.0, 4.0, 2.0, 2.0, 8.0, 3.0]},
    )
    table_b = Table(
        "T_B",
        keys=[2, 4, 5, 8, 10, 11, 12, 15, 16],
        columns={"V": [1.0, 5.0, 1.0, 2.0, 4.0, 2.5, 6.0, 6.0, 3.7]},
    )
    return table_a, table_b


class TestTableConstruction:
    def test_rejects_duplicate_keys(self):
        with pytest.raises(ValueError, match="duplicate"):
            Table("t", keys=[1, 1], columns={"v": [1.0, 2.0]})

    def test_rejects_misaligned_column(self):
        with pytest.raises(ValueError, match="align"):
            Table("t", keys=[1, 2], columns={"v": [1.0]})

    def test_string_keys_allowed(self):
        table = Table("t", keys=["2022-01-01", "2022-01-02"], columns={"v": [1.0, 2.0]})
        assert table.num_rows == 2

    def test_column_access(self, figure2_tables):
        table_a, _ = figure2_tables
        assert table_a.column("V")[0] == 6.0

    def test_repr(self, figure2_tables):
        table_a, _ = figure2_tables
        assert "T_A" in repr(table_a)


class TestAggregation:
    def test_aggregated_sum(self):
        table = Table.aggregated(
            "t", keys=[1, 1, 2], columns={"v": [1.0, 2.0, 5.0]}, how="sum"
        )
        assert table.num_rows == 2
        assert table.column("v")[0] == 3.0

    @pytest.mark.parametrize(
        "how,expected",
        [("sum", 3.0), ("mean", 1.5), ("min", 1.0), ("max", 2.0), ("first", 1.0), ("count", 2.0)],
    )
    def test_all_aggregators(self, how, expected):
        table = Table.aggregated("t", keys=[7, 7], columns={"v": [1.0, 2.0]}, how=how)
        assert table.column("v")[0] == expected

    def test_aggregator_registry_complete(self):
        assert set(AGGREGATORS) == {"sum", "mean", "min", "max", "first", "count"}

    def test_unknown_aggregator(self):
        with pytest.raises(ValueError, match="unknown aggregator"):
            Table.aggregated("t", keys=[1], columns={"v": [1.0]}, how="mode")

    def test_key_order_preserved(self):
        table = Table.aggregated("t", keys=[5, 3, 5], columns={"v": [1.0, 2.0, 3.0]})
        assert table.keys == [5, 3]


class TestFigure2Join:
    def test_join_keys(self, figure2_tables):
        table_a, table_b = figure2_tables
        join = table_a.join(table_b)
        assert set(join.keys) == {4, 5, 8, 11}

    def test_size(self, figure2_tables):
        table_a, table_b = figure2_tables
        assert table_a.join(table_b).size == 4

    def test_sum_left(self, figure2_tables):
        # SUM(V_A after join) = 6 + 1 + 2 + 3 = 12.0 (Figure 2).
        table_a, table_b = figure2_tables
        assert table_a.join(table_b).sum("left", "V") == pytest.approx(12.0)

    def test_sum_right(self, figure2_tables):
        # SUM(V_B after join) = 5 + 1 + 2 + 2.5 = 10.5 (Figure 2).
        table_a, table_b = figure2_tables
        assert table_a.join(table_b).sum("right", "V") == pytest.approx(10.5)

    def test_mean_left(self, figure2_tables):
        # MEAN(V_A after join) = 12.0 / 4 = 3.0 (Figure 2).
        table_a, table_b = figure2_tables
        assert table_a.join(table_b).mean("left", "V") == pytest.approx(3.0)

    def test_post_join_inner_product(self, figure2_tables):
        # <V_A, V_B> over joined rows = 6*5 + 1*1 + 2*2 + 3*2.5 = 42.5.
        table_a, table_b = figure2_tables
        assert table_a.join(table_b).inner_product("V", "V") == pytest.approx(42.5)

    def test_join_symmetry_of_size(self, figure2_tables):
        table_a, table_b = figure2_tables
        assert table_a.join(table_b).size == table_b.join(table_a).size

    def test_invalid_side(self, figure2_tables):
        table_a, table_b = figure2_tables
        with pytest.raises(ValueError, match="side"):
            table_a.join(table_b).sum("middle", "V")


class TestJoinStatistics:
    def test_empty_join(self):
        left = Table("l", keys=[1], columns={"v": [1.0]})
        right = Table("r", keys=[2], columns={"v": [1.0]})
        join = left.join(right)
        assert join.size == 0
        assert math.isnan(join.mean("left", "v"))
        assert math.isnan(join.correlation("v", "v"))

    def test_covariance_manual(self):
        left = Table("l", keys=[1, 2, 3], columns={"x": [1.0, 2.0, 3.0]})
        right = Table("r", keys=[1, 2, 3], columns={"y": [2.0, 4.0, 6.0]})
        join = left.join(right)
        x = np.array([1.0, 2.0, 3.0])
        y = 2 * x
        expected = float(np.mean(x * y) - x.mean() * y.mean())
        assert join.covariance("x", "y") == pytest.approx(expected)

    def test_correlation_perfect(self):
        left = Table("l", keys=[1, 2, 3], columns={"x": [1.0, 2.0, 3.0]})
        right = Table("r", keys=[1, 2, 3], columns={"y": [5.0, 7.0, 9.0]})
        assert left.join(right).correlation("x", "y") == pytest.approx(1.0)

    def test_correlation_degenerate_column(self):
        left = Table("l", keys=[1, 2], columns={"x": [1.0, 1.0]})
        right = Table("r", keys=[1, 2], columns={"y": [1.0, 2.0]})
        assert math.isnan(left.join(right).correlation("x", "y"))
