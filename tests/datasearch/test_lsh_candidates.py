"""LSH candidate generation for dataset search.

Covers the serving guarantees of ``candidates="lsh"``:

* **subset** — for every sketcher exposing signature keys, LSH hits
  (search, joinable, search_many) are a subset of the scan path, with
  identical statistics for the hits that survive;
* **statistical recall** — empirical recall on synthetic lakes with
  known containment is within tolerance of the S-curve
  ``expected_recall``, and exactly 1.0 for single-row bands;
* **staleness** — appends extend the index incrementally, replacement
  invalidates it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.wmh import WeightedMinHash
from repro.datasearch.index import SketchIndex
from repro.datasearch.lshindex import LakeIndex
from repro.datasearch.search import DatasetSearch
from repro.datasearch.table import Table
from repro.mips.lsh import SignatureLSH, collision_probability
from repro.sketches.icws import ICWS
from repro.sketches.jl import JohnsonLindenstrauss
from repro.sketches.minhash import MinHash

#: Sketchers that expose per-repetition signature keys.
SIGNATURE_SKETCHERS = [
    pytest.param(lambda: WeightedMinHash(m=48, seed=5, L=1 << 16), id="WMH"),
    pytest.param(lambda: MinHash(m=48, seed=5), id="MH"),
    pytest.param(lambda: ICWS(m=48, seed=5), id="ICWS"),
]


def make_lake(num_tables, joinable, rows, seed, shared_fraction=1.0):
    """``joinable`` tables share ``shared_fraction`` of the query's key
    domain; the rest use disjoint keys."""
    rng = np.random.default_rng(seed)
    domain = int(rows * 2.5)
    shared = int(rows * shared_fraction)
    tables = []
    for i in range(num_tables):
        if i < joinable:
            keys = [
                f"k{k}" for k in rng.choice(domain, size=shared, replace=False)
            ] + [f"t{i}-{j}" for j in range(rows - shared)]
        else:
            keys = [f"t{i}-{j}" for j in range(rows)]
        tables.append(
            Table(f"table{i}", keys, {"c": rng.normal(size=rows)})
        )
    return tables


def make_query(rows, seed):
    rng = np.random.default_rng(seed)
    domain = int(rows * 2.5)
    keys = [f"k{k}" for k in rng.choice(domain, size=rows, replace=False)]
    return Table("query", keys, {"signal": rng.normal(size=rows)})


def hit_keys(hits):
    return [
        (h.table_name, h.column, h.join_size, h.containment, h.score)
        for h in hits
    ]


class TestSubsetGuarantee:
    """candidates="lsh" hits are always a subset of candidates="scan"."""

    @pytest.mark.parametrize("make_sketcher", SIGNATURE_SKETCHERS)
    def test_search_hits_subset_with_identical_stats(self, make_sketcher):
        index = SketchIndex(make_sketcher())
        index.add_all(make_lake(40, 8, 30, seed=1))
        engine = DatasetSearch(index, min_containment=0.2)
        query = engine.sketch_query(make_query(30, seed=2))

        scan = engine.search(query, "signal", top_k=50)
        lsh = engine.search(query, "signal", top_k=50, candidates="lsh")
        scan_keys = hit_keys(scan)
        lsh_keys = hit_keys(lsh)
        assert set(lsh_keys) <= set(scan_keys)
        # Surviving hits keep their exact scan statistics and relative
        # order (the shortlist only removes rows, never rescores them).
        surviving = [k for k in scan_keys if k in set(lsh_keys)]
        assert lsh_keys == surviving

    @pytest.mark.parametrize("make_sketcher", SIGNATURE_SKETCHERS)
    def test_joinable_subset(self, make_sketcher):
        index = SketchIndex(make_sketcher())
        index.add_all(make_lake(40, 8, 30, seed=3))
        engine = DatasetSearch(index, min_containment=0.2)
        query = engine.sketch_query(make_query(30, seed=4))

        scan = engine.joinable(query)
        lsh = engine.joinable(query, candidates="lsh")
        assert set(lsh) <= set(scan)
        surviving = [row for row in scan if row in set(lsh)]
        assert lsh == surviving

    @pytest.mark.parametrize("make_sketcher", SIGNATURE_SKETCHERS)
    def test_search_many_matches_search_loop(self, make_sketcher):
        index = SketchIndex(make_sketcher())
        index.add_all(make_lake(30, 6, 24, seed=5))
        engine = DatasetSearch(index, min_containment=0.2, candidates="lsh")
        queries = [
            engine.sketch_query(make_query(24, seed=6 + i)) for i in range(4)
        ]
        batched = engine.search_many(queries, "signal", top_k=20)
        looped = [engine.search(q, "signal", top_k=20) for q in queries]
        assert [hit_keys(b) for b in batched] == [hit_keys(s) for s in looped]

    def test_full_ranking_subset_with_lossy_banding(self):
        # Deep bands (rows_per_band=4) miss some joinable tables; the
        # *uncut* LSH ranking must still be a sub-sequence of the scan
        # ranking.  (A top-k cut of a lossy shortlist can legitimately
        # promote lower-scored survivors — subset claims are about full
        # rankings.)
        index = SketchIndex(WeightedMinHash(m=48, seed=5, L=1 << 16))
        index.add_all(make_lake(40, 12, 30, seed=21, shared_fraction=0.5))
        index.lsh_index(bands=12, rows_per_band=4)  # deliberately lossy
        # lsh_target_recall opts into the lossy banding; the default
        # 0.95 target would rebuild it at a shallower split.
        engine = DatasetSearch(index, min_containment=0.15, lsh_target_recall=0.001)
        misses = 0
        for qseed in range(6):
            query = engine.sketch_query(make_query(30, seed=30 + qseed))
            scan = hit_keys(engine.search(query, "signal", top_k=10**9))
            lsh = hit_keys(
                engine.search(query, "signal", top_k=10**9, candidates="lsh")
            )
            assert set(lsh) <= set(scan)
            assert lsh == [k for k in scan if k in set(lsh)]
            misses += len(scan) - len(lsh)
        assert misses > 0  # the banding really is lossy here

    def test_min_containment_zero_stays_subset(self):
        # With the threshold at 0 every table passes the scan filter;
        # the LSH path must still return only shortlisted tables, never
        # zero-size phantoms.
        index = SketchIndex(WeightedMinHash(m=48, seed=5, L=1 << 16))
        index.add_all(make_lake(20, 4, 24, seed=7))
        engine = DatasetSearch(index, min_containment=0.0)
        query = engine.sketch_query(make_query(24, seed=8))
        scan = engine.joinable(query)
        lsh = engine.joinable(query, candidates="lsh")
        assert len(scan) == 20
        assert set(lsh) <= set(scan)

    def test_unsupported_sketcher_raises(self):
        index = SketchIndex(JohnsonLindenstrauss(m=32, seed=0))
        index.add_all(make_lake(5, 2, 16, seed=9))
        engine = DatasetSearch(index, min_containment=0.1)
        query = engine.sketch_query(make_query(16, seed=10))
        with pytest.raises(ValueError, match="signature keys"):
            engine.search(query, "signal", candidates="lsh")
        assert index.lsh_index() is None

    def test_unknown_mode_rejected(self):
        index = SketchIndex(WeightedMinHash(m=16, seed=0))
        with pytest.raises(ValueError, match="candidate generator"):
            DatasetSearch(index, candidates="psychic")
        engine = DatasetSearch(index)
        with pytest.raises(ValueError, match="candidate generator"):
            engine.search_many([], "signal", candidates="psychic")

    def test_empty_index_returns_empty(self):
        engine = DatasetSearch(
            SketchIndex(WeightedMinHash(m=16, seed=0, L=1 << 16)),
            candidates="lsh",
        )
        query = engine.sketch_query(make_query(10, seed=11))
        assert engine.search(query, "signal") == []
        assert engine.joinable(query) == []


class TestRecall:
    """Measured recall tracks the S-curve."""

    def test_single_row_bands_have_perfect_recall(self):
        # With rows_per_band=1 (the tuned default at serving
        # thresholds) any table with one matching repetition collides —
        # and a positive joinability estimate implies a match — so the
        # LSH joinable set equals the scan joinable set exactly.
        index = SketchIndex(WeightedMinHash(m=48, seed=5, L=1 << 16))
        index.add_all(make_lake(60, 15, 30, seed=12, shared_fraction=0.6))
        assert index.lsh_index(bands=48, rows_per_band=1).rows_per_band == 1
        engine = DatasetSearch(index, min_containment=0.2)
        for qseed in range(5):
            query = engine.sketch_query(make_query(30, seed=20 + qseed))
            assert engine.joinable(query, candidates="lsh") == engine.joinable(
                query
            )

    def test_empirical_recall_matches_expected_on_known_containment(self):
        # Every joinable table shares exactly half its keys with the
        # query (containment 0.5 of the query, true weighted Jaccard
        # J = 20 / 60 = 1/3).  With a statistical banding (rows=2) the
        # scan-joinable tables should be shortlisted at about the
        # S-curve rate.
        rows, shared = 40, 20
        num_joinable = 150
        rng = np.random.default_rng(13)
        query_keys = [f"q{j}" for j in range(rows)]
        tables = []
        for i in range(num_joinable):
            keep = rng.choice(rows, size=shared, replace=False)
            keys = [query_keys[k] for k in keep] + [
                f"t{i}-{j}" for j in range(rows - shared)
            ]
            tables.append(Table(f"table{i}", keys, {"c": rng.normal(size=rows)}))
        index = SketchIndex(WeightedMinHash(m=32, seed=3, L=1 << 16))
        index.add_all(tables)
        lake_index = index.lsh_index(bands=16, rows_per_band=2)
        # Accept the statistical banding (the default recall target
        # would rebuild it shallower).
        engine = DatasetSearch(index, min_containment=0.25, lsh_target_recall=0.5)
        query = engine.sketch_query(
            Table("query", query_keys, {"signal": rng.normal(size=rows)})
        )

        scan = {name for name, _, _ in engine.joinable(query)}
        lsh = {name for name, _, _ in engine.joinable(query, candidates="lsh")}
        assert lsh <= scan
        assert len(scan) >= 100  # the filter separates cleanly
        jaccard = shared / (2 * rows - shared)
        expected = lake_index.expected_recall(jaccard)
        measured = len(lsh) / len(scan)
        assert measured == pytest.approx(expected, abs=0.15)

    def test_empirical_collision_rate_matches_s_curve_batched(self):
        # Pure SignatureLSH statistics, batched API: signatures agree
        # per-entry with probability J; band collisions should occur at
        # the 1 - (1 - J^r)^b rate.
        rng = np.random.default_rng(14)
        bands, rows_per_band, similarity, trials = 12, 2, 0.55, 500
        length = bands * rows_per_band
        base = rng.random((trials, length))
        probes = base.copy()
        resample = rng.random(base.shape) > similarity
        probes[resample] = rng.random(int(resample.sum()))
        lsh = SignatureLSH(bands=bands, rows_per_band=rows_per_band)
        lsh.insert_signatures(base)
        matches = sum(
            i in found.tolist()
            for i, found in enumerate(lsh.candidates_many(probes))
        )
        expected = collision_probability(similarity, rows_per_band, bands)
        assert matches / trials == pytest.approx(expected, abs=0.07)


class TestIndexStaleness:
    """lsh_index follows the bank caches: extend on append, drop on
    replacement, first banding wins."""

    def test_append_extends_incrementally(self):
        lake = make_lake(20, 5, 24, seed=15)
        index = SketchIndex(WeightedMinHash(m=32, seed=1, L=1 << 16))
        index.add_all(lake[:12])
        first = index.lsh_index()
        assert len(first) == 12
        index.add_all(lake[12:])
        second = index.lsh_index()
        assert second is first  # same object, extended in place
        assert len(second) == 20

    def test_incremental_matches_scratch(self):
        lake = make_lake(20, 5, 24, seed=16)
        grown = SketchIndex(WeightedMinHash(m=32, seed=1, L=1 << 16))
        grown.add_all(lake[:9])
        grown.lsh_index()
        grown.add_all(lake[9:])
        scratch = SketchIndex(WeightedMinHash(m=32, seed=1, L=1 << 16))
        scratch.add_all(lake)
        assert (
            grown.lsh_index().lsh.digest_matrix().tobytes()
            == scratch.lsh_index().lsh.digest_matrix().tobytes()
        )

    def test_replacement_invalidates(self):
        lake = make_lake(10, 3, 24, seed=17)
        index = SketchIndex(WeightedMinHash(m=32, seed=1, L=1 << 16))
        index.add_all(lake)
        first = index.lsh_index()
        replacement = Table(
            "table1",
            [f"r{j}" for j in range(24)],
            {"c": np.ones(24)},
        )
        index.add(replacement)
        second = index.lsh_index()
        assert second is not first
        assert len(second) == 10

    def test_insufficient_banding_rebuilt_for_lower_threshold_caller(self):
        # Engine A (high threshold) lazily builds a deep banding; when
        # engine B (low threshold, default 0.95 recall target) queries
        # the same index, the banding cannot meet B's target and must
        # be rebuilt shallower — not silently reused with ~zero recall.
        index = SketchIndex(WeightedMinHash(m=48, seed=5, L=1 << 16))
        index.add_all(make_lake(40, 10, 30, seed=22, shared_fraction=0.8))
        engine_a = DatasetSearch(index, min_containment=0.5, candidates="lsh")
        query = engine_a.sketch_query(make_query(30, seed=23))
        engine_a.search(query, "signal")
        deep = index.lsh_index(target_sim=0.5)
        assert deep.rows_per_band > 1  # A really tuned a deep banding

        engine_b = DatasetSearch(index, min_containment=0.1, candidates="lsh")
        lsh = engine_b.joinable(query)
        scan = engine_b.joinable(query, candidates="scan")
        rebuilt = index.lsh_index(target_sim=0.1)
        assert rebuilt.rows_per_band == 1
        assert rebuilt.expected_recall(0.1) >= 0.95
        assert lsh == scan  # single-row bands: perfect recall

    def test_first_banding_wins(self):
        index = SketchIndex(WeightedMinHash(m=32, seed=1, L=1 << 16))
        index.add_all(make_lake(8, 2, 24, seed=18))
        built = index.lsh_index(bands=8, rows_per_band=4)
        again = index.lsh_index(bands=16, rows_per_band=2)
        assert again is built
        assert (again.bands, again.rows_per_band) == (8, 4)

    def test_attach_lsh_validates_coverage(self):
        index = SketchIndex(WeightedMinHash(m=32, seed=1, L=1 << 16))
        index.add_all(make_lake(5, 1, 24, seed=19))
        foreign = LakeIndex(SignatureLSH(bands=32, rows_per_band=1))
        with pytest.raises(ValueError, match="covers 0 tables"):
            index.attach_lsh(foreign)
