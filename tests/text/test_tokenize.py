"""Tests for tokenization and n-grams."""

from __future__ import annotations

from repro.text.tokenize import bigrams, terms_and_bigrams, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_strips_punctuation(self):
        assert tokenize("foo, bar! baz?") == ["foo", "bar", "baz"]

    def test_keeps_digits_and_apostrophes(self):
        assert tokenize("it's 42") == ["it's", "42"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("  \n\t ") == []


class TestBigrams:
    def test_basic(self):
        assert bigrams(["a", "b", "c"]) == ["a_b", "b_c"]

    def test_single_token(self):
        assert bigrams(["a"]) == []

    def test_empty(self):
        assert bigrams([]) == []

    def test_accepts_generators(self):
        assert bigrams(iter(["x", "y"])) == ["x_y"]


class TestTermsAndBigrams:
    def test_combines(self):
        assert terms_and_bigrams(["a", "b"]) == ["a", "b", "a_b"]

    def test_matches_paper_feature_set(self):
        # "each entry represents a term or a combination of 2 terms".
        features = terms_and_bigrams(["the", "taxi", "data"])
        assert "taxi" in features
        assert "the_taxi" in features
        assert "taxi_data" in features
        assert len(features) == 5
