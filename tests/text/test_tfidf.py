"""Tests for the TF-IDF vectorizer."""

from __future__ import annotations

import math

import pytest

from repro.text.tfidf import TfidfVectorizer
from repro.vectors.ops import cosine_similarity


@pytest.fixture
def tiny_corpus():
    return [
        ["taxi", "rides", "taxi"],
        ["rain", "rides"],
        ["taxi", "rain", "snow"],
    ]


class TestFitting:
    def test_num_documents(self, tiny_corpus):
        vectorizer = TfidfVectorizer(use_bigrams=False).fit(tiny_corpus)
        assert vectorizer.num_documents == 3

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            TfidfVectorizer().transform(["x"])

    def test_idf_formula(self, tiny_corpus):
        vectorizer = TfidfVectorizer(use_bigrams=False).fit(tiny_corpus)
        # "taxi" appears in 2 of 3 documents.
        assert vectorizer.idf("taxi") == pytest.approx(math.log(4 / 3) + 1)

    def test_idf_unseen_feature(self, tiny_corpus):
        vectorizer = TfidfVectorizer(use_bigrams=False).fit(tiny_corpus)
        assert vectorizer.idf("zebra") == pytest.approx(math.log(4 / 1) + 1)

    def test_repeated_tokens_count_once_for_df(self, tiny_corpus):
        vectorizer = TfidfVectorizer(use_bigrams=False).fit(tiny_corpus)
        # "taxi" twice in doc 0 still contributes df = 2 overall.
        assert vectorizer._document_frequency["taxi"] == 2


class TestTransform:
    def test_normalized_output(self, tiny_corpus):
        vectorizer = TfidfVectorizer(use_bigrams=False)
        vectors = vectorizer.fit_transform(tiny_corpus)
        for vector in vectors:
            assert vector.norm() == pytest.approx(1.0)

    def test_unnormalized_weights_match_manual(self, tiny_corpus):
        vectorizer = TfidfVectorizer(use_bigrams=False, normalize=False).fit(tiny_corpus)
        vector = vectorizer.transform(["taxi", "rides", "taxi"])
        from repro.datasearch.vectorize import key_to_index

        taxi_weight = vector[key_to_index("taxi")]
        assert taxi_weight == pytest.approx(2 * (math.log(4 / 3) + 1))

    def test_empty_document(self, tiny_corpus):
        vectorizer = TfidfVectorizer().fit(tiny_corpus)
        assert vectorizer.transform([]).nnz == 0

    def test_bigrams_add_features(self, tiny_corpus):
        with_bigrams = TfidfVectorizer(use_bigrams=True).fit(tiny_corpus)
        without = TfidfVectorizer(use_bigrams=False).fit(tiny_corpus)
        doc = ["taxi", "rides"]
        assert with_bigrams.transform(doc).nnz > without.transform(doc).nnz

    def test_identical_documents_have_cosine_one(self, tiny_corpus):
        vectorizer = TfidfVectorizer().fit(tiny_corpus)
        a = vectorizer.transform(["taxi", "rain"])
        b = vectorizer.transform(["taxi", "rain"])
        assert cosine_similarity(a, b) == pytest.approx(1.0)

    def test_disjoint_documents_have_cosine_zero(self, tiny_corpus):
        vectorizer = TfidfVectorizer().fit(tiny_corpus)
        a = vectorizer.transform(["taxi"])
        b = vectorizer.transform(["snow"])
        assert cosine_similarity(a, b) == pytest.approx(0.0)

    def test_fit_transform_returns_all(self, tiny_corpus):
        vectors = TfidfVectorizer().fit_transform(tiny_corpus)
        assert len(vectors) == 3

    def test_rare_terms_weighted_higher(self, tiny_corpus):
        # "snow" (df 1) must outweigh "taxi" (df 2) at equal tf.
        vectorizer = TfidfVectorizer(use_bigrams=False, normalize=False).fit(tiny_corpus)
        from repro.datasearch.vectorize import key_to_index

        vector = vectorizer.transform(["snow", "taxi"])
        assert vector[key_to_index("snow")] > vector[key_to_index("taxi")]
