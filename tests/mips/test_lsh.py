"""Tests for LSH banding and sketch-based MIPS retrieval."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.wmh import WeightedMinHash
from repro.mips.lsh import (
    MIPSHit,
    MIPSIndex,
    SignatureLSH,
    collision_probability,
    tune,
)
from repro.vectors.sparse import SparseVector


class TestCollisionProbability:
    def test_endpoints(self):
        assert collision_probability(0.0, 4, 8) == 0.0
        assert collision_probability(1.0, 4, 8) == 1.0

    def test_monotone_in_similarity(self):
        values = [collision_probability(s, 4, 8) for s in (0.1, 0.3, 0.5, 0.9)]
        assert values == sorted(values)

    def test_s_curve_shape(self):
        # More rows per band sharpen the threshold: low similarities are
        # suppressed, high similarities survive.
        assert collision_probability(0.2, 8, 4) < collision_probability(0.2, 2, 4)
        assert collision_probability(0.95, 8, 4) > 0.5

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            collision_probability(1.5, 2, 2)


class TestSignatureLSH:
    def test_rejects_bad_banding(self):
        with pytest.raises(ValueError):
            SignatureLSH(bands=0, rows_per_band=2)

    def test_rejects_short_signature(self):
        lsh = SignatureLSH(bands=4, rows_per_band=4)
        with pytest.raises(ValueError, match="banding needs"):
            lsh.insert("x", np.arange(8, dtype=np.float64))

    def test_identical_signatures_always_candidates(self):
        lsh = SignatureLSH(bands=4, rows_per_band=4)
        signature = np.random.default_rng(0).random(16)
        lsh.insert("a", signature)
        assert lsh.candidates(signature) == {"a"}

    def test_disjoint_signatures_rarely_candidates(self):
        rng = np.random.default_rng(1)
        lsh = SignatureLSH(bands=4, rows_per_band=4)
        lsh.insert("a", rng.random(16))
        assert lsh.candidates(rng.random(16)) == set()

    def test_len_counts_inserts(self):
        lsh = SignatureLSH(bands=2, rows_per_band=2)
        rng = np.random.default_rng(2)
        for item in range(5):
            lsh.insert(item, rng.random(4))
        assert len(lsh) == 5

    def test_empirical_recall_matches_s_curve(self):
        # Build signatures that agree per-entry with probability J and
        # check band-collision frequency against 1 - (1 - J^r)^b.
        rng = np.random.default_rng(3)
        bands, rows = 8, 2
        similarity = 0.6
        trials, hits = 400, 0
        for _ in range(trials):
            base = rng.random(bands * rows)
            other = base.copy()
            resample = rng.random(base.size) > similarity
            other[resample] = rng.random(int(resample.sum()))
            lsh = SignatureLSH(bands=bands, rows_per_band=rows)
            lsh.insert("base", base)
            hits += "base" in lsh.candidates(other)
        expected = collision_probability(similarity, rows, bands)
        assert hits / trials == pytest.approx(expected, abs=0.08)


def corpus_vectors(seed: int = 0, count: int = 30):
    """A corpus plus a query with one planted near-duplicate."""
    rng = np.random.default_rng(seed)
    vectors = {}
    base_indices = rng.permutation(2_000)[:150]
    base_values = rng.normal(size=150)
    query = SparseVector(base_indices, base_values)
    # Planted neighbor: 95% of the query's mass.
    keep = rng.random(150) < 0.95
    vectors["neighbor"] = SparseVector(base_indices[keep], base_values[keep])
    for item in range(count - 1):
        idx = rng.permutation(2_000)[:150]
        vectors[f"random-{item}"] = SparseVector(idx, rng.normal(size=150))
    return query, vectors


class TestMIPSIndex:
    def test_rejects_banding_beyond_signature(self):
        with pytest.raises(ValueError, match="banding needs"):
            MIPSIndex(WeightedMinHash(m=8, seed=0), bands=4, rows_per_band=4)

    def test_probe_all_finds_planted_neighbor(self):
        query, vectors = corpus_vectors(seed=4)
        index = MIPSIndex(WeightedMinHash(m=128, seed=1, L=1 << 16), bands=16, rows_per_band=4)
        for item_id, vector in vectors.items():
            index.add(item_id, vector)
        hits = index.query(query, top_k=3, probe_all=True)
        assert hits[0].item_id == "neighbor"

    def test_lsh_query_finds_planted_neighbor(self):
        query, vectors = corpus_vectors(seed=5)
        index = MIPSIndex(WeightedMinHash(m=128, seed=2, L=1 << 16), bands=32, rows_per_band=2)
        for item_id, vector in vectors.items():
            index.add(item_id, vector)
        hits = index.query(query, top_k=3)
        assert any(hit.item_id == "neighbor" for hit in hits)

    def test_lsh_prunes_candidates(self):
        query, vectors = corpus_vectors(seed=6, count=40)
        index = MIPSIndex(WeightedMinHash(m=128, seed=3, L=1 << 16), bands=8, rows_per_band=8)
        for item_id, vector in vectors.items():
            index.add(item_id, vector)
        shortlist = index.query(query, top_k=100)
        exhaustive = index.query(query, top_k=100, probe_all=True)
        assert len(shortlist) < len(exhaustive)

    def test_len(self):
        _, vectors = corpus_vectors(seed=7, count=5)
        index = MIPSIndex(WeightedMinHash(m=64, seed=0), bands=8, rows_per_band=4)
        for item_id, vector in vectors.items():
            index.add(item_id, vector)
        assert len(index) == 5

    def test_tune_report(self):
        index = MIPSIndex(WeightedMinHash(m=64, seed=0), bands=8, rows_per_band=4)
        report = index.tune_report([0.1, 0.9])
        assert "8 bands" in report
        assert "0.90" in report


class TestInsertBank:
    """Batch signature insertion straight from a SketchBank."""

    def build_bank(self, sketcher, vectors):
        return sketcher.sketch_batch(vectors)

    def test_insert_bank_matches_scalar_inserts(self):
        _, vectors = corpus_vectors(seed=7, count=12)
        sketcher = WeightedMinHash(m=32, seed=4, L=1 << 16)
        ids = list(vectors)
        bank = sketcher.sketch_batch(list(vectors.values()))

        scalar = SignatureLSH(bands=8, rows_per_band=4)
        for item_id, sketch in zip(ids, sketcher.bank_to_sketches(bank)):
            scalar.insert(item_id, sketch.hashes)
        batch = SignatureLSH(bands=8, rows_per_band=4)
        batch.insert_bank(ids, bank)

        assert len(batch) == len(scalar) == len(ids)
        probe = sketcher.bank_to_sketches(bank)
        for sketch in probe:
            assert batch.candidates(sketch.hashes) == scalar.candidates(sketch.hashes)

    def test_insert_bank_rejects_misaligned_ids(self):
        _, vectors = corpus_vectors(seed=8, count=5)
        sketcher = WeightedMinHash(m=16, seed=0, L=1 << 16)
        bank = sketcher.sketch_batch(list(vectors.values()))
        lsh = SignatureLSH(bands=4, rows_per_band=4)
        with pytest.raises(ValueError, match="ids for"):
            lsh.insert_bank(["only-one"], bank)

    def test_insert_bank_rejects_short_signatures(self):
        _, vectors = corpus_vectors(seed=9, count=4)
        sketcher = WeightedMinHash(m=8, seed=0, L=1 << 16)
        bank = sketcher.sketch_batch(list(vectors.values()))
        lsh = SignatureLSH(bands=4, rows_per_band=4)
        with pytest.raises(ValueError, match="banding needs"):
            lsh.insert_bank(list(vectors), bank)

    def test_add_batch_matches_scalar_adds(self):
        query, vectors = corpus_vectors(seed=10, count=20)
        scalar_index = MIPSIndex(
            WeightedMinHash(m=64, seed=5, L=1 << 16), bands=16, rows_per_band=4
        )
        for item_id, vector in vectors.items():
            scalar_index.add(item_id, vector)
        batch_index = MIPSIndex(
            WeightedMinHash(m=64, seed=5, L=1 << 16), bands=16, rows_per_band=4
        )
        batch_index.add_batch(list(vectors), list(vectors.values()))

        assert len(batch_index) == len(scalar_index)
        scalar_hits = scalar_index.query(query, top_k=5)
        batch_hits = batch_index.query(query, top_k=5)
        assert [(h.item_id, h.score) for h in scalar_hits] == [
            (h.item_id, h.score) for h in batch_hits
        ]

    def test_add_batch_rejects_misaligned(self):
        index = MIPSIndex(WeightedMinHash(m=64, seed=0, L=1 << 16))
        with pytest.raises(ValueError, match="ids for"):
            index.add_batch(["a"], [])

    def test_add_batch_empty_is_noop(self):
        index = MIPSIndex(WeightedMinHash(m=64, seed=0, L=1 << 16))
        index.add_batch([], [])
        assert len(index) == 0


class TestVectorizedCollisionProbability:
    """The S-curve accepts array similarity input (satellite)."""

    def test_array_matches_scalar_loop(self):
        sims = np.linspace(0.0, 1.0, 21)
        vectorized = collision_probability(sims, 4, 8)
        scalar = np.array([collision_probability(float(s), 4, 8) for s in sims])
        assert np.array_equal(vectorized, scalar)

    def test_scalar_input_returns_float(self):
        out = collision_probability(0.3, 2, 4)
        assert isinstance(out, float)

    def test_array_shape_preserved(self):
        sims = np.full((3, 5), 0.5)
        assert collision_probability(sims, 2, 4).shape == (3, 5)

    def test_array_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="similarity"):
            collision_probability(np.array([0.2, 1.2]), 2, 2)
        with pytest.raises(ValueError, match="similarity"):
            collision_probability(np.array([-0.1, 0.5]), 2, 2)


class TestTune:
    """The (bands, rows_per_band) auto-tuner (satellite)."""

    def test_meets_recall_target(self):
        bands, rows = tune(128, 0.5, 0.95)
        assert bands * rows <= 128
        assert collision_probability(0.5, rows, bands) >= 0.95

    def test_most_selective_feasible_split(self):
        # A deeper banding (more rows per band) of the same signature
        # must fall below the target — otherwise the tuner left
        # selectivity on the table.
        m, sim, target = 256, 0.5, 0.95
        bands, rows = tune(m, sim, target)
        deeper = rows + 1
        if deeper * (m // deeper) <= m and m // deeper >= 1:
            assert collision_probability(sim, deeper, m // deeper) < target

    def test_unreachable_target_falls_back_to_max_recall(self):
        # One band entry cannot give 0.99 recall at similarity 1e-6,
        # so the tuner returns the maximum-recall banding (m, 1).
        assert tune(8, 1e-6, 0.99) == (8, 1)

    def test_low_similarity_targets_give_single_row_bands(self):
        # At the serving default (containment 0.05) only r=1 banding
        # reaches 0.95 expected recall for typical signature lengths.
        assert tune(200, 0.05, 0.95) == (200, 1)

    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="positive"):
            tune(0, 0.5)
        with pytest.raises(ValueError, match="target_sim"):
            tune(16, 1.5)
        with pytest.raises(ValueError, match="target_recall"):
            tune(16, 0.5, 0.0)


class TestArrayBackedLSH:
    """The array-backed bucket rebuild (tentpole)."""

    def signatures(self, count, length, seed=0):
        return np.random.default_rng(seed).random((count, length))

    def test_candidates_many_matches_per_row_lookup(self):
        lsh = SignatureLSH(bands=8, rows_per_band=2)
        sigs = self.signatures(40, 16, seed=1)
        lsh.insert_signatures(sigs)
        probes = np.vstack([sigs[:7], self.signatures(5, 16, seed=2)])
        batched = lsh.candidates_many(probes)
        assert len(batched) == len(probes)
        for i, probe in enumerate(probes):
            assert np.array_equal(batched[i], lsh.candidate_rows(probe))

    def test_candidate_rows_ascending_unique(self):
        lsh = SignatureLSH(bands=4, rows_per_band=2)
        sigs = np.tile(self.signatures(1, 8, seed=3), (6, 1))
        lsh.insert_signatures(sigs)
        rows = lsh.candidate_rows(sigs[0])
        assert rows.tolist() == [0, 1, 2, 3, 4, 5]

    def test_self_collision_guaranteed(self):
        lsh = SignatureLSH(bands=6, rows_per_band=3)
        sigs = self.signatures(25, 18, seed=4)
        lsh.insert_signatures(sigs)
        for i in range(len(sigs)):
            assert i in lsh.candidate_rows(sigs[i]).tolist()

    def test_integer_signatures_supported(self):
        # ICWS-style uint64 sample keys band directly.
        keys = np.random.default_rng(5).integers(
            0, 2**63, size=(10, 12), dtype=np.uint64
        )
        lsh = SignatureLSH(bands=6, rows_per_band=2)
        lsh.insert_signatures(keys)
        assert 3 in lsh.candidate_rows(keys[3]).tolist()

    def test_empty_index_returns_empty(self):
        lsh = SignatureLSH(bands=4, rows_per_band=2)
        assert lsh.candidate_rows(self.signatures(1, 8)[0]).size == 0
        assert lsh.candidates(self.signatures(1, 8)[0]) == set()

    def test_short_signature_still_rejected_on_lookup(self):
        lsh = SignatureLSH(bands=4, rows_per_band=4)
        with pytest.raises(ValueError, match="banding needs"):
            lsh.candidate_rows(np.random.default_rng(0).random(8))

    def test_digest_matrix_round_trip(self):
        lsh = SignatureLSH(bands=8, rows_per_band=2)
        sigs = self.signatures(30, 16, seed=6)
        lsh.insert_signatures(sigs)
        restored = SignatureLSH.from_digests(8, 2, lsh.digest_matrix())
        assert len(restored) == len(lsh)
        probe = sigs[11]
        assert np.array_equal(
            restored.candidate_rows(probe), lsh.candidate_rows(probe)
        )

    def test_incremental_equals_scratch_byte_for_byte(self):
        sigs = self.signatures(24, 16, seed=7)
        scratch = SignatureLSH(bands=8, rows_per_band=2)
        scratch.insert_signatures(sigs)
        incremental = SignatureLSH(bands=8, rows_per_band=2)
        incremental.insert_signatures(sigs[:10])
        incremental.insert_signatures(sigs[10:17])
        incremental.insert_signatures(sigs[17:])
        assert (
            incremental.digest_matrix().tobytes()
            == scratch.digest_matrix().tobytes()
        )

    def test_from_digests_supports_further_inserts(self):
        sigs = self.signatures(12, 8, seed=8)
        lsh = SignatureLSH(bands=4, rows_per_band=2)
        lsh.insert_signatures(sigs[:6])
        restored = SignatureLSH.from_digests(4, 2, lsh.digest_matrix())
        restored.insert_signatures(sigs[6:])
        lsh.insert_signatures(sigs[6:])
        assert (
            restored.digest_matrix().tobytes() == lsh.digest_matrix().tobytes()
        )

    def test_interleaved_inserts_and_lookups_match_scratch(self):
        # Queries between appends exercise the incremental sorted-merge
        # path; results must match a from-scratch index at every step.
        sigs = self.signatures(30, 16, seed=9)
        grown = SignatureLSH(bands=8, rows_per_band=2)
        for lo, hi in [(0, 10), (10, 11), (11, 24), (24, 30)]:
            grown.insert_signatures(sigs[lo:hi])
            scratch = SignatureLSH(bands=8, rows_per_band=2)
            scratch.insert_signatures(sigs[:hi])
            for probe in sigs[:hi:5]:
                assert np.array_equal(
                    grown.candidate_rows(probe), scratch.candidate_rows(probe)
                )

    def test_from_digests_validates_shape(self):
        with pytest.raises(ValueError, match="digest matrix"):
            SignatureLSH.from_digests(4, 2, np.zeros((3, 5), dtype=np.uint64))


class TestMIPSQueryBatchIdentity:
    """MIPSIndex.query scores candidates in one estimate_many call and
    stays bitwise-identical to the scalar estimate loop (satellite)."""

    def scalar_reference(self, index, query, top_k, probe_all):
        query_sketch = index.sketcher.sketch(query)
        if probe_all:
            candidate_ids = list(index._sketches)
        else:
            candidate_ids = sorted(
                index._lsh.candidates(query_sketch.hashes), key=repr
            )
        hits = [
            MIPSHit(
                item_id=item_id,
                score=index.sketcher.estimate(
                    query_sketch, index._sketches[item_id]
                ),
            )
            for item_id in candidate_ids
        ]
        hits.sort(key=lambda hit: hit.score, reverse=True)
        return hits[:top_k]

    @pytest.mark.parametrize("probe_all", [False, True])
    def test_bitwise_identical_to_scalar_loop(self, probe_all):
        query, vectors = corpus_vectors(seed=11, count=25)
        index = MIPSIndex(
            WeightedMinHash(m=64, seed=6, L=1 << 16), bands=16, rows_per_band=4
        )
        index.add_batch(list(vectors), list(vectors.values()))
        batched = index.query(query, top_k=100, probe_all=probe_all)
        reference = self.scalar_reference(index, query, 100, probe_all)
        assert len(batched) == len(reference)
        for got, want in zip(batched, reference):
            assert got.item_id == want.item_id
            # Bitwise: the batch estimator must not drift by an ulp.
            assert np.float64(got.score).tobytes() == np.float64(
                want.score
            ).tobytes()

    def test_empty_candidate_set(self):
        index = MIPSIndex(
            WeightedMinHash(m=32, seed=0, L=1 << 16), bands=8, rows_per_band=4
        )
        query, vectors = corpus_vectors(seed=12, count=4)
        for item_id, vector in vectors.items():
            index.add(item_id, vector)
        disjoint = SparseVector(
            np.arange(5_000, 5_050), np.ones(50)
        )
        assert index.query(disjoint, top_k=5) == []
