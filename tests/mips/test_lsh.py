"""Tests for LSH banding and sketch-based MIPS retrieval."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.wmh import WeightedMinHash
from repro.mips.lsh import MIPSIndex, SignatureLSH, collision_probability
from repro.vectors.sparse import SparseVector


class TestCollisionProbability:
    def test_endpoints(self):
        assert collision_probability(0.0, 4, 8) == 0.0
        assert collision_probability(1.0, 4, 8) == 1.0

    def test_monotone_in_similarity(self):
        values = [collision_probability(s, 4, 8) for s in (0.1, 0.3, 0.5, 0.9)]
        assert values == sorted(values)

    def test_s_curve_shape(self):
        # More rows per band sharpen the threshold: low similarities are
        # suppressed, high similarities survive.
        assert collision_probability(0.2, 8, 4) < collision_probability(0.2, 2, 4)
        assert collision_probability(0.95, 8, 4) > 0.5

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            collision_probability(1.5, 2, 2)


class TestSignatureLSH:
    def test_rejects_bad_banding(self):
        with pytest.raises(ValueError):
            SignatureLSH(bands=0, rows_per_band=2)

    def test_rejects_short_signature(self):
        lsh = SignatureLSH(bands=4, rows_per_band=4)
        with pytest.raises(ValueError, match="banding needs"):
            lsh.insert("x", np.arange(8, dtype=np.float64))

    def test_identical_signatures_always_candidates(self):
        lsh = SignatureLSH(bands=4, rows_per_band=4)
        signature = np.random.default_rng(0).random(16)
        lsh.insert("a", signature)
        assert lsh.candidates(signature) == {"a"}

    def test_disjoint_signatures_rarely_candidates(self):
        rng = np.random.default_rng(1)
        lsh = SignatureLSH(bands=4, rows_per_band=4)
        lsh.insert("a", rng.random(16))
        assert lsh.candidates(rng.random(16)) == set()

    def test_len_counts_inserts(self):
        lsh = SignatureLSH(bands=2, rows_per_band=2)
        rng = np.random.default_rng(2)
        for item in range(5):
            lsh.insert(item, rng.random(4))
        assert len(lsh) == 5

    def test_empirical_recall_matches_s_curve(self):
        # Build signatures that agree per-entry with probability J and
        # check band-collision frequency against 1 - (1 - J^r)^b.
        rng = np.random.default_rng(3)
        bands, rows = 8, 2
        similarity = 0.6
        trials, hits = 400, 0
        for _ in range(trials):
            base = rng.random(bands * rows)
            other = base.copy()
            resample = rng.random(base.size) > similarity
            other[resample] = rng.random(int(resample.sum()))
            lsh = SignatureLSH(bands=bands, rows_per_band=rows)
            lsh.insert("base", base)
            hits += "base" in lsh.candidates(other)
        expected = collision_probability(similarity, rows, bands)
        assert hits / trials == pytest.approx(expected, abs=0.08)


def corpus_vectors(seed: int = 0, count: int = 30):
    """A corpus plus a query with one planted near-duplicate."""
    rng = np.random.default_rng(seed)
    vectors = {}
    base_indices = rng.permutation(2_000)[:150]
    base_values = rng.normal(size=150)
    query = SparseVector(base_indices, base_values)
    # Planted neighbor: 95% of the query's mass.
    keep = rng.random(150) < 0.95
    vectors["neighbor"] = SparseVector(base_indices[keep], base_values[keep])
    for item in range(count - 1):
        idx = rng.permutation(2_000)[:150]
        vectors[f"random-{item}"] = SparseVector(idx, rng.normal(size=150))
    return query, vectors


class TestMIPSIndex:
    def test_rejects_banding_beyond_signature(self):
        with pytest.raises(ValueError, match="banding needs"):
            MIPSIndex(WeightedMinHash(m=8, seed=0), bands=4, rows_per_band=4)

    def test_probe_all_finds_planted_neighbor(self):
        query, vectors = corpus_vectors(seed=4)
        index = MIPSIndex(WeightedMinHash(m=128, seed=1, L=1 << 16), bands=16, rows_per_band=4)
        for item_id, vector in vectors.items():
            index.add(item_id, vector)
        hits = index.query(query, top_k=3, probe_all=True)
        assert hits[0].item_id == "neighbor"

    def test_lsh_query_finds_planted_neighbor(self):
        query, vectors = corpus_vectors(seed=5)
        index = MIPSIndex(WeightedMinHash(m=128, seed=2, L=1 << 16), bands=32, rows_per_band=2)
        for item_id, vector in vectors.items():
            index.add(item_id, vector)
        hits = index.query(query, top_k=3)
        assert any(hit.item_id == "neighbor" for hit in hits)

    def test_lsh_prunes_candidates(self):
        query, vectors = corpus_vectors(seed=6, count=40)
        index = MIPSIndex(WeightedMinHash(m=128, seed=3, L=1 << 16), bands=8, rows_per_band=8)
        for item_id, vector in vectors.items():
            index.add(item_id, vector)
        shortlist = index.query(query, top_k=100)
        exhaustive = index.query(query, top_k=100, probe_all=True)
        assert len(shortlist) < len(exhaustive)

    def test_len(self):
        _, vectors = corpus_vectors(seed=7, count=5)
        index = MIPSIndex(WeightedMinHash(m=64, seed=0), bands=8, rows_per_band=4)
        for item_id, vector in vectors.items():
            index.add(item_id, vector)
        assert len(index) == 5

    def test_tune_report(self):
        index = MIPSIndex(WeightedMinHash(m=64, seed=0), bands=8, rows_per_band=4)
        report = index.tune_report([0.1, 0.9])
        assert "8 bands" in report
        assert "0.90" in report


class TestInsertBank:
    """Batch signature insertion straight from a SketchBank."""

    def build_bank(self, sketcher, vectors):
        return sketcher.sketch_batch(vectors)

    def test_insert_bank_matches_scalar_inserts(self):
        _, vectors = corpus_vectors(seed=7, count=12)
        sketcher = WeightedMinHash(m=32, seed=4, L=1 << 16)
        ids = list(vectors)
        bank = sketcher.sketch_batch(list(vectors.values()))

        scalar = SignatureLSH(bands=8, rows_per_band=4)
        for item_id, sketch in zip(ids, sketcher.bank_to_sketches(bank)):
            scalar.insert(item_id, sketch.hashes)
        batch = SignatureLSH(bands=8, rows_per_band=4)
        batch.insert_bank(ids, bank)

        assert len(batch) == len(scalar) == len(ids)
        probe = sketcher.bank_to_sketches(bank)
        for sketch in probe:
            assert batch.candidates(sketch.hashes) == scalar.candidates(sketch.hashes)

    def test_insert_bank_rejects_misaligned_ids(self):
        _, vectors = corpus_vectors(seed=8, count=5)
        sketcher = WeightedMinHash(m=16, seed=0, L=1 << 16)
        bank = sketcher.sketch_batch(list(vectors.values()))
        lsh = SignatureLSH(bands=4, rows_per_band=4)
        with pytest.raises(ValueError, match="ids for"):
            lsh.insert_bank(["only-one"], bank)

    def test_insert_bank_rejects_short_signatures(self):
        _, vectors = corpus_vectors(seed=9, count=4)
        sketcher = WeightedMinHash(m=8, seed=0, L=1 << 16)
        bank = sketcher.sketch_batch(list(vectors.values()))
        lsh = SignatureLSH(bands=4, rows_per_band=4)
        with pytest.raises(ValueError, match="banding needs"):
            lsh.insert_bank(list(vectors), bank)

    def test_add_batch_matches_scalar_adds(self):
        query, vectors = corpus_vectors(seed=10, count=20)
        scalar_index = MIPSIndex(
            WeightedMinHash(m=64, seed=5, L=1 << 16), bands=16, rows_per_band=4
        )
        for item_id, vector in vectors.items():
            scalar_index.add(item_id, vector)
        batch_index = MIPSIndex(
            WeightedMinHash(m=64, seed=5, L=1 << 16), bands=16, rows_per_band=4
        )
        batch_index.add_batch(list(vectors), list(vectors.values()))

        assert len(batch_index) == len(scalar_index)
        scalar_hits = scalar_index.query(query, top_k=5)
        batch_hits = batch_index.query(query, top_k=5)
        assert [(h.item_id, h.score) for h in scalar_hits] == [
            (h.item_id, h.score) for h in batch_hits
        ]

    def test_add_batch_rejects_misaligned(self):
        index = MIPSIndex(WeightedMinHash(m=64, seed=0, L=1 << 16))
        with pytest.raises(ValueError, match="ids for"):
            index.add_batch(["a"], [])

    def test_add_batch_empty_is_noop(self):
        index = MIPSIndex(WeightedMinHash(m=64, seed=0, L=1 << 16))
        index.add_batch([], [])
        assert len(index) == 0
