"""Snapshot consistency: whole-generation reads under live writers."""

from __future__ import annotations

import threading
import time

import pytest

from repro import faults
from repro.core.wmh import WeightedMinHash
from repro.serve import QueryServer, ServeClient, ServerConfig
from repro.serve.snapshot import SnapshotManager
from repro.store import LakeStore, QuerySession, StoreError, store_generation

from .conftest import (
    hit_tuples,
    hits_fingerprint,
    make_lake_tables,
    make_query,
    make_store,
)


def expected_answer(store_dir, query, top_k=10):
    """(generation, fingerprint) a fresh open serves right now."""
    with LakeStore.open(store_dir) as store:
        session = QuerySession(store, min_containment=0.05)
        hits = session.search(query, "signal", top_k=top_k)
        return store.generation, tuple(hit_tuples(hits))


class TestSnapshotRefcounting:
    def test_store_closes_only_after_last_release(self, serve_store):
        manager = SnapshotManager(serve_store).start(reloader=False)
        held = manager.current()
        manager.stop()  # retires the manager's own reference
        # The in-flight holder still gets whole-generation service.
        hits = held.session.search(make_query(), "signal", top_k=5)
        assert hits
        held.release()  # last reference: store closes now
        with pytest.raises(StoreError):
            held.acquire()

    def test_swap_retires_old_snapshot(self, serve_store):
        manager = SnapshotManager(serve_store, poll_interval_s=30.0)
        manager.start(reloader=False)
        old = manager.current()
        old_generation = old.generation
        with LakeStore.open(serve_store) as store:
            store.append(make_lake_tables(count=1, seed=9))
        assert manager.maybe_reload() is True
        fresh = manager.current()
        assert fresh.generation != old_generation
        assert fresh.generation == store_generation(serve_store)
        fresh.release()
        old.release()
        manager.stop()

    def test_failed_swap_keeps_old_snapshot_serving(self, serve_store):
        manager = SnapshotManager(serve_store, poll_interval_s=30.0)
        manager.start(reloader=False)
        generation = manager.generation()
        with LakeStore.open(serve_store) as store:
            store.append(make_lake_tables(count=1, seed=9))
        with faults.failpoints("serve.snapshot_swap=raise"):
            with pytest.raises(faults.FaultInjected):
                manager.maybe_reload()
        # Old generation still served; queries still answered.
        assert manager.generation() == generation
        with manager.current() as snapshot:
            assert snapshot.session.search(make_query(), "signal", top_k=3)
        # Disarmed, the next poll completes the swap.
        assert manager.maybe_reload() is True
        assert manager.generation() != generation
        manager.stop()


class TestWholeGenerationReads:
    def test_reader_never_sees_partial_generation(self, tmp_path):
        """A reader querying continuously while a writer appends then
        compacts must see only answers some committed generation
        serves — never a hybrid of two catalogs."""
        store_dir = make_store(tmp_path / "lake", make_lake_tables(count=3))
        query = make_query()

        # Committed-generation answer book, extended after every commit.
        answers = {}

        def record():
            generation, fingerprint = expected_answer(store_dir, query)
            answers[generation] = fingerprint

        record()
        config = ServerConfig(poll_interval_s=0.05)
        with QueryServer(store_dir, config) as server:
            client = ServeClient(server.url)
            seen: list[tuple[str, tuple]] = []
            failures: list[Exception] = []
            stop = threading.Event()

            def reader():
                while not stop.is_set():
                    try:
                        response = client.query(query, "signal")
                    except Exception as exc:  # noqa: BLE001 - recorded, asserted below
                        failures.append(exc)
                        return
                    seen.append(
                        (response["generation"], hits_fingerprint(response["hits"]))
                    )

            thread = threading.Thread(target=reader)
            thread.start()
            try:
                with LakeStore.open(store_dir) as writer:
                    writer.append(make_lake_tables(count=2, seed=7))
                record()
                time.sleep(0.3)  # let the reloader pick up the append
                with LakeStore.open(store_dir) as writer:
                    writer.append(make_lake_tables(count=2, seed=8))
                    writer.compact()
                record()
                # Wait until the reloader swapped to the final commit
                # and the reader got a few whole post-swap queries in.
                final = store_generation(store_dir)
                deadline = time.monotonic() + 10.0
                while (
                    server.snapshots.generation() != final
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.02)
                swapped_at = len(seen)
                while (
                    len(seen) < swapped_at + 3 and time.monotonic() < deadline
                ):
                    time.sleep(0.02)
            finally:
                stop.set()
                thread.join(timeout=10.0)

            assert not failures, failures[0]
            assert seen, "reader made no queries"
            for generation, fingerprint in seen:
                assert generation in answers, (
                    f"served generation {generation} was never committed"
                )
                assert fingerprint == answers[generation], (
                    f"generation {generation} served a result that does not "
                    f"match what that committed generation serves"
                )
            # The reloader must have actually swapped: the last queries
            # see the final generation, not the boot-time one.
            final_generation = store_generation(store_dir)
            assert seen[-1][0] == final_generation

    def test_generation_token_tracks_commits(self, tmp_path):
        store_dir = make_store(tmp_path / "lake", make_lake_tables(count=2))
        g0 = store_generation(store_dir)
        assert g0 is not None
        with LakeStore.open(store_dir) as store:
            assert store.generation == g0
            store.append(make_lake_tables(count=1, seed=5))
            g1 = store.generation
            assert g1 != g0
            store.compact()
            g2 = store.generation
        assert g2 not in (g0, g1)
        assert store_generation(store_dir) == g2

    def test_external_append_triggers_hot_swap(self, tmp_path):
        store_dir = make_store(tmp_path / "lake", make_lake_tables(count=2))
        config = ServerConfig(poll_interval_s=0.05)
        with QueryServer(store_dir, config) as server:
            client = ServeClient(server.url)
            before = client.healthz()
            with LakeStore.create(  # same sketcher family, new tables
                tmp_path / "scratch", WeightedMinHash(m=64, seed=3, L=1 << 16)
            ):
                pass  # exercise an unrelated directory: no swap from it
            with LakeStore.open(store_dir) as writer:
                writer.append(make_lake_tables(count=2, seed=11))
            deadline = time.monotonic() + 5.0
            after = client.healthz()
            while (
                after["generation"] == before["generation"]
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
                after = client.healthz()
            assert after["generation"] != before["generation"]
            assert after["tables"] == before["tables"] + 2
