"""End-to-end tests for the in-process query service."""

from __future__ import annotations

import threading
import time

import pytest

from repro import faults
from repro.serve import QueryServer, ServeClient, ServeError, ServerConfig
from repro.store import LakeStore, QuerySession, StoreError

from .conftest import hit_tuples, hits_fingerprint, make_query


@pytest.fixture
def server(serve_store):
    with QueryServer(serve_store, ServerConfig()) as srv:
        yield srv


def direct_hits(store_dir, query, column="signal", top_k=10, **kw):
    """The ground truth: the same query through a direct session."""
    with LakeStore.open(store_dir) as store:
        session = QuerySession(store, **kw)
        return session.search(query, column, top_k=top_k)


class TestQueries:
    def test_served_result_is_bit_identical_to_direct(self, serve_store, server):
        query = make_query()
        expected = hit_tuples(direct_hits(serve_store, query))
        response = ServeClient(server.url).query(query, "signal")
        assert response["query"] == query.name
        assert response["degraded"] is False
        assert response["warnings"] == []
        assert response["generation"] == server.snapshots.generation()
        # JSON floats round-trip exactly: scores compare with ==.
        assert list(hits_fingerprint(response["hits"])) == expected

    def test_concurrent_clients_get_identical_answers(self, serve_store, server):
        query = make_query()
        expected = hit_tuples(direct_hits(serve_store, query))
        client = ServeClient(server.url)
        results: list = [None] * 8

        def run(i: int) -> None:
            results[i] = client.query(query, "signal")

        threads = [threading.Thread(target=run, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for response in results:
            assert list(hits_fingerprint(response["hits"])) == expected

    def test_unbatched_server_serves_identically(self, serve_store):
        query = make_query()
        expected = hit_tuples(direct_hits(serve_store, query))
        config = ServerConfig(max_batch=1)
        with QueryServer(serve_store, config) as server:
            response = ServeClient(server.url).query(query, "signal")
        assert list(hits_fingerprint(response["hits"])) == expected

    def test_request_id_round_trips(self, server):
        response = ServeClient(server.url).query(
            make_query(), "signal", request_id="rid-42"
        )
        assert response["request_id"] == "rid-42"


class TestIntrospection:
    def test_healthz_reports_ok(self, server):
        health = ServeClient(server.url).healthz()
        assert health["status"] == "ok"
        assert health["tables"] == 5
        assert health["generation"]
        assert health["degraded"] == []

    def test_stats_carries_serve_and_telemetry(self, server):
        client = ServeClient(server.url)
        client.query(make_query(), "signal")
        stats = client.stats()
        assert stats["serve"]["max_batch"] == 8
        assert "telemetry" in stats
        counters = stats["telemetry"]["counters"]
        assert counters.get("serve.requests", 0) >= 1

    def test_unknown_path_is_404(self, server):
        status, body = ServeClient(server.url)._request("GET", "/nope")
        assert status == 404 and body["error"] == "not_found"


class TestTypedFailures:
    def test_bad_column_is_400(self, server):
        with pytest.raises(ServeError) as err:
            ServeClient(server.url).query(make_query(), "no_such_column")
        assert err.value.status == 400
        assert err.value.code == "bad_request"

    def test_nonpositive_deadline_is_400(self, server):
        with pytest.raises(ServeError) as err:
            ServeClient(server.url).query(make_query(), "signal", deadline_ms=-5)
        assert err.value.status == 400

    def test_deadline_expiry_is_typed_504(self, server):
        # Stall the batcher long enough that a 100ms deadline must pass.
        with faults.failpoints("serve.batch=sleep:0.4"):
            with pytest.raises(ServeError) as err:
                ServeClient(server.url).query(
                    make_query(), "signal", deadline_ms=100
                )
        assert err.value.status == 504
        assert err.value.code == "deadline"

    def test_overload_sheds_typed_503(self, serve_store):
        config = ServerConfig(max_queue=2, max_batch=1)
        with QueryServer(serve_store, config) as server:
            client = ServeClient(server.url)
            outcomes: list = [None] * 6
            # Hold the batcher on a long sleep so the queue backs up.
            with faults.failpoints("serve.batch=sleep:0.6"):

                def run(i: int) -> None:
                    try:
                        outcomes[i] = client.query(
                            make_query(seed=i),
                            "signal",
                            deadline_ms=5_000,
                            max_attempts=1,
                        )
                    except ServeError as exc:
                        outcomes[i] = exc

                threads = [
                    threading.Thread(target=run, args=(i,)) for i in range(6)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            ok = [o for o in outcomes if isinstance(o, dict)]
            shed = [o for o in outcomes if isinstance(o, ServeError)]
            assert shed, "an overloaded 2-deep queue must shed"
            # Sheds are retryable: single-attempt clients surface them
            # as retries_exhausted with the shed recorded as the cause.
            for exc in shed:
                assert exc.code in ("shed", "retries_exhausted")
            assert len(ok) + len(shed) == 6

    def test_batch_exception_is_typed_500_then_recovers(self, server):
        client = ServeClient(server.url, backoff_base_s=0.01)
        with faults.failpoints("serve.batch=raise@1"):
            # First attempt hits the raise; the retry succeeds.
            response = client.query(make_query(), "signal")
        assert response["hits"]

    def test_draining_sheds_new_queries(self, serve_store):
        with QueryServer(serve_store, ServerConfig()) as server:
            client = ServeClient(server.url)
            server.draining = True
            assert client.healthz()["status"] == "draining"
            with pytest.raises(ServeError) as err:
                client.query(make_query(), "signal", max_attempts=1)
            assert err.value.code == "retries_exhausted"
            assert "draining" in str(err.value)


class TestDegradedServing:
    def test_corrupt_shard_is_served_degraded(self, serve_store):
        # Corrupt the newest shard: salvage drops it and serves the rest.
        shards = sorted(serve_store.glob("shard-*.rpro"))
        blob = bytearray(shards[-1].read_bytes())
        blob[-5] ^= 0xFF
        shards[-1].write_bytes(bytes(blob))

        with QueryServer(serve_store, ServerConfig()) as server:
            client = ServeClient(server.url)
            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["read_only"] is True
            assert any("skipped" in note for note in health["degraded"])
            response = client.query(make_query(), "signal")
            assert response["degraded"] is True
            assert any(
                note.startswith("store.degraded:") for note in response["warnings"]
            )

    def test_no_salvage_refuses_damaged_store(self, serve_store):
        shards = sorted(serve_store.glob("shard-*.rpro"))
        blob = bytearray(shards[-1].read_bytes())
        blob[-5] ^= 0xFF
        shards[-1].write_bytes(bytes(blob))
        with pytest.raises(StoreError):
            QueryServer(serve_store, ServerConfig(salvage=False)).start()


class TestDrain:
    def test_drain_is_clean_when_idle(self, serve_store):
        server = QueryServer(serve_store, ServerConfig()).start()
        client = ServeClient(server.url)
        client.query(make_query(), "signal")
        assert server.drain() is True
        assert server.inflight() == 0

    def test_drain_finishes_inflight_work(self, serve_store):
        server = QueryServer(serve_store, ServerConfig()).start()
        client = ServeClient(server.url)
        result: list = []
        with faults.failpoints("serve.batch=sleep:0.3"):
            t = threading.Thread(
                target=lambda: result.append(client.query(make_query(), "signal"))
            )
            t.start()
            # Give the request time to be admitted, then drain under it.
            time.sleep(0.1)
            assert server.drain(deadline_s=5.0) is True
            t.join(timeout=5.0)
        assert result and result[0]["hits"]
