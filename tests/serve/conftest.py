"""Shared fixtures for the query-service test suite.

Two harnesses:

* ``serve_store`` / ``query_table`` build a small deterministic lake
  and a query table whose answers the tests pin against direct
  :class:`QuerySession` results;
* ``spawn_server`` runs ``python -m repro.serve`` in a real subprocess
  (optionally with armed failpoints) and parses the ``serving ... at
  URL`` line — the torture tests kill that process mid-request and
  assert the retry client still recovers bit-identical answers.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.core.wmh import WeightedMinHash
from repro.datasearch.table import Table
from repro.store import LakeStore

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(autouse=True)
def _disarm_failpoints():
    """No armed failpoint ever leaks between tests."""
    yield
    faults.registry._reset_for_tests()


def make_lake_tables(count: int = 5, seed: int = 0, rows: int = 120) -> list[Table]:
    rng = np.random.default_rng(seed)
    tables = []
    for i in range(count):
        keys = [f"k{j}" for j in rng.choice(400, size=rows, replace=False)]
        tables.append(
            Table(
                f"lake{seed}_{i}",
                keys,
                {"value": rng.normal(size=rows), "extra": rng.normal(size=rows)},
            )
        )
    return tables


def make_query(seed: int = 42, rows: int = 150) -> Table:
    rng = np.random.default_rng(seed)
    keys = [f"k{j}" for j in rng.choice(400, size=rows, replace=False)]
    return Table(f"query{seed}", keys, {"signal": rng.normal(size=rows)})


def make_store(path: Path, tables: list[Table] | None = None) -> Path:
    """Create a lake at ``path`` and return the path (store closed)."""
    with LakeStore.create(path, WeightedMinHash(m=64, seed=3, L=1 << 16)) as store:
        store.append(tables if tables is not None else make_lake_tables())
    return path


@pytest.fixture
def serve_store(tmp_path) -> Path:
    return make_store(tmp_path / "lake")


def norm_float(value):
    """NaN-safe exact comparison key (NaN != NaN under ``==``)."""
    if isinstance(value, float) and value != value:
        return "nan"
    return value


def hits_fingerprint(hits: list[dict]) -> tuple:
    """Comparable identity of a JSON hit list (exact float round-trip)."""
    return tuple(
        (
            h["table"],
            h["column"],
            norm_float(h["score"]),
            norm_float(h["correlation"]),
            norm_float(h["join_size"]),
            norm_float(h["containment"]),
        )
        for h in hits
    )


def hit_tuples(hits) -> list[tuple]:
    """The same identity for direct :class:`SearchHit` lists."""
    return [
        (
            h.table_name,
            h.column,
            norm_float(float(h.score)),
            norm_float(float(h.correlation)),
            norm_float(float(h.join_size)),
            norm_float(float(h.containment)),
        )
        for h in hits
    ]


def spawn_server(
    store_dir: Path,
    *args: str,
    failpoints: str | None = None,
) -> tuple[subprocess.Popen, str]:
    """Start ``python -m repro.serve`` and return ``(process, url)``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.FAILPOINTS_ENV, None)
    if failpoints is not None:
        env[faults.FAILPOINTS_ENV] = failpoints
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", str(store_dir), *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("serving "):
        proc.kill()
        raise AssertionError(
            f"server failed to start: {line!r}\n{proc.stderr.read()}"
        )
    return proc, line.split()[-1]


def stop_server(proc: subprocess.Popen, timeout: float = 15.0) -> int:
    """SIGTERM + wait; returns the exit code (kills on timeout)."""
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=5.0)
    return proc.returncode
