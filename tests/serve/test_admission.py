"""Unit tests for admission control: shedding, triage, grouping."""

from __future__ import annotations

import time

import pytest

from repro.serve.admission import (
    AdmissionQueue,
    MicroBatcher,
    ServeRequest,
    group_requests,
)
from repro.store import LakeStore, QuerySession

from .conftest import make_query, make_store


def make_request(deadline_s: float = 10.0, **kw) -> ServeRequest:
    kw.setdefault("table", make_query())
    kw.setdefault("column", "signal")
    kw.setdefault("deadline", time.monotonic() + deadline_s)
    return ServeRequest(**kw)


class FakeSnapshot:
    """A snapshot stub over a real open store (no server needed)."""

    def __init__(self, store: LakeStore) -> None:
        self.session = QuerySession(store, min_containment=0.0)
        self.generation = "g-test"
        self.degraded = []
        self.read_only = False
        self.released = 0

    def release(self) -> None:
        self.released += 1


class TestAdmissionQueue:
    def test_full_queue_sheds_immediately(self):
        q = AdmissionQueue(max_depth=2)
        assert q.submit(make_request())
        assert q.submit(make_request())
        shed = make_request()
        assert not q.submit(shed)
        assert shed.done.is_set()
        status, code, message = shed.error
        assert (status, code) == (503, "shed")
        assert "queue full" in message

    def test_drain_preserves_fifo_order(self):
        q = AdmissionQueue(max_depth=8)
        requests = [make_request() for _ in range(5)]
        for request in requests:
            q.submit(request)
        drained = q.drain_nowait(limit=10)
        assert [r.request_id for r in drained] == [
            r.request_id for r in requests
        ]


class TestGrouping:
    def test_groups_by_knobs(self):
        a = make_request(top_k=5)
        b = make_request(top_k=5)
        c = make_request(top_k=9)
        d = make_request(top_k=5, by="inner_product")
        groups = group_requests([a, b, c, d])
        assert len(groups) == 3
        assert groups[(5, "correlation", None)] == [a, b]
        assert groups[(9, "correlation", None)] == [c]
        assert groups[(5, "inner_product", None)] == [d]

    def test_order_within_group_is_fifo(self):
        requests = [make_request(top_k=3) for _ in range(4)]
        (group,) = group_requests(requests).values()
        assert group == requests


class TestTriage:
    def batcher(self, queue_wait_ms: float = 2_000.0) -> MicroBatcher:
        admission = AdmissionQueue(max_depth=8, queue_wait_ms=queue_wait_ms)
        return MicroBatcher(admission, snapshot_source=lambda: None)

    def test_expired_deadline_is_typed_504(self):
        batcher = self.batcher()
        dead = make_request(deadline_s=-0.1)
        live = make_request(deadline_s=10.0)
        assert batcher._triage([dead, live]) == [live]
        assert dead.error[:2] == (504, "deadline")
        assert "queued" in dead.error[2]

    def test_queue_wait_budget_is_typed_shed(self):
        batcher = self.batcher(queue_wait_ms=50.0)
        stale = make_request(deadline_s=10.0)
        stale.enqueued_at = time.monotonic() - 0.2
        assert batcher._triage([stale]) == []
        assert stale.error[:2] == (503, "shed")

    def test_abandoned_requests_are_dropped_silently(self):
        batcher = self.batcher()
        gone = make_request()
        gone.abandoned = True
        assert batcher._triage([gone]) == []
        assert gone.error is None and not gone.done.is_set()

    def test_max_batch_must_be_positive(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(AdmissionQueue(), lambda: None, max_batch=0)


class TestExecution:
    def test_batch_executes_against_one_snapshot(self, tmp_path):
        with LakeStore.open(make_store(tmp_path / "lake")) as store:
            snapshot = FakeSnapshot(store)
            batcher = MicroBatcher(
                AdmissionQueue(), snapshot_source=lambda: snapshot
            )
            requests = [
                make_request(table=make_query(seed=s), top_k=5)
                for s in (1, 2, 3)
            ]
            batcher._execute(list(requests))
            assert snapshot.released == 1
            direct = snapshot.session.search_many(
                [r.table for r in requests], "signal", top_k=5
            )
            for request, expected in zip(requests, direct):
                assert request.error is None
                assert request.generation == "g-test"
                assert [(h.table_name, h.score) for h in request.hits] == [
                    (h.table_name, h.score) for h in expected
                ]

    def test_snapshot_failure_is_typed_503(self):
        def boom():
            raise RuntimeError("no store")

        batcher = MicroBatcher(AdmissionQueue(), snapshot_source=boom)
        request = make_request()
        batcher._execute([request])
        assert request.error[:2] == (503, "unavailable")

    def test_stop_fails_leftover_requests(self):
        admission = AdmissionQueue(max_depth=8)
        batcher = MicroBatcher(admission, snapshot_source=lambda: None)
        leftovers = [make_request() for _ in range(3)]
        for request in leftovers:
            admission.submit(request)
        batcher.stop()  # never started: queue drains at stop
        for request in leftovers:
            assert request.error[:2] == (503, "draining")
