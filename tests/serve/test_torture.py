"""Serve torture: kill the service at its failpoints, clients recover.

The invariant mirrors the store torture suite one level up the stack:
queries are pure reads over committed generations, so killing the
server at any serve failpoint and restarting it must cost a client at
most a retry — the recovered answer is **bit-identical** to the one an
undisturbed server returns.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys

import pytest

from repro import faults
from repro.serve import QueryServer, RetriesExhausted, ServeClient, ServerConfig

from .conftest import (
    REPO_SRC,
    hits_fingerprint,
    make_query,
    spawn_server,
    stop_server,
)


def free_port() -> int:
    """Reserve a port number to reuse across a kill/restart pair."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def baseline_answer(store_dir, query) -> tuple:
    """The undisturbed server's answer for ``query`` (via HTTP)."""
    with QueryServer(store_dir, ServerConfig()) as server:
        response = ServeClient(server.url).query(query, "signal")
    return hits_fingerprint(response["hits"])


@pytest.mark.parametrize(
    "spec",
    [
        "serve.request=crash@2",
        "serve.batch=crash@2",
    ],
)
def test_crash_then_restart_recovers_bit_identical(serve_store, spec):
    """Kill the server mid-request; a retrying client pointed at the
    restarted server (same port) gets the exact baseline answer."""
    query = make_query()
    expected = baseline_answer(serve_store, query)
    port = free_port()

    proc, url = spawn_server(serve_store, "--port", str(port), failpoints=spec)
    client = ServeClient(url, backoff_base_s=0.02, seed=0)
    try:
        first = client.query(query, "signal")  # hit 1: passes through
        assert hits_fingerprint(first["hits"]) == expected
        # Hit 2 fires the crash: the process dies mid-request.  A
        # single-shot client sees only transport failures.
        with pytest.raises(RetriesExhausted):
            client.query(query, "signal", max_attempts=2)
        assert proc.wait(timeout=10.0) == faults.CRASH_EXIT_CODE
    finally:
        stop_server(proc)

    # Restart on the same port, no faults: the retrying client's next
    # attempt recovers the bit-identical answer.
    proc, url = spawn_server(serve_store, "--port", str(port))
    try:
        client.wait_ready()
        recovered = client.query(query, "signal")
        assert hits_fingerprint(recovered["hits"]) == expected
    finally:
        assert stop_server(proc) == 0


def test_sigterm_drains_cleanly(serve_store):
    proc, url = spawn_server(serve_store)
    client = ServeClient(url)
    response = client.query(make_query(), "signal")
    assert response["hits"]
    assert stop_server(proc) == 0
    assert "drained (clean=True)" in proc.stdout.read()


def test_drain_failpoint_still_exits(serve_store):
    """A fault raised inside the drain path must not wedge shutdown."""
    proc, url = spawn_server(serve_store, failpoints="serve.drain=sleep:0.2")
    ServeClient(url).query(make_query(), "signal")
    assert stop_server(proc) == 0


def test_batch_raise_recovers_in_process(serve_store):
    """A raising batch is a typed 500 the client retries through."""
    query = make_query()
    expected = baseline_answer(serve_store, query)
    with QueryServer(serve_store, ServerConfig()) as server:
        client = ServeClient(server.url, backoff_base_s=0.01, seed=0)
        with faults.failpoints("serve.batch=raise@1"):
            response = client.query(query, "signal")
    assert hits_fingerprint(response["hits"]) == expected


def test_dead_server_yields_retries_exhausted(serve_store):
    proc, url = spawn_server(serve_store)
    assert stop_server(proc) == 0
    client = ServeClient(url, max_attempts=2, backoff_base_s=0.01, timeout_s=2.0)
    with pytest.raises(RetriesExhausted):
        client.query(make_query(), "signal")


def test_server_refuses_non_store_directory(tmp_path):
    result = subprocess.run(
        [sys.executable, "-m", "repro.serve", str(tmp_path / "not-a-store")],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": REPO_SRC},
        timeout=60,
    )
    assert result.returncode == 1
    assert "not a lake store" in result.stderr
