"""Tests for the SparseVector data model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.vectors.sparse import SparseVector


class TestConstruction:
    def test_sorts_indices(self):
        v = SparseVector([5, 1, 3], [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(v.indices, [1, 3, 5])
        np.testing.assert_array_equal(v.values, [2.0, 3.0, 1.0])

    def test_drops_exact_zeros(self):
        v = SparseVector([1, 2, 3], [1.0, 0.0, 2.0])
        assert v.nnz == 2
        np.testing.assert_array_equal(v.indices, [1, 3])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            SparseVector([1, 1], [1.0, 2.0])

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError, match="non-negative"):
            SparseVector([-1], [1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            SparseVector([1, 2], [1.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            SparseVector([1], [float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            SparseVector([1], [float("inf")])

    def test_rejects_index_beyond_dimension(self):
        with pytest.raises(ValueError, match="outside dimension"):
            SparseVector([10], [1.0], n=10)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            SparseVector(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_immutable_attributes(self):
        v = SparseVector([1], [1.0])
        with pytest.raises(AttributeError):
            v.n = 5

    def test_immutable_arrays(self):
        v = SparseVector([1], [1.0])
        with pytest.raises(ValueError):
            v.values[0] = 2.0


class TestConstructors:
    def test_from_dense_roundtrip(self):
        dense = np.array([0.0, 1.5, 0.0, -2.0])
        v = SparseVector.from_dense(dense)
        assert v.n == 4
        np.testing.assert_array_equal(v.to_dense(), dense)

    def test_from_dict(self):
        v = SparseVector.from_dict({3: 1.0, 1: 2.0})
        np.testing.assert_array_equal(v.indices, [1, 3])

    def test_from_dict_empty(self):
        assert SparseVector.from_dict({}).nnz == 0

    def test_from_pairs_aggregates_duplicates(self):
        v = SparseVector.from_pairs([1, 1, 2], [1.0, 2.0, 4.0])
        assert v[1] == 3.0
        assert v[2] == 4.0

    def test_from_pairs_cancellation_drops_entry(self):
        v = SparseVector.from_pairs([1, 1], [1.0, -1.0])
        assert v.nnz == 0

    def test_zero(self):
        z = SparseVector.zero(n=10)
        assert z.nnz == 0
        assert z.norm() == 0.0


class TestNormsAndAlgebra:
    def test_norm(self):
        v = SparseVector([1, 2], [3.0, 4.0])
        assert v.norm() == pytest.approx(5.0)

    def test_norm1(self):
        v = SparseVector([1, 2], [3.0, -4.0])
        assert v.norm1() == pytest.approx(7.0)

    def test_norm_inf(self):
        v = SparseVector([1, 2], [3.0, -4.0])
        assert v.norm_inf() == pytest.approx(4.0)

    def test_norm_inf_zero_vector(self):
        assert SparseVector.zero().norm_inf() == 0.0

    def test_dot_disjoint(self):
        a = SparseVector([1, 2], [1.0, 1.0])
        b = SparseVector([3, 4], [1.0, 1.0])
        assert a.dot(b) == 0.0

    def test_dot_overlapping(self):
        a = SparseVector([1, 2, 3], [1.0, 2.0, 3.0])
        b = SparseVector([2, 3, 4], [5.0, 7.0, 11.0])
        assert a.dot(b) == pytest.approx(2 * 5 + 3 * 7)

    def test_dot_matches_dense(self):
        rng = np.random.default_rng(0)
        dense_a = rng.normal(size=50) * (rng.random(50) < 0.4)
        dense_b = rng.normal(size=50) * (rng.random(50) < 0.4)
        a = SparseVector.from_dense(dense_a)
        b = SparseVector.from_dense(dense_b)
        assert a.dot(b) == pytest.approx(float(dense_a @ dense_b))

    def test_scaled(self):
        v = SparseVector([1], [2.0]).scaled(3.0)
        assert v[1] == 6.0

    def test_scaled_by_zero(self):
        assert SparseVector([1], [2.0]).scaled(0.0).nnz == 0

    def test_unit(self):
        v = SparseVector([1, 2], [3.0, 4.0]).unit()
        assert v.norm() == pytest.approx(1.0)

    def test_unit_of_zero_raises(self):
        with pytest.raises(ValueError, match="zero vector"):
            SparseVector.zero().unit()

    def test_restrict(self):
        v = SparseVector([1, 2, 3], [1.0, 2.0, 3.0])
        r = v.restrict(np.array([2, 3, 9]))
        np.testing.assert_array_equal(r.indices, [2, 3])

    def test_squared(self):
        v = SparseVector([1, 2], [-3.0, 4.0]).squared()
        assert v[1] == 9.0 and v[2] == 16.0


class TestProtocol:
    def test_getitem_present_and_absent(self):
        v = SparseVector([2, 5], [1.5, -2.5])
        assert v[2] == 1.5
        assert v[3] == 0.0

    def test_equality(self):
        assert SparseVector([1], [1.0]) == SparseVector([1], [1.0])
        assert SparseVector([1], [1.0]) != SparseVector([1], [2.0])
        assert SparseVector([1], [1.0]) != SparseVector([2], [1.0])

    def test_hash_consistent_with_equality(self):
        assert hash(SparseVector([1], [1.0])) == hash(SparseVector([1], [1.0]))

    def test_repr_contains_stats(self):
        text = repr(SparseVector([1, 2], [3.0, 4.0], n=10))
        assert "nnz=2" in text and "n=10" in text

    def test_to_dense_open_domain(self):
        v = SparseVector([0, 4], [1.0, 2.0])
        assert v.to_dense().shape == (5,)
