"""Tests for support algebra and similarity measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.vectors.ops import (
    cosine_similarity,
    inner_product,
    intersection_norms,
    jaccard_similarity,
    kurtosis,
    overlap_ratio,
    support_intersection,
    support_union_size,
    weighted_jaccard_similarity,
)
from repro.vectors.sparse import SparseVector


@pytest.fixture
def figure2_vectors():
    """The key-indicator vectors of the paper's Figure 3 example."""
    keys_a = [1, 3, 4, 5, 6, 7, 8, 9, 11]
    keys_b = [2, 4, 5, 8, 10, 11, 12, 15, 16]
    a = SparseVector(keys_a, np.ones(len(keys_a)), n=17)
    b = SparseVector(keys_b, np.ones(len(keys_b)), n=17)
    return a, b


class TestSupportAlgebra:
    def test_figure2_intersection(self, figure2_vectors):
        a, b = figure2_vectors
        np.testing.assert_array_equal(support_intersection(a, b), [4, 5, 8, 11])

    def test_figure2_union_size(self, figure2_vectors):
        a, b = figure2_vectors
        assert support_union_size(a, b) == 14

    def test_figure2_jaccard(self, figure2_vectors):
        # The paper: "only 4 out of 14 unique keys are shared ... the
        # similarity is 2/7".
        a, b = figure2_vectors
        assert jaccard_similarity(a, b) == pytest.approx(4 / 14)

    def test_jaccard_identical(self):
        v = SparseVector([1, 2], [1.0, 2.0])
        assert jaccard_similarity(v, v) == 1.0

    def test_jaccard_disjoint(self):
        a = SparseVector([1], [1.0])
        b = SparseVector([2], [1.0])
        assert jaccard_similarity(a, b) == 0.0

    def test_jaccard_zero_vectors(self):
        z = SparseVector.zero()
        assert jaccard_similarity(z, z) == 0.0

    def test_overlap_ratio_uses_smaller_support(self):
        a = SparseVector([1, 2, 3, 4], np.ones(4))
        b = SparseVector([3, 4], np.ones(2))
        assert overlap_ratio(a, b) == 1.0

    def test_overlap_ratio_zero_vector(self):
        assert overlap_ratio(SparseVector.zero(), SparseVector([1], [1.0])) == 0.0


class TestWeightedJaccard:
    def test_identical_vectors(self):
        v = SparseVector([1, 2], [3.0, 4.0])
        assert weighted_jaccard_similarity(v, v) == pytest.approx(1.0)

    def test_scale_invariance(self):
        a = SparseVector([1, 2, 3], [1.0, 2.0, 3.0])
        b = SparseVector([2, 3, 4], [1.0, 1.0, 1.0])
        assert weighted_jaccard_similarity(a, b) == pytest.approx(
            weighted_jaccard_similarity(a.scaled(10.0), b.scaled(0.1))
        )

    def test_disjoint_supports(self):
        a = SparseVector([1], [1.0])
        b = SparseVector([2], [1.0])
        assert weighted_jaccard_similarity(a, b) == 0.0

    def test_zero_vector(self):
        assert weighted_jaccard_similarity(SparseVector.zero(), SparseVector([1], [1.0])) == 0.0

    def test_manual_computation(self):
        # a = (1, 1)/sqrt(2); b = (1, 0): min-sum = 0.5, max-sum = 1.5.
        a = SparseVector([0, 1], [1.0, 1.0])
        b = SparseVector([0], [1.0])
        assert weighted_jaccard_similarity(a, b) == pytest.approx(0.5 / 1.5)

    def test_bounded_by_unweighted_structure(self):
        a = SparseVector([1, 2, 3], [1.0, 5.0, 0.1])
        b = SparseVector([2, 3, 4], [5.0, 0.1, 9.0])
        assert 0.0 <= weighted_jaccard_similarity(a, b) <= 1.0


class TestIntersectionNorms:
    def test_manual(self):
        a = SparseVector([1, 2, 3], [3.0, 4.0, 12.0])
        b = SparseVector([1, 2, 9], [1.0, 1.0, 1.0])
        norm_a_inter, norm_b_inter = intersection_norms(a, b)
        assert norm_a_inter == pytest.approx(5.0)  # sqrt(9 + 16)
        assert norm_b_inter == pytest.approx(np.sqrt(2.0))

    def test_disjoint(self):
        a = SparseVector([1], [2.0])
        b = SparseVector([2], [2.0])
        assert intersection_norms(a, b) == (0.0, 0.0)

    def test_bounded_by_full_norms(self):
        rng = np.random.default_rng(1)
        a = SparseVector(rng.permutation(100)[:30], rng.normal(size=30))
        b = SparseVector(rng.permutation(100)[:30], rng.normal(size=30))
        norm_a_inter, norm_b_inter = intersection_norms(a, b)
        assert norm_a_inter <= a.norm() + 1e-12
        assert norm_b_inter <= b.norm() + 1e-12


class TestSimilarities:
    def test_inner_product_matches_dot(self, figure2_vectors):
        a, b = figure2_vectors
        assert inner_product(a, b) == a.dot(b) == 4.0

    def test_cosine_identical(self):
        v = SparseVector([1, 2], [1.0, 2.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_cosine_zero_vector(self):
        assert cosine_similarity(SparseVector.zero(), SparseVector([1], [1.0])) == 0.0

    def test_cosine_orthogonal(self):
        a = SparseVector([1], [1.0])
        b = SparseVector([2], [1.0])
        assert cosine_similarity(a, b) == 0.0


class TestKurtosis:
    def test_normal_sample_near_three(self):
        rng = np.random.default_rng(0)
        assert kurtosis(rng.normal(size=200_000)) == pytest.approx(3.0, abs=0.1)

    def test_constant_sample(self):
        assert kurtosis(np.ones(100)) == 0.0

    def test_tiny_sample(self):
        assert kurtosis(np.array([1.0])) == 0.0

    def test_heavy_tail_exceeds_normal(self):
        rng = np.random.default_rng(0)
        body = rng.normal(size=10_000)
        body[:100] = 50.0
        assert kurtosis(body) > 10.0
