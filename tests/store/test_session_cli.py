"""Tests for the query-session front end and the ``repro.store`` CLI."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.core.wmh import WeightedMinHash
from repro.datasearch.table import Table
from repro.store import LakeStore, QuerySession
from repro.store.cli import load_csv_table, main


def make_tables(count: int = 3, seed: int = 0, rows: int = 100) -> list[Table]:
    rng = np.random.default_rng(seed)
    tables = []
    for i in range(count):
        keys = [f"k{j}" for j in rng.choice(400, size=rows, replace=False)]
        tables.append(
            Table(f"table{i}", keys, {"value": rng.normal(size=rows)})
        )
    return tables


def make_query(seed: int = 42, rows: int = 150) -> Table:
    rng = np.random.default_rng(seed)
    keys = [f"k{j}" for j in rng.choice(400, size=rows, replace=False)]
    return Table("query", keys, {"signal": rng.normal(size=rows)})


def fresh_store(tmp_path, tables=None):
    store = LakeStore.create(tmp_path / "lake", WeightedMinHash(m=32, seed=3, L=1 << 16))
    if tables:
        store.append(tables)
    return store


class TestQuerySession:
    def test_search_matches_engine(self, tmp_path):
        tables = make_tables()
        store = fresh_store(tmp_path, tables)
        session = QuerySession(store)
        query = make_query()
        direct = session.engine.search_table(query, "signal", top_k=5)
        via_session = session.search(query, "signal", top_k=5)
        assert [(h.table_name, h.column, h.score) for h in via_session] == [
            (h.table_name, h.column, h.score) for h in direct
        ]
        store.close()

    def test_query_sketch_cached_per_name(self, tmp_path):
        store = fresh_store(tmp_path, make_tables())
        session = QuerySession(store)
        query = make_query()
        first = session.sketch(query)
        assert session.sketch(query) is first
        session.clear_cache()
        assert session.sketch(query) is not first
        store.close()

    def test_session_sees_appends(self, tmp_path):
        tables = make_tables(3)
        store = fresh_store(tmp_path, tables[:2])
        session = QuerySession(store, min_containment=0.0)
        assert len(session.engine.index) == 2
        store.append([tables[2]])
        assert len(session.engine.index) == 3
        store.close()

    def test_unknown_query_column(self, tmp_path):
        store = fresh_store(tmp_path, make_tables())
        with pytest.raises(KeyError, match="no column"):
            QuerySession(store).search(make_query(), "nope")
        store.close()

    def test_stats_include_cache(self, tmp_path):
        store = fresh_store(tmp_path, make_tables())
        session = QuerySession(store)
        session.sketch(make_query())
        assert session.stats()["cached_query_sketches"] == 1
        store.close()

    def test_engine_cached_on_index_identity(self, tmp_path):
        store = fresh_store(tmp_path, make_tables())
        session = QuerySession(store)
        assert session.engine is session.engine
        store.close()

    def test_engine_survives_appends(self, tmp_path):
        """Appends mutate the index in place: the cached engine stays
        valid *and* sees the new tables."""
        tables = make_tables(3)
        store = fresh_store(tmp_path, tables[:2])
        session = QuerySession(store, min_containment=0.0)
        engine = session.engine
        store.append([tables[2]])
        assert session.engine is engine
        assert len(session.engine.index) == 3
        store.close()

    def test_engine_invalidated_by_compact(self, tmp_path):
        tables = make_tables(3)
        store = fresh_store(tmp_path, tables[:2])
        store.append([tables[2]])  # second shard so compact rebuilds
        session = QuerySession(store, min_containment=0.0)
        engine = session.engine
        store.compact()
        fresh = session.engine
        assert fresh is not engine
        assert fresh.index is store.index
        store.close()

    def test_engine_tracks_min_containment_mutation(self, tmp_path):
        store = fresh_store(tmp_path, make_tables())
        session = QuerySession(store, min_containment=0.0)
        first = session.engine
        assert first.min_containment == 0.0
        session.min_containment = 0.5
        second = session.engine
        assert second is not first
        assert second.min_containment == 0.5
        store.close()

    def test_search_many_matches_search_loop(self, tmp_path):
        store = fresh_store(tmp_path, make_tables(4))
        session = QuerySession(store, min_containment=0.0)
        queries = []
        for s in (42, 43, 44):
            rng = np.random.default_rng(s)
            keys = [f"k{j}" for j in rng.choice(400, size=150, replace=False)]
            queries.append(
                Table(f"query{s}", keys, {"signal": rng.normal(size=150)})
            )
        batched = session.search_many(queries, "signal", top_k=4)
        loop = [session.search(q, "signal", top_k=4) for q in queries]
        assert batched == loop
        # All query sketches landed in the session cache.
        assert session.stats()["cached_query_sketches"] == 3
        store.close()


def write_csv(path, keys, columns):
    names = list(columns)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["key", *names])
        for i, key in enumerate(keys):
            writer.writerow([key, *[columns[name][i] for name in names]])


@pytest.fixture
def csv_lake(tmp_path):
    """Three ingestible CSVs + one query CSV over shared keys."""
    rng = np.random.default_rng(11)
    paths = []
    for t in range(3):
        keys = [f"k{j}" for j in rng.choice(300, size=90, replace=False)]
        path = tmp_path / f"table{t}.csv"
        write_csv(
            path,
            keys,
            {"price": rng.normal(size=90), "volume": rng.uniform(1, 9, size=90)},
        )
        paths.append(path)
    qkeys = [f"k{j}" for j in rng.choice(300, size=120, replace=False)]
    qpath = tmp_path / "query.csv"
    write_csv(qpath, qkeys, {"demand": rng.normal(size=120)})
    return tmp_path / "lake.d", paths, qpath


class TestLoadCsvTable:
    def test_basic(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, ["a", "b"], {"x": [1.0, 2.0]})
        table = load_csv_table(path)
        assert table.name == "t"
        assert table.keys == ["a", "b"]
        np.testing.assert_array_equal(table.columns["x"], [1.0, 2.0])

    def test_duplicate_keys_aggregate(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, ["a", "a", "b"], {"x": [1.0, 2.0, 5.0]})
        table = load_csv_table(path, aggregate="sum")
        assert table.keys == ["a", "b"]
        np.testing.assert_array_equal(table.columns["x"], [3.0, 5.0])

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("key,x\na,hello\n")
        with pytest.raises(ValueError, match="not numeric"):
            load_csv_table(path)

    def test_missing_key_column(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, ["a"], {"x": [1.0]})
        with pytest.raises(ValueError, match="key column"):
            load_csv_table(path, key_column="nope")


class TestCli:
    def test_ingest_query_stats_compact(self, csv_lake, capsys):
        lake, tables, query = csv_lake
        assert main(["ingest", str(lake), str(tables[0]), str(tables[1])]) == 0
        assert "2 table(s)" in capsys.readouterr().out

        # Second ingest opens the existing store (keeps its config).
        assert main(["ingest", str(lake), str(tables[2])]) == 0
        capsys.readouterr()

        assert main(["stats", str(lake)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["tables"] == 3
        assert stats["shards"] == 2

        assert (
            main(
                [
                    "query",
                    str(lake),
                    str(query),
                    "--column",
                    "demand",
                    "--top-k",
                    "3",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert [entry["query"] for entry in payload] == ["query"]
        hits = payload[0]["hits"]
        assert 0 < len(hits) <= 3
        assert {"table", "column", "score", "correlation"} <= set(hits[0])

        assert main(["compact", str(lake)]) == 0
        assert "compacted 2 shard(s) -> 1" in capsys.readouterr().out

    def test_query_human_output(self, csv_lake, capsys):
        lake, tables, query = csv_lake
        main(["ingest", str(lake), *map(str, tables)])
        capsys.readouterr()
        assert main(["query", str(lake), str(query), "--column", "demand"]) == 0
        out = capsys.readouterr().out
        assert "score=" in out and "containment=" in out

    def test_query_missing_store_errors(self, tmp_path, capsys):
        code = main(
            ["query", str(tmp_path / "absent"), str(tmp_path / "q.csv"), "--column", "x"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_cli_results_match_library(self, csv_lake, capsys):
        lake, tables, query = csv_lake
        main(["ingest", str(lake), *map(str, tables)])
        capsys.readouterr()
        main(["query", str(lake), str(query), "--column", "demand", "--json"])
        cli_hits = json.loads(capsys.readouterr().out)[0]["hits"]

        store = LakeStore.open(lake)
        lib_hits = QuerySession(store).search(
            load_csv_table(query), "demand", top_k=10
        )
        store.close()
        assert [(h["table"], h["column"], h["score"]) for h in cli_hits] == [
            (h.table_name, h.column, h.score) for h in lib_hits
        ]

    def test_batched_query_matches_single_queries(self, csv_lake, tmp_path, capsys):
        """Several query CSVs serve as one batch, results identical to
        querying each file on its own."""
        lake, tables, query = csv_lake
        rng = np.random.default_rng(23)
        qkeys = [f"k{j}" for j in rng.choice(300, size=80, replace=False)]
        query2 = tmp_path / "query2.csv"
        write_csv(query2, qkeys, {"demand": rng.normal(size=80)})
        main(["ingest", str(lake), *map(str, tables)])
        capsys.readouterr()

        assert (
            main(
                ["query", str(lake), str(query), str(query2),
                 "--column", "demand", "--json"]
            )
            == 0
        )
        batched = json.loads(capsys.readouterr().out)
        assert [entry["query"] for entry in batched] == ["query", "query2"]

        # Single-file queries emit the same wrapped schema; their hits
        # must equal the batched entries exactly.
        singles = []
        for path in (query, query2):
            main(["query", str(lake), str(path), "--column", "demand", "--json"])
            single = json.loads(capsys.readouterr().out)
            assert len(single) == 1
            singles.append(single[0]["hits"])
        assert [entry["hits"] for entry in batched] == singles

    def test_batched_query_human_output(self, csv_lake, tmp_path, capsys):
        lake, tables, query = csv_lake
        rng = np.random.default_rng(29)
        qkeys = [f"k{j}" for j in rng.choice(300, size=80, replace=False)]
        query2 = tmp_path / "query2.csv"
        write_csv(query2, qkeys, {"demand": rng.normal(size=80)})
        main(["ingest", str(lake), *map(str, tables)])
        capsys.readouterr()
        assert (
            main(["query", str(lake), str(query), str(query2), "--column", "demand"])
            == 0
        )
        out = capsys.readouterr().out
        assert "for query.demand" in out and "for query2.demand" in out


class TestSessionCandidates:
    """The candidates knob on the serving session."""

    def test_lsh_search_subset_of_scan(self, tmp_path):
        store = fresh_store(tmp_path, make_tables(8))
        session = QuerySession(store, min_containment=0.2)
        query = make_query()
        scan = session.search(query, "signal", top_k=10)
        lsh = session.search(query, "signal", top_k=10, candidates="lsh")
        assert {(h.table_name, h.column, h.score) for h in lsh} <= {
            (h.table_name, h.column, h.score) for h in scan
        }
        store.close()

    def test_session_level_default(self, tmp_path):
        store = fresh_store(tmp_path, make_tables(8))
        session = QuerySession(store, min_containment=0.2, candidates="lsh")
        assert session.engine.candidates == "lsh"
        query = make_query()
        assert session.search(query, "signal") == session.search(
            query, "signal", candidates="lsh"
        )
        store.close()

    def test_engine_tracks_candidates_mutation(self, tmp_path):
        store = fresh_store(tmp_path, make_tables(3))
        session = QuerySession(store)
        first = session.engine
        session.candidates = "lsh"
        second = session.engine
        assert second is not first
        assert second.candidates == "lsh"
        store.close()

    def test_search_many_lsh_matches_loop(self, tmp_path):
        store = fresh_store(tmp_path, make_tables(8))
        session = QuerySession(store, min_containment=0.2, candidates="lsh")
        query = make_query()
        batched = session.search_many([query], "signal", top_k=5)
        single = [session.search(query, "signal", top_k=5)]
        assert batched == single
        store.close()


class TestCliCandidates:
    def test_query_candidates_lsh_subset(self, csv_lake, capsys):
        lake, tables, query = csv_lake
        main(["ingest", str(lake), *map(str, tables)])
        capsys.readouterr()
        base = [
            "query",
            str(lake),
            str(query),
            "--column",
            "demand",
            "--min-containment",
            "0.1",
            "--json",
        ]
        assert main(base) == 0
        scan = json.loads(capsys.readouterr().out)[0]["hits"]
        assert main([*base, "--candidates", "lsh"]) == 0
        lsh = json.loads(capsys.readouterr().out)[0]["hits"]
        as_keys = lambda hits: {  # noqa: E731
            (h["table"], h["column"], h["score"]) for h in hits
        }
        assert as_keys(lsh) <= as_keys(scan)

    def test_ingest_no_index(self, csv_lake, capsys):
        lake, tables, query = csv_lake
        assert main(["ingest", str(lake), str(tables[0]), "--no-index"]) == 0
        capsys.readouterr()
        assert main(["stats", str(lake)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["lsh_index"] is None
        # Indexed ingest afterwards restores the section.
        assert main(["ingest", str(lake), str(tables[1])]) == 0
        capsys.readouterr()
        assert main(["stats", str(lake)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["lsh_index"]["tables"] == 2
