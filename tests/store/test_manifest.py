"""Tests for the lake manifest record."""

from __future__ import annotations

import json

import pytest

from repro.store.manifest import (
    MANIFEST_VERSION,
    Manifest,
    ManifestError,
    ShardRecord,
    TableSpan,
)


def sample_manifest() -> Manifest:
    spans = (
        TableSpan(name="a", num_rows=10, columns=("x", "y"), lo=0, hi=5),
        TableSpan(name="b", num_rows=7, columns=(), lo=5, hi=6),
    )
    return Manifest(
        sketcher={"kind": "WMH", "params": {"m": 8, "seed": 0, "L": 64}},
        shards=[ShardRecord(shard_id=1, filename="shard-000001.rpro", tables=spans)],
        tombstones={(1, "b")},
        next_shard_id=2,
    )


class TestRoundTrip:
    def test_json_round_trip(self, tmp_path):
        manifest = sample_manifest()
        path = tmp_path / "manifest.json"
        manifest.save(path)
        restored = Manifest.load(path)
        assert restored == manifest

    def test_save_is_atomic_no_tmp_left(self, tmp_path):
        path = tmp_path / "manifest.json"
        sample_manifest().save(path)
        assert not (tmp_path / "manifest.json.tmp").exists()

    def test_version_recorded(self, tmp_path):
        path = tmp_path / "manifest.json"
        sample_manifest().save(path)
        data = json.loads(path.read_text())
        assert data["version"] == MANIFEST_VERSION
        assert data["format"] == "repro-lake"


class TestLiveness:
    def test_live_spans_skip_tombstones(self):
        manifest = sample_manifest()
        live = [span.name for _, span in manifest.live_spans()]
        assert live == ["a"]

    def test_dead_rows(self):
        assert sample_manifest().dead_rows() == 1

    def test_live_table_shard(self):
        assert sample_manifest().live_table_shard() == {"a": 1}


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="no manifest"):
            Manifest.load(tmp_path / "manifest.json")

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{not json")
        with pytest.raises(ManifestError, match="malformed"):
            Manifest.load(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"format": "other", "version": 1}))
        with pytest.raises(ManifestError, match="not a lake manifest"):
            Manifest.load(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        data = sample_manifest().to_json()
        data["version"] = MANIFEST_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(ManifestError, match="unsupported manifest version"):
            Manifest.load(path)

    def test_missing_fields(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"format": "repro-lake", "version": 1}))
        with pytest.raises(ManifestError, match="malformed"):
            Manifest.load(path)
