"""Tests for the persistent lake store (the tentpole acceptance suite).

The contract under test: a lake ingested through ``LakeStore``, closed,
and reopened serves ``DatasetSearch`` rankings and estimates
bit-identical to the in-memory ``SketchIndex`` built from the same
tables, and ``append`` never re-sketches stored data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SketchMismatchError
from repro.core.wmh import WeightedMinHash
from repro.datasearch.index import SketchIndex
from repro.datasearch.search import DatasetSearch
from repro.datasearch.table import Table
from repro.sketches.jl import JohnsonLindenstrauss
from repro.sketches.minhash import MinHash
from repro.store import LakeStore, QuerySession, StoreError, is_lake_store
from repro.store.shard import shard_filename


def make_tables(count: int = 5, seed: int = 0, rows: int = 120) -> list[Table]:
    """Tables over a shared key domain so joins are non-trivial."""
    rng = np.random.default_rng(seed)
    tables = []
    for i in range(count):
        keys = [f"k{j}" for j in rng.choice(600, size=rows, replace=False)]
        tables.append(
            Table(
                f"table{i}",
                keys,
                {
                    "alpha": rng.normal(size=rows),
                    "beta": rng.uniform(1, 5, size=rows),
                },
            )
        )
    return tables


def make_query(seed: int = 99, rows: int = 150) -> Table:
    rng = np.random.default_rng(seed)
    keys = [f"k{j}" for j in rng.choice(600, size=rows, replace=False)]
    return Table("query", keys, {"signal": rng.normal(size=rows)})


def fresh_sketcher() -> WeightedMinHash:
    return WeightedMinHash(m=48, seed=5, L=1 << 16)


def hit_tuples(hits):
    return [
        (h.table_name, h.column, h.score, h.correlation, h.join_size, h.containment)
        for h in hits
    ]


class TestCreateOpen:
    def test_create_then_open_empty(self, tmp_path):
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.close()
        reopened = LakeStore.open(tmp_path / "lake")
        assert len(reopened) == 0
        reopened.close()

    def test_create_refuses_existing_store(self, tmp_path):
        LakeStore.create(tmp_path / "lake", fresh_sketcher()).close()
        with pytest.raises(StoreError, match="already holds"):
            LakeStore.create(tmp_path / "lake", fresh_sketcher())

    def test_is_lake_store(self, tmp_path):
        assert not is_lake_store(tmp_path)
        LakeStore.create(tmp_path / "lake", fresh_sketcher()).close()
        assert is_lake_store(tmp_path / "lake")

    def test_open_rebuilds_stored_sketcher_config(self, tmp_path):
        LakeStore.create(tmp_path / "lake", fresh_sketcher()).close()
        store = LakeStore.open(tmp_path / "lake")
        assert isinstance(store.sketcher, WeightedMinHash)
        assert (store.sketcher.m, store.sketcher.seed, store.sketcher.L) == (
            48,
            5,
            1 << 16,
        )
        store.close()

    def test_open_rejects_mismatched_sketcher(self, tmp_path):
        LakeStore.create(tmp_path / "lake", fresh_sketcher()).close()
        with pytest.raises(SketchMismatchError):
            LakeStore.open(tmp_path / "lake", WeightedMinHash(m=48, seed=6, L=1 << 16))
        with pytest.raises(SketchMismatchError):
            LakeStore.open(tmp_path / "lake", MinHash(m=48, seed=5))

    def test_open_accepts_matching_sketcher(self, tmp_path):
        LakeStore.create(tmp_path / "lake", fresh_sketcher()).close()
        store = LakeStore.open(tmp_path / "lake", fresh_sketcher())
        assert isinstance(store.sketcher, WeightedMinHash)
        store.close()


class TestRoundTripFidelity:
    @pytest.mark.parametrize("zero_copy", [True, False])
    def test_reopened_rankings_bit_identical_to_memory(self, tmp_path, zero_copy):
        tables = make_tables()
        query = make_query()

        memory = SketchIndex(fresh_sketcher())
        memory.add_all(tables)
        engine = DatasetSearch(memory)
        expected = engine.search(engine.sketch_query(query), "signal", top_k=8)

        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(tables)
        store.close()

        reopened = LakeStore.open(tmp_path / "lake", zero_copy=zero_copy)
        got = QuerySession(reopened).search(query, "signal", top_k=8)
        assert hit_tuples(got) == hit_tuples(expected)
        reopened.close()

    def test_multi_shard_equals_single_shard(self, tmp_path):
        tables = make_tables(6)
        query = make_query()

        one = LakeStore.create(tmp_path / "one", fresh_sketcher())
        one.append(tables)
        many = LakeStore.create(tmp_path / "many", fresh_sketcher())
        many.append(tables[:2])
        many.append(tables[2:4])
        many.append(tables[4:])

        hits_one = QuerySession(one).search(query, "signal", top_k=8)
        hits_many = QuerySession(many).search(query, "signal", top_k=8)
        assert hit_tuples(hits_one) == hit_tuples(hits_many)
        one.close()
        many.close()

    def test_estimates_identical_per_table(self, tmp_path):
        tables = make_tables(3)
        sketcher = fresh_sketcher()
        memory = SketchIndex(fresh_sketcher())
        memory.add_all(tables)

        store = LakeStore.create(tmp_path / "lake", sketcher)
        store.append(tables)
        store.close()
        reopened = LakeStore.open(tmp_path / "lake")

        query = make_query()
        query_sketch = DatasetSearch(memory).sketch_query(query)
        mem_sizes = memory.sketcher.estimate_many(
            query_sketch.indicator, memory.indicator_bank
        )
        disk_sizes = reopened.index.sketcher.estimate_many(
            query_sketch.indicator, reopened.index.indicator_bank
        )
        np.testing.assert_array_equal(mem_sizes, disk_sizes)
        reopened.close()

    def test_jl_store_round_trip(self, tmp_path):
        # A linear-sketch lake exercises the non-sampling bank layout.
        tables = make_tables(3)
        query = make_query()
        memory = SketchIndex(JohnsonLindenstrauss(m=32, seed=2))
        memory.add_all(tables)
        engine = DatasetSearch(memory)
        expected = engine.search(engine.sketch_query(query), "signal", top_k=5)

        store = LakeStore.create(tmp_path / "lake", JohnsonLindenstrauss(m=32, seed=2))
        store.append(tables)
        store.close()
        got = QuerySession(LakeStore.open(tmp_path / "lake")).search(
            query, "signal", top_k=5
        )
        assert hit_tuples(got) == hit_tuples(expected)


class TestIncrementalIngest:
    def test_append_after_reopen_sketches_only_new_tables(
        self, tmp_path, monkeypatch
    ):
        tables = make_tables(4)
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(tables[:3])
        store.close()

        reopened = LakeStore.open(tmp_path / "lake")
        calls: list[int] = []
        original = type(reopened.sketcher)._sketch_batch

        def counting(self, matrix):
            bank = original(self, matrix)
            calls.append(len(bank))
            return bank

        # The streaming append funnels every chunk through the serial
        # batch kernel; counting there sees all sketched rows whatever
        # the chunking.
        monkeypatch.setattr(type(reopened.sketcher), "_sketch_batch", counting)
        reopened.append([tables[3]])
        # Rows sized for the ONE new table (1 indicator + 2 values +
        # 2 squares = 5 rows) — stored tables never re-sketch.
        assert sum(calls) == 1 + 2 * len(tables[3].columns)
        assert len(reopened) == 4
        reopened.close()

    def test_open_never_sketches(self, tmp_path, monkeypatch):
        tables = make_tables(3)
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(tables)
        store.close()

        def forbidden(self, matrix):
            raise AssertionError("open must not sketch")

        monkeypatch.setattr(WeightedMinHash, "sketch_batch", forbidden)
        monkeypatch.setattr(WeightedMinHash, "sketch", forbidden)
        reopened = LakeStore.open(tmp_path / "lake")
        assert sorted(reopened.table_names()) == sorted(t.name for t in tables)
        reopened.close()

    def test_empty_batch_is_noop(self, tmp_path):
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        assert store.append([]) is None
        assert store.stats()["shards"] == 0
        store.close()

    def test_duplicate_names_in_batch_rejected(self, tmp_path):
        tables = make_tables(2)
        clone = Table(tables[0].name, tables[1].keys, dict(tables[1].columns))
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        with pytest.raises(StoreError, match="duplicate table names"):
            store.append([tables[0], clone])
        store.close()

    def test_append_visible_without_reopen(self, tmp_path):
        tables = make_tables(2)
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append([tables[0]])
        assert store.table_names() == ["table0"]
        store.append([tables[1]])
        assert sorted(store.table_names()) == ["table0", "table1"]
        store.close()


class TestReplacementAndCompaction:
    def test_replacement_tombstones_old_span(self, tmp_path):
        tables = make_tables(3)
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(tables)
        replacement = Table(
            "table1",
            tables[2].keys,
            {"gamma": np.asarray(tables[2].columns["alpha"])},
        )
        store.append([replacement])
        stats = store.stats()
        assert stats["tables"] == 3
        assert stats["tombstones"] == 1
        assert stats["dead_rows"] == 5
        assert store.index.get("table1").values.keys() == {"gamma"}
        store.close()

        reopened = LakeStore.open(tmp_path / "lake")
        assert reopened.index.get("table1").values.keys() == {"gamma"}
        reopened.close()

    def test_compact_reclaims_and_preserves_results(self, tmp_path):
        tables = make_tables(5)
        query = make_query()
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(tables[:3])
        store.append(tables[3:])
        replacement = Table(
            "table0", tables[0].keys, {"alpha": np.asarray(tables[0].columns["beta"])}
        )
        store.append([replacement])
        before = hit_tuples(QuerySession(store).search(query, "signal", top_k=8))

        result = store.compact()
        assert result["shards_before"] == 3
        assert result["shards_after"] == 1
        assert result["rows_reclaimed"] == 5
        stats = store.stats()
        assert stats["shards"] == 1
        assert stats["dead_rows"] == 0

        after = hit_tuples(QuerySession(store).search(query, "signal", top_k=8))
        assert after == before
        store.close()

        reopened = LakeStore.open(tmp_path / "lake")
        again = hit_tuples(QuerySession(reopened).search(query, "signal", top_k=8))
        assert again == before
        reopened.close()

    def test_compact_noop_on_single_clean_shard(self, tmp_path):
        tables = make_tables(2)
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(tables)
        result = store.compact()
        assert result == {
            "shards_before": 1,
            "shards_after": 1,
            "rows_reclaimed": 0,
        }
        store.close()

    def test_compact_deletes_old_shard_files(self, tmp_path):
        tables = make_tables(4)
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(tables[:2])
        store.append(tables[2:])
        old_files = [shard_filename(1), shard_filename(2)]
        store.compact()
        for name in old_files:
            assert not (tmp_path / "lake" / name).exists()
        assert (tmp_path / "lake" / shard_filename(3)).exists()
        store.close()


class TestCrashSafety:
    def test_partial_shard_write_ignored_on_open(self, tmp_path):
        """A crash mid-append leaves a temp file; open still succeeds."""
        tables = make_tables(3)
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(tables)
        store.close()

        # Simulate the two crash artifacts an interrupted append can
        # leave: a partial temp file, and a fully-renamed shard whose
        # manifest commit never happened.
        lake = tmp_path / "lake"
        (lake / (shard_filename(2) + ".tmp")).write_bytes(b"RPRO\x01\x0agarbage")
        (lake / shard_filename(7)).write_bytes(b"\x00" * 64)

        reopened = LakeStore.open(lake)
        assert sorted(reopened.table_names()) == sorted(t.name for t in tables)
        assert sorted(reopened.orphaned_files()) == sorted(
            [shard_filename(7), shard_filename(2) + ".tmp"]
        )
        reopened.close()

    def test_truncated_referenced_shard_rejected(self, tmp_path):
        tables = make_tables(2)
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(tables)
        store.close()
        shard_path = tmp_path / "lake" / shard_filename(1)
        data = shard_path.read_bytes()
        shard_path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StoreError, match="truncated shard"):
            LakeStore.open(tmp_path / "lake")

    def test_missing_referenced_shard_rejected(self, tmp_path):
        tables = make_tables(2)
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(tables)
        store.close()
        (tmp_path / "lake" / shard_filename(1)).unlink()
        with pytest.raises(StoreError, match="missing shard"):
            LakeStore.open(tmp_path / "lake")

    def test_corrupted_shard_checksum_rejected(self, tmp_path):
        tables = make_tables(2)
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(tables)
        store.close()
        shard_path = tmp_path / "lake" / shard_filename(1)
        data = bytearray(shard_path.read_bytes())
        data[-1] ^= 0xFF
        shard_path.write_bytes(bytes(data))
        with pytest.raises(StoreError, match="checksum"):
            LakeStore.open(tmp_path / "lake")


class TestConcurrentWriters:
    def test_stale_handle_refuses_to_write(self, tmp_path):
        """Two opens, one commits: the stale handle errors, not corrupts."""
        tables = make_tables(5)
        seeded = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        seeded.append(tables[:1])
        seeded.append(tables[1:2])  # two shards, so compact is not a no-op
        seeded.close()
        first = LakeStore.open(tmp_path / "lake")
        second = LakeStore.open(tmp_path / "lake")
        first.append(tables[2:3])
        with pytest.raises(StoreError, match="modified by another process"):
            second.append(tables[3:])
        with pytest.raises(StoreError, match="modified by another process"):
            second.compact()
        first.close()
        second.close()
        # The committed data survived untouched.
        reopened = LakeStore.open(tmp_path / "lake")
        assert sorted(reopened.table_names()) == ["table0", "table1", "table2"]
        reopened.close()

    def test_reopened_handle_can_write_again(self, tmp_path):
        tables = make_tables(3)
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(tables[:1])
        store.close()
        writer = LakeStore.open(tmp_path / "lake")
        writer.append(tables[1:])
        assert len(writer) == 3
        writer.close()


class TestLifecycle:
    def test_closed_store_refuses_use(self, tmp_path):
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.close()
        with pytest.raises(StoreError, match="closed"):
            store.append(make_tables(1))
        with pytest.raises(StoreError, match="closed"):
            _ = store.index

    def test_context_manager_closes(self, tmp_path):
        with LakeStore.create(tmp_path / "lake", fresh_sketcher()) as store:
            store.append(make_tables(1))
        with pytest.raises(StoreError, match="closed"):
            store.stats()

    def test_stats_shape(self, tmp_path):
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(make_tables(2))
        stats = store.stats()
        assert stats["tables"] == 2
        assert stats["value_columns"] == 4
        assert stats["shards"] == 1
        assert stats["live_rows"] == 10
        assert stats["file_bytes"] > 0
        assert stats["bank_bytes"] > 0
        assert stats["storage_words"] > 0
        assert stats["sketcher"]["kind"] == "WMH"
        store.close()
