"""Thread-safety of :class:`QuerySession` under concurrent hammering."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.wmh import WeightedMinHash
from repro.datasearch.table import Table
from repro.store import LakeStore, QuerySession


def make_tables(count: int = 4, seed: int = 0, rows: int = 100) -> list[Table]:
    rng = np.random.default_rng(seed)
    tables = []
    for i in range(count):
        keys = [f"k{j}" for j in rng.choice(400, size=rows, replace=False)]
        tables.append(Table(f"table{i}", keys, {"value": rng.normal(size=rows)}))
    return tables


def make_query(seed: int = 42, rows: int = 150) -> Table:
    rng = np.random.default_rng(seed)
    keys = [f"k{j}" for j in rng.choice(400, size=rows, replace=False)]
    return Table(f"query{seed}", keys, {"signal": rng.normal(size=rows)})


@pytest.fixture
def store(tmp_path):
    with LakeStore.create(
        tmp_path / "lake", WeightedMinHash(m=32, seed=3, L=1 << 16)
    ) as store:
        store.append(make_tables())
        yield store


def hit_tuples(hits):
    return [(h.table_name, h.column, h.score, h.correlation) for h in hits]


def test_engine_is_built_exactly_once_under_contention(store, monkeypatch):
    import repro.store.session as session_module

    builds = []
    real_engine = session_module.DatasetSearch

    class CountingEngine(real_engine):
        def __init__(self, *args, **kwargs):
            builds.append(1)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(session_module, "DatasetSearch", CountingEngine)
    session = QuerySession(store)
    barrier = threading.Barrier(8)
    engines = [None] * 8

    def grab(i: int) -> None:
        barrier.wait()
        engines[i] = session.engine

    threads = [threading.Thread(target=grab, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(builds) == 1
    assert all(engine is engines[0] for engine in engines)


def test_hammer_search_stats_clear_cache(store):
    """8 threads interleaving search/stats/clear_cache: no exceptions,
    and every search result matches the single-threaded answer."""
    session = QuerySession(store, min_containment=0.0)
    queries = [make_query(seed=s) for s in range(4)]
    expected = {
        q.name: hit_tuples(session.search(q, "signal", top_k=5)) for q in queries
    }
    session.clear_cache()

    errors: list[Exception] = []
    barrier = threading.Barrier(8)

    def hammer(worker: int) -> None:
        barrier.wait()
        try:
            for round_ in range(15):
                query = queries[(worker + round_) % len(queries)]
                hits = session.search(query, "signal", top_k=5)
                assert hit_tuples(hits) == expected[query.name]
                if worker % 4 == 0:
                    session.clear_cache()
                elif worker % 4 == 1:
                    session.stats()
                else:
                    session.sketch(query)
        except Exception as exc:  # noqa: BLE001 - recorded, asserted below
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[0]


def test_sketch_cache_returns_one_object_per_name(store):
    """Racing sketch() calls for the same table converge on ONE cached
    object — the setdefault publish, not last-writer-wins."""
    session = QuerySession(store)
    query = make_query()
    barrier = threading.Barrier(8)
    sketches = [None] * 8

    def grab(i: int) -> None:
        barrier.wait()
        sketches[i] = session.sketch(query)

    threads = [threading.Thread(target=grab, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # All callers ended up with the same cached sketch object.
    assert all(s is sketches[0] for s in sketches)
    assert session.sketch(query) is sketches[0]


def test_cache_eviction_bounds_memory(store):
    session = QuerySession(store, max_cached_queries=3)
    for seed in range(10):
        session.sketch(make_query(seed=seed))
    assert session.stats()["cached_query_sketches"] <= 3


def test_concurrent_eviction_never_raises(store):
    session = QuerySession(store, max_cached_queries=2)
    errors: list[Exception] = []
    barrier = threading.Barrier(6)

    def churn(worker: int) -> None:
        barrier.wait()
        try:
            for round_ in range(25):
                session.sketch(make_query(seed=(worker * 31 + round_) % 13))
        except Exception as exc:  # noqa: BLE001 - recorded, asserted below
            errors.append(exc)

    threads = [threading.Thread(target=churn, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[0]
    assert session.stats()["cached_query_sketches"] <= 2
