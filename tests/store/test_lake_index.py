"""Persistence of the LSH candidate index (the manifest index section).

The contract: the index is built at ingest, extended incrementally on
``append`` (byte-identical to a from-scratch build), rebuilt on
``compact``, validated on ``open`` (checksum + catalog agreement), and
entirely optional — manifests without an index section (older stores,
``--no-index`` ingests, signature-less sketchers) open fine and rebuild
the index lazily in memory.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.wmh import WeightedMinHash
from repro.datasearch.table import Table
from repro.io.serialize import (
    SerializationError,
    pack_lsh_index,
    unpack_lsh_index,
)
from repro.mips.lsh import SignatureLSH
from repro.sketches.jl import JohnsonLindenstrauss
from repro.store import LakeStore, QuerySession


def make_tables(count=8, seed=0, rows=40, prefix="table"):
    rng = np.random.default_rng(seed)
    tables = []
    for i in range(count):
        keys = [f"k{j}" for j in rng.choice(200, size=rows, replace=False)]
        tables.append(
            Table(f"{prefix}{i}", keys, {"alpha": rng.normal(size=rows)})
        )
    return tables


def make_query(seed=99, rows=50):
    rng = np.random.default_rng(seed)
    keys = [f"k{j}" for j in rng.choice(200, size=rows, replace=False)]
    return Table("query", keys, {"signal": rng.normal(size=rows)})


def fresh_sketcher():
    return WeightedMinHash(m=48, seed=5, L=1 << 16)


def index_files(path):
    return sorted(p.name for p in path.iterdir() if p.name.startswith("index-"))


def hit_tuples(hits):
    return [
        (h.table_name, h.column, h.score, h.join_size, h.containment)
        for h in hits
    ]


class TestPackUnpack:
    """The checksummed LSH-index container in io.serialize."""

    def build(self, seed=0, count=20):
        lsh = SignatureLSH(bands=8, rows_per_band=2)
        lsh.insert_signatures(np.random.default_rng(seed).random((count, 16)))
        return lsh

    def test_round_trip(self):
        lsh = self.build()
        restored = unpack_lsh_index(pack_lsh_index(lsh))
        assert (restored.bands, restored.rows_per_band) == (8, 2)
        assert len(restored) == len(lsh)
        assert (
            restored.digest_matrix().tobytes() == lsh.digest_matrix().tobytes()
        )

    def test_empty_index_round_trip(self):
        lsh = SignatureLSH(bands=4, rows_per_band=2)
        restored = unpack_lsh_index(pack_lsh_index(lsh))
        assert len(restored) == 0

    def test_bit_flip_rejected(self):
        payload = bytearray(pack_lsh_index(self.build()))
        payload[-3] ^= 0x10
        with pytest.raises(SerializationError, match="checksum"):
            unpack_lsh_index(bytes(payload))

    def test_truncation_rejected(self):
        payload = pack_lsh_index(self.build())
        with pytest.raises(SerializationError, match="truncated"):
            unpack_lsh_index(payload[: len(payload) - 7])

    def test_wrong_kind_rejected(self):
        # A bank payload is not an index payload.
        from repro.datasearch.vectorize import indicator_vector
        from repro.io.serialize import pack_bank

        sketcher = fresh_sketcher()
        bank = sketcher.sketch_batch(
            [indicator_vector(t) for t in make_tables(2)]
        )
        with pytest.raises(SerializationError, match="not an LSH index"):
            unpack_lsh_index(pack_bank(bank))


class TestStorePersistence:
    def test_append_persists_index_section(self, tmp_path):
        with LakeStore.create(tmp_path / "lake", fresh_sketcher()) as store:
            store.append(make_tables(6))
            stats = store.stats()
        assert stats["lsh_index"] is not None
        assert stats["lsh_index"]["tables"] == 6
        manifest = json.loads((tmp_path / "lake" / "manifest.json").read_text())
        assert manifest["version"] == 2
        assert manifest["index"]["tables"] == 6
        assert (tmp_path / "lake" / manifest["index"]["file"]).is_file()

    def test_reopened_lsh_search_identical(self, tmp_path):
        tables = make_tables(10)
        query = make_query()
        with LakeStore.create(tmp_path / "lake", fresh_sketcher()) as store:
            store.append(tables)
            live = QuerySession(store, min_containment=0.2)
            expected = live.search(query, "signal", candidates="lsh")
        with LakeStore.open(tmp_path / "lake") as store:
            session = QuerySession(store, min_containment=0.2, candidates="lsh")
            hits = session.search(query, "signal")
            scan = session.search(query, "signal", candidates="scan")
        assert hit_tuples(hits) == hit_tuples(expected)
        assert set(hit_tuples(hits)) <= set(hit_tuples(scan))

    def test_append_then_open_equals_scratch_byte_for_byte(self, tmp_path):
        tables = make_tables(9)
        with LakeStore.create(tmp_path / "grown", fresh_sketcher()) as store:
            store.append(tables[:4])
            store.append(tables[4:7])
            store.append(tables[7:])
            grown_rec = store.stats()["lsh_index"]
            grown_bytes = (
                tmp_path / "grown" / index_files(tmp_path / "grown")[0]
            ).read_bytes()
        with LakeStore.create(tmp_path / "scratch", fresh_sketcher()) as store:
            store.append(tables)
            scratch_bytes = (
                tmp_path / "scratch" / index_files(tmp_path / "scratch")[0]
            ).read_bytes()
        assert grown_rec["tables"] == 9
        assert grown_bytes == scratch_bytes

    def test_stale_index_generations_are_removed(self, tmp_path):
        with LakeStore.create(tmp_path / "lake", fresh_sketcher()) as store:
            store.append(make_tables(3))
            store.append(make_tables(3, seed=7, prefix="other"))
            files = index_files(tmp_path / "lake")
        assert len(files) == 1  # old generation deleted after commit

    def test_compact_rebuilds_index(self, tmp_path):
        tables = make_tables(6)
        with LakeStore.create(tmp_path / "lake", fresh_sketcher()) as store:
            store.append(tables[:3])
            store.append(tables[3:])
            store.append([tables[1]])  # tombstone + replace
            store.compact()
            stats = store.stats()
            assert stats["lsh_index"]["tables"] == 6
        query = make_query()
        with LakeStore.open(tmp_path / "lake") as store:
            session = QuerySession(store, min_containment=0.2)
            lsh = session.search(query, "signal", candidates="lsh")
            scan = session.search(query, "signal")
        assert set(hit_tuples(lsh)) <= set(hit_tuples(scan))

    def test_replacement_append_stays_consistent_on_reopen(self, tmp_path):
        # A same-name replacement makes in-memory and live-span table
        # order diverge; the persisted index must follow the live-span
        # order `open` rebuilds with.
        tables = make_tables(8)
        query = make_query()
        with LakeStore.create(tmp_path / "lake", fresh_sketcher()) as store:
            store.append(tables)
            rng = np.random.default_rng(42)
            replacement = Table(
                "table2",
                [f"k{j}" for j in rng.choice(200, size=40, replace=False)],
                {"alpha": rng.normal(size=40)},
            )
            store.append([replacement])
            live_session = QuerySession(store, min_containment=0.2)
            live_scan = live_session.search(query, "signal")
            live_lsh = live_session.search(query, "signal", candidates="lsh")
            assert set(hit_tuples(live_lsh)) <= set(hit_tuples(live_scan))
        with LakeStore.open(tmp_path / "lake") as store:
            session = QuerySession(store, min_containment=0.2)
            scan = session.search(query, "signal")
            lsh = session.search(query, "signal", candidates="lsh")
        assert set(hit_tuples(lsh)) <= set(hit_tuples(scan))
        assert hit_tuples(scan) == hit_tuples(live_scan)


class TestOpenValidation:
    def test_older_manifest_without_index_opens_fine(self, tmp_path):
        # Simulate a store written before the index section existed:
        # strip the section and downgrade the version.  Open must
        # succeed and LSH queries rebuild the index lazily in memory.
        query = make_query()
        with LakeStore.create(tmp_path / "lake", fresh_sketcher()) as store:
            store.append(make_tables(6))
            expected = QuerySession(store, min_containment=0.2).search(
                query, "signal", candidates="lsh"
            )
            index_file = index_files(tmp_path / "lake")[0]
        manifest_path = tmp_path / "lake" / "manifest.json"
        data = json.loads(manifest_path.read_text())
        del data["index"]
        del data["next_index_id"]
        data["version"] = 1
        manifest_path.write_text(json.dumps(data))
        (tmp_path / "lake" / index_file).unlink()

        with LakeStore.open(tmp_path / "lake") as store:
            assert store.stats()["lsh_index"] is None
            session = QuerySession(store, min_containment=0.2)
            hits = session.search(query, "signal", candidates="lsh")
        assert hit_tuples(hits) == hit_tuples(expected)

    def test_writing_upgrades_old_manifest(self, tmp_path):
        with LakeStore.create(tmp_path / "lake", fresh_sketcher()) as store:
            store.append(make_tables(3))
        manifest_path = tmp_path / "lake" / "manifest.json"
        data = json.loads(manifest_path.read_text())
        index_file = data.pop("index")["file"]
        data.pop("next_index_id")
        data["version"] = 1
        manifest_path.write_text(json.dumps(data))
        (tmp_path / "lake" / index_file).unlink()
        with LakeStore.open(tmp_path / "lake") as store:
            store.append(make_tables(2, seed=3, prefix="new"))
        data = json.loads(manifest_path.read_text())
        assert data["version"] == 2
        assert data["index"]["tables"] == 5

    def test_index_checksum_bit_flip_degrades_open(self, tmp_path):
        """A corrupt index is an accelerator lost, not data: the open
        succeeds, drops the index, and queries serve from a lazy
        in-memory rebuild with identical rankings."""
        with LakeStore.create(tmp_path / "lake", fresh_sketcher()) as store:
            store.append(make_tables(4))
            index_file = index_files(tmp_path / "lake")[0]
            session = QuerySession(store, min_containment=0.0)
            query = make_query()
            expected = session.search(query, "signal", candidates="lsh")
        path = tmp_path / "lake" / index_file
        corrupted = bytearray(path.read_bytes())
        corrupted[-5] ^= 0x01
        path.write_bytes(bytes(corrupted))
        with LakeStore.open(tmp_path / "lake") as store:
            assert any("corrupt LSH index" in d for d in store.degraded)
            session = QuerySession(store, min_containment=0.0)
            hits = session.search(query, "signal", candidates="lsh")
        assert hit_tuples(hits) == hit_tuples(expected)

    def test_missing_index_file_degrades_open(self, tmp_path):
        with LakeStore.create(tmp_path / "lake", fresh_sketcher()) as store:
            store.append(make_tables(4))
            index_file = index_files(tmp_path / "lake")[0]
        (tmp_path / "lake" / index_file).unlink()
        with LakeStore.open(tmp_path / "lake") as store:
            assert any("missing LSH index" in d for d in store.degraded)
            assert len(store) == 4

    def test_catalog_mismatch_degrades_open(self, tmp_path):
        with LakeStore.create(tmp_path / "lake", fresh_sketcher()) as store:
            store.append(make_tables(4))
        manifest_path = tmp_path / "lake" / "manifest.json"
        data = json.loads(manifest_path.read_text())
        data["index"]["tables"] = 3
        manifest_path.write_text(json.dumps(data))
        with LakeStore.open(tmp_path / "lake") as store:
            assert any("does not match" in d for d in store.degraded)
            assert len(store) == 4

    def test_orphaned_index_generation_ignored_and_listed(self, tmp_path):
        with LakeStore.create(tmp_path / "lake", fresh_sketcher()) as store:
            store.append(make_tables(4))
        orphan = tmp_path / "lake" / "index-009999.rpro"
        orphan.write_bytes(b"leftover from an interrupted append")
        with LakeStore.open(tmp_path / "lake") as store:
            assert "index-009999.rpro" in store.orphaned_files()
            current = store.stats()["lsh_index"]
            assert current is not None  # the real index still loads


class TestStoreOwnedBanding:
    def test_session_tuned_banding_is_not_persisted(self, tmp_path):
        # A query session that lazily builds the in-memory index with
        # its own (deep, low-recall) tuning must not poison the
        # persisted store index: append rebuilds at the store banding.
        with LakeStore.create(tmp_path / "lake", fresh_sketcher()) as store:
            store.append(make_tables(4), index=False)  # no record yet
            deep = store.index.lsh_index(bands=8, rows_per_band=6)
            assert (deep.bands, deep.rows_per_band) == (8, 6)
            store.append(make_tables(2, seed=9, prefix="more"))
            record = store.stats()["lsh_index"]
            # m=48 at the store target (sim 0.05, recall 0.95) tunes to
            # single-row bands, not the session's deep banding.
            assert (record["bands"], record["rows_per_band"]) == (48, 1)
            # The in-memory index was realigned to the store banding.
            lake_index = store.index.lsh_index()
            assert (lake_index.bands, lake_index.rows_per_band) == (48, 1)
            assert len(lake_index) == 6


class TestIndexOptOut:
    def test_no_index_append_drops_section(self, tmp_path):
        with LakeStore.create(tmp_path / "lake", fresh_sketcher()) as store:
            store.append(make_tables(3))
            assert store.stats()["lsh_index"] is not None
            store.append(make_tables(2, seed=4, prefix="more"), index=False)
            assert store.stats()["lsh_index"] is None
        assert index_files(tmp_path / "lake") == []
        with LakeStore.open(tmp_path / "lake") as store:
            assert store.stats()["lsh_index"] is None
            # Queries still work via the lazy in-memory rebuild.
            session = QuerySession(store, min_containment=0.2)
            lsh = session.search(make_query(), "signal", candidates="lsh")
            scan = session.search(make_query(), "signal")
            assert set(hit_tuples(lsh)) <= set(hit_tuples(scan))

    def test_indexing_append_restores_section(self, tmp_path):
        with LakeStore.create(tmp_path / "lake", fresh_sketcher()) as store:
            store.append(make_tables(3), index=False)
            assert store.stats()["lsh_index"] is None
            store.append(make_tables(2, seed=4, prefix="more"))
            assert store.stats()["lsh_index"]["tables"] == 5

    def test_signatureless_sketcher_never_writes_index(self, tmp_path):
        with LakeStore.create(
            tmp_path / "lake", JohnsonLindenstrauss(m=32, seed=0)
        ) as store:
            store.append(make_tables(3))
            assert store.stats()["lsh_index"] is None
        assert index_files(tmp_path / "lake") == []
        with LakeStore.open(tmp_path / "lake") as store:
            assert store.stats()["lsh_index"] is None
