"""CLI ``query`` degraded-mode warnings (``--json`` and human modes)."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.core.wmh import WeightedMinHash
from repro.datasearch.table import Table
from repro.store import LakeStore
from repro.store.cli import main


def write_query_csv(path, seed: int = 42, rows: int = 150):
    rng = np.random.default_rng(seed)
    keys = [f"k{j}" for j in rng.choice(400, size=rows, replace=False)]
    values = rng.normal(size=rows)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["key", "signal"])
        for key, value in zip(keys, values):
            writer.writerow([key, repr(float(value))])
    return path


@pytest.fixture
def lake(tmp_path):
    rng = np.random.default_rng(0)
    tables = []
    for i in range(4):
        keys = [f"k{j}" for j in rng.choice(400, size=100, replace=False)]
        tables.append(Table(f"table{i}", keys, {"value": rng.normal(size=100)}))
    path = tmp_path / "lake"
    with LakeStore.create(path, WeightedMinHash(m=32, seed=3, L=1 << 16)) as store:
        store.append(tables[:2])
        store.append(tables[2:])
    return path


def corrupt_newest_shard(lake):
    shard = sorted(lake.glob("shard-*.rpro"))[-1]
    blob = bytearray(shard.read_bytes())
    blob[-5] ^= 0xFF
    shard.write_bytes(bytes(blob))


def test_healthy_query_has_empty_warnings(tmp_path, lake, capsys):
    query_csv = write_query_csv(tmp_path / "q.csv")
    assert main(["query", str(lake), str(query_csv), "--column", "signal", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["warnings"] == []


def test_degraded_store_carries_warnings_in_json(tmp_path, lake, capsys):
    corrupt_newest_shard(lake)
    query_csv = write_query_csv(tmp_path / "q.csv")
    assert main(["query", str(lake), str(query_csv), "--column", "signal", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    warnings = payload[0]["warnings"]
    assert any(
        note.startswith("store.degraded:") and "skipped" in note for note in warnings
    )
    # The dropped persisted index is surfaced as a route note too.
    assert any(note.startswith("query.route.scan_fallback:") for note in warnings)
    # The survivors are still ranked — degraded serving, not an error.
    assert isinstance(payload[0]["hits"], list)


def test_degraded_human_mode_prints_warnings_to_stderr(tmp_path, lake, capsys):
    corrupt_newest_shard(lake)
    query_csv = write_query_csv(tmp_path / "q.csv")
    assert main(["query", str(lake), str(query_csv), "--column", "signal"]) == 0
    captured = capsys.readouterr()
    assert "warning: store.degraded:" in captured.err
    assert "warning:" not in captured.out
