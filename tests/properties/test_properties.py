"""Property-based tests (hypothesis) on the core data structures.

These encode the algebraic invariants the paper's analysis relies on —
most importantly the Lemma 3 rounding invariants and the consistency
properties of the sketching primitives — over adversarially generated
inputs rather than fixed examples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.rounding import round_unit_vector, round_vector
from repro.core.theory import linear_sketch_bound, wmh_bound
from repro.core.wmh import WeightedMinHash, simulate_block_minima
from repro.datasearch.vectorize import key_to_index
from repro.hashing.primes import MERSENNE_31
from repro.hashing.splitmix import counter_uniform, derive_key
from repro.vectors.ops import (
    jaccard_similarity,
    weighted_jaccard_similarity,
)
from repro.vectors.sparse import SparseVector


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

finite_values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
).filter(lambda value: abs(value) > 1e-9)


@st.composite
def sparse_vectors(draw, max_nnz: int = 30, max_index: int = 1_000):
    size = draw(st.integers(min_value=1, max_value=max_nnz))
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_index),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    values = draw(
        st.lists(finite_values, min_size=size, max_size=size)
    )
    return SparseVector(indices, values)


@st.composite
def unit_value_arrays(draw, max_size: int = 20):
    size = draw(st.integers(min_value=1, max_value=max_size))
    raw = draw(
        st.lists(
            st.floats(min_value=-1.0, max_value=1.0, allow_nan=False).filter(
                lambda value: abs(value) > 1e-6
            ),
            min_size=size,
            max_size=size,
        )
    )
    values = np.asarray(raw)
    return values / np.linalg.norm(values)


# ----------------------------------------------------------------------
# SparseVector algebra
# ----------------------------------------------------------------------


class TestSparseVectorProperties:
    @given(sparse_vectors(), sparse_vectors())
    def test_dot_is_symmetric(self, a, b):
        assert a.dot(b) == pytest.approx(b.dot(a), rel=1e-12, abs=1e-12)

    @given(sparse_vectors())
    def test_dot_self_is_squared_norm(self, a):
        assert a.dot(a) == pytest.approx(a.norm() ** 2, rel=1e-9)

    @given(sparse_vectors(), st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_scaling_scales_dot(self, a, c):
        b = a.scaled(c)
        assert a.dot(b) == pytest.approx(c * a.dot(a), rel=1e-9, abs=1e-6)

    @given(sparse_vectors())
    def test_cauchy_schwarz(self, a):
        b = SparseVector(a.indices, a.values[::-1].copy())
        # Relative slack: for large-magnitude entries the float error of
        # the dot product scales with the norm product itself.
        norm_product = a.norm() * b.norm()
        assert abs(a.dot(b)) <= norm_product * (1 + 1e-9) + 1e-9

    @given(sparse_vectors())
    def test_norm_inequalities(self, a):
        # ||a||_inf <= ||a|| <= ||a||_1 for every vector.
        assert a.norm_inf() <= a.norm() + 1e-9
        assert a.norm() <= a.norm1() + 1e-9

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), finite_values), min_size=1, max_size=40
        )
    )
    def test_from_pairs_matches_dict_aggregation(self, pairs):
        indices = [i for i, _ in pairs]
        values = [v for _, v in pairs]
        vector = SparseVector.from_pairs(indices, values)
        expected: dict[int, float] = {}
        for index, value in pairs:
            expected[index] = expected.get(index, 0.0) + value
        for index, value in expected.items():
            assert vector[index] == pytest.approx(value, rel=1e-9, abs=1e-9)


# ----------------------------------------------------------------------
# similarity measures
# ----------------------------------------------------------------------


class TestSimilarityProperties:
    @given(sparse_vectors(), sparse_vectors())
    def test_jaccard_in_unit_interval(self, a, b):
        assert 0.0 <= jaccard_similarity(a, b) <= 1.0

    @given(sparse_vectors(), sparse_vectors())
    def test_weighted_jaccard_in_unit_interval(self, a, b):
        assert 0.0 <= weighted_jaccard_similarity(a, b) <= 1.0 + 1e-12

    @given(sparse_vectors())
    def test_weighted_jaccard_self_is_one(self, a):
        assert weighted_jaccard_similarity(a, a) == pytest.approx(1.0)

    @given(sparse_vectors(), st.floats(min_value=0.01, max_value=100))
    def test_weighted_jaccard_scale_invariant(self, a, c):
        b = SparseVector(a.indices, np.abs(a.values) + 0.5)
        assert weighted_jaccard_similarity(a, b) == pytest.approx(
            weighted_jaccard_similarity(a.scaled(c), b), rel=1e-9
        )

    @given(sparse_vectors(), sparse_vectors(), st.integers(1, 10_000))
    def test_wmh_bound_dominated_by_linear(self, a, b, m):
        assert wmh_bound(a, b, m) <= linear_sketch_bound(a, b, m) * (1 + 1e-12)


# ----------------------------------------------------------------------
# rounding (Lemma 3 invariants under adversarial inputs)
# ----------------------------------------------------------------------


class TestRoundingProperties:
    @given(unit_value_arrays(), st.integers(min_value=1, max_value=1 << 20))
    def test_counts_sum_to_L(self, values, L):
        _, counts = round_unit_vector(values, L)
        assert int(counts.sum()) == L

    @given(unit_value_arrays(), st.integers(min_value=1, max_value=1 << 20))
    def test_unit_norm_preserved(self, values, L):
        rounded, _ = round_unit_vector(values, L)
        assert np.linalg.norm(rounded) == pytest.approx(1.0, abs=1e-9)

    @given(unit_value_arrays(), st.integers(min_value=4, max_value=1 << 16))
    def test_signs_never_flip(self, values, L):
        rounded, _ = round_unit_vector(values, L)
        assert np.all((rounded == 0.0) | (np.sign(rounded) == np.sign(values)))

    @given(unit_value_arrays(), st.integers(min_value=1, max_value=1 << 16))
    def test_only_largest_rounds_up(self, values, L):
        rounded, _ = round_unit_vector(values, L)
        largest = int(np.argmax(np.abs(values)))
        others = np.delete(np.arange(values.size), largest)
        assert np.all(np.abs(rounded[others]) <= np.abs(values[others]) + 1e-12)

    @given(sparse_vectors(), st.integers(min_value=2, max_value=1 << 16))
    def test_round_vector_scale_invariance_up_to_float_boundaries(self, vector, L):
        # In exact arithmetic round(c*a) == round(a); in floats, entries
        # sitting exactly on a 1/L boundary may flip by one count (and
        # the largest entry absorbs the difference).  The invariant that
        # survives floating point: same occupancy budget, and per-entry
        # counts differing by at most the flooring slack.
        base = round_vector(vector, L)
        scaled = round_vector(vector.scaled(3.0), L)
        assert int(base.counts.sum()) == int(scaled.counts.sum()) == L
        base_map = dict(zip(base.indices.tolist(), base.counts.tolist()))
        scaled_map = dict(zip(scaled.indices.tolist(), scaled.counts.tolist()))
        total_difference = sum(
            abs(base_map.get(i, 0) - scaled_map.get(i, 0))
            for i in set(base_map) | set(scaled_map)
        )
        assert total_difference <= 2 * (vector.nnz + 1)

    @given(unit_value_arrays(), st.integers(min_value=1, max_value=1 << 16))
    def test_rounding_is_idempotent(self, values, L):
        first, counts_first = round_unit_vector(values, L)
        nonzero = first != 0.0
        assume(nonzero.any())
        second, counts_second = round_unit_vector(first[nonzero], L)
        np.testing.assert_array_equal(counts_second, counts_first[nonzero])


# ----------------------------------------------------------------------
# hashing / sketching consistency
# ----------------------------------------------------------------------


class TestHashingProperties:
    @given(st.integers(min_value=0, max_value=2**63), st.integers(0, 1_000_000))
    def test_counter_uniform_open_interval(self, seed, counter):
        draw = float(counter_uniform(derive_key(seed), counter))
        assert 0.0 < draw < 1.0

    @given(st.text(max_size=50))
    def test_key_to_index_in_domain(self, key):
        assert 0 <= key_to_index(key) < MERSENNE_31

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_int_keys_in_domain(self, key):
        assert 0 <= key_to_index(key) < MERSENNE_31


class TestSketchingProperties:
    @settings(deadline=None, max_examples=25)
    @given(
        st.integers(min_value=0, max_value=1_000),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=10_000),
    )
    def test_block_minima_within_unit_interval(self, seed, m, k):
        minima = simulate_block_minima(
            seed=seed, m=m, block_ids=np.array([3]), counts=np.array([k])
        )
        assert np.all((minima > 0.0) & (minima < 1.0))

    @settings(deadline=None, max_examples=20)
    @given(sparse_vectors(max_nnz=15), st.integers(min_value=0, max_value=100))
    def test_sketch_self_estimate_positive(self, vector, seed):
        sketcher = WeightedMinHash(m=64, seed=seed, L=1 << 14)
        estimate = sketcher.estimate(sketcher.sketch(vector), sketcher.sketch(vector))
        # <a, a> > 0; the estimate must at least get the sign right.
        assert estimate > 0.0

    @settings(deadline=None, max_examples=20)
    @given(sparse_vectors(max_nnz=15), st.integers(min_value=0, max_value=100))
    def test_sketch_scale_invariance_property(self, vector, seed):
        sketcher = WeightedMinHash(m=32, seed=seed, L=1 << 14)
        base = sketcher.sketch(vector)
        scaled = sketcher.sketch(vector.scaled(2.0))
        np.testing.assert_array_equal(base.hashes, scaled.hashes)
        np.testing.assert_array_equal(base.values, scaled.values)


# ----------------------------------------------------------------------
# LSH S-curve (repro.mips.lsh)
# ----------------------------------------------------------------------


class TestSCurveProperties:
    """Monotonicity invariants of the banding collision probability."""

    @given(
        sim_a=st.floats(min_value=0.0, max_value=1.0),
        sim_b=st.floats(min_value=0.0, max_value=1.0),
        rows=st.integers(min_value=1, max_value=16),
        bands=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_similarity(self, sim_a, sim_b, rows, bands):
        from repro.mips.lsh import collision_probability

        low, high = sorted((sim_a, sim_b))
        assert collision_probability(low, rows, bands) <= collision_probability(
            high, rows, bands
        )

    @given(
        sim=st.floats(min_value=0.0, max_value=1.0),
        rows=st.integers(min_value=1, max_value=16),
        bands=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_bands_and_bounded(self, sim, rows, bands):
        from repro.mips.lsh import collision_probability

        fewer = collision_probability(sim, rows, bands)
        more = collision_probability(sim, rows, bands + 1)
        assert 0.0 <= fewer <= more <= 1.0

    @given(
        sim=st.floats(min_value=0.0, max_value=1.0),
        rows=st.integers(min_value=1, max_value=15),
        bands=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_deeper_bands_suppress(self, sim, rows, bands):
        from repro.mips.lsh import collision_probability

        # More rows per band (same band count) can only lower the
        # collision probability: J^(r+1) <= J^r.
        assert collision_probability(sim, rows + 1, bands) <= (
            collision_probability(sim, rows, bands)
        )

    @given(
        m=st.integers(min_value=1, max_value=512),
        sim=st.floats(min_value=0.01, max_value=0.99),
        target=st.floats(min_value=0.5, max_value=0.99),
    )
    @settings(max_examples=200, deadline=None)
    def test_tune_is_feasible_or_max_recall(self, m, sim, target):
        from repro.mips.lsh import collision_probability, tune

        bands, rows = tune(m, sim, target)
        assert bands >= 1 and rows >= 1 and bands * rows <= m
        recall = collision_probability(sim, rows, bands)
        if (bands, rows) != (m, 1):
            assert recall >= target
        else:
            # Max-recall fallback: no deeper split can do better than
            # the full-width single-row banding.
            assert recall == collision_probability(sim, 1, m)
