"""Unit tests for the failpoint registry itself."""

from __future__ import annotations

import io
import os
import subprocess
import sys
import time

import pytest

import repro.store  # noqa: F401  (imports register the store failpoints)
from repro import faults
from repro.faults.registry import FailpointSpec, _parse_env

from .conftest import REPO_SRC


class TestParseSpec:
    def test_plain_modes(self):
        for mode in ("raise", "crash", "torn", "sleep"):
            spec = faults.parse_spec("x", mode)
            assert (spec.mode, spec.after) == (mode, 1)

    def test_arg_and_trigger_count(self):
        spec = faults.parse_spec("x", "sleep:0.25@3")
        assert spec == FailpointSpec(name="x", mode="sleep", arg=0.25, after=3)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            faults.parse_spec("x", "explode")

    def test_zero_trigger_rejected(self):
        with pytest.raises(ValueError, match="@N"):
            faults.parse_spec("x", "raise@0")

    def test_env_grammar(self):
        specs = _parse_env("a.b=raise, c.d=torn:0.3@2 ,")
        assert set(specs) == {"a.b", "c.d"}
        assert specs["c.d"].arg == 0.3 and specs["c.d"].after == 2

    def test_env_grammar_requires_equals(self):
        with pytest.raises(ValueError, match="name=mode"):
            _parse_env("just-a-name")


class TestRegistry:
    def test_store_failpoints_registered_at_import(self):
        known = faults.registered_failpoints()
        for name in (
            "shard.atomic.write",
            "shard.stream.finalize.rename",
            "manifest.save.write",
            "lake.commit.shard_durable",
            "lake.compact.manifest_saved",
            "parallel.stream.chunk",
            "io.write_chunk_rows",
        ):
            assert name in known, name

    def test_unknown_name_rejected_on_arming(self):
        with pytest.raises(ValueError, match="unknown failpoint"):
            with faults.failpoints("no.such.point=raise"):
                pass

    def test_disabled_failpoint_is_noop(self):
        faults.failpoint("shard.atomic.write")  # must not raise

    def test_raise_mode_fires(self):
        with faults.failpoints("shard.atomic.write=raise"):
            with pytest.raises(faults.FaultInjected, match="shard.atomic.write"):
                faults.failpoint("shard.atomic.write")

    def test_trigger_count_passes_early_hits(self):
        with faults.failpoints("shard.atomic.write=raise@3"):
            faults.failpoint("shard.atomic.write")
            faults.failpoint("shard.atomic.write")
            with pytest.raises(faults.FaultInjected):
                faults.failpoint("shard.atomic.write")
            # one-shot: spent after firing
            faults.failpoint("shard.atomic.write")

    def test_sleep_mode_delays_and_continues(self):
        with faults.failpoints("shard.atomic.write=sleep:0.05"):
            t0 = time.perf_counter()
            faults.failpoint("shard.atomic.write")
            assert time.perf_counter() - t0 >= 0.05

    def test_nested_scopes_restore(self):
        with faults.failpoints("shard.atomic.write=raise"):
            with faults.failpoints("manifest.save.write=raise"):
                assert set(faults.active_failpoints()) == {
                    "shard.atomic.write",
                    "manifest.save.write",
                }
            assert set(faults.active_failpoints()) == {"shard.atomic.write"}
        assert faults.active_failpoints() == {}


class TestTornWrite:
    def test_disabled_is_plain_write(self):
        buffer = io.BytesIO()
        faults.torn_write("shard.atomic.write", buffer, b"abcdef")
        assert buffer.getvalue() == b"abcdef"

    def test_raise_mode_fires_before_any_byte(self):
        buffer = io.BytesIO()
        with faults.failpoints("shard.atomic.write=raise"):
            with pytest.raises(faults.FaultInjected):
                faults.torn_write("shard.atomic.write", buffer, b"abcdef")
        assert buffer.getvalue() == b""

    def test_torn_mode_leaves_durable_prefix(self, tmp_path):
        """Subprocess check: torn mode writes a strict prefix, fsyncs,
        and exits with the crash code."""
        target = tmp_path / "torn.bin"
        code = (
            "from repro import faults\n"
            f"with open({str(target)!r}, 'wb') as h:\n"
            "    faults.torn_write('manifest.save.write', h, b'x' * 100)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        env[faults.FAILPOINTS_ENV] = "manifest.save.write=torn:0.25"
        result = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True
        )
        assert result.returncode == faults.CRASH_EXIT_CODE
        assert target.read_bytes() == b"x" * 25


class TestEnvArming:
    def test_env_arms_at_import(self):
        code = (
            "from repro import faults\n"
            "assert faults.active_failpoints() == "
            "{'manifest.load': 'raise'}, faults.active_failpoints()\n"
            "try:\n"
            "    faults.failpoint('manifest.load')\n"
            "except faults.FaultInjected:\n"
            "    raise SystemExit(0)\n"
            "raise SystemExit(3)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        env[faults.FAILPOINTS_ENV] = "manifest.load=raise"
        result = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr
