"""Victim subprocess for the crash-consistency torture harness.

Usage: ``python tests/faults/driver.py OP STORE_DIR [ARG]``

The harness arms failpoints through ``REPRO_FAILPOINTS`` *before*
launching this process, so the fault is injected inside a real, fully
independent process — ``crash`` mode genuinely kills it mid-syscall
sequence, exactly like a power cut would.

Ops
---
``seed``
    Create the store and give it history: two appends (the second
    replaces a table, creating a tombstone) so every later op has both
    shards and dead rows to work against.
``append``     Append two brand-new tables.
``replace``    Re-append two existing names (tombstoning the old spans).
``compact``    Merge live spans into one shard.
``append_pooled``
    Append with a 2-worker process pool (``REPRO_INGEST_NO_CLAMP`` is
    set so the pool is real even on 1-core CI runners) — the op the
    worker-death test crashes from inside a pool worker.
``slow_append``
    Print ``READY``, then append; exits with code 7 on a clean
    ``KeyboardInterrupt`` (the SIGTERM test asserts that code).
``hold_lock``
    Take the writer lock, print ``LOCKED``, hold it for ``ARG``
    seconds, release, exit 0.
``append_wait``
    Append one table with ``lock_timeout=ARG`` — the waiting side of
    the two-process lock-retry test.

Tables are deterministic functions of their seeds, so a reference run
of the same op on a copy of the store produces the exact committed
post-state the harness compares against.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.datasearch.table import Table
from repro.experiments.runner import method_registry
from repro.store import LakeStore

ROWS = 24


def make_tables(prefix: str, count: int, seed: int) -> list[Table]:
    rng = np.random.default_rng(seed)
    tables = []
    for i in range(count):
        keys = [f"k{j}" for j in range(ROWS)]
        tables.append(
            Table(
                f"{prefix}{i}",
                keys,
                {"v": rng.normal(size=ROWS), "w": rng.normal(size=ROWS)},
            )
        )
    return tables


def main() -> int:
    op, store_dir = sys.argv[1], sys.argv[2]
    arg = sys.argv[3] if len(sys.argv) > 3 else None

    if op == "seed":
        sketcher = method_registry()["WMH"].build(48, 0)
        store = LakeStore.create(store_dir, sketcher)
        store.append(make_tables("base", 3, seed=1))
        store.append(make_tables("base", 1, seed=5))  # tombstones base0
        store.close()
        return 0

    store = LakeStore.open(store_dir)
    try:
        if op == "append":
            store.append(make_tables("new", 2, seed=2))
        elif op == "replace":
            store.append(make_tables("base", 2, seed=3))
        elif op == "compact":
            store.compact()
        elif op == "append_pooled":
            store.append(
                make_tables("pooled", 4, seed=4), workers=2, chunk_bytes=1
            )
        elif op == "slow_append":
            print("READY", flush=True)
            try:
                store.append(make_tables("slow", 2, seed=6))
            except KeyboardInterrupt:
                return 7
        elif op == "hold_lock":
            with store._writer_lock(op="hold"):
                print("LOCKED", flush=True)
                time.sleep(float(arg or "1.0"))
        elif op == "append_wait":
            store.append(
                make_tables("waited", 1, seed=7),
                lock_timeout=float(arg) if arg else None,
            )
        else:
            print(f"unknown op {op!r}", file=sys.stderr)
            return 2
    finally:
        store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
