"""Crash-consistency torture: kill the victim at every failpoint.

The invariant, for every (operation, failpoint) pair: after the victim
process is killed at the armed point, reopening the store serves
either the exact pre-crash committed state or the exact post-crash
committed state — **bit-identically** (same tables, same sketch rows),
never a hybrid and never a corrupt read.  On top of that, ``repair``
must bring the directory back to an fsck-clean state without changing
which of the two states is served.

The quick matrix (always on) covers the commit protocol's delicate
windows; ``REPRO_TORTURE=full`` enumerates **every** registered
failpoint against every mutating op — the CI ``faults`` job runs that
on the nightly schedule.
"""

from __future__ import annotations

import os

import pytest

import repro.store  # noqa: F401  (imports register the store failpoints)
from repro import faults
from repro.store import LakeStore, fsck, repair

from .conftest import clone_store, fingerprint, run_driver, seed_store

OPS = ("append", "replace", "compact")

#: The always-on matrix: every window of the shard-first /
#: manifest-last protocol, the torn-capable byte writes, and the
#: streamed-writer finalize sequence.
QUICK = [
    ("append", "lake.append.stream=crash"),
    ("append", "shard.stream.write_rows=crash"),
    ("append", "shard.stream.finalize.crc=crash"),
    ("append", "shard.stream.finalize.rename=crash"),
    ("append", "lake.commit.shard_durable=crash"),
    ("append", "lake.commit.index_emitted=crash"),
    ("append", "lake.commit.manifest_saved=crash"),
    ("append", "shard.atomic.write=torn"),
    ("append", "manifest.save.write=torn"),
    ("append", "manifest.save.rename=crash"),
    ("replace", "lake.commit.manifest_saved=crash"),
    ("compact", "lake.compact.shard_durable=crash"),
    ("compact", "lake.compact.manifest_saved=crash"),
    ("compact", "shard.atomic.write=torn"),
]


def _full_matrix() -> list[tuple[str, str]]:
    pairs = []
    for op in OPS:
        for name in faults.registered_failpoints():
            mode = "torn" if name.endswith(".write") else "crash"
            pairs.append((op, f"{name}={mode}"))
    return pairs


def check_pre_or_post(tmp_path, op: str, spec: str) -> None:
    pre = seed_store(tmp_path)
    pre_print = fingerprint(pre)

    # Reference: the same op, no faults, on a copy — ops are
    # deterministic, so this IS the committed post state.
    ref = clone_store(pre, tmp_path / "ref")
    result = run_driver(op, ref)
    assert result.returncode == 0, result.stderr
    post_print = fingerprint(ref)

    vic = clone_store(pre, tmp_path / "vic")
    result = run_driver(op, vic, failpoints=spec)
    if result.returncode == 0:
        # The armed point is not on this op's path: plain post state.
        assert fingerprint(vic) == post_print, (op, spec)
        return
    assert result.returncode == faults.CRASH_EXIT_CODE, (
        op,
        spec,
        result.returncode,
        result.stderr,
    )

    served = fingerprint(vic)
    assert served in (pre_print, post_print), (
        f"{op} killed at {spec}: served state is a hybrid "
        f"(matches neither pre nor post)"
    )

    # Orphan accounting: everything the crash left behind must be
    # classified (orphan files, a recoverable manifest) — and repair
    # must restore fsck-clean without changing the served state.
    repair(vic)
    report = fsck(vic)
    assert report["clean"], (op, spec, report["problems"])
    assert fingerprint(vic) == served, (op, spec)


@pytest.mark.parametrize(("op", "spec"), QUICK)
def test_quick_matrix(tmp_path, op, spec):
    check_pre_or_post(tmp_path, op, spec)


@pytest.mark.skipif(
    os.environ.get("REPRO_TORTURE", "") != "full",
    reason="full enumeration runs with REPRO_TORTURE=full (CI nightly)",
)
@pytest.mark.parametrize(("op", "spec"), _full_matrix())
def test_full_enumeration(tmp_path, op, spec):
    check_pre_or_post(tmp_path, op, spec)


def test_worker_death_leaves_pre_state(tmp_path):
    """A pool worker dying mid-chunk must not strand the shard tmp.

    The driver's pooled append gets ``parallel.stream.chunk=crash``:
    the worker hard-exits, the pool breaks, the append path aborts the
    stream writer — pre state, no temp files, nothing orphaned.
    """
    pre = seed_store(tmp_path)
    pre_print = fingerprint(pre)
    vic = clone_store(pre, tmp_path / "vic")
    result = run_driver(
        "append_pooled",
        vic,
        failpoints="parallel.stream.chunk=crash",
        env_extra={"REPRO_INGEST_NO_CLAMP": "1"},
    )
    assert result.returncode not in (0, faults.CRASH_EXIT_CODE), result.stdout
    assert fingerprint(vic) == pre_print
    assert not list(vic.glob("*.tmp"))
    with LakeStore.open(vic) as store:
        assert store.orphaned_files() == []


def test_fault_free_runs_are_deterministic(tmp_path):
    """Two reference runs of the same op land byte-identical states —
    the property the pre-or-post comparison relies on."""
    pre = seed_store(tmp_path)
    one = clone_store(pre, tmp_path / "one")
    two = clone_store(pre, tmp_path / "two")
    for target in (one, two):
        result = run_driver("append", target)
        assert result.returncode == 0, result.stderr
    assert fingerprint(one) == fingerprint(two)
    manifest_one = (one / "manifest.json").read_bytes()
    manifest_two = (two / "manifest.json").read_bytes()
    assert manifest_one == manifest_two


def test_crashed_append_is_invisible_then_retriable(tmp_path):
    """After a mid-commit crash the op can simply be retried: the
    retry serves exactly the reference post state."""
    pre = seed_store(tmp_path)
    ref = clone_store(pre, tmp_path / "ref")
    result = run_driver("append", ref)
    assert result.returncode == 0, result.stderr
    post_print = fingerprint(ref)

    vic = clone_store(pre, tmp_path / "vic")
    result = run_driver(
        "append", vic, failpoints="shard.stream.finalize.rename=crash"
    )
    assert result.returncode == faults.CRASH_EXIT_CODE
    repair(vic)  # clears the stranded tmp
    result = run_driver("append", vic)
    assert result.returncode == 0, result.stderr
    assert fingerprint(vic) == post_print
