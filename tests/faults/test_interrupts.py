"""Clean interruption (SIGTERM / ctrl-C) and writer-lock contention."""

from __future__ import annotations

import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import faults, obs
from repro.store import LakeStore, StoreError
from repro.store.lake import _resolve_lock_timeout

from .conftest import (
    DRIVER,
    clone_store,
    fingerprint,
    run_driver,
    seed_store,
)
from .test_recovery import fresh_sketcher, make_tables


def _spawn_driver(op, store_dir, *, failpoints=None, arg=None, env_extra=None):
    import os

    env = dict(os.environ)
    from .conftest import REPO_SRC

    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.FAILPOINTS_ENV, None)
    if failpoints is not None:
        env[faults.FAILPOINTS_ENV] = failpoints
    if env_extra:
        env.update(env_extra)
    cmd = [sys.executable, str(DRIVER), op, str(store_dir)]
    if arg is not None:
        cmd.append(str(arg))
    return subprocess.Popen(
        cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
    )


def _wait_for_line(proc, marker, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if marker in line:
            return
        if proc.poll() is not None:
            raise AssertionError(
                f"driver exited {proc.returncode} before {marker!r}: "
                f"{proc.stderr.read()}"
            )
    raise AssertionError(f"no {marker!r} within {timeout}s")


class TestSigterm:
    def test_sigterm_mid_ingest_aborts_cleanly(self, tmp_path):
        """TERM during a streamed append: the writer aborts, the temp
        file disappears, and the store is exactly the pre state."""
        pre = seed_store(tmp_path)
        pre_print = fingerprint(pre)
        vic = clone_store(pre, tmp_path / "vic")
        # The first chunk stalls for 30 s at the sleep failpoint, which
        # guarantees TERM lands while the shard tmp exists.
        proc = _spawn_driver(
            "slow_append", vic, failpoints="parallel.stream.chunk=sleep:30"
        )
        try:
            _wait_for_line(proc, "READY")
            time.sleep(0.3)  # let the append reach the sleeping chunk
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 7, proc.stderr.read()

        assert not list(vic.glob("*.tmp"))
        assert fingerprint(vic) == pre_print
        with LakeStore.open(vic) as store:
            assert store.orphaned_files() == []


class TestWriterLockRetry:
    def test_two_processes_serialize_with_timeout(self, tmp_path):
        """Writer B waits out writer A's lock instead of dying."""
        pre = seed_store(tmp_path)
        holder = _spawn_driver("hold_lock", pre, arg="1.5")
        try:
            _wait_for_line(holder, "LOCKED")
            result = run_driver("append_wait", pre, arg="30")
            assert result.returncode == 0, result.stderr
        finally:
            holder.wait(timeout=60)
        with LakeStore.open(pre) as store:
            assert "waited0" in store.table_names()

    def test_fail_fast_without_timeout(self, tmp_path):
        pre = seed_store(tmp_path)
        holder = _spawn_driver("hold_lock", pre, arg="3.0")
        try:
            _wait_for_line(holder, "LOCKED")
            result = run_driver("append_wait", pre)
            assert result.returncode != 0
            assert "another process holds the writer lock" in result.stderr
        finally:
            holder.terminate()
            holder.wait(timeout=60)

    def test_backoff_retries_are_counted(self, tmp_path):
        """In-process contention: flock conflicts across two handles of
        the same process too, so a thread can hold the lock briefly
        while append retries with backoff."""
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(make_tables(1))

        import fcntl

        handle = open(tmp_path / "lake" / ".lock", "a+")
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        release = threading.Timer(0.4, lambda: handle.close())
        registry = obs.get_registry()
        was_enabled = obs.metrics_enabled()
        obs.enable_metrics(True)
        retries_before = registry.counter_value("store.lock_retries")
        try:
            release.start()
            store.append(make_tables(1, prefix="late"), lock_timeout=30.0)
        finally:
            obs.enable_metrics(was_enabled)
            release.cancel()
            if not handle.closed:
                handle.close()
            store.close()
        assert registry.counter_value("store.lock_retries") > retries_before

    def test_zero_timeout_fails_immediately(self, tmp_path):
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(make_tables(1))

        import fcntl

        handle = open(tmp_path / "lake" / ".lock", "a+")
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            with pytest.raises(StoreError, match="writer lock"):
                store.append(make_tables(1, prefix="late"))
        finally:
            handle.close()
            store.close()

    def test_env_timeout_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_TIMEOUT", raising=False)
        assert _resolve_lock_timeout(None) == 0.0
        assert _resolve_lock_timeout(2.5) == 2.5
        monkeypatch.setenv("REPRO_LOCK_TIMEOUT", "1.5")
        assert _resolve_lock_timeout(None) == 1.5
        monkeypatch.setenv("REPRO_LOCK_TIMEOUT", "soon")
        with pytest.raises(StoreError, match="REPRO_LOCK_TIMEOUT"):
            _resolve_lock_timeout(None)


class TestKeyboardInterruptPath:
    def test_raise_failpoint_triggers_abort_cleanup(self, tmp_path):
        """The exception path (any BaseException, KeyboardInterrupt
        included) aborts the stream writer and leaves no temp file."""
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(make_tables(2))
        with faults.failpoints("parallel.stream.chunk=raise"):
            with pytest.raises(faults.FaultInjected):
                store.append(make_tables(2, prefix="doomed"))
        assert not list((tmp_path / "lake").glob("*.tmp"))
        assert store.orphaned_files() == []
        # The store still works after the failed append.
        store.append(make_tables(1, prefix="after"))
        store.close()