"""Harness plumbing for the fault-injection test suite."""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.store import LakeStore

DRIVER = Path(__file__).with_name("driver.py")
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(autouse=True)
def _disarm_failpoints():
    """No armed failpoint ever leaks between tests."""
    yield
    faults.registry._reset_for_tests()


def run_driver(
    op: str,
    store_dir: Path,
    *,
    failpoints: str | None = None,
    env_extra: dict[str, str] | None = None,
    arg: str | None = None,
    timeout: float = 120.0,
    capture: bool = True,
) -> subprocess.CompletedProcess:
    """Run one driver op in a real subprocess, optionally with faults."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.FAILPOINTS_ENV, None)
    if failpoints is not None:
        env[faults.FAILPOINTS_ENV] = failpoints
    if env_extra:
        env.update(env_extra)
    cmd = [sys.executable, str(DRIVER), op, str(store_dir)]
    if arg is not None:
        cmd.append(arg)
    return subprocess.run(
        cmd, env=env, capture_output=capture, text=True, timeout=timeout
    )


def fingerprint(store_dir: Path) -> str:
    """A digest of the *served* state: live tables and their bank rows.

    Computed through a real ``LakeStore.open``, so it captures exactly
    what a reader after the crash would see — two stores fingerprint
    equal iff they serve the same tables with bit-identical sketch
    rows (and therefore identical rankings and estimates).
    """
    digest = hashlib.sha256()
    with LakeStore.open(store_dir) as store:
        digest.update(repr(sorted(store.table_names())).encode())
        spans = sorted(
            (
                (span.name, shard.shard_id, span.lo, span.hi, span.num_rows)
                for shard, span in store._manifest.live_spans()
            ),
        )
        for name, shard_id, lo, hi, num_rows in spans:
            bank = store._banks[shard_id][lo:hi]
            digest.update(f"{name}:{num_rows}".encode())
            for column in sorted(bank.columns):
                digest.update(
                    np.ascontiguousarray(bank.columns[column]).tobytes()
                )
    return digest.hexdigest()


def seed_store(tmp_path: Path) -> Path:
    """Create the canonical pre-state store (two shards, one tombstone)."""
    store_dir = tmp_path / "pre"
    result = run_driver("seed", store_dir)
    assert result.returncode == 0, result.stderr
    return store_dir


def clone_store(source: Path, target: Path) -> Path:
    shutil.copytree(source, target)
    return target
