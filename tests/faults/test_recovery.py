"""fsck / repair / salvage / degraded-open behavior.

The acceptance bar: after a shard is bit-flipped, ``repair`` restores
the store to a servable, writable, fsck-clean state whose surviving
tables rank **bit-identically** to a from-scratch ingest of the same
tables — corruption costs exactly the data that was corrupted, nothing
more.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.core.wmh import WeightedMinHash
from repro.datasearch.table import Table
from repro.store import (
    LakeStore,
    Manifest,
    ManifestError,
    QuerySession,
    StoreError,
    fsck,
    repair,
)
from repro.store.cli import main as cli_main
from repro.store.manifest import previous_manifest_path
from repro.store.shard import shard_filename


def make_tables(count=4, seed=0, rows=40, prefix="table"):
    rng = np.random.default_rng(seed)
    tables = []
    for i in range(count):
        keys = [f"k{j}" for j in rng.choice(200, size=rows, replace=False)]
        tables.append(
            Table(f"{prefix}{i}", keys, {"alpha": rng.normal(size=rows)})
        )
    return tables


def make_query(seed=99, rows=50):
    rng = np.random.default_rng(seed)
    keys = [f"k{j}" for j in rng.choice(200, size=rows, replace=False)]
    return Table("query", keys, {"signal": rng.normal(size=rows)})


def fresh_sketcher():
    return WeightedMinHash(m=48, seed=5, L=1 << 16)


def hit_tuples(hits):
    return [
        (h.table_name, h.column, h.score, h.join_size, h.containment)
        for h in hits
    ]


def bit_flip(path):
    data = bytearray(path.read_bytes())
    data[-5] ^= 0xFF
    path.write_bytes(bytes(data))


def two_shard_store(tmp_path):
    """Shard 1: table0..table3; shard 2: extra0..extra1."""
    store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
    store.append(make_tables(4))
    store.append(make_tables(2, seed=7, prefix="extra"))
    store.close()
    return tmp_path / "lake"


class TestFsck:
    def test_clean_store(self, tmp_path):
        lake = two_shard_store(tmp_path)
        report = fsck(lake)
        assert report["clean"]
        assert report["manifest"] == "ok"
        assert set(report["shards"].values()) == {"ok"}
        assert report["index"] == "ok"
        assert report["orphans"] == []

    def test_classifies_corrupt_shard(self, tmp_path):
        lake = two_shard_store(tmp_path)
        bit_flip(lake / shard_filename(2))
        report = fsck(lake)
        assert not report["clean"]
        assert report["shards"][shard_filename(1)] == "ok"
        assert report["shards"][shard_filename(2)].startswith("corrupt")

    def test_classifies_missing_shard_and_orphan(self, tmp_path):
        lake = two_shard_store(tmp_path)
        (lake / shard_filename(2)).unlink()
        (lake / "shard-000099.rpro").write_bytes(b"leftover")
        (lake / "shard-000100.rpro.tmp").write_bytes(b"stale")
        report = fsck(lake)
        assert report["shards"][shard_filename(2)] == "missing"
        assert report["orphans"] == [
            "shard-000099.rpro",
            "shard-000100.rpro.tmp",
        ]

    def test_classifies_torn_manifest(self, tmp_path):
        lake = two_shard_store(tmp_path)
        manifest_path = lake / "manifest.json"
        manifest_path.write_bytes(manifest_path.read_bytes()[:37])
        report = fsck(lake)
        assert not report["clean"]
        assert report["manifest"] == "recovered-previous"

    def test_not_a_directory(self, tmp_path):
        with pytest.raises(StoreError, match="not a directory"):
            fsck(tmp_path / "nope")


class TestDegradedOpen:
    def test_torn_manifest_falls_back_to_previous_generation(self, tmp_path):
        lake = two_shard_store(tmp_path)
        manifest_path = lake / "manifest.json"
        assert previous_manifest_path(manifest_path).is_file()
        with pytest.raises(ManifestError, match="malformed"):
            manifest_path.write_text("{ torn")
            Manifest.load(manifest_path)
        with LakeStore.open(lake) as store:
            assert any("fell back" in d for d in store.degraded)
            # The previous generation predates the second append.
            assert sorted(store.table_names()) == [
                "table0",
                "table1",
                "table2",
                "table3",
            ]

    def test_salvage_serves_survivors_read_only(self, tmp_path):
        lake = two_shard_store(tmp_path)
        bit_flip(lake / shard_filename(1))
        with pytest.raises(StoreError, match="corrupt shard"):
            LakeStore.open(lake)
        with LakeStore.open(lake, salvage=True) as store:
            assert sorted(store.table_names()) == ["extra0", "extra1"]
            assert store.stats()["read_only"]
            with pytest.raises(StoreError, match="salvage"):
                store.append(make_tables(1, prefix="blocked"))

    def test_degraded_open_counts_scan_fallback(self, tmp_path):
        lake = two_shard_store(tmp_path)
        record = json.loads((lake / "manifest.json").read_text())["index"]
        (lake / record["file"]).unlink()
        registry = obs.get_registry()
        was_enabled = obs.metrics_enabled()
        obs.enable_metrics(True)
        try:
            before = registry.counter_value("query.route.scan_fallback")
            fallback_before = registry.counter_value(
                "store.recovery.index_fallback"
            )
            with LakeStore.open(lake) as store:
                assert any("missing LSH index" in d for d in store.degraded)
            assert (
                registry.counter_value("query.route.scan_fallback")
                == before + 1
            )
            assert (
                registry.counter_value("store.recovery.index_fallback")
                == fallback_before + 1
            )
        finally:
            obs.enable_metrics(was_enabled)


class TestRepair:
    def test_healthy_store_is_untouched(self, tmp_path):
        lake = two_shard_store(tmp_path)
        before = (lake / "manifest.json").read_bytes()
        report = repair(lake)
        assert report["quarantined"] == []
        assert report["index"] == "kept"
        assert not report["manifest_restored"]
        assert (lake / "manifest.json").read_bytes() == before

    def test_acceptance_bit_flipped_shard(self, tmp_path):
        """Repair a corrupted store; survivors rank bit-identically to
        a from-scratch ingest of the same tables."""
        lake = two_shard_store(tmp_path)
        bit_flip(lake / shard_filename(1))

        report = repair(lake)
        assert report["quarantined"][0] == shard_filename(1)
        assert report["tables_lost"] == [f"table{i}" for i in range(4)]
        assert (lake / "quarantine" / shard_filename(1)).is_file()
        assert fsck(lake)["clean"]

        query = make_query()
        with LakeStore.open(lake) as store:
            assert store.degraded == []
            hits = QuerySession(store, min_containment=0.0).search(
                query, "signal", candidates="lsh"
            )
            # Writable again: repair lifted the salvage restriction.
            store.append(make_tables(1, seed=11, prefix="post"))

        fresh = LakeStore.create(tmp_path / "fresh", fresh_sketcher())
        fresh.append(make_tables(2, seed=7, prefix="extra"))
        expected = QuerySession(fresh, min_containment=0.0).search(
            query, "signal", candidates="lsh"
        )
        fresh.close()
        assert hit_tuples(hits) == hit_tuples(expected)

    def test_resurrects_replaced_table_from_older_span(self, tmp_path):
        """Losing the shard that replaced a table brings back the old
        version instead of nothing."""
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(make_tables(3))
        store.append(make_tables(1, seed=9))  # replaces table0
        store.close()
        bit_flip(tmp_path / "lake" / shard_filename(2))
        report = repair(tmp_path / "lake")
        assert report["tables_resurrected"] == ["table0"]
        assert report["tables_lost"] == []
        with LakeStore.open(tmp_path / "lake") as reopened:
            assert sorted(reopened.table_names()) == [
                "table0",
                "table1",
                "table2",
            ]

    def test_restores_torn_manifest(self, tmp_path):
        lake = two_shard_store(tmp_path)
        (lake / "manifest.json").write_text("{ torn")
        report = repair(lake)
        assert report["manifest_restored"]
        assert fsck(lake)["clean"]
        with LakeStore.open(lake) as store:
            assert store.degraded == []

    def test_sweeps_orphans_and_stale_tmp(self, tmp_path):
        lake = two_shard_store(tmp_path)
        (lake / "shard-000042.rpro").write_bytes(b"interrupted append")
        (lake / "shard-000043.rpro.tmp").write_bytes(b"mid-stream death")
        with LakeStore.open(lake) as store:
            assert store.orphaned_files() == [
                "shard-000042.rpro",
                "shard-000043.rpro.tmp",
            ]
        report = repair(lake)
        assert "shard-000042.rpro" in report["quarantined"]
        assert report["tmp_removed"] == ["shard-000043.rpro.tmp"]
        assert (lake / "quarantine" / "shard-000042.rpro").is_file()
        assert not (lake / "shard-000043.rpro.tmp").exists()
        assert fsck(lake)["clean"]

    def test_unrepairable_store_raises(self, tmp_path):
        lake = tmp_path / "lake"
        lake.mkdir()
        (lake / "manifest.json").write_text("{ torn")
        with pytest.raises(StoreError, match="no readable manifest"):
            repair(lake)


class TestCli:
    def test_fsck_exit_codes(self, tmp_path, capsys):
        lake = two_shard_store(tmp_path)
        assert cli_main(["fsck", str(lake)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"]
        bit_flip(lake / shard_filename(1))
        assert cli_main(["fsck", str(lake)]) == 1

    def test_repair_then_fsck_clean(self, tmp_path, capsys):
        lake = two_shard_store(tmp_path)
        bit_flip(lake / shard_filename(1))
        assert cli_main(["repair", str(lake)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["quarantined"]
        assert cli_main(["fsck", str(lake)]) == 0
