"""Tests for b-bit minwise hashing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SketchMismatchError
from repro.sketches.bbit import BbitMinHash
from repro.vectors.ops import jaccard_similarity
from repro.vectors.sparse import SparseVector


class TestConstruction:
    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            BbitMinHash(m=0)

    @pytest.mark.parametrize("b", [0, 33])
    def test_rejects_bad_b(self, b):
        with pytest.raises(ValueError):
            BbitMinHash(m=8, b=b)

    def test_from_storage_bit_accounting(self):
        # (words - 1) * 64 bits of fingerprint budget / b bits each.
        sketcher = BbitMinHash.from_storage(11, b=2)
        assert sketcher.m == 320
        assert sketcher.storage_words() == pytest.approx(11.0)

    def test_storage_scales_with_b(self):
        assert BbitMinHash(m=128, b=1).storage_words() == pytest.approx(3.0)
        assert BbitMinHash(m=128, b=8).storage_words() == pytest.approx(17.0)


class TestSketching:
    def test_bits_within_width(self, pair_factory):
        a, _ = pair_factory(n=400, nnz=100, overlap=0.3, seed=0, values="binary")
        sketch = BbitMinHash(m=64, b=3, seed=0).sketch(a)
        assert int(sketch.bits.max()) < 8

    def test_deterministic(self, pair_factory):
        a, _ = pair_factory(n=400, nnz=100, overlap=0.3, seed=0, values="binary")
        s1 = BbitMinHash(m=64, b=2, seed=1).sketch(a)
        s2 = BbitMinHash(m=64, b=2, seed=1).sketch(a)
        np.testing.assert_array_equal(s1.bits, s2.bits)

    def test_support_size_recorded(self, pair_factory):
        a, _ = pair_factory(n=400, nnz=100, overlap=0.3, seed=0, values="binary")
        assert BbitMinHash(m=16, b=1, seed=0).sketch(a).support_size == a.nnz

    def test_values_ignored(self):
        # Only the support matters: same support, different values.
        a = SparseVector([1, 5, 9], [1.0, 2.0, 3.0])
        b = SparseVector([1, 5, 9], [-7.0, 0.5, 100.0])
        sketcher = BbitMinHash(m=32, b=4, seed=2)
        np.testing.assert_array_equal(sketcher.sketch(a).bits, sketcher.sketch(b).bits)

    def test_zero_vector(self):
        sketch = BbitMinHash(m=8, b=1, seed=0).sketch(SparseVector.zero())
        assert sketch.support_size == 0


class TestEstimation:
    def test_mismatch_rejected(self, pair_factory):
        a, b = pair_factory(n=400, nnz=100, overlap=0.3, seed=1, values="binary")
        with pytest.raises(SketchMismatchError):
            BbitMinHash(m=16, b=1, seed=0).estimate_jaccard(
                BbitMinHash(m=16, b=1, seed=0).sketch(a),
                BbitMinHash(m=16, b=2, seed=0).sketch(b),
            )

    def test_identical_sets_jaccard_one(self, pair_factory):
        a, _ = pair_factory(n=400, nnz=100, overlap=0.3, seed=2, values="binary")
        sketcher = BbitMinHash(m=128, b=2, seed=0)
        sketch = sketcher.sketch(a)
        assert sketcher.estimate_jaccard(sketch, sketch) == pytest.approx(1.0)

    def test_zero_vector_jaccard_zero(self, pair_factory):
        a, _ = pair_factory(n=400, nnz=100, overlap=0.3, seed=3, values="binary")
        sketcher = BbitMinHash(m=64, b=1, seed=0)
        assert sketcher.estimate_jaccard(
            sketcher.sketch(a), sketcher.sketch(SparseVector.zero())
        ) == 0.0

    @pytest.mark.parametrize("b", [1, 2, 8])
    def test_jaccard_estimation_accuracy(self, b, pair_factory):
        a, vector_b = pair_factory(n=1_000, nnz=300, overlap=0.4, seed=4, values="binary")
        expected = jaccard_similarity(a, vector_b)
        estimates = [
            BbitMinHash(m=1_200, b=b, seed=s).estimate_jaccard(
                BbitMinHash(m=1_200, b=b, seed=s).sketch(a),
                BbitMinHash(m=1_200, b=b, seed=s).sketch(vector_b),
            )
            for s in range(10)
        ]
        assert np.mean(estimates) == pytest.approx(expected, abs=0.05)

    def test_intersection_estimation(self, pair_factory):
        a, b = pair_factory(n=1_000, nnz=300, overlap=0.4, seed=5, values="binary")
        truth = a.dot(b)  # binary -> intersection size
        estimates = [
            BbitMinHash(m=1_500, b=2, seed=s).estimate_pair(a, b) for s in range(10)
        ]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.15)

    def test_one_bit_beats_full_hash_at_equal_storage(self, pair_factory):
        # Li & König's headline: at equal storage, many 1-bit samples
        # estimate Jaccard better than few 32-bit samples when J is
        # moderate.  We compare against b=32 at the same bit budget.
        a, other = pair_factory(n=1_000, nnz=300, overlap=0.6, seed=6, values="binary")
        expected = jaccard_similarity(a, other)
        bit_budget = 64 * 40  # 40 words of fingerprints

        def mean_error(bits: int) -> float:
            m = bit_budget // bits
            errors = []
            for seed in range(12):
                sketcher = BbitMinHash(m=m, b=bits, seed=seed)
                estimate = sketcher.estimate_jaccard(
                    sketcher.sketch(a), sketcher.sketch(other)
                )
                errors.append(abs(estimate - expected))
            return float(np.mean(errors))

        assert mean_error(1) < mean_error(32)
