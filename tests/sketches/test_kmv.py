"""Tests for the K-Minimum-Values sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SketchMismatchError
from repro.sketches.kmv import KMinimumValues
from repro.vectors.sparse import SparseVector


class TestConstruction:
    def test_rejects_k_below_two(self):
        with pytest.raises(ValueError):
            KMinimumValues(k=1)

    def test_from_storage_sampling_cost(self):
        assert KMinimumValues.from_storage(300).k == 200

    def test_storage_words(self):
        assert KMinimumValues(k=100).storage_words() == pytest.approx(150.0)


class TestSketching:
    def test_bottom_k_sorted(self, small_pair):
        a, _ = small_pair
        sketch = KMinimumValues(k=32, seed=0).sketch(a)
        assert sketch.hashes.size == 32
        assert np.all(np.diff(sketch.hashes) >= 0)

    def test_keeps_smallest_hashes(self, small_pair):
        a, _ = small_pair
        full = KMinimumValues(k=a.nnz + 10, seed=0).sketch(a)
        partial = KMinimumValues(k=16, seed=0).sketch(a)
        np.testing.assert_array_equal(partial.hashes, np.sort(full.hashes)[:16])

    def test_exact_flag_for_small_vectors(self):
        vector = SparseVector([1, 2, 3], [1.0, 2.0, 3.0])
        sketch = KMinimumValues(k=10, seed=0).sketch(vector)
        assert sketch.exact
        assert sketch.hashes.size == 3

    def test_not_exact_for_large_vectors(self, small_pair):
        a, _ = small_pair
        assert not KMinimumValues(k=16, seed=0).sketch(a).exact

    def test_zero_vector(self):
        sketch = KMinimumValues(k=4, seed=0).sketch(SparseVector.zero())
        assert sketch.hashes.size == 0
        assert sketch.exact

    def test_deterministic(self, small_pair):
        a, _ = small_pair
        s1 = KMinimumValues(k=16, seed=3).sketch(a)
        s2 = KMinimumValues(k=16, seed=3).sketch(a)
        np.testing.assert_array_equal(s1.hashes, s2.hashes)
        np.testing.assert_array_equal(s1.values, s2.values)


class TestUnionEstimation:
    def test_union_estimate_accuracy(self, pair_factory):
        a, b = pair_factory(n=1_000, nnz=300, overlap=0.3, seed=1, values="binary")
        union = a.nnz + b.nnz - int(a.dot(b))
        estimates = []
        for seed in range(15):
            sketcher = KMinimumValues(k=128, seed=seed)
            estimates.append(
                sketcher.estimate_union_size(sketcher.sketch(a), sketcher.sketch(b))
            )
        assert np.mean(estimates) == pytest.approx(union, rel=0.15)

    def test_union_exact_for_fully_stored_sketches(self):
        a = SparseVector([1, 2, 3], np.ones(3))
        b = SparseVector([3, 4], np.ones(2))
        sketcher = KMinimumValues(k=100, seed=0)
        assert sketcher.estimate_union_size(
            sketcher.sketch(a), sketcher.sketch(b)
        ) == pytest.approx(4.0)

    def test_union_zero_for_empty(self):
        sketcher = KMinimumValues(k=4, seed=0)
        zero = sketcher.sketch(SparseVector.zero())
        assert sketcher.estimate_union_size(zero, zero) == 0.0


class TestInnerProductEstimation:
    def test_mismatch_rejected(self, small_pair):
        a, b = small_pair
        with pytest.raises(SketchMismatchError):
            KMinimumValues(k=16, seed=0).estimate(
                KMinimumValues(k=16, seed=0).sketch(a),
                KMinimumValues(k=32, seed=0).sketch(b),
            )

    def test_exact_sketches_give_exact_answer(self):
        a = SparseVector([1, 2, 3], [1.0, 2.0, 3.0])
        b = SparseVector([2, 3, 9], [5.0, 7.0, 1.0])
        sketcher = KMinimumValues(k=50, seed=0)
        assert sketcher.estimate_pair(a, b) == pytest.approx(a.dot(b))

    def test_zero_estimate_for_zero_vector(self, small_pair):
        a, _ = small_pair
        sketcher = KMinimumValues(k=16, seed=0)
        assert sketcher.estimate(
            sketcher.sketch(a), sketcher.sketch(SparseVector.zero())
        ) == 0.0

    def test_unbiased_on_binary(self, pair_factory):
        a, b = pair_factory(n=1_000, nnz=300, overlap=0.4, seed=2, values="binary")
        truth = a.dot(b)
        estimates = [
            KMinimumValues(k=200, seed=s).estimate_pair(a, b) for s in range(20)
        ]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.15)

    def test_accuracy_on_real_values(self, pair_factory):
        a, b = pair_factory(n=1_000, nnz=300, overlap=0.4, seed=3)
        truth = a.dot(b)
        scale = a.norm() * b.norm()
        errors = [
            abs(KMinimumValues(k=200, seed=s).estimate_pair(a, b) - truth) / scale
            for s in range(20)
        ]
        assert np.mean(errors) < 0.15

    def test_error_shrinks_with_k(self, pair_factory):
        a, b = pair_factory(n=1_000, nnz=300, overlap=0.4, seed=4)
        truth = a.dot(b)

        def mean_error(k: int) -> float:
            return float(
                np.mean(
                    [
                        abs(KMinimumValues(k=k, seed=s).estimate_pair(a, b) - truth)
                        for s in range(20)
                    ]
                )
            )

        assert mean_error(256) < mean_error(8)
