"""Tests for the unweighted MinHash sketch (Algorithms 1-2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SketchMismatchError
from repro.core.theory import minhash_bound
from repro.sketches.minhash import MinHash
from repro.vectors.ops import jaccard_similarity
from repro.vectors.sparse import SparseVector


class TestConstruction:
    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            MinHash(m=0)

    def test_from_storage_sampling_cost(self):
        assert MinHash.from_storage(300).m == 200

    def test_storage_words(self):
        assert MinHash(m=100).storage_words() == pytest.approx(150.0)


class TestSketching:
    def test_deterministic(self, small_pair):
        a, _ = small_pair
        s1 = MinHash(m=32, seed=2).sketch(a)
        s2 = MinHash(m=32, seed=2).sketch(a)
        np.testing.assert_array_equal(s1.hashes, s2.hashes)
        np.testing.assert_array_equal(s1.values, s2.values)

    def test_values_drawn_from_vector(self, small_pair):
        a, _ = small_pair
        sketch = MinHash(m=64, seed=0).sketch(a)
        assert set(sketch.values.tolist()) <= set(a.values.tolist())

    def test_hashes_in_unit_interval(self, small_pair):
        a, _ = small_pair
        sketch = MinHash(m=64, seed=0).sketch(a)
        assert sketch.hashes.min() > 0.0
        assert sketch.hashes.max() <= 1.0

    def test_zero_vector(self):
        sketch = MinHash(m=8, seed=0).sketch(SparseVector.zero())
        assert np.all(np.isinf(sketch.hashes))

    def test_sampling_is_uniform_over_support(self):
        # Each repetition's argmin index is uniform over the support.
        vector = SparseVector(np.arange(10), np.arange(1.0, 11.0))
        sketch = MinHash(m=5_000, seed=1).sketch(vector)
        counts = {value: 0 for value in vector.values}
        for value in sketch.values:
            counts[value] += 1
        frequencies = np.array(list(counts.values())) / 5_000
        assert np.all(np.abs(frequencies - 0.1) < 0.03)


class TestFact3:
    def test_collision_rate_equals_jaccard(self, pair_factory):
        a, b = pair_factory(n=400, nnz=100, overlap=0.3, seed=2, values="binary")
        expected = jaccard_similarity(a, b)
        rates = [
            float(
                np.mean(
                    MinHash(m=400, seed=s).sketch(a).hashes
                    == MinHash(m=400, seed=s).sketch(b).hashes
                )
            )
            for s in range(15)
        ]
        assert np.mean(rates) == pytest.approx(expected, rel=0.1)

    def test_no_collisions_for_disjoint_supports(self):
        a = SparseVector(np.arange(50), np.ones(50))
        b = SparseVector(np.arange(1_000, 1_050), np.ones(50))
        sketcher = MinHash(m=500, seed=0)
        matches = sketcher.sketch(a).hashes == sketcher.sketch(b).hashes
        assert matches.sum() <= 1  # CW hash collisions are possible but rare


class TestEstimation:
    def test_mismatch_rejected(self, small_pair):
        a, b = small_pair
        with pytest.raises(SketchMismatchError):
            MinHash(m=16, seed=0).estimate(
                MinHash(m=16, seed=0).sketch(a), MinHash(m=16, seed=1).sketch(b)
            )

    def test_zero_vector_estimates_zero(self, small_pair):
        a, _ = small_pair
        sketcher = MinHash(m=16, seed=0)
        assert sketcher.estimate(
            sketcher.sketch(a), sketcher.sketch(SparseVector.zero())
        ) == 0.0

    def test_binary_intersection_estimation(self, pair_factory):
        # For binary vectors <a, b> = |A ∩ B|; Algorithm 2 must recover
        # it (this is the classic set-intersection use).
        a, b = pair_factory(n=400, nnz=100, overlap=0.4, seed=3, values="binary")
        truth = a.dot(b)
        estimates = [MinHash(m=400, seed=s).estimate_pair(a, b) for s in range(20)]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.15)

    def test_theorem4_bound_for_bounded_vectors(self, pair_factory):
        a, b = pair_factory(n=400, nnz=100, overlap=0.3, seed=4)  # normals ~ bounded
        truth = a.dot(b)
        m = 256
        bound = 3.0 * minhash_bound(a, b, m)
        successes = sum(
            abs(MinHash(m=m, seed=s).estimate_pair(a, b) - truth) <= bound
            for s in range(30)
        )
        assert successes >= 27

    def test_degrades_on_shared_heavy_entry(self, pair_factory):
        # The paper's Section 4 motivating failure: a shared heavy entry
        # dominates <a, b>; uniform sampling misses it most of the time,
        # while weighted sampling (WMH) nails it.
        from repro.core.wmh import WeightedMinHash

        rng = np.random.default_rng(5)
        indices = rng.permutation(400)
        shared = indices[:30]
        only_a = indices[30:100]
        only_b = indices[100:170]
        values_a = rng.uniform(-1, 1, size=100)
        values_b = rng.uniform(-1, 1, size=100)
        values_a[0] = 25.0  # the heavy shared coordinate
        values_b[0] = 25.0
        a = SparseVector(np.concatenate([shared, only_a]), values_a)
        b = SparseVector(np.concatenate([shared, only_b]), values_b)
        truth = a.dot(b)
        assert truth > 500  # dominated by the heavy entry

        def median_relative_error(factory) -> float:
            errors = [
                abs(factory(s).estimate_pair(a, b) - truth) / truth
                for s in range(20)
            ]
            return float(np.median(errors))

        mh_error = median_relative_error(lambda s: MinHash(m=128, seed=s))
        wmh_error = median_relative_error(
            lambda s: WeightedMinHash(m=128, seed=s, L=1 << 20)
        )
        assert wmh_error < mh_error / 2

    def test_union_estimate_within_lemma1(self, pair_factory):
        a, b = pair_factory(n=400, nnz=100, overlap=0.3, seed=6, values="binary")
        union = a.nnz + b.nnz - int(a.dot(b))
        sketcher = MinHash(m=800, seed=7)
        sketch_a, sketch_b = sketcher.sketch(a), sketcher.sketch(b)
        minima = np.minimum(sketch_a.hashes, sketch_b.hashes)
        estimate = sketcher.m / float(minima.sum()) - 1.0
        assert estimate == pytest.approx(union, rel=0.2)
