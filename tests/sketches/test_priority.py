"""Tests for coordinated priority sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SketchMismatchError
from repro.sketches.priority import PrioritySampling
from repro.vectors.sparse import SparseVector


class TestConstruction:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            PrioritySampling(k=0)

    def test_from_storage_sampling_cost(self):
        assert PrioritySampling.from_storage(300).k == 200


class TestSketching:
    def test_deterministic(self, small_pair):
        a, _ = small_pair
        s1 = PrioritySampling(k=32, seed=4).sketch(a)
        s2 = PrioritySampling(k=32, seed=4).sketch(a)
        np.testing.assert_array_equal(s1.indices, s2.indices)
        assert s1.threshold == s2.threshold

    def test_small_vector_stored_exactly(self):
        vector = SparseVector([1, 5, 9], [1.0, -2.0, 3.0])
        sketch = PrioritySampling(k=10, seed=0).sketch(vector)
        assert not np.isfinite(sketch.threshold)
        assert set(sketch.indices.tolist()) == {1, 5, 9}

    def test_keeps_k_samples(self, small_pair):
        a, _ = small_pair
        sketch = PrioritySampling(k=32, seed=0).sketch(a)
        assert sketch.indices.size == 32
        assert np.isfinite(sketch.threshold)

    def test_heavy_entries_almost_always_kept(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.1, 0.2, size=200)
        values[7] = 50.0  # dominant coordinate
        vector = SparseVector(np.arange(200), values)
        kept = 0
        for seed in range(20):
            sketch = PrioritySampling(k=20, seed=seed).sketch(vector)
            kept += 7 in sketch.indices.tolist()
        assert kept == 20

    def test_coordination_shared_uniforms(self, small_pair):
        # Two different vectors on overlapping supports must rank shared
        # indices with the same u_j: a shared index kept by the sparser
        # vector at huge k must... (directly test the internal hook).
        a, b = small_pair
        sketcher = PrioritySampling(k=16, seed=3)
        shared = np.intersect1d(a.indices, b.indices)
        u_from_a = sketcher._shared_uniforms(shared)
        u_from_b = sketcher._shared_uniforms(shared)
        np.testing.assert_array_equal(u_from_a, u_from_b)

    def test_zero_vector(self):
        sketch = PrioritySampling(k=4, seed=0).sketch(SparseVector.zero())
        assert sketch.indices.size == 0


class TestEstimation:
    def test_mismatch_rejected(self, small_pair):
        a, b = small_pair
        with pytest.raises(SketchMismatchError):
            PrioritySampling(k=16, seed=0).estimate(
                PrioritySampling(k=16, seed=0).sketch(a),
                PrioritySampling(k=16, seed=1).sketch(b),
            )

    def test_exact_when_everything_fits(self):
        a = SparseVector([1, 2, 3], [1.0, 2.0, 3.0])
        b = SparseVector([2, 3, 4], [5.0, 7.0, 1.0])
        sketcher = PrioritySampling(k=100, seed=0)
        assert sketcher.estimate_pair(a, b) == pytest.approx(a.dot(b))

    def test_zero_for_disjoint(self):
        a = SparseVector(np.arange(30), np.ones(30))
        b = SparseVector(np.arange(100, 130), np.ones(30))
        sketcher = PrioritySampling(k=8, seed=0)
        assert sketcher.estimate_pair(a, b) == 0.0

    def test_approximately_unbiased(self, pair_factory):
        a, b = pair_factory(n=500, nnz=150, overlap=0.4, seed=3)
        truth = a.dot(b)
        estimates = [
            PrioritySampling(k=100, seed=s).estimate_pair(a, b) for s in range(40)
        ]
        scale = a.norm() * b.norm()
        assert abs(np.mean(estimates) - truth) / scale < 0.05

    def test_error_shrinks_with_k(self, pair_factory):
        a, b = pair_factory(n=500, nnz=150, overlap=0.4, seed=4)
        truth = a.dot(b)

        def mean_error(k: int) -> float:
            return float(
                np.mean(
                    [
                        abs(PrioritySampling(k=k, seed=s).estimate_pair(a, b) - truth)
                        for s in range(20)
                    ]
                )
            )

        assert mean_error(128) < mean_error(8)

    def test_handles_heavy_entries_like_wmh(self, pair_factory):
        # Coordinated weighted sampling is the same family as WMH: the
        # shared heavy coordinate must not break it (unlike uniform MH).
        rng = np.random.default_rng(5)
        indices = rng.permutation(400)
        shared = indices[:30]
        values_a = rng.uniform(-1, 1, size=100)
        values_b = rng.uniform(-1, 1, size=100)
        values_a[0] = values_b[0] = 25.0
        a = SparseVector(np.concatenate([shared, indices[30:100]]), values_a)
        b = SparseVector(np.concatenate([shared, indices[100:170]]), values_b)
        truth = a.dot(b)
        errors = [
            abs(PrioritySampling(k=64, seed=s).estimate_pair(a, b) - truth) / truth
            for s in range(20)
        ]
        assert float(np.median(errors)) < 0.2


class TestSumEstimation:
    def test_exact_sum_when_everything_fits(self):
        vector = SparseVector([1, 2], [3.0, 4.0])
        sketcher = PrioritySampling(k=10, seed=0)
        assert sketcher.estimate_sum(sketcher.sketch(vector)) == pytest.approx(7.0)

    def test_sum_approximately_unbiased(self):
        rng = np.random.default_rng(6)
        vector = SparseVector(np.arange(300), rng.uniform(0.5, 2.0, size=300))
        exact = float(vector.values.sum())
        estimates = [
            PrioritySampling(k=60, seed=s).estimate_sum(
                PrioritySampling(k=60, seed=s).sketch(vector)
            )
            for s in range(40)
        ]
        assert np.mean(estimates) == pytest.approx(exact, rel=0.05)

    def test_empty_sum(self):
        sketcher = PrioritySampling(k=4, seed=0)
        assert sketcher.estimate_sum(sketcher.sketch(SparseVector.zero())) == 0.0


class TestBatchPath:
    """The vectorized ``sketch_batch`` must match the scalar loop bit
    for bit — same sampled coordinates, same order, same threshold."""

    def corpus(self, seed: int = 0, rows: int = 20) -> list[SparseVector]:
        rng = np.random.default_rng(seed)
        vectors = []
        for _ in range(rows):
            nnz = int(rng.integers(1, 30))
            indices = rng.choice(500, size=nnz, replace=False)
            vectors.append(SparseVector(indices, rng.normal(size=nnz)))
        vectors.append(SparseVector.zero())
        return vectors

    def test_batch_sketches_bit_identical_to_scalar(self):
        sampler = PrioritySampling(k=8, seed=3)
        corpus = self.corpus()
        bank = sampler.sketch_batch(corpus)
        for i, vector in enumerate(corpus):
            scalar = sampler.sketch(vector)
            row = sampler.bank_row(bank, i)
            for field in scalar.__dataclass_fields__:
                expected = getattr(scalar, field)
                actual = getattr(row, field)
                if isinstance(expected, np.ndarray):
                    np.testing.assert_array_equal(actual, expected, err_msg=f"row {i}")
                else:
                    assert actual == expected, f"row {i} field {field}"

    def test_batch_shares_uniform_derivation_across_rows(self):
        # Two rows over the same support must sample the same coordinates
        # (coordination), and batch must preserve that.
        indices = np.arange(40)
        a = SparseVector(indices, np.linspace(1, 2, 40))
        b = SparseVector(indices, np.linspace(1, 2, 40) * 3.0)
        sampler = PrioritySampling(k=10, seed=1)
        bank = sampler.sketch_batch([a, b])
        row_a, row_b = sampler.bank_row(bank, 0), sampler.bank_row(bank, 1)
        np.testing.assert_array_equal(np.sort(row_a.indices), np.sort(row_b.indices))

    def test_explicit_zero_csr_entries_match_scalar(self):
        from repro.vectors.sparse import SparseMatrix

        # The CSR constructor keeps explicit zeros that SparseVector
        # drops; batch must drop them too or thresholds diverge.
        matrix = SparseMatrix(
            np.array([0, 3, 4]),
            np.array([1, 2, 3, 5]),
            np.array([1.0, 0.0, 2.0, 0.0]),
        )
        sampler = PrioritySampling(k=2, seed=7)
        bank = sampler.sketch_batch(matrix)
        for i in range(2):
            scalar = sampler.sketch(matrix.row(i))
            row = sampler.bank_row(bank, i)
            np.testing.assert_array_equal(row.indices, scalar.indices)
            np.testing.assert_array_equal(row.values, scalar.values)
            np.testing.assert_array_equal(row.weights, scalar.weights)
            assert row.threshold == scalar.threshold
