"""Tests for the JL / AMS sign-projection sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SketchMismatchError
from repro.core.theory import linear_sketch_bound
from repro.sketches.jl import JohnsonLindenstrauss
from repro.vectors.sparse import SparseVector


class TestConstruction:
    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            JohnsonLindenstrauss(m=0)

    def test_from_storage_one_word_per_row(self):
        assert JohnsonLindenstrauss.from_storage(400).m == 400

    def test_storage_words(self):
        assert JohnsonLindenstrauss(m=123).storage_words() == 123.0


class TestSketching:
    def test_deterministic(self, small_pair):
        a, _ = small_pair
        s1 = JohnsonLindenstrauss(m=32, seed=5).sketch(a)
        s2 = JohnsonLindenstrauss(m=32, seed=5).sketch(a)
        np.testing.assert_array_equal(s1.projection, s2.projection)

    def test_linear_in_input(self, small_pair):
        # S(2a) = 2 S(a) — the defining property of a linear sketch.
        a, _ = small_pair
        sketcher = JohnsonLindenstrauss(m=32, seed=5)
        np.testing.assert_allclose(
            sketcher.sketch(a.scaled(2.0)).projection,
            2.0 * sketcher.sketch(a).projection,
            rtol=1e-12,
        )

    def test_zero_vector(self):
        sketch = JohnsonLindenstrauss(m=16, seed=0).sketch(SparseVector.zero())
        assert np.all(sketch.projection == 0.0)

    def test_norm_preserved_in_expectation(self, small_pair):
        # E||S(a)||^2 = ||a||^2.
        a, _ = small_pair
        squared_norms = [
            float(np.sum(JohnsonLindenstrauss(m=64, seed=s).sketch(a).projection ** 2))
            for s in range(40)
        ]
        assert np.mean(squared_norms) == pytest.approx(a.norm() ** 2, rel=0.1)

    def test_signs_are_balanced(self):
        vector = SparseVector(np.arange(2_000), np.ones(2_000))
        sketcher = JohnsonLindenstrauss(m=1, seed=3)
        signs = sketcher._signs(vector.indices)
        assert abs(signs.mean()) < 0.1


class TestEstimation:
    def test_mismatch_rejected(self, small_pair):
        a, b = small_pair
        sketch_a = JohnsonLindenstrauss(m=16, seed=0).sketch(a)
        sketch_b = JohnsonLindenstrauss(m=16, seed=1).sketch(b)
        with pytest.raises(SketchMismatchError):
            JohnsonLindenstrauss(m=16, seed=0).estimate(sketch_a, sketch_b)

    def test_unbiased(self, pair_factory):
        a, b = pair_factory(n=500, nnz=100, overlap=0.4, seed=1)
        truth = a.dot(b)
        estimates = [
            JohnsonLindenstrauss(m=128, seed=s).estimate_pair(a, b) for s in range(50)
        ]
        standard_error = np.std(estimates) / np.sqrt(len(estimates))
        assert abs(np.mean(estimates) - truth) < 4 * standard_error + 0.02 * abs(truth)

    def test_error_within_fact1_bound(self, pair_factory):
        # Fact 1 with a constant-3 cushion should hold for ~all seeds.
        a, b = pair_factory(n=500, nnz=100, overlap=0.4, seed=2)
        truth = a.dot(b)
        m = 256
        bound = 3.0 * linear_sketch_bound(a, b, m)
        successes = sum(
            abs(JohnsonLindenstrauss(m=m, seed=s).estimate_pair(a, b) - truth) <= bound
            for s in range(30)
        )
        assert successes >= 27

    def test_error_shrinks_with_m(self, pair_factory):
        a, b = pair_factory(n=500, nnz=100, overlap=0.4, seed=3)
        truth = a.dot(b)

        def mean_error(m: int) -> float:
            return float(
                np.mean(
                    [
                        abs(JohnsonLindenstrauss(m=m, seed=s).estimate_pair(a, b) - truth)
                        for s in range(25)
                    ]
                )
            )

        assert mean_error(512) < mean_error(16)

    def test_exact_on_self_with_many_rows(self, small_pair):
        # <S(a), S(a)> concentrates around ||a||^2.
        a, _ = small_pair
        sketcher = JohnsonLindenstrauss(m=4096, seed=7)
        estimate = sketcher.estimate_pair(a, a)
        assert estimate == pytest.approx(a.norm() ** 2, rel=0.15)
