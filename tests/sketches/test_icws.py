"""Tests for Ioffe's Consistent Weighted Sampling sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SketchMismatchError
from repro.sketches.icws import ICWS
from repro.vectors.ops import weighted_jaccard_similarity
from repro.vectors.sparse import SparseVector


class TestConstruction:
    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            ICWS(m=0)

    def test_from_storage_sampling_cost(self):
        assert ICWS.from_storage(300).m == 200


class TestSketching:
    def test_deterministic(self, small_pair):
        a, _ = small_pair
        s1 = ICWS(m=64, seed=1).sketch(a)
        s2 = ICWS(m=64, seed=1).sketch(a)
        np.testing.assert_array_equal(s1.keys, s2.keys)
        np.testing.assert_array_equal(s1.values, s2.values)

    def test_scale_invariance(self, small_pair):
        # ICWS samples from squared-normalized weights, so scaling the
        # vector changes only the stored norm.
        a, _ = small_pair
        sketcher = ICWS(m=64, seed=1)
        base = sketcher.sketch(a)
        scaled = sketcher.sketch(a.scaled(100.0))
        np.testing.assert_array_equal(base.keys, scaled.keys)
        np.testing.assert_allclose(base.values, scaled.values, rtol=1e-12)
        assert scaled.norm == pytest.approx(100.0 * base.norm)

    def test_zero_vector(self):
        sketch = ICWS(m=8, seed=0).sketch(SparseVector.zero())
        assert sketch.norm == 0.0

    def test_values_are_normalized_entries(self, small_pair):
        a, _ = small_pair
        sketch = ICWS(m=64, seed=0).sketch(a)
        normalized = set((a.values / a.norm()).tolist())
        assert set(sketch.values.tolist()) <= normalized


class TestWeightedJaccard:
    def test_collision_rate_matches_weighted_jaccard(self, pair_factory):
        # Ioffe's theorem: P[sample match] = weighted Jaccard.
        a, b = pair_factory(n=300, nnz=80, overlap=0.4, seed=2)
        expected = weighted_jaccard_similarity(a, b)
        rates = [
            ICWS(m=600, seed=s).estimate_weighted_jaccard(
                ICWS(m=600, seed=s).sketch(a), ICWS(m=600, seed=s).sketch(b)
            )
            for s in range(15)
        ]
        assert np.mean(rates) == pytest.approx(expected, rel=0.15)

    def test_identical_vectors_always_match(self, small_pair):
        a, _ = small_pair
        sketcher = ICWS(m=128, seed=3)
        assert sketcher.estimate_weighted_jaccard(
            sketcher.sketch(a), sketcher.sketch(a)
        ) == 1.0

    def test_disjoint_vectors_rarely_match(self):
        a = SparseVector(np.arange(50), np.ones(50))
        b = SparseVector(np.arange(100, 150), np.ones(50))
        sketcher = ICWS(m=500, seed=4)
        assert sketcher.estimate_weighted_jaccard(
            sketcher.sketch(a), sketcher.sketch(b)
        ) == 0.0

    def test_mismatch_rejected(self, small_pair):
        a, b = small_pair
        with pytest.raises(SketchMismatchError):
            ICWS(m=16, seed=0).estimate_weighted_jaccard(
                ICWS(m=16, seed=0).sketch(a), ICWS(m=16, seed=1).sketch(b)
            )


class TestEstimation:
    def test_accuracy(self, pair_factory):
        a, b = pair_factory(n=300, nnz=80, overlap=0.4, seed=5)
        truth = a.dot(b)
        scale = a.norm() * b.norm()
        errors = [
            abs(ICWS(m=300, seed=s).estimate_pair(a, b) - truth) / scale
            for s in range(20)
        ]
        assert np.mean(errors) < 0.15

    def test_comparable_to_wmh(self, pair_factory):
        # ICWS and expansion-based WMH implement the same sampling
        # measure; their mean errors must be within a small factor.
        from repro.core.wmh import WeightedMinHash

        a, b = pair_factory(n=300, nnz=80, overlap=0.4, seed=6)
        truth = a.dot(b)
        scale = a.norm() * b.norm()

        def mean_error(factory) -> float:
            return float(
                np.mean(
                    [abs(factory(s).estimate_pair(a, b) - truth) / scale for s in range(15)]
                )
            )

        icws_error = mean_error(lambda s: ICWS(m=200, seed=s))
        wmh_error = mean_error(lambda s: WeightedMinHash(m=200, seed=s, L=1 << 20))
        assert icws_error < 4.0 * wmh_error + 0.02

    def test_zero_vector_estimates_zero(self, small_pair):
        a, _ = small_pair
        sketcher = ICWS(m=16, seed=0)
        assert sketcher.estimate(
            sketcher.sketch(a), sketcher.sketch(SparseVector.zero())
        ) == 0.0
