"""``estimate_cross`` contract tests, across every registered sketcher.

The multi-query serving primitive must be *exactly* the stacked
``estimate_many`` loop — same floats, bit for bit — for the vectorized
overrides (WMH, MH, JL, CS) and the generic fallback alike, including
the degenerate shapes a serving layer actually sees (empty query
batches, empty banks, zero-vector rows).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SketchMismatchError
from repro.data.synthetic import SyntheticConfig, generate_pair
from repro.experiments.runner import method_registry
from repro.sketches.bbit import BbitMinHash
from repro.vectors.sparse import SparseVector

REGISTRY = method_registry()
ALL_METHODS = sorted(REGISTRY)

#: Methods whose estimate_cross is truly vectorized (one bank traversal
#: per query batch); the rest use the base-class per-query fallback.
CROSS_VECTORIZED = ("WMH", "MH", "JL", "CS")


def build(name: str, storage: int = 300, seed: int = 3):
    if name == "bbit":
        return BbitMinHash.from_storage(storage, seed=seed)
    return REGISTRY[name].build(storage, seed)


@pytest.fixture(scope="module")
def corpus() -> list[SparseVector]:
    vectors: list[SparseVector] = []
    for i in range(6):
        a, b = generate_pair(SyntheticConfig(n=1_500, nnz=100, overlap=0.3), seed=i)
        vectors.append(a)
        vectors.append(b)
    vectors.append(SparseVector.zero())          # empty row
    vectors.append(SparseVector([7], [3.25]))    # single-entry row
    return vectors


@pytest.fixture(scope="module")
def query_corpus(corpus) -> list[SparseVector]:
    # A query batch that includes an empty (zero-norm) query row.
    return corpus[:5] + [SparseVector.zero()]


class TestCrossEqualsLoop:
    @pytest.mark.parametrize("name", ALL_METHODS + ["bbit"])
    def test_cross_is_bitwise_identical_to_loop(self, name, corpus, query_corpus):
        sketcher = build(name)
        bank = sketcher.sketch_batch(corpus)
        query_bank = sketcher.sketch_batch(query_corpus)
        cross = sketcher.estimate_cross(query_bank, bank)
        loop = np.stack(
            [
                sketcher.estimate_many(sketcher.bank_row(query_bank, i), bank)
                for i in range(len(query_bank))
            ]
        )
        assert cross.shape == (len(query_corpus), len(corpus))
        # Bitwise, not just ==: even -0.0 vs +0.0 divergence between
        # the batched and looped paths would be a kernel difference.
        np.testing.assert_array_equal(
            cross.view(np.uint64), loop.view(np.uint64)
        )

    @pytest.mark.parametrize("name", CROSS_VECTORIZED)
    def test_vectorized_methods_override_the_fallback(self, name):
        sketcher = build(name)
        from repro.core.base import Sketcher

        assert type(sketcher).estimate_cross is not Sketcher.estimate_cross

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_cross_rows_match_pack_bank_queries(self, name, corpus):
        """Queries packed from scalar sketches score like batch-built ones."""
        sketcher = build(name)
        bank = sketcher.sketch_batch(corpus)
        packed = sketcher.pack_bank([sketcher.sketch(v) for v in corpus[:4]])
        batch = sketcher.sketch_batch(corpus[:4])
        np.testing.assert_array_equal(
            sketcher.estimate_cross(packed, bank),
            sketcher.estimate_cross(batch, bank),
        )


class TestCrossEdgeShapes:
    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_empty_query_batch(self, name, corpus):
        sketcher = build(name)
        bank = sketcher.sketch_batch(corpus)
        empty = sketcher.sketch_batch([])
        out = sketcher.estimate_cross(empty, bank)
        assert out.shape == (0, len(corpus))

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_empty_bank(self, name, corpus):
        sketcher = build(name)
        empty = sketcher.sketch_batch([])
        queries = sketcher.sketch_batch(corpus[:3])
        out = sketcher.estimate_cross(queries, empty)
        assert out.shape == (3, 0)

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_all_zero_queries_and_rows(self, name):
        sketcher = build(name)
        zeros = [SparseVector.zero(), SparseVector.zero()]
        bank = sketcher.sketch_batch(zeros)
        out = sketcher.estimate_cross(bank, bank)
        np.testing.assert_array_equal(out, np.zeros((2, 2)))
        # Exact +0.0, no negative-zero leaks from inf arithmetic.
        assert not np.signbit(out).any()

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_single_row_each_side(self, name, corpus):
        sketcher = build(name)
        bank = sketcher.sketch_batch(corpus[:1])
        queries = sketcher.sketch_batch(corpus[1:2])
        out = sketcher.estimate_cross(queries, bank)
        assert out.shape == (1, 1)
        expected = sketcher.estimate(
            sketcher.sketch(corpus[1]), sketcher.sketch(corpus[0])
        )
        np.testing.assert_array_equal(out, [[expected]])


class TestCrossSafety:
    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_rejects_mismatched_query_bank(self, name, corpus):
        ours = build(name, seed=1)
        theirs = build(name, seed=2)
        bank = ours.sketch_batch(corpus[:3])
        foreign = theirs.sketch_batch(corpus[:2])
        with pytest.raises(SketchMismatchError):
            ours.estimate_cross(foreign, bank)
        with pytest.raises(SketchMismatchError):
            ours.estimate_cross(bank, foreign)
