"""Tests for CountSketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SketchMismatchError
from repro.sketches.countsketch import DEFAULT_REPETITIONS, CountSketch
from repro.vectors.sparse import SparseVector


class TestConstruction:
    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            CountSketch(width=0)

    def test_rejects_bad_repetitions(self):
        with pytest.raises(ValueError):
            CountSketch(width=8, repetitions=0)

    def test_default_repetitions_match_paper(self):
        assert DEFAULT_REPETITIONS == 5
        assert CountSketch(width=8).repetitions == 5

    def test_from_storage_splits_budget(self):
        sketcher = CountSketch.from_storage(400)
        assert sketcher.width == 80
        assert sketcher.storage_words() == 400.0

    def test_from_storage_custom_repetitions(self):
        sketcher = CountSketch.from_storage(300, repetitions=3)
        assert sketcher.repetitions == 3
        assert sketcher.width == 100


class TestSketching:
    def test_table_shape(self, small_pair):
        a, _ = small_pair
        data = CountSketch(width=32, seed=0).sketch(a)
        assert data.table.shape == (5, 32)

    def test_deterministic(self, small_pair):
        a, _ = small_pair
        t1 = CountSketch(width=32, seed=4).sketch(a).table
        t2 = CountSketch(width=32, seed=4).sketch(a).table
        np.testing.assert_array_equal(t1, t2)

    def test_linear_in_input(self, small_pair):
        a, _ = small_pair
        sketcher = CountSketch(width=32, seed=4)
        np.testing.assert_allclose(
            sketcher.sketch(a.scaled(3.0)).table,
            3.0 * sketcher.sketch(a).table,
            rtol=1e-12,
        )

    def test_mass_preserved_per_repetition(self, small_pair):
        # Buckets hold signed sums; total |mass| can cancel, but the
        # un-signed total per repetition equals the vector's L1 norm
        # when no bucket collisions occur (use a tiny vector).
        vector = SparseVector([10, 999, 123456], [1.0, -2.0, 3.5])
        data = CountSketch(width=1024, seed=1).sketch(vector)
        np.testing.assert_allclose(
            np.abs(data.table).sum(axis=1), vector.norm1(), rtol=1e-12
        )

    def test_zero_vector(self):
        data = CountSketch(width=16, seed=0).sketch(SparseVector.zero())
        assert np.all(data.table == 0.0)


class TestEstimation:
    def test_mismatch_rejected(self, small_pair):
        a, b = small_pair
        sketch_a = CountSketch(width=16, seed=0).sketch(a)
        sketch_b = CountSketch(width=32, seed=0).sketch(b)
        with pytest.raises(SketchMismatchError):
            CountSketch(width=16, seed=0).estimate(sketch_a, sketch_b)

    def test_exact_when_no_collisions(self):
        # With width >> nnz, every index gets its own bucket and the
        # estimate is exact in every repetition.
        a = SparseVector([3, 70, 4321], [1.0, 2.0, 3.0])
        b = SparseVector([70, 4321, 99999], [5.0, -1.0, 2.0])
        sketcher = CountSketch(width=4096, seed=2)
        assert sketcher.estimate_pair(a, b) == pytest.approx(a.dot(b), rel=1e-9)

    def test_unbiased_per_repetition_median_close(self, pair_factory):
        a, b = pair_factory(n=500, nnz=100, overlap=0.4, seed=4)
        truth = a.dot(b)
        estimates = [CountSketch(width=64, seed=s).estimate_pair(a, b) for s in range(50)]
        scale = a.norm() * b.norm()
        assert abs(np.median(estimates) - truth) / scale < 0.05

    def test_error_shrinks_with_width(self, pair_factory):
        a, b = pair_factory(n=500, nnz=100, overlap=0.4, seed=5)
        truth = a.dot(b)

        def mean_error(width: int) -> float:
            return float(
                np.mean(
                    [
                        abs(CountSketch(width=width, seed=s).estimate_pair(a, b) - truth)
                        for s in range(25)
                    ]
                )
            )

        assert mean_error(512) < mean_error(8)

    def test_median_improves_over_single_repetition(self, pair_factory):
        # 5 repetitions with the median beat 1 repetition of width 5w at
        # the tail (the Larsen et al. motivation).  Compare p90 errors.
        a, b = pair_factory(n=500, nnz=100, overlap=0.4, seed=6)
        truth = a.dot(b)

        def p90(repetitions: int, width: int) -> float:
            errors = [
                abs(
                    CountSketch(width=width, repetitions=repetitions, seed=s).estimate_pair(a, b)
                    - truth
                )
                for s in range(40)
            ]
            return float(np.quantile(errors, 0.9))

        assert p90(5, 64) < 2.0 * p90(1, 320)
