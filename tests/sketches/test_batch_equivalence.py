"""Batch-contract tests, parametrized across every registered sketcher.

Three contracts every sketcher must honor:

* **equivalence** — ``sketch_batch`` / ``estimate_many`` results are
  *exactly* equal (same seed) to the scalar loop, not just close;
* **storage** — ``from_storage(w)`` never overshoots the word budget by
  more than one sampling entry (1.5 words);
* **safety** — ``estimate`` and ``estimate_many`` raise
  :class:`SketchMismatchError` on mismatched seed / size / ``L``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SketchMismatchError
from repro.core.wmh import WeightedMinHash
from repro.data.synthetic import SyntheticConfig, generate_pair
from repro.experiments.runner import method_registry
from repro.sketches.bbit import BbitMinHash
from repro.vectors.sparse import SparseMatrix, SparseVector

REGISTRY = method_registry()
ALL_METHODS = sorted(REGISTRY)

#: Methods whose sketch_batch/estimate_many are truly vectorized (the
#: rest use the generic object-bank fallback, covered by the same
#: assertions).
VECTORIZED = ("WMH", "MH", "KMV", "JL", "CS")


def build(name: str, storage: int = 300, seed: int = 3):
    if name == "bbit":
        return BbitMinHash.from_storage(storage, seed=seed)
    return REGISTRY[name].build(storage, seed)


@pytest.fixture(scope="module")
def corpus() -> list[SparseVector]:
    vectors: list[SparseVector] = []
    for i in range(8):
        a, b = generate_pair(SyntheticConfig(n=1_500, nnz=120, overlap=0.3), seed=i)
        vectors.append(a)
        vectors.append(b)
    vectors.append(SparseVector.zero())          # empty row
    vectors.append(SparseVector([7], [3.25]))    # single-entry row
    return vectors


class TestBatchEquivalence:
    @pytest.mark.parametrize("name", ALL_METHODS + ["bbit"])
    def test_estimate_many_equals_scalar_loop(self, name, corpus):
        sketcher = build(name)
        scalar_sketches = [sketcher.sketch(vector) for vector in corpus]
        bank = sketcher.sketch_batch(SparseMatrix.from_rows(corpus))
        assert len(bank) == len(corpus)
        for query_index in (0, 3, len(corpus) - 1):
            query = scalar_sketches[query_index]
            batch = sketcher.estimate_many(query, bank)
            loop = np.array(
                [sketcher.estimate(query, sketch) for sketch in scalar_sketches]
            )
            np.testing.assert_array_equal(batch, loop)

    @pytest.mark.parametrize("name", VECTORIZED)
    def test_bank_rows_reconstruct_scalar_sketches(self, name, corpus):
        sketcher = build(name)
        bank = sketcher.sketch_batch(corpus)
        for i, vector in enumerate(corpus):
            scalar = sketcher.sketch(vector)
            row = sketcher.bank_row(bank, i)
            for field in scalar.__dataclass_fields__:
                expected = getattr(scalar, field)
                actual = getattr(row, field)
                if isinstance(expected, np.ndarray):
                    np.testing.assert_array_equal(actual, expected)
                else:
                    assert actual == expected, f"{name}.{field} differs at row {i}"

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_bank_slices_preserve_estimates(self, name, corpus):
        sketcher = build(name)
        bank = sketcher.sketch_batch(corpus)
        query = sketcher.sketch(corpus[0])
        full = sketcher.estimate_many(query, bank)
        np.testing.assert_array_equal(
            sketcher.estimate_many(query, bank[2:9]), full[2:9]
        )

    @pytest.mark.parametrize("name", VECTORIZED)
    def test_pack_bank_matches_sketch_batch(self, name, corpus):
        sketcher = build(name)
        packed = sketcher.pack_bank([sketcher.sketch(vector) for vector in corpus])
        batch = sketcher.sketch_batch(corpus)
        query = sketcher.sketch(corpus[1])
        np.testing.assert_array_equal(
            sketcher.estimate_many(query, packed),
            sketcher.estimate_many(query, batch),
        )


class TestStorageContract:
    @pytest.mark.parametrize("name", ALL_METHODS + ["bbit"])
    @pytest.mark.parametrize("words", [4, 16, 100, 301, 1000])
    def test_from_storage_respects_budget(self, name, words):
        sketcher = build(name, storage=words)
        assert sketcher.storage_words() <= words + 1.5

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_bank_storage_accounting(self, name, corpus):
        sketcher = build(name)
        bank = sketcher.sketch_batch(corpus)
        assert bank.storage_words() == pytest.approx(
            sketcher.storage_words() * len(corpus)
        )


class TestCrossSketchSafety:
    @pytest.mark.parametrize("name", ALL_METHODS + ["bbit"])
    def test_estimate_rejects_mismatched_seed(self, name, small_pair):
        a, b = small_pair
        ours = build(name, seed=1)
        theirs = build(name, seed=2)
        with pytest.raises(SketchMismatchError):
            ours.estimate(ours.sketch(a), theirs.sketch(b))

    @pytest.mark.parametrize("name", ALL_METHODS + ["bbit"])
    def test_estimate_rejects_mismatched_size(self, name, small_pair):
        a, b = small_pair
        ours = build(name, storage=300, seed=1)
        theirs = build(name, storage=150, seed=1)
        with pytest.raises(SketchMismatchError):
            ours.estimate(ours.sketch(a), theirs.sketch(b))

    @pytest.mark.parametrize("name", ALL_METHODS + ["bbit"])
    def test_estimate_many_rejects_mismatched_bank(self, name, small_pair):
        a, b = small_pair
        ours = build(name, seed=1)
        theirs = build(name, seed=2)
        bank = theirs.sketch_batch([b])
        with pytest.raises(SketchMismatchError):
            ours.estimate_many(ours.sketch(a), bank)

    def test_wmh_rejects_mismatched_L(self, small_pair):
        a, b = small_pair
        ours = WeightedMinHash(m=64, seed=1, L=1 << 16)
        theirs = WeightedMinHash(m=64, seed=1, L=1 << 20)
        with pytest.raises(SketchMismatchError):
            ours.estimate(ours.sketch(a), theirs.sketch(b))
        with pytest.raises(SketchMismatchError):
            ours.estimate_many(ours.sketch(a), theirs.sketch_batch([b]))

    def test_estimate_many_rejects_foreign_bank_kind(self, small_pair):
        a, b = small_pair
        wmh = build("WMH")
        minhash = build("MH")
        with pytest.raises(SketchMismatchError):
            wmh.estimate_many(wmh.sketch(a), minhash.sketch_batch([b]))


class TestExplicitZeroEntries:
    """CSR inputs may carry explicit zeros that SparseVector drops;
    every batch kernel must behave as if they were never there."""

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_batch_matches_scalar_on_explicit_zero_matrix(self, name):
        matrix = SparseMatrix(
            np.array([0, 3, 4, 6]),
            np.array([1, 2, 3, 5, 2, 9]),
            np.array([1.0, 0.0, 2.0, 0.0, -1.5, 0.5]),
        )
        sketcher = build(name)
        bank = sketcher.sketch_batch(matrix)
        for i in range(matrix.num_rows):
            query = sketcher.sketch(matrix.row(i))
            batch = sketcher.estimate_many(query, bank)
            loop = np.array(
                [
                    sketcher.estimate(query, sketcher.sketch(matrix.row(j)))
                    for j in range(matrix.num_rows)
                ]
            )
            np.testing.assert_array_equal(batch, loop)

    def test_without_explicit_zeros_is_identity_when_clean(self):
        clean = SparseMatrix.from_rows(
            [SparseVector([1, 4], [1.0, 2.0]), SparseVector.zero()]
        )
        assert clean.without_explicit_zeros() is clean
