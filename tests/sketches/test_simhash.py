"""Tests for SimHash."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.base import SketchMismatchError
from repro.sketches.simhash import SimHash
from repro.vectors.ops import cosine_similarity
from repro.vectors.sparse import SparseVector


class TestConstruction:
    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            SimHash(m=0)

    def test_from_storage_64_bits_per_word(self):
        sketcher = SimHash.from_storage(101)
        assert sketcher.m == 100 * 64

    def test_storage_words(self):
        assert SimHash(m=640).storage_words() == pytest.approx(11.0)


class TestSketching:
    def test_bits_deterministic(self, small_pair):
        a, _ = small_pair
        s1 = SimHash(m=128, seed=1).sketch(a)
        s2 = SimHash(m=128, seed=1).sketch(a)
        np.testing.assert_array_equal(s1.bits, s2.bits)

    def test_scale_invariant_bits(self, small_pair):
        # Bits depend only on direction: sketch(c a) has identical bits.
        a, _ = small_pair
        sketcher = SimHash(m=128, seed=1)
        np.testing.assert_array_equal(
            sketcher.sketch(a).bits, sketcher.sketch(a.scaled(7.0)).bits
        )

    def test_negation_flips_all_bits(self, small_pair):
        a, _ = small_pair
        sketcher = SimHash(m=128, seed=1)
        np.testing.assert_array_equal(
            sketcher.sketch(a).bits, ~sketcher.sketch(a.scaled(-1.0)).bits
        )

    def test_zero_vector(self):
        sketch = SimHash(m=16, seed=0).sketch(SparseVector.zero())
        assert sketch.norm == 0.0


class TestEstimation:
    def test_mismatch_rejected(self, small_pair):
        a, b = small_pair
        with pytest.raises(SketchMismatchError):
            SimHash(m=16, seed=0).estimate_cosine(
                SimHash(m=16, seed=0).sketch(a), SimHash(m=16, seed=1).sketch(b)
            )

    def test_identical_vectors_cosine_one(self, small_pair):
        a, _ = small_pair
        sketcher = SimHash(m=512, seed=2)
        sketch = sketcher.sketch(a)
        assert sketcher.estimate_cosine(sketch, sketch) == pytest.approx(
            math.cos(0.0)
        )

    def test_orthogonal_vectors_cosine_near_zero(self):
        a = SparseVector([1], [1.0])
        b = SparseVector([2], [1.0])
        estimates = [
            SimHash(m=2_048, seed=s).estimate_cosine(
                SimHash(m=2_048, seed=s).sketch(a), SimHash(m=2_048, seed=s).sketch(b)
            )
            for s in range(10)
        ]
        assert abs(np.mean(estimates)) < 0.05

    def test_cosine_accuracy(self, pair_factory):
        a, b = pair_factory(n=300, nnz=100, overlap=0.6, seed=3)
        expected = cosine_similarity(a, b)
        estimates = [
            SimHash(m=4_096, seed=s).estimate_cosine(
                SimHash(m=4_096, seed=s).sketch(a), SimHash(m=4_096, seed=s).sketch(b)
            )
            for s in range(10)
        ]
        assert np.mean(estimates) == pytest.approx(expected, abs=0.05)

    def test_inner_product_rescales_cosine(self, pair_factory):
        a, b = pair_factory(n=300, nnz=100, overlap=0.6, seed=4)
        sketcher = SimHash(m=2_048, seed=5)
        sketch_a, sketch_b = sketcher.sketch(a), sketcher.sketch(b)
        assert sketcher.estimate(sketch_a, sketch_b) == pytest.approx(
            a.norm() * b.norm() * sketcher.estimate_cosine(sketch_a, sketch_b)
        )

    def test_zero_vector_estimates_zero(self, small_pair):
        a, _ = small_pair
        sketcher = SimHash(m=64, seed=0)
        assert sketcher.estimate(
            sketcher.sketch(a), sketcher.sketch(SparseVector.zero())
        ) == 0.0
