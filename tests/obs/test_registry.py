"""Tests for the metrics registry: bucket math, merging, fast paths."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.registry import (
    _BOUNDS,
    HIGH_EXP,
    LOW_EXP,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    validate_snapshot,
)


class TestHistogramBuckets:
    def test_bounds_are_powers_of_two(self):
        assert _BOUNDS[0] == 2.0**LOW_EXP
        assert _BOUNDS[-1] == 2.0**HIGH_EXP
        assert len(_BOUNDS) == HIGH_EXP - LOW_EXP + 1

    def test_value_on_bound_lands_in_bucket_bounded_by_it(self):
        hist = Histogram()
        hist.observe(8.0)  # exactly 2^3
        index = _BOUNDS.index(8.0)
        assert hist.counts[index] == 1
        assert hist.percentile(50) == 8.0

    def test_percentiles_exact_at_bucket_edges(self):
        # Every observation sits exactly on a bucket bound, so every
        # percentile must be one of the observed values, exactly.
        hist = Histogram()
        values = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0]
        for value in values:
            hist.observe(value)
        # rank = ceil(q * 10 / 100): p50 -> rank 5 -> 16.0
        assert hist.percentile(50) == 16.0
        assert hist.percentile(95) == 512.0
        assert hist.percentile(99) == 512.0
        assert hist.percentile(10) == 1.0
        assert hist.percentile(100) == 512.0

    def test_interior_value_reports_bucket_upper_bound(self):
        hist = Histogram()
        hist.observe(3.0)  # in (2, 4] -> reported as 4.0
        assert hist.percentile(50) == 4.0

    def test_exact_aggregates_survive_bucketing(self):
        hist = Histogram()
        for value in (0.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(103.5)
        assert hist.min == 0.5
        assert hist.max == 100.0
        assert hist.mean == pytest.approx(34.5)

    def test_overflow_bucket_reports_exact_max(self):
        hist = Histogram()
        huge = 2.0**50  # beyond the last bound
        hist.observe(huge)
        assert hist.counts[-1] == 1
        assert hist.percentile(99) == huge

    def test_underflow_clamps_into_first_bucket(self):
        hist = Histogram()
        hist.observe(2.0**-30)
        assert hist.counts[0] == 1
        assert hist.percentile(50) == _BOUNDS[0]

    def test_empty_percentile_is_nan(self):
        assert math.isnan(Histogram().percentile(50))

    def test_json_round_trip(self):
        hist = Histogram()
        for value in (1.0, 2.0, 2.0, 1e9):
            hist.observe(value)
        clone = Histogram.from_json(json.loads(json.dumps(hist.to_json())))
        assert clone.counts == hist.counts
        assert clone.count == hist.count
        assert clone.total == hist.total
        assert clone.min == hist.min
        assert clone.max == hist.max
        assert clone.percentile(95) == hist.percentile(95)

    def test_layout_mismatch_rejected(self):
        payload = Histogram().to_json()
        payload["low_exp"] = LOW_EXP - 1
        with pytest.raises(ValueError, match="layout mismatch"):
            Histogram.from_json(payload)


class TestHistogramMerge:
    def make(self, values):
        hist = Histogram()
        for value in values:
            hist.observe(value)
        return hist

    def test_merge_equals_single_histogram(self):
        a = self.make([1.0, 2.0, 4.0])
        b = self.make([8.0, 16.0])
        combined = self.make([1.0, 2.0, 4.0, 8.0, 16.0])
        a.merge(b)
        assert a.counts == combined.counts
        assert a.count == combined.count
        assert a.total == combined.total
        assert a.percentile(50) == combined.percentile(50)

    def test_merge_is_associative(self):
        parts = ([0.25, 1.0], [4.0, 4.0, 64.0], [2.0**45])
        left = self.make(parts[0])
        left.merge(self.make(parts[1]))
        left.merge(self.make(parts[2]))
        right_tail = self.make(parts[1])
        right_tail.merge(self.make(parts[2]))
        right = self.make(parts[0])
        right.merge(right_tail)
        assert left.counts == right.counts
        assert left.count == right.count
        assert left.total == right.total
        assert left.min == right.min
        assert left.max == right.max


class TestRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.count("a", 4)
        reg.set_gauge("g", 7.5)
        reg.set_gauge("g", 2.5)
        reg.observe("h", 8.0)
        assert reg.counter_value("a") == 5
        assert reg.gauge_value("g") == 2.5
        assert reg.histogram("h").count == 1
        assert reg.counter_value("missing") == 0
        assert reg.gauge_value("missing") is None
        assert reg.names() == ["a", "g", "h"]

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.count("a")
        reg.set_gauge("g", 1)
        reg.observe("h", 1.0)
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_snapshot_validates_and_round_trips(self):
        reg = MetricsRegistry()
        reg.count("ingest.chunks", 3)
        reg.set_gauge("wmh_cache.entries", 12)
        reg.observe("query.latency_ms", 1.5)
        snap = reg.snapshot()
        validate_snapshot(snap)
        json.dumps(snap)

    def test_worker_snapshot_merge_matches_single_process(self):
        # Simulate pool workers: each chunk records to a private
        # registry; the parent merges the snapshots.  The result must
        # equal recording every observation in one registry, for any
        # completion order.
        def worker(values):
            local = MetricsRegistry()
            local.count("ingest.chunks")
            for value in values:
                local.observe("ingest.chunk_ms.sketch", value)
                local.count("ingest.nnz", value * 10)
            return local.snapshot()

        chunks = [[1.0, 2.0], [4.0], [8.0, 16.0, 32.0]]
        single = MetricsRegistry()
        for values in chunks:
            single.merge(worker(values))
        reversed_merge = merge_snapshots(worker(v) for v in reversed(chunks))
        assert single.snapshot() == reversed_merge

        direct = MetricsRegistry()
        direct.count("ingest.chunks", 3)
        for values in chunks:
            for value in values:
                direct.observe("ingest.chunk_ms.sketch", value)
                direct.count("ingest.nnz", value * 10)
        assert single.snapshot() == direct.snapshot()

    def test_merge_into_disabled_registry_is_noop(self):
        source = MetricsRegistry()
        source.count("a")
        target = MetricsRegistry(enabled=False)
        target.merge(source.snapshot())
        assert target.snapshot()["counters"] == {}

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.observe("h", 1.0)
        reg.reset()
        assert reg.names() == []

    def test_validate_snapshot_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_snapshot({"counters": {}})
        with pytest.raises(ValueError):
            validate_snapshot(
                {"counters": {"a": "x"}, "gauges": {}, "histograms": {}}
            )
