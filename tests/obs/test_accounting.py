"""End-to-end accounting: query/ingest metrics, session stats, CLI knobs."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro import obs
from repro.core.wmh import WeightedMinHash
from repro.datasearch.table import Table
from repro.parallel.streaming import NO_CLAMP_ENV, SourceTable
from repro.store import LakeStore, QuerySession
from repro.store.cli import main


@pytest.fixture(autouse=True)
def clean_registry():
    """Each test sees a fresh, enabled global registry."""
    registry = obs.get_registry()
    was_enabled = registry.enabled
    registry.reset()
    registry.enabled = True
    yield registry
    registry.reset()
    registry.enabled = was_enabled


def make_tables(count: int = 3, seed: int = 0, rows: int = 80) -> list[Table]:
    rng = np.random.default_rng(seed)
    tables = []
    for i in range(count):
        keys = [f"k{j}" for j in rng.choice(300, size=rows, replace=False)]
        tables.append(Table(f"table{i}", keys, {"value": rng.normal(size=rows)}))
    return tables


def make_query(seed: int = 42, rows: int = 100) -> Table:
    rng = np.random.default_rng(seed)
    keys = [f"k{j}" for j in rng.choice(300, size=rows, replace=False)]
    return Table("query", keys, {"signal": rng.normal(size=rows)})


def fresh_store(tmp_path, tables=None):
    store = LakeStore.create(
        tmp_path / "lake", WeightedMinHash(m=32, seed=3, L=1 << 16)
    )
    if tables:
        store.append(tables)
    return store


class TestQueryAccounting:
    def test_search_records_metrics(self, tmp_path, clean_registry):
        store = fresh_store(tmp_path, make_tables())
        try:
            session = QuerySession(store)
            session.search(make_query(), "signal", top_k=5)
        finally:
            store.close()
        assert clean_registry.counter_value("query.count") == 1
        assert clean_registry.counter_value("query.route.scan") == 1
        assert clean_registry.counter_value("query.route.lsh") == 0
        latency = clean_registry.histogram("query.latency_ms")
        assert latency is not None and latency.count == 1
        # scan mode has no LSH shortlist to account
        assert clean_registry.histogram("query.shortlist_size") is None
        # phases tile the search: each per-phase histogram saw the query
        for phase in ("candidates", "joinability", "score"):
            hist = clean_registry.histogram(f"query.phase_ms.{phase}")
            assert hist is not None and hist.count == 1, phase

    def test_lsh_route_counted_with_shortlist(self, tmp_path, clean_registry):
        store = fresh_store(tmp_path, make_tables())
        try:
            session = QuerySession(store, candidates="lsh")
            session.search(make_query(), "signal", top_k=5)
        finally:
            store.close()
        assert clean_registry.counter_value("query.route.lsh") == 1
        shortlist = clean_registry.histogram("query.shortlist_size")
        assert shortlist is not None and shortlist.count == 1

    def test_batch_accounting(self, tmp_path, clean_registry):
        store = fresh_store(tmp_path, make_tables())
        try:
            session = QuerySession(store)
            queries = [make_query(seed=40 + i) for i in range(3)]
            session.search_many(queries, "signal", top_k=5)
        finally:
            store.close()
        assert clean_registry.counter_value("query.batch.count") == 1
        assert clean_registry.counter_value("query.batch.queries") == 3
        batch_latency = clean_registry.histogram("query.batch.latency_ms")
        assert batch_latency is not None and batch_latency.count == 1

    def test_sketch_cache_counters(self, tmp_path, clean_registry):
        store = fresh_store(tmp_path, make_tables())
        try:
            session = QuerySession(store)
            query = make_query()
            session.sketch(query)
            session.sketch(query)
        finally:
            store.close()
        assert clean_registry.counter_value("session.sketch_cache.misses") == 1
        assert clean_registry.counter_value("session.sketch_cache.hits") == 1

    def test_disabled_metrics_record_nothing(self, tmp_path, clean_registry):
        store = fresh_store(tmp_path, make_tables())
        try:
            obs.enable_metrics(False)
            session = QuerySession(store)
            session.search(make_query(), "signal", top_k=5)
        finally:
            obs.enable_metrics(True)
            store.close()
        assert clean_registry.counter_value("query.count") == 0
        assert clean_registry.histogram("query.latency_ms") is None


class TestIngestAccounting:
    def expected_rows(self, tables):
        return sum(table.num_rows for table in tables)

    def test_serial_ingest_metrics(self, tmp_path, clean_registry):
        tables = make_tables()
        store = fresh_store(tmp_path)
        try:
            store.append(tables, chunk_bytes=1)  # one table per chunk
        finally:
            store.close()
        assert clean_registry.counter_value("ingest.chunks") == len(tables)
        assert clean_registry.counter_value("ingest.tables") == len(tables)
        assert clean_registry.counter_value("ingest.input_rows") == (
            self.expected_rows(tables)
        )
        assert clean_registry.counter_value("ingest.bank_bytes") > 0
        sketch_ms = clean_registry.histogram("ingest.chunk_ms.sketch")
        assert sketch_ms is not None and sketch_ms.count == len(tables)

    def test_pooled_ingest_metrics_cross_process(
        self, tmp_path, clean_registry, monkeypatch
    ):
        # Chunks run in pool workers; their private registry snapshots
        # must fold back into this process's registry with the same
        # totals the serial path records.
        monkeypatch.setenv(NO_CLAMP_ENV, "1")
        tables = make_tables(count=4)
        store = fresh_store(tmp_path)
        try:
            store.append(tables, workers=2, chunk_bytes=1)
        finally:
            store.close()
        assert clean_registry.counter_value("ingest.chunks") == len(tables)
        assert clean_registry.counter_value("ingest.tables") == len(tables)
        assert clean_registry.counter_value("ingest.input_rows") == (
            self.expected_rows(tables)
        )
        chunk_bytes = clean_registry.histogram("ingest.chunk_bytes")
        assert chunk_bytes is not None and chunk_bytes.count == len(tables)

    def test_report_carries_stage_units(self, tmp_path):
        tables = make_tables()
        store = fresh_store(tmp_path)
        try:
            _, report = store.append_sources(
                [SourceTable.from_table(table) for table in tables]
            )
        finally:
            store.close()
        assert report.input_rows == self.expected_rows(tables)
        assert report.nnz > 0
        assert report.bank_bytes > 0

    def test_store_counters(self, tmp_path, clean_registry):
        tables = make_tables()
        store = fresh_store(tmp_path, tables)
        store.close()
        assert clean_registry.counter_value("store.appends") == 1
        assert clean_registry.counter_value("store.manifest_commits") >= 1
        assert clean_registry.counter_value("store.fsyncs") >= 2
        assert clean_registry.counter_value("store.shard_bytes_written") > 0
        with LakeStore.open(tmp_path / "lake") as store:
            assert clean_registry.counter_value("store.opens") == 1
            assert clean_registry.counter_value("store.shard_bytes_read") > 0
            # re-appending a live name tombstones the old span
            store.append(make_tables(count=1, seed=9))
            store.compact()
        assert clean_registry.counter_value("store.compactions") == 1


class TestSessionStats:
    def test_stats_surfaces_serving_state(self, tmp_path):
        store = fresh_store(tmp_path, make_tables())
        try:
            session = QuerySession(store, min_containment=0.1, candidates="scan")
            stats = session.stats()
            assert stats["session"]["engine_cached"] is False
            assert stats["session"]["engine_current"] is False
            assert stats["session"]["min_containment"] == 0.1
            assert stats["wmh_cache"] is None or "hits" in stats["wmh_cache"]

            session.search(make_query(), "signal", top_k=5)
            stats = session.stats()
            assert stats["session"]["engine_cached"] is True
            assert stats["session"]["engine_current"] is True
            assert stats["session"]["cached_query_sketches"] == 1
            assert stats["cached_query_sketches"] == 1  # back-compat key

            # Changing a knob invalidates the cached engine.
            session.min_containment = 0.2
            stats = session.stats()
            assert stats["session"]["engine_cached"] is True
            assert stats["session"]["engine_current"] is False
        finally:
            store.close()

    def test_lsh_memory_state(self, tmp_path):
        store = fresh_store(tmp_path, make_tables())
        try:
            session = QuerySession(store, candidates="lsh")
            before = session.stats()["lsh_memory"]
            # The persisted index attaches eagerly but covers appended
            # tables lazily — the first query extends it.
            assert before is None or before["tables"] < 3
            session.search(make_query(), "signal", top_k=5)
            state = session.stats()["lsh_memory"]
            assert state is not None
            assert set(state) == {"bands", "rows_per_band", "tables"}
            assert state["tables"] == 3
        finally:
            store.close()

    def test_wmh_cache_stats_live(self, tmp_path):
        store = fresh_store(tmp_path)
        try:
            store.append(make_tables())
            session = QuerySession(store)
            session.search(make_query(), "signal", top_k=5)
            wmh = session.stats()["wmh_cache"]
        finally:
            store.close()
        assert wmh is not None
        assert {"entries", "bytes", "hits", "misses"} <= set(wmh)


def write_csv(path, table: Table) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        names = list(table.columns)
        writer.writerow(["key", *names])
        for i, key in enumerate(table.keys):
            writer.writerow(
                [key, *(repr(float(table.columns[c][i])) for c in names)]
            )


class TestCLI:
    def build_lake(self, tmp_path):
        paths = []
        for table in make_tables():
            path = tmp_path / f"{table.name}.csv"
            write_csv(path, table)
            paths.append(str(path))
        lake = str(tmp_path / "lake")
        assert main(["ingest", lake, *paths, "--storage", "32"]) == 0
        return lake, paths

    def test_ingest_prints_stage_accounting(self, tmp_path, capsys):
        self.build_lake(tmp_path)
        out = capsys.readouterr().out
        assert "parse:" in out and "rows" in out
        assert "vectorize:" in out and "entries" in out
        assert "write:" in out and "bytes" in out

    def test_stats_telemetry_flag(self, tmp_path, capsys, clean_registry):
        lake, _ = self.build_lake(tmp_path)
        capsys.readouterr()
        assert main(["stats", lake, "--telemetry"]) == 0
        payload = json.loads(capsys.readouterr().out)
        telemetry = payload["telemetry"]
        obs.validate_snapshot(telemetry)
        assert telemetry["counters"]["ingest.chunks"] >= 1
        assert "wmh_cache.entries" in telemetry["gauges"]
        # without the flag the key is absent
        assert main(["stats", lake]) == 0
        assert "telemetry" not in json.loads(capsys.readouterr().out)

    def test_query_trace_flag(self, tmp_path, capsys):
        lake, paths = self.build_lake(tmp_path)
        capsys.readouterr()  # drop the ingest summary
        trace_path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "query",
                    lake,
                    paths[0],
                    "--column",
                    "value",
                    "--json",
                    "--trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        traced_out = json.loads(capsys.readouterr().out)
        events = obs.read_trace(trace_path)
        obs.validate_trace(events)
        names = {event["name"] for event in events}
        assert "query.search" in names
        assert "session.search" in names
        assert not obs.trace_enabled()  # scope restored
        # identical hits without tracing
        assert main(["query", lake, paths[0], "--column", "value", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == traced_out
