"""Tests for span tracing: the no-op fast path, nesting, JSONL export."""

from __future__ import annotations

import json

import numpy as np
import pytest

import importlib

from repro import obs
from repro.core.wmh import WeightedMinHash
from repro.datasearch.table import Table
from repro.store import LakeStore, QuerySession

# ``repro.obs`` re-exports the ``tracing`` context manager, which
# shadows the submodule attribute — import the module explicitly.
tracing_module = importlib.import_module("repro.obs.tracing")


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    obs.disable_tracing()
    yield
    obs.disable_tracing()


class TestDisabledFastPath:
    def test_trace_span_returns_the_singleton(self):
        # Identity, not equality: the disabled path allocates nothing.
        a = obs.trace_span("one", attr=1)
        b = obs.trace_span("two")
        assert a is b
        assert a is tracing_module._NOOP

    def test_noop_span_is_inert(self):
        span = obs.trace_span("x")
        assert not span
        with span as entered:
            entered.add(ignored=True)
        assert not obs.trace_enabled()

    def test_recorder_is_none_when_all_telemetry_off(self):
        was_enabled = obs.metrics_enabled()
        obs.enable_metrics(False)
        try:
            assert obs.recorder() is None
        finally:
            obs.enable_metrics(was_enabled)

    def test_recorder_exists_under_tracing_alone(self, tmp_path):
        was_enabled = obs.metrics_enabled()
        obs.enable_metrics(False)
        try:
            with obs.tracing(tmp_path / "t.jsonl"):
                assert obs.recorder() is not None
        finally:
            obs.enable_metrics(was_enabled)


class TestSpanExport:
    def test_events_record_nesting(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path):
            with obs.trace_span("outer", kind="test"):
                with obs.trace_span("inner"):
                    pass
            with obs.trace_span("sibling"):
                pass
        events = obs.read_trace(path)
        obs.validate_trace(events)
        by_name = {event["name"]: event for event in events}
        # inner exits (and is written) first; outer has no parent
        assert [e["name"] for e in events] == ["inner", "outer", "sibling"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["sibling"]["parent_id"] is None
        assert by_name["outer"]["attrs"] == {"kind": "test"}

    def test_add_attaches_late_attributes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path):
            with obs.trace_span("work", planned=3) as span:
                span.add(done=3)
        (event,) = obs.read_trace(path)
        assert event["attrs"] == {"planned": 3, "done": 3}

    def test_exception_recorded_and_stack_unwound(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path):
            with pytest.raises(RuntimeError):
                with obs.trace_span("failing"):
                    raise RuntimeError("boom")
            assert tracing_module.current_span_id() is None
        (event,) = obs.read_trace(path)
        assert event["attrs"]["error"] == "RuntimeError"

    def test_tracing_scope_restores_previous_writer(self, tmp_path):
        outer_path = tmp_path / "outer.jsonl"
        inner_path = tmp_path / "inner.jsonl"
        obs.enable_tracing(outer_path)
        try:
            with obs.tracing(inner_path):
                with obs.trace_span("inner-only"):
                    pass
            with obs.trace_span("outer-only"):
                pass
        finally:
            obs.disable_tracing()
        assert [e["name"] for e in obs.read_trace(inner_path)] == ["inner-only"]
        assert [e["name"] for e in obs.read_trace(outer_path)] == ["outer-only"]

    def test_env_knob_enables_tracing(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(obs.TRACE_ENV, str(path))
        tracing_module._init_from_env()
        try:
            assert obs.trace_enabled()
            with obs.trace_span("from-env"):
                pass
        finally:
            obs.disable_tracing()
        assert [e["name"] for e in obs.read_trace(path)] == ["from-env"]

    def test_validate_trace_rejects_bad_events(self):
        good = {
            "name": "x",
            "span_id": "1:1",
            "parent_id": None,
            "start_s": 0.0,
            "wall_ms": 1.0,
            "cpu_ms": 1.0,
            "pid": 1,
            "thread": 1,
            "attrs": {},
        }
        obs.validate_trace([good])
        with pytest.raises(ValueError, match="missing"):
            obs.validate_trace([{k: v for k, v in good.items() if k != "name"}])
        with pytest.raises(ValueError, match="negative"):
            obs.validate_trace([dict(good, wall_ms=-1.0)])
        with pytest.raises(ValueError, match="duplicate"):
            obs.validate_trace([good, dict(good)])
        with pytest.raises(ValueError, match="unknown parent"):
            obs.validate_trace([dict(good, parent_id="9:9")])


def make_tables(count: int = 3, seed: int = 0, rows: int = 80) -> list[Table]:
    rng = np.random.default_rng(seed)
    tables = []
    for i in range(count):
        keys = [f"k{j}" for j in rng.choice(300, size=rows, replace=False)]
        tables.append(Table(f"table{i}", keys, {"value": rng.normal(size=rows)}))
    return tables


class TestTracingIsPure:
    def test_query_results_identical_tracing_on_or_off(self, tmp_path):
        store = LakeStore.create(
            tmp_path / "lake", WeightedMinHash(m=32, seed=3, L=1 << 16)
        )
        store.append(make_tables())
        rng = np.random.default_rng(42)
        keys = [f"k{j}" for j in rng.choice(300, size=100, replace=False)]
        query = Table("query", keys, {"signal": rng.normal(size=100)})
        try:
            session = QuerySession(store)
            plain = session.search(query, "signal", top_k=5)
            path = tmp_path / "trace.jsonl"
            with obs.tracing(path):
                session_traced = QuerySession(store)
                traced = session_traced.search(query, "signal", top_k=5)
            # Byte-identical rankings and scores, not just close ones.
            assert json.dumps([h.__dict__ for h in plain], sort_keys=True) == (
                json.dumps([h.__dict__ for h in traced], sort_keys=True)
            )
            events = obs.read_trace(path)
            obs.validate_trace(events)
            assert any(e["name"] == "query.search" for e in events)
        finally:
            store.close()
