"""Parallel ingest engine: determinism and executor contracts.

The load-bearing claim of :mod:`repro.parallel` is that the worker
count is *invisible* in the output: sketch banks, store manifests and
shard bytes, and search rankings are bit-identical for ``workers`` =
1, 2, 4 — parallelism buys wall-clock time, never a different lake.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasearch.table import Table
from repro.experiments.runner import method_registry
from repro.parallel import (
    ParallelSketcher,
    map_chunks,
    parallel_sketch_batch,
    row_chunks,
)
from repro.store import LakeStore, QuerySession
from repro.vectors.sparse import SparseMatrix, SparseVector

WORKER_COUNTS = (1, 2, 4)

#: Sketchers exercised end to end through the executor (covers the
#: columnar kernels, the linear sketches, and an object-bank method).
METHOD_NAMES = ("WMH", "MH", "KMV", "JL", "CS", "PS")


def build(name: str, seed: int = 3):
    return method_registry()[name].build(120, seed)


def make_corpus(rows: int = 40, seed: int = 0) -> SparseMatrix:
    rng = np.random.default_rng(seed)
    vectors = []
    for i in range(rows):
        nnz = int(rng.integers(5, 60))
        indices = rng.choice(800, size=nnz, replace=False)
        vectors.append(SparseVector(indices, rng.normal(size=nnz), n=800))
    vectors[7] = SparseVector.zero()  # empty row inside a chunk
    return SparseMatrix.from_rows(vectors)


def make_tables(count: int = 6, seed: int = 3, rows: int = 60) -> list[Table]:
    rng = np.random.default_rng(seed)
    tables = []
    for i in range(count):
        keys = [f"k{j}" for j in rng.choice(400, size=rows, replace=False)]
        tables.append(
            Table(
                f"table{i}",
                keys,
                {"alpha": rng.normal(size=rows), "beta": rng.uniform(1, 4, size=rows)},
            )
        )
    return tables


def make_query(seed: int = 11, rows: int = 80) -> Table:
    rng = np.random.default_rng(seed)
    keys = [f"k{j}" for j in rng.choice(400, size=rows, replace=False)]
    return Table("query", keys, {"signal": rng.normal(size=rows)})


def assert_banks_equal(expected, actual, context: str) -> None:
    assert sorted(expected.columns) == sorted(actual.columns), context
    for name in expected.columns:
        left, right = expected.columns[name], actual.columns[name]
        if left.dtype == object:
            assert left.shape == right.shape, context
            for i, (a, b) in enumerate(zip(left, right)):
                for field in a.__dataclass_fields__:
                    ea, eb = getattr(a, field), getattr(b, field)
                    if isinstance(ea, np.ndarray):
                        np.testing.assert_array_equal(ea, eb, err_msg=f"{context}[{i}]")
                    else:
                        assert ea == eb, f"{context}[{i}].{field}"
        else:
            np.testing.assert_array_equal(left, right, err_msg=f"{context}:{name}")


class TestExecutorPrimitives:
    def test_map_chunks_preserves_order_serial_and_parallel(self):
        items = list(range(23))
        assert map_chunks(_square, items, workers=None) == [i * i for i in items]
        assert map_chunks(_square, items, workers=1) == [i * i for i in items]
        assert map_chunks(_square, items, workers=3) == [i * i for i in items]

    def test_map_chunks_single_item_runs_in_process(self):
        marker = []
        assert map_chunks(marker.append, ["x"], workers=4) == [None]
        assert marker == ["x"]  # would be empty if a worker process ran it

    @pytest.mark.parametrize("num_rows", [0, 1, 7, 8, 9, 100, 101])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_row_chunks_partition_exactly(self, num_rows, workers):
        spans = row_chunks(num_rows, workers)
        assert [lo for lo, _ in spans] == sorted({lo for lo, _ in spans})
        covered = [i for lo, hi in spans for i in range(lo, hi)]
        assert covered == list(range(num_rows))

    def test_row_chunks_respects_explicit_chunk_rows(self):
        spans = row_chunks(100, workers=2, chunk_rows=40)
        assert spans == [(0, 40), (40, 80), (80, 100)]


def _square(x: int) -> int:
    return x * x


class TestBankDeterminism:
    @pytest.mark.parametrize("name", METHOD_NAMES)
    def test_banks_bit_identical_across_worker_counts(self, name):
        corpus = make_corpus()
        sketcher = build(name)
        serial = sketcher.sketch_batch(corpus)
        for workers in WORKER_COUNTS:
            bank = sketcher.sketch_batch(corpus, workers=workers)
            assert_banks_equal(serial, bank, f"{name} workers={workers}")

    def test_parallel_sketch_batch_chunking_invariant(self):
        corpus = make_corpus(rows=33)
        sketcher = build("MH")
        serial = sketcher.sketch_batch(corpus)
        for chunk_rows in (8, 11, 33):
            bank = parallel_sketch_batch(
                sketcher, corpus, workers=2, chunk_rows=chunk_rows
            )
            assert_banks_equal(serial, bank, f"chunk_rows={chunk_rows}")

    def test_parallel_sketcher_wrapper_delegates(self):
        corpus = make_corpus(rows=20)
        sketcher = build("WMH")
        wrapper = ParallelSketcher(sketcher, workers=2)
        assert wrapper.m == sketcher.m  # attribute delegation
        assert_banks_equal(
            sketcher.sketch_batch(corpus), wrapper.sketch_batch(corpus), "wrapper"
        )

    def test_parallel_sketcher_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ParallelSketcher(build("MH"), workers=0)

    def test_empty_matrix_parallel(self):
        sketcher = build("MH")
        bank = sketcher.sketch_batch(SparseMatrix.from_rows([]), workers=4)
        assert len(bank) == 0


class TestStoreDeterminism:
    def test_manifests_shards_and_rankings_bit_identical(self, tmp_path):
        tables = make_tables()
        query = make_query()
        fingerprints = {}
        for workers in WORKER_COUNTS:
            lake_dir = tmp_path / f"lake_w{workers}"
            store = LakeStore.create(lake_dir, build("WMH"))
            # Two appends so multi-shard manifests are covered.
            store.append(tables[:3], workers=workers)
            store.append(tables[3:], workers=workers)
            hits = QuerySession(store, min_containment=0.0).search(
                query, "signal", top_k=5
            )
            store.close()
            manifest = (lake_dir / "manifest.json").read_bytes()
            shards = [
                (f.name, f.read_bytes()) for f in sorted(lake_dir.glob("*.rpro"))
            ]
            fingerprints[workers] = (
                manifest,
                shards,
                [(h.table_name, h.column, h.score) for h in hits],
            )
        baseline = fingerprints[WORKER_COUNTS[0]]
        for workers in WORKER_COUNTS[1:]:
            assert fingerprints[workers] == baseline, f"workers={workers} diverged"

    def test_append_workers_matches_serial_append(self, tmp_path):
        tables = make_tables()
        serial = LakeStore.create(tmp_path / "serial", build("WMH"))
        serial.append(tables)
        parallel = LakeStore.create(tmp_path / "parallel", build("WMH"))
        parallel.append(tables, workers=3)
        s_manifest = (tmp_path / "serial" / "manifest.json").read_bytes()
        p_manifest = (tmp_path / "parallel" / "manifest.json").read_bytes()
        assert s_manifest == p_manifest
        serial.close()
        parallel.close()


class TestWrapperPickling:
    def test_parallel_sketcher_pickles_and_copies(self):
        import copy
        import pickle

        wrapper = ParallelSketcher(build("WMH"), workers=2)
        clone = pickle.loads(pickle.dumps(wrapper))
        assert clone.workers == 2
        assert clone.sketcher.m == wrapper.sketcher.m
        duplicate = copy.deepcopy(wrapper)
        assert duplicate.sketcher.seed == wrapper.sketcher.seed

    def test_getattr_raises_for_missing_attributes(self):
        wrapper = ParallelSketcher(build("MH"), workers=2)
        with pytest.raises(AttributeError):
            wrapper.no_such_attribute
        with pytest.raises(AttributeError):
            wrapper._private_probe


def _kill_worker(_: int) -> int:
    import os

    os._exit(1)  # simulates an OOM-killed worker


class TestBrokenPoolRecovery:
    def test_pool_recovers_after_worker_death(self):
        from concurrent.futures import BrokenExecutor

        with pytest.raises(BrokenExecutor):
            map_chunks(_kill_worker, [1, 2, 3], workers=2)
        # The poisoned executor must have been evicted: the same worker
        # count works again without any manual shutdown_pools() call.
        assert map_chunks(_square, [1, 2, 3], workers=2) == [1, 4, 9]
