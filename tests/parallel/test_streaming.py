"""Streaming ingest pipeline tests (PR-6 acceptance suite).

The contract under test: a lake ingested through the chunked streaming
pipeline — any chunk byte budget, any worker count, CSV or in-memory
sources — produces shard files, manifests, LSH index files, and query
rankings **byte-identical** to the one-shot path, with peak memory
bounded by the chunk budget; and an ingest that dies mid-stream leaves
only orphan files every reopen ignores.
"""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.core.wmh import WeightedMinHash
from repro.datasearch.index import SketchIndex
from repro.datasearch.table import Table
from repro.datasearch.vectorize import (
    indicator_vector,
    key_to_index,
    keys_to_indices,
    squared_value_vector,
    table_vectors,
    value_vector,
)
from repro.hashing.splitmix import hash_bytes, hash_bytes_many
from repro.io.serialize import pack_shard
from repro.parallel.streaming import (
    NO_CLAMP_ENV,
    SourceTable,
    chunk_matrix,
    effective_workers,
    plan_spans,
    plan_table_chunks,
)
from repro.sketches.jl import JohnsonLindenstrauss
from repro.store import LakeStore, QuerySession, StoreError
from repro.store.csvio import csv_source, load_csv_table
from repro.store.manifest import Manifest
from repro.store.shard import shard_filename

CHUNK_BUDGETS = (1, 20_000, None)  # 1 table/chunk, a few/chunk, all-in-one
WORKER_COUNTS = (None, 2, 4)


def make_tables(count: int = 9, seed: int = 3, rows: int = 60) -> list[Table]:
    rng = np.random.default_rng(seed)
    tables = []
    for i in range(count):
        keys = [f"k{j}" for j in rng.choice(500, size=rows, replace=False)]
        columns = {
            f"c{c}": rng.normal(size=rows).round(3) for c in range(1 + i % 3)
        }
        tables.append(Table(f"table{i}", keys, columns))
    return tables


def make_query(seed: int = 42, rows: int = 80) -> Table:
    rng = np.random.default_rng(seed)
    keys = [f"k{j}" for j in rng.choice(500, size=rows, replace=False)]
    return Table("query", keys, {"signal": rng.normal(size=rows)})


def fresh_sketcher() -> WeightedMinHash:
    return WeightedMinHash(m=32, seed=5, L=1 << 16)


def lake_fingerprint(path) -> dict[str, bytes]:
    """Every store file's bytes, keyed by filename (lock excluded)."""
    return {
        entry.name: entry.read_bytes()
        for entry in sorted(path.iterdir())
        if entry.name != ".lock"
    }


# ----------------------------------------------------------------------
# vectorized hashing / fused encoding equivalence
# ----------------------------------------------------------------------


class TestVectorizedHashing:
    def test_hash_bytes_many_matches_scalar(self):
        blobs = [
            b"",
            b"a",
            b"hello world",
            "café".encode("utf-8"),
            (12345).to_bytes(8, "little"),
            b"x" * 300,
        ]
        lengths = np.array([len(b) for b in blobs], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(lengths[:-1])])
        buffer = np.frombuffer(b"".join(blobs), dtype=np.uint8)
        digests = hash_bytes_many(buffer, offsets, lengths)
        assert [int(d) for d in digests] == [hash_bytes(b) for b in blobs]

    def test_keys_to_indices_matches_scalar(self):
        keys = ["alpha", 7, -3, b"raw", 2.5, ("t", 1), "café", ""]
        domain = 1 << 20
        got = keys_to_indices(keys, domain)
        expected = [key_to_index(key, domain) for key in keys]
        assert got.tolist() == expected

    def test_keys_to_indices_empty(self):
        assert keys_to_indices([], 1 << 16).size == 0

    def test_table_vectors_match_legacy_encoders(self):
        for table in make_tables(4):
            fused = table_vectors(table)
            legacy = [indicator_vector(table)]
            legacy += [value_vector(table, c) for c in table.columns]
            legacy += [squared_value_vector(table, c) for c in table.columns]
            assert len(fused) == len(legacy)
            for a, b in zip(fused, legacy):
                np.testing.assert_array_equal(a.indices, b.indices)
                np.testing.assert_array_equal(a.values, b.values)

    def test_chunk_matrix_matches_per_table_rows(self):
        tables = make_tables(3)
        matrix = chunk_matrix(tables)
        rows = [v for t in tables for v in table_vectors(t)]
        assert matrix.num_rows == len(rows)
        for i, vec in enumerate(rows):
            lo, hi = int(matrix.indptr[i]), int(matrix.indptr[i + 1])
            np.testing.assert_array_equal(matrix.indices[lo:hi], vec.indices)
            np.testing.assert_array_equal(matrix.values[lo:hi], vec.values)


# ----------------------------------------------------------------------
# the chunk planner
# ----------------------------------------------------------------------


class TestChunkPlanner:
    def sources(self, tables):
        return [SourceTable.from_table(t) for t in tables]

    def test_chunks_cover_all_sources_in_order(self):
        sources = self.sources(make_tables(7))
        chunks = plan_table_chunks(sources, 20_000)
        assert chunks[0][0] == 0 and chunks[-1][1] == len(sources)
        for (_, hi), (lo, _) in zip(chunks, chunks[1:]):
            assert hi == lo

    def test_tiny_budget_yields_one_table_per_chunk(self):
        sources = self.sources(make_tables(5))
        assert plan_table_chunks(sources, 1) == [(i, i + 1) for i in range(5)]

    def test_huge_budget_yields_single_chunk(self):
        sources = self.sources(make_tables(5))
        assert plan_table_chunks(sources, 1 << 40) == [(0, 5)]

    def test_env_budget_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_INGEST_CHUNK_BYTES", "1")
        sources = self.sources(make_tables(3))
        assert plan_table_chunks(sources, None) == [(0, 1), (1, 2), (2, 3)]

    def test_spans_align_with_bank_rows(self):
        sources = self.sources(make_tables(4))
        spans = plan_spans(sources)
        lo = 0
        for source, (span_lo, span_hi) in zip(sources, spans):
            assert span_lo == lo
            assert span_hi - span_lo == 1 + 2 * len(source.columns)
            lo = span_hi

    def test_effective_workers_clamps_to_cpus(self, monkeypatch):
        monkeypatch.delenv(NO_CLAMP_ENV, raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 2)
        assert effective_workers(8) == 2
        assert effective_workers(None) == 1
        monkeypatch.setenv(NO_CLAMP_ENV, "1")
        assert effective_workers(8) == 8


# ----------------------------------------------------------------------
# byte identity across chunkings and worker counts
# ----------------------------------------------------------------------


class TestByteIdentity:
    @pytest.fixture(autouse=True)
    def _force_real_pools(self, monkeypatch):
        # Single-core CI hosts would clamp pooled runs to serial; the
        # identity claim must hold for *real* pools too.
        monkeypatch.setenv(NO_CLAMP_ENV, "1")

    def build_lake(self, root, tables, chunk_bytes, workers):
        store = LakeStore.create(root / "lake", fresh_sketcher())
        shard_id = store.append(tables, workers=workers, chunk_bytes=chunk_bytes)
        query = QuerySession(store).search(make_query(), "signal", top_k=5)
        store.close()
        ranking = [(h.table_name, h.column, h.score) for h in query]
        return shard_id, lake_fingerprint(root / "lake"), ranking

    def test_all_chunkings_and_workers_agree(self, tmp_path):
        tables = make_tables()
        fingerprints = {}
        rankings = set()
        for i, chunk_bytes in enumerate(CHUNK_BUDGETS):
            for j, workers in enumerate(WORKER_COUNTS):
                root = tmp_path / f"v{i}_{j}"
                root.mkdir()
                _, files, ranking = self.build_lake(
                    root, tables, chunk_bytes, workers
                )
                fingerprints[(chunk_bytes, workers)] = files
                rankings.add(tuple(ranking))
        reference = fingerprints[(None, None)]
        for key, files in fingerprints.items():
            assert files == reference, f"variant {key} diverged"
        assert len(rankings) == 1

    def test_streamed_shard_matches_one_shot_pack(self, tmp_path):
        tables = make_tables()
        sketcher = fresh_sketcher()
        vectors = [v for t in tables for v in SketchIndex.encode_table(t)]
        reference = pack_shard(sketcher.sketch_batch(vectors))
        shard_id, files, _ = self.build_lake(tmp_path, tables, 1, 2)
        assert files[shard_filename(shard_id)] == reference

    def test_multi_append_and_replacement_identity(self, tmp_path):
        tables = make_tables()
        variants = []
        for i, (chunk_bytes, workers) in enumerate([(None, None), (1, 2)]):
            root = tmp_path / f"v{i}"
            root.mkdir()
            store = LakeStore.create(root / "lake", fresh_sketcher())
            store.append(tables[:5], workers=workers, chunk_bytes=chunk_bytes)
            store.append(tables[5:], workers=workers, chunk_bytes=chunk_bytes)
            # Same-name replacement must tombstone identically too.
            store.append([tables[0]], workers=workers, chunk_bytes=chunk_bytes)
            store.close()
            variants.append(lake_fingerprint(root / "lake"))
        assert variants[0] == variants[1]

    def test_object_bank_fallback_still_works(self, tmp_path):
        # Sketchers without a fixed bank layout take the materialized
        # path; results must equal the layout-streamed store semantics.
        tables = make_tables(4)
        store = LakeStore.create(
            tmp_path / "lake", JohnsonLindenstrauss(m=16, seed=2)
        )
        shard_id = store.append(tables, chunk_bytes=1)
        assert shard_id is not None
        assert sorted(store.table_names()) == sorted(t.name for t in tables)
        store.close()
        reopened = LakeStore.open(tmp_path / "lake")
        assert sorted(reopened.table_names()) == sorted(t.name for t in tables)
        reopened.close()


# ----------------------------------------------------------------------
# CSV streaming
# ----------------------------------------------------------------------


def write_csv(path, table: Table) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        names = list(table.columns)
        writer.writerow(["key", *names])
        for i, key in enumerate(table.keys):
            writer.writerow([key, *(repr(float(table.columns[c][i])) for c in names)])


class TestCSVStreaming:
    def test_csv_source_reads_only_header_metadata(self, tmp_path):
        table = make_tables(1)[0]
        path = tmp_path / f"{table.name}.csv"
        write_csv(path, table)
        source = csv_source(path)
        assert source.name == table.name
        assert source.columns == tuple(table.columns)
        loaded = source.loader()
        assert loaded.keys == load_csv_table(path).keys

    def test_ingest_csv_matches_append_of_loaded_tables(self, tmp_path):
        tables = make_tables(5)
        csv_dir = tmp_path / "csvs"
        csv_dir.mkdir()
        paths = []
        for table in tables:
            path = csv_dir / f"{table.name}.csv"
            write_csv(path, table)
            paths.append(path)

        streamed = LakeStore.create(tmp_path / "streamed", fresh_sketcher())
        shard_id, report = streamed.ingest_csv(paths, chunk_bytes=1)
        streamed.close()
        assert report is not None
        assert report.tables == len(tables)
        assert report.chunks == len(tables)
        assert report.peak_chunk_bytes > 0

        eager = LakeStore.create(tmp_path / "eager", fresh_sketcher())
        eager.append([load_csv_table(path) for path in paths])
        eager.close()

        assert lake_fingerprint(tmp_path / "streamed") == lake_fingerprint(
            tmp_path / "eager"
        )
        assert shard_id is not None


# ----------------------------------------------------------------------
# crash safety
# ----------------------------------------------------------------------


class TestCrashSafety:
    def test_failed_stream_leaves_store_unchanged(self, tmp_path, monkeypatch):
        tables = make_tables(6)
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(tables[:3])
        before = lake_fingerprint(tmp_path / "lake")

        calls = {"n": 0}
        original = WeightedMinHash._sketch_batch

        def failing(self, matrix):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("simulated mid-stream crash")
            return original(self, matrix)

        monkeypatch.setattr(WeightedMinHash, "_sketch_batch", failing)
        with pytest.raises(RuntimeError, match="mid-stream"):
            store.append(tables[3:], chunk_bytes=1)
        monkeypatch.setattr(WeightedMinHash, "_sketch_batch", original)

        # Nothing committed, the temp file was aborted, and the served
        # state still answers for the original tables.
        assert lake_fingerprint(tmp_path / "lake") == before
        assert store.orphaned_files() == []
        assert sorted(store.table_names()) == sorted(t.name for t in tables[:3])
        store.append(tables[3:])  # the lake is still writable
        assert len(store) == 6
        store.close()

    def test_crash_before_manifest_commit_leaves_ignorable_orphan(
        self, tmp_path, monkeypatch
    ):
        tables = make_tables(6)
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(tables[:3])
        manifest_before = (tmp_path / "lake" / "manifest.json").read_bytes()

        # Die between the shard rename and the manifest save — the
        # worst spot: a fully durable shard nobody references.
        def crashing_save(self, path):
            raise RuntimeError("simulated crash before manifest commit")

        monkeypatch.setattr(Manifest, "save", crashing_save)
        with pytest.raises(RuntimeError, match="manifest commit"):
            store.append(tables[3:], chunk_bytes=1)
        monkeypatch.undo()
        store.close()

        assert (
            tmp_path / "lake" / "manifest.json"
        ).read_bytes() == manifest_before
        reopened = LakeStore.open(tmp_path / "lake")
        assert sorted(reopened.table_names()) == sorted(
            t.name for t in tables[:3]
        )
        orphans = reopened.orphaned_files()
        assert orphans  # the uncommitted shard is detectable...
        for name in orphans:  # ...and ignorable: delete and carry on
            (tmp_path / "lake" / name).unlink()
        reopened.append(tables[3:])
        assert len(reopened) == 6
        assert reopened.orphaned_files() == []
        reopened.close()

    def test_unfinalized_tmp_is_ignored_on_open(self, tmp_path):
        tables = make_tables(3)
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        store.append(tables)
        store.close()
        # A hard kill mid-stream leaves a pre-sized temp file.
        junk = tmp_path / "lake" / (shard_filename(99) + ".tmp")
        junk.write_bytes(b"\x00" * 128)
        reopened = LakeStore.open(tmp_path / "lake")
        assert sorted(reopened.table_names()) == sorted(t.name for t in tables)
        assert reopened.orphaned_files() == [junk.name]
        reopened.close()

    def test_concurrent_writer_rejected_before_streaming(self, tmp_path):
        pytest.importorskip("fcntl")
        import fcntl

        tables = make_tables(2)
        store = LakeStore.create(tmp_path / "lake", fresh_sketcher())
        handle = open(tmp_path / "lake" / ".lock", "a+")
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        try:
            with pytest.raises(StoreError, match="another process"):
                store.append(tables)
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()
        # No temp litter from the rejected attempt.
        assert store.orphaned_files() == []
        store.close()
