"""Table 1 — error guarantees, evaluated and empirically validated.

Table 1 of the paper is a *theory* table: the additive error bounds of
linear sketching (Fact 1), unweighted MinHash (Theorem 4 / prior work
on binary vectors), and Weighted MinHash (Theorem 2).  This experiment
makes the table executable:

1. evaluate all three bound formulas on concrete vector families
   (sparse/disjoint, sparse/overlapping, binary, dense, heavy-outlier)
   and report the bound ratios — WMH's bound must never exceed the
   linear bound, and must match MH's bound on binary vectors;
2. empirically validate the *shape*: measure each method's achieved
   error and check it scales with its own bound (the measured error
   divided by the bound formula stays O(1) across families while the
   bound gap between methods varies by orders of magnitude).

Run ``python -m repro.experiments.table1``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.theory import compare_bounds
from repro.experiments.metrics import normalized_error
from repro.experiments.report import format_table
from repro.experiments.runner import method_registry
from repro.vectors.sparse import SparseVector

__all__ = ["VECTOR_FAMILIES", "Table1Row", "run", "render", "main"]


def _family_sparse_low_overlap(seed: int) -> tuple[SparseVector, SparseVector]:
    rng = np.random.default_rng(seed)
    n, nnz, shared = 5_000, 800, 40
    permutation = rng.permutation(n)
    idx_shared = permutation[:shared]
    idx_a = np.concatenate([idx_shared, permutation[shared : shared + nnz - shared]])
    idx_b = np.concatenate(
        [idx_shared, permutation[shared + nnz - shared : shared + 2 * (nnz - shared)]]
    )
    return (
        SparseVector(idx_a, rng.normal(size=nnz), n=n),
        SparseVector(idx_b, rng.normal(size=nnz), n=n),
    )


def _family_sparse_high_overlap(seed: int) -> tuple[SparseVector, SparseVector]:
    rng = np.random.default_rng(seed)
    n, nnz = 5_000, 800
    idx = rng.permutation(n)[:nnz]
    return (
        SparseVector(idx, rng.normal(size=nnz), n=n),
        SparseVector(idx, rng.normal(size=nnz), n=n),
    )


def _family_binary(seed: int) -> tuple[SparseVector, SparseVector]:
    rng = np.random.default_rng(seed)
    n, nnz, shared = 5_000, 600, 120
    permutation = rng.permutation(n)
    idx_a = permutation[:nnz]
    idx_b = np.concatenate([permutation[:shared], permutation[nnz : nnz + nnz - shared]])
    return (
        SparseVector(idx_a, np.ones(nnz), n=n),
        SparseVector(idx_b, np.ones(nnz), n=n),
    )


def _family_outliers(seed: int) -> tuple[SparseVector, SparseVector]:
    rng = np.random.default_rng(seed)
    n, nnz, shared = 5_000, 800, 80
    permutation = rng.permutation(n)
    idx_shared = permutation[:shared]
    idx_a = np.concatenate([idx_shared, permutation[shared : shared + nnz - shared]])
    idx_b = np.concatenate(
        [idx_shared, permutation[shared + nnz - shared : shared + 2 * (nnz - shared)]]
    )

    def values() -> np.ndarray:
        vals = rng.uniform(-1, 1, size=nnz)
        heavy = rng.choice(nnz, size=nnz // 10, replace=False)
        vals[heavy] = rng.uniform(20, 30, size=heavy.size)
        return vals

    return (
        SparseVector(idx_a, values(), n=n),
        SparseVector(idx_b, values(), n=n),
    )


def _family_dense(seed: int) -> tuple[SparseVector, SparseVector]:
    rng = np.random.default_rng(seed)
    n = 1_200
    return (
        SparseVector.from_dense(rng.normal(size=n)),
        SparseVector.from_dense(rng.normal(size=n)),
    )


VECTOR_FAMILIES: dict[str, Callable[[int], tuple[SparseVector, SparseVector]]] = {
    "sparse 5% overlap": _family_sparse_low_overlap,
    "sparse full overlap": _family_sparse_high_overlap,
    "binary 20% overlap": _family_binary,
    "outliers 10% overlap": _family_outliers,
    "dense": _family_dense,
}


@dataclass(frozen=True)
class Table1Row:
    family: str
    linear_bound: float
    minhash_bound: float
    wmh_bound: float
    advantage: float
    measured_jl: float
    measured_mh: float
    measured_wmh: float


def run(
    m: int = 256, trials: int = 5, seed: int = 0
) -> list[Table1Row]:
    """Evaluate bounds and measure achieved errors per vector family."""
    registry = method_registry()
    storage = int(m * 1.5)  # equal samples for the sampling sketches
    rows: list[Table1Row] = []
    for family_name, make_pair in VECTOR_FAMILIES.items():
        a, b = make_pair(seed)
        bounds = compare_bounds(a, b, m)
        truth = a.dot(b)
        measured = {}
        for method in ("JL", "MH", "WMH"):
            errors = []
            for trial in range(trials):
                sketcher = registry[method].build(storage, seed + 7919 * trial)
                bank = sketcher.sketch_batch([a, b])
                estimate = sketcher.estimate(
                    sketcher.bank_row(bank, 0), sketcher.bank_row(bank, 1)
                )
                errors.append(abs(estimate - truth))
            measured[method] = float(np.mean(errors))
        rows.append(
            Table1Row(
                family=family_name,
                linear_bound=bounds.linear,
                minhash_bound=bounds.minhash,
                wmh_bound=bounds.wmh,
                advantage=bounds.wmh_vs_linear,
                measured_jl=measured["JL"],
                measured_mh=measured["MH"],
                measured_wmh=measured["WMH"],
            )
        )
    return rows


def render(rows: Sequence[Table1Row]) -> str:
    return format_table(
        [
            "family",
            "bound JL",
            "bound MH",
            "bound WMH",
            "JL/WMH bound ratio",
            "err JL",
            "err MH",
            "err WMH",
        ],
        [
            [
                row.family,
                row.linear_bound,
                row.minhash_bound,
                row.wmh_bound,
                row.advantage,
                row.measured_jl,
                row.measured_mh,
                row.measured_wmh,
            ]
            for row in rows
        ],
        title=(
            "Table 1: additive error bounds (epsilon = 1/sqrt(m)) and "
            "measured mean absolute errors"
        ),
    )


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=256)
    parser.add_argument("--trials", type=int, default=5)
    args = parser.parse_args(argv)
    print(render(run(m=args.m, trials=args.trials)))


if __name__ == "__main__":
    main()
