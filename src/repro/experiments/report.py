"""Plain-text rendering of experiment results.

The reproduction is headless (no matplotlib), so every "figure" is
rendered as an aligned text table of the same series the paper plots —
which is also what EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series_panel", "format_matrix"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Monospace-aligned table with a header rule."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series_panel(
    title: str,
    storages: Sequence[int],
    series: Mapping[str, Sequence[float]],
) -> str:
    """One figure panel: methods as rows, the storage sweep as columns."""
    headers = ["method"] + [str(storage) for storage in storages]
    rows = [[method] + list(values) for method, values in series.items()]
    return format_table(headers, rows, title=title)


def format_matrix(
    title: str,
    row_labels: Sequence[str],
    column_labels: Sequence[str],
    cells: Sequence[Sequence[float]],
    corner: str = "",
) -> str:
    """A labelled 2-D grid (the Figure 5 winning-table layout)."""
    headers = [corner] + list(column_labels)
    rows = [
        [row_label] + list(row_cells)
        for row_label, row_cells in zip(row_labels, cells)
    ]
    return format_table(headers, rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "--"
        return f"{value:+.4f}" if value < 0 or abs(value) < 1e-2 else f"{value:.4f}"
    return str(value)
