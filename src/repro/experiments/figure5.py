"""Figure 5 — winning tables on World-Bank-like column pairs.

The paper estimates inner products between 5000 unit-normalized column
pairs with sketches of storage 400 and renders two "winning tables":
the mean of (WMH error − JL error) and (WMH error − MH error), binned
by key-overlap ratio (columns) and by kurtosis (rows).  Negative cells
(blue in the paper) mean WMH wins.

Qualitative findings this reproduces:

* WMH beats JL decisively at low overlap; JL wins *slightly* at
  overlap > 0.75 (paper: by 0.003-0.006);
* WMH beats MH most at high kurtosis (outliers break unweighted
  sampling);
* WMH is never much worse than the best method — the "good compromise"
  conclusion.

Run ``python -m repro.experiments.figure5`` (``--paper`` for 5000
pairs).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.data.worldbank import WorldBankConfig, generate_corpus
from repro.experiments.metrics import normalized_error
from repro.experiments.report import format_matrix
from repro.experiments.runner import method_registry

__all__ = ["Figure5Config", "Figure5Result", "run", "render", "main"]


@dataclass(frozen=True)
class Figure5Config:
    num_pairs: int = 400
    storage: int = 400
    trials: int = 3
    overlap_bins: Sequence[float] = (0.0, 0.25, 0.50, 0.75, 1.01)
    kurtosis_bins: Sequence[float] = (0.0, 5.0, 50.0, float("inf"))
    comparisons: Sequence[str] = ("JL", "MH")
    worldbank: WorldBankConfig = field(default_factory=WorldBankConfig)
    seed: int = 0

    @classmethod
    def paper_scale(cls) -> "Figure5Config":
        return cls(num_pairs=5_000, trials=10)

    @classmethod
    def quick(cls) -> "Figure5Config":
        return cls(num_pairs=60, trials=1, storage=200)


@dataclass(frozen=True)
class Figure5Result:
    """Binned mean error differences, one matrix per comparison method."""

    matrices: dict[str, np.ndarray]
    counts: np.ndarray
    overlap_labels: tuple[str, ...]
    kurtosis_labels: tuple[str, ...]


def _bin_index(value: float, edges: Sequence[float]) -> int:
    for position in range(len(edges) - 1):
        if edges[position] <= value < edges[position + 1]:
            return position
    return len(edges) - 2


def run(config: Figure5Config = Figure5Config()) -> Figure5Result:
    """Generate pairs, measure per-pair errors, and bin the differences."""
    registry = method_registry()
    num_overlap_bins = len(config.overlap_bins) - 1
    num_kurtosis_bins = len(config.kurtosis_bins) - 1
    sums = {
        name: np.zeros((num_kurtosis_bins, num_overlap_bins))
        for name in config.comparisons
    }
    counts = np.zeros((num_kurtosis_bins, num_overlap_bins))

    pairs = list(
        generate_corpus(config.num_pairs, seed=config.seed, config=config.worldbank)
    )
    truths = [pair.left.dot(pair.right) for pair in pairs]
    vectors = [vector for pair in pairs for vector in (pair.left, pair.right)]

    # One sketch_batch per (method, trial) over the whole corpus — the
    # batch engine replaces the per-pair sketching loop.
    method_names = ("WMH",) + tuple(config.comparisons)
    errors = {
        name: np.zeros((len(pairs), config.trials)) for name in method_names
    }
    for trial in range(config.trials):
        seed = config.seed * 7919 + trial
        for name in method_names:
            sketcher = registry[name].build(config.storage, seed)
            sketches = sketcher.bank_to_sketches(sketcher.sketch_batch(vectors))
            for pair_id, pair in enumerate(pairs):
                estimate = sketcher.estimate(
                    sketches[2 * pair_id], sketches[2 * pair_id + 1]
                )
                errors[name][pair_id, trial] = normalized_error(
                    estimate, truths[pair_id], pair.left, pair.right
                )

    for pair_id, pair in enumerate(pairs):
        row = _bin_index(pair.kurtosis, config.kurtosis_bins)
        column = _bin_index(pair.overlap, config.overlap_bins)
        counts[row, column] += 1
        wmh_mean = float(np.mean(errors["WMH"][pair_id]))
        for name in config.comparisons:
            sums[name][row, column] += wmh_mean - float(
                np.mean(errors[name][pair_id])
            )

    matrices = {
        name: np.divide(
            total, counts, out=np.full_like(total, np.nan), where=counts > 0
        )
        for name, total in sums.items()
    }
    overlap_labels = tuple(
        f"[{config.overlap_bins[i]:.2f},{min(config.overlap_bins[i + 1], 1.0):.2f})"
        for i in range(num_overlap_bins)
    )
    kurtosis_labels = tuple(
        f"kurt [{config.kurtosis_bins[i]:g},{config.kurtosis_bins[i + 1]:g})"
        for i in range(num_kurtosis_bins)
    )
    return Figure5Result(
        matrices=matrices,
        counts=counts,
        overlap_labels=overlap_labels,
        kurtosis_labels=kurtosis_labels,
    )


def render(result: Figure5Result) -> str:
    sections = []
    for name, matrix in result.matrices.items():
        sections.append(
            format_matrix(
                f"Figure 5: mean(WMH error - {name} error) by kurtosis x overlap "
                "(negative = WMH wins)",
                result.kurtosis_labels,
                result.overlap_labels,
                matrix.tolist(),
            )
        )
    sections.append(
        format_matrix(
            "pair counts per bin",
            result.kurtosis_labels,
            result.overlap_labels,
            result.counts.tolist(),
        )
    )
    return "\n\n".join(sections)


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true")
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    if args.paper:
        config = Figure5Config.paper_scale()
    elif args.quick:
        config = Figure5Config.quick()
    else:
        config = Figure5Config()
    print(render(run(config)))


if __name__ == "__main__":
    main()
