"""Ablations of the design choices Section 5 calls out.

The paper's experimental section singles out several implementation
decisions; each gets an ablation here:

* **Choice of L** ("we did find that it is necessary to at least ensure
  that L > n. Ideally it should be larger by a multiplicative factor
  100 or 1000") — sweep ``L`` from far below ``n`` to ``1000 n`` and
  watch the error collapse once ``L >> n``.
* **Norm scaling** (Section 4: the worst-case bound requires sketching
  ``a/||a||``, not ``a``) — compare the paper's estimator against a
  variant that samples proportionally to raw squared values without
  unit scaling.
* **Weighted-union estimator** — the paper's Flajolet–Martin ``M̃``
  versus the collision-rate identity ``M = 2/(1+J̄)``.
* **Median-of-t boosting** (Theorem 2's final step; the experiments use
  t = 1) — error tails at equal total storage for t in {1, 3, 5}.
* **SimHash at equal storage** — the 1-bit quantization trade-off the
  paper defers to future work.

Run ``python -m repro.experiments.ablations``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.estimator import estimate_inner_product
from repro.core.median import MedianBoosted
from repro.core.wmh import WeightedMinHash
from repro.data.synthetic import SyntheticConfig, generate_pair
from repro.experiments.metrics import normalized_error
from repro.experiments.report import format_table
from repro.sketches.simhash import SimHash

__all__ = ["AblationConfig", "run_all", "main"]


@dataclass(frozen=True)
class AblationConfig:
    storage: int = 300
    trials: int = 8
    # Flat (no-outlier) vectors with solid overlap: shared heavy entries
    # would make the estimator near-exact and mask every contrast the
    # ablations are meant to expose (discretization loss, union-
    # estimator variance, boosting).
    synthetic: SyntheticConfig = field(
        default_factory=lambda: SyntheticConfig(
            n=4_000, nnz=800, overlap=0.3, outlier_fraction=0.0
        )
    )
    seed: int = 0

    @classmethod
    def quick(cls) -> "AblationConfig":
        return cls(
            storage=150,
            trials=3,
            synthetic=SyntheticConfig(
                n=1_000, nnz=200, overlap=0.3, outlier_fraction=0.0
            ),
        )


def _trial_errors(config: AblationConfig, estimate_fn) -> list[float]:
    """Mean normalized error per trial for a custom estimator closure."""
    a, b = generate_pair(config.synthetic, seed=config.seed)
    truth = a.dot(b)
    errors = []
    for trial in range(config.trials):
        estimate = estimate_fn(a, b, config.seed * 7919 + trial)
        errors.append(normalized_error(estimate, truth, a, b))
    return errors


def _correlated_pair(config: AblationConfig, mixed_heavy: int = 0):
    """A fully-overlapping, strongly correlated pair (large <ã, b̃>).

    Ablations that measure *accuracy loss* need a target whose
    normalized inner product is large — with near-orthogonal vectors,
    an estimator broken down to "output 0" would look spuriously good.
    ``mixed_heavy`` plants coordinates that are heavy in ``a`` but tiny
    in ``b``: when matched, their importance weight spikes, producing
    the heavy error tail that median boosting exists to control.
    """
    import numpy as np

    rng = np.random.default_rng(config.seed + 101)
    n = config.synthetic.n
    nnz = config.synthetic.nnz
    indices = rng.permutation(n)[:nnz]
    values_a = rng.normal(size=nnz)
    values_a[values_a == 0.0] = 0.5
    # Moderate correlation (cosine ~0.5): strong enough that accuracy
    # loss is visible, weak enough that a degenerate sketch cannot fake
    # it by predicting "identical vectors".
    values_b = 0.5 * values_a + 0.8 * rng.normal(size=nnz)
    values_b[values_b == 0.0] = 0.5
    if mixed_heavy:
        heavy = rng.choice(nnz, size=mixed_heavy, replace=False)
        scale_a = float(np.linalg.norm(values_a))
        values_a[heavy] = 0.3 * scale_a  # ~9% of a's mass each
        values_b[heavy] = 0.005 * scale_a  # nearly invisible in b
    from repro.vectors.sparse import SparseVector

    return SparseVector(indices, values_a, n=n), SparseVector(indices, values_b, n=n)


def ablate_choice_of_L(config: AblationConfig) -> str:
    """Error vs ``L`` relative to the dimension ``n``.

    Measured on a correlated full-overlap pair whose true normalized
    inner product is ~0.9: an under-discretized sketch (``L`` below the
    support size zeroes most coordinates) visibly destroys the
    estimate, reproducing the paper's "necessary to at least ensure
    that L > n" observation.
    """
    n = config.synthetic.n
    a, b = _correlated_pair(config)
    truth = a.dot(b)
    factors = (0.1, 1.0, 10.0, 100.0, 1000.0)
    rows = []
    for factor in factors:
        L = max(int(n * factor), 1)
        errors = []
        for trial in range(config.trials):
            sketcher = WeightedMinHash.from_storage(
                config.storage, seed=config.seed * 7919 + trial, L=L
            )
            estimate = sketcher.estimate(sketcher.sketch(a), sketcher.sketch(b))
            errors.append(normalized_error(estimate, truth, a, b))
        rows.append([f"L = {factor:g} n", L, float(np.mean(errors))])
    return format_table(
        ["setting", "L", "mean error"],
        rows,
        title=(
            f"Ablation: choice of L (n = {n}, true normalized inner product "
            f"{truth / (a.norm() * b.norm()):.2f}); paper prescribes L >> n"
        ),
    )


def ablate_union_estimator(config: AblationConfig) -> str:
    """Paper's FM-style ``M̃`` vs the Jaccard-identity estimator."""
    rows = []
    for variant in ("fm", "jaccard"):

        def estimate(a, b, seed, variant=variant):
            sketcher = WeightedMinHash.from_storage(config.storage, seed=seed)
            return estimate_inner_product(
                sketcher.sketch(a), sketcher.sketch(b), weighted_union=variant
            )

        errors = _trial_errors(config, estimate)
        rows.append([variant, float(np.mean(errors)), float(np.std(errors))])
    return format_table(
        ["weighted-union variant", "mean error", "std"],
        rows,
        title="Ablation: weighted union size estimator (Algorithm 5, line 2)",
    )


def ablate_norm_scaling(config: AblationConfig) -> str:
    """Unit-norm scaling (paper) vs sketching raw squared weights.

    The no-scaling variant emulates mismatched sampling probabilities
    by sketching ``a`` against ``c * b`` for assorted scale factors
    ``c``; the paper's estimator is scale-invariant by construction, so
    any drift measures estimator robustness rather than implementation
    luck.
    """
    rows = []
    for scale in (1.0, 10.0, 1000.0):

        def estimate(a, b, seed, scale=scale):
            sketcher = WeightedMinHash.from_storage(config.storage, seed=seed)
            scaled_b = b.scaled(scale)
            raw = sketcher.estimate(sketcher.sketch(a), sketcher.sketch(scaled_b))
            return raw / scale

        errors = _trial_errors(config, estimate)
        rows.append([f"sketch(a), sketch({scale:g} b)", float(np.mean(errors))])
    return format_table(
        ["pairing", "mean error"],
        rows,
        title=(
            "Ablation: norm scaling — the estimator is invariant to "
            "rescaling either input (Section 4's normalization argument)"
        ),
    )


def ablate_median_boosting(config: AblationConfig) -> str:
    """Median-of-t at equal total storage: tails shrink, mean grows.

    Measured on a pair with planted "mixed" coordinates — heavy in one
    vector, tiny in the other — whose importance weights spike when
    matched.  These spikes are the 1/3 failure probability of
    Theorem 2's single-sketch guarantee; the median over independent
    sketches suppresses them, at the cost of a slightly larger typical
    error (each part gets only 1/t of the budget).
    """
    a, b = _correlated_pair(config, mixed_heavy=10)
    truth = a.dot(b)
    rows = []
    for t in (1, 3, 5):
        errors = []
        for trial in range(config.trials * 6):
            boosted = MedianBoosted.split_storage(
                WeightedMinHash,
                words=config.storage,
                t=t,
                seed=config.seed * 31 + trial,
            )
            estimate = boosted.estimate(boosted.sketch(a), boosted.sketch(b))
            errors.append(normalized_error(estimate, truth, a, b))
        rows.append(
            [
                t,
                float(np.mean(errors)),
                float(np.quantile(errors, 0.9)),
                float(np.max(errors)),
            ]
        )
    return format_table(
        ["t", "mean error", "p90 error", "max error"],
        rows,
        title="Ablation: median-of-t boosting at equal total storage",
    )


def ablate_simhash(config: AblationConfig) -> str:
    """SimHash (1 bit/sample) vs WMH at equal storage."""
    rows = []
    for name, build in (
        ("WMH", lambda seed: WeightedMinHash.from_storage(config.storage, seed=seed)),
        ("SimHash", lambda seed: SimHash.from_storage(config.storage, seed=seed)),
    ):

        def estimate(a, b, seed, build=build):
            sketcher = build(seed)
            return sketcher.estimate(sketcher.sketch(a), sketcher.sketch(b))

        errors = _trial_errors(config, estimate)
        rows.append([name, float(np.mean(errors))])
    return format_table(
        ["method", "mean error"],
        rows,
        title="Ablation: 1-bit quantization (SimHash) at equal storage",
    )


def run_all(config: AblationConfig = AblationConfig()) -> str:
    sections = [
        ablate_choice_of_L(config),
        ablate_union_estimator(config),
        ablate_norm_scaling(config),
        ablate_median_boosting(config),
        ablate_simhash(config),
    ]
    return "\n\n".join(sections)


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    config = AblationConfig.quick() if args.quick else AblationConfig()
    print(run_all(config))


if __name__ == "__main__":
    main()
