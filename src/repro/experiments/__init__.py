"""Experiment drivers reproducing every table and figure of the paper.

* :mod:`repro.experiments.table1` — error-bound comparison (Table 1);
* :mod:`repro.experiments.figure4` — synthetic-data sweep (Figure 4);
* :mod:`repro.experiments.figure5` — World-Bank-like winning tables
  (Figure 5);
* :mod:`repro.experiments.figure6` — text-similarity sweep (Figure 6);
* :mod:`repro.experiments.ablations` — design-choice ablations.

Each module has a ``--paper`` flag for full-scale runs and a
``--quick`` flag for smoke tests; defaults are an intermediate scale
that preserves the papers' qualitative shapes in seconds-to-minutes.
"""

from repro.experiments.metrics import ErrorRecord, group_mean, normalized_error, summarize
from repro.experiments.report import format_matrix, format_series_panel, format_table
from repro.experiments.runner import (
    EXTENDED_METHODS,
    PAPER_METHODS,
    MethodSpec,
    method_registry,
    run_sweep,
)

__all__ = [
    "EXTENDED_METHODS",
    "ErrorRecord",
    "MethodSpec",
    "PAPER_METHODS",
    "format_matrix",
    "format_series_panel",
    "format_table",
    "group_mean",
    "method_registry",
    "normalized_error",
    "run_sweep",
    "summarize",
]
