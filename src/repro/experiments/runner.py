"""Storage-equalized method sweeps (the Section 5 protocol).

One place defines *the five methods of the paper* and how each converts
a storage budget (in 64-bit words) into its size parameter, so every
figure compares methods at genuinely equal storage:

* JL — ``m = words`` projection rows (64-bit doubles);
* CS — ``words`` split over 5 repetitions, median estimate;
* MH / KMV / WMH — ``m = floor(words / 1.5)`` samples (64-bit value +
  32-bit hash per sample).

``run_sweep`` evaluates every (method, storage, trial) cell on a fixed
set of vector pairs, re-seeding each trial so the reported error is an
average over independent sketch draws, exactly as in the paper ("We
always report average error over 10 independent trials").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.base import Sketcher
from repro.core.wmh import WeightedMinHash
from repro.experiments.metrics import ErrorRecord, normalized_error
from repro.sketches.countsketch import CountSketch
from repro.sketches.icws import ICWS
from repro.sketches.jl import JohnsonLindenstrauss
from repro.sketches.kmv import KMinimumValues
from repro.sketches.minhash import MinHash
from repro.sketches.priority import PrioritySampling
from repro.sketches.simhash import SimHash
from repro.vectors.sparse import SparseVector

__all__ = [
    "MethodSpec",
    "PAPER_METHODS",
    "EXTENDED_METHODS",
    "method_registry",
    "run_sweep",
]

#: Factory signature: (storage_words, seed) -> configured Sketcher.
MethodFactory = Callable[[int, int], Sketcher]


@dataclass(frozen=True)
class MethodSpec:
    """A named, storage-parameterized sketching method."""

    name: str
    factory: MethodFactory

    def build(self, storage: int, seed: int) -> Sketcher:
        return self.factory(storage, seed)


def _wmh_factory(L: int | None = None) -> MethodFactory:
    def factory(storage: int, seed: int) -> Sketcher:
        kwargs = {} if L is None else {"L": L}
        return WeightedMinHash.from_storage(storage, seed=seed, **kwargs)

    return factory


def method_registry(wmh_L: int | None = None) -> dict[str, MethodSpec]:
    """All implemented methods, keyed by their paper names."""
    return {
        "JL": MethodSpec("JL", lambda s, seed: JohnsonLindenstrauss.from_storage(s, seed=seed)),
        "CS": MethodSpec("CS", lambda s, seed: CountSketch.from_storage(s, seed=seed)),
        "MH": MethodSpec("MH", lambda s, seed: MinHash.from_storage(s, seed=seed)),
        "KMV": MethodSpec("KMV", lambda s, seed: KMinimumValues.from_storage(s, seed=seed)),
        "WMH": MethodSpec("WMH", _wmh_factory(wmh_L)),
        "SimHash": MethodSpec("SimHash", lambda s, seed: SimHash.from_storage(s, seed=seed)),
        "ICWS": MethodSpec("ICWS", lambda s, seed: ICWS.from_storage(s, seed=seed)),
        "PS": MethodSpec("PS", lambda s, seed: PrioritySampling.from_storage(s, seed=seed)),
    }


#: The five methods of the paper's experimental section, in plot order.
PAPER_METHODS: tuple[str, ...] = ("JL", "CS", "MH", "KMV", "WMH")

#: Paper methods plus the extension sketches.
EXTENDED_METHODS: tuple[str, ...] = PAPER_METHODS + ("SimHash", "ICWS", "PS")


def run_sweep(
    pairs: Sequence[tuple[SparseVector, SparseVector]],
    storages: Sequence[int],
    trials: int = 10,
    methods: Sequence[str] = PAPER_METHODS,
    seed: int = 0,
    registry: Mapping[str, MethodSpec] | None = None,
    workers: int | None = None,
    candidates: str = "scan",
    lsh_target_sim: float = 0.5,
    lsh_target_recall: float = 0.95,
) -> list[ErrorRecord]:
    """Evaluate methods over pairs x storages x trials.

    Each (method, storage, trial) builds one sketcher with a trial-
    specific seed and sketches every pair with it — mirroring a real
    deployment where a single sketch configuration serves the whole
    corpus.  Returns one :class:`ErrorRecord` per estimate.

    ``workers`` fans each cell's ``sketch_batch`` out over that many
    processes (:mod:`repro.parallel`); records are bit-identical for
    any worker count.

    ``candidates`` mirrors the serving-side knob: ``"scan"`` (default)
    estimates every pair; ``"lsh"`` estimates only the pairs that
    collide in a banded signature index tuned for ``lsh_target_recall``
    expected recall at similarity ``lsh_target_sim`` — i.e. the error
    distribution *conditioned on LSH candidate generation*, the pairs a
    sublinear serving path would actually score.  Methods without
    signature keys (JL, CS, ...) always estimate every pair.
    """
    if candidates not in ("scan", "lsh"):
        raise ValueError(
            f"unknown candidate generator {candidates!r}; choose 'scan' or 'lsh'"
        )
    if registry is None:
        registry = method_registry()
    unknown = set(methods) - set(registry)
    if unknown:
        raise ValueError(f"unknown methods: {sorted(unknown)}")
    truths = [a.dot(b) for a, b in pairs]

    # Vectors shared across pairs (e.g. documents compared against many
    # others) appear once in the batch; every (method, storage, trial)
    # cell then sketches the whole workload with one sketch_batch call.
    unique_vectors: list[SparseVector] = []
    position: dict[int, int] = {}
    for a, b in pairs:
        for vector in (a, b):
            if id(vector) not in position:
                position[id(vector)] = len(unique_vectors)
                unique_vectors.append(vector)

    records: list[ErrorRecord] = []
    for method_name in methods:
        spec = registry[method_name]
        for storage in storages:
            for trial in range(trials):
                sketcher = spec.build(storage, seed * 7919 + trial)
                bank = sketcher.sketch_batch(unique_vectors, workers=workers)
                sketches = sketcher.bank_to_sketches(bank)
                shortlists = None
                if candidates == "lsh" and sketcher.signature_length() is not None:
                    from repro.mips.lsh import SignatureLSH, tune

                    lsh = SignatureLSH(
                        *tune(
                            sketcher.signature_length(),
                            lsh_target_sim,
                            lsh_target_recall,
                        )
                    )
                    keys = sketcher.signature_keys(bank)
                    lsh.insert_signatures(keys)
                    shortlists = lsh.candidates_many(keys)
                for pair_id, (a, b) in enumerate(pairs):
                    if shortlists is not None:
                        pos_a = position[id(a)]
                        pos_b = position[id(b)]
                        rows = shortlists[pos_a]
                        at = int(np.searchsorted(rows, pos_b))
                        if at >= rows.size or rows[at] != pos_b:
                            continue
                    estimate = sketcher.estimate(
                        sketches[position[id(a)]], sketches[position[id(b)]]
                    )
                    records.append(
                        ErrorRecord(
                            method=method_name,
                            storage=int(storage),
                            error=normalized_error(estimate, truths[pair_id], a, b),
                            pair_id=pair_id,
                            trial=trial,
                        )
                    )
    return records
