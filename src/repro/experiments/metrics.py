"""Error metrics and aggregation for the Section 5 experiments.

The paper's plots report, for every estimate, "the absolute difference
between <a, b> and the estimate, divided by ||a|| ||b||" — the quantity
bounded by ``ε`` in Fact 1, which normalizes errors into ``[0, 1]``-ish
across datasets — always *averaged over independent trials*.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from repro.vectors.sparse import SparseVector

__all__ = [
    "normalized_error",
    "ErrorRecord",
    "group_mean",
    "group_median",
    "summarize",
    "summarize_median",
]


def normalized_error(
    estimate: float, truth: float, a: SparseVector, b: SparseVector
) -> float:
    """``|estimate - <a,b>| / (||a|| ||b||)``; inf-safe for zero norms."""
    denominator = a.norm() * b.norm()
    if denominator == 0.0:
        return 0.0 if estimate == truth else float("inf")
    return abs(estimate - truth) / denominator


@dataclass(frozen=True)
class ErrorRecord:
    """One measured estimation error within a sweep."""

    method: str
    storage: int
    error: float
    pair_id: int = 0
    trial: int = 0
    extra: tuple = ()


def group_mean(
    records: Iterable[ErrorRecord],
    key: Callable[[ErrorRecord], Hashable],
) -> dict[Hashable, float]:
    """Mean error per group, e.g. ``key=lambda r: (r.method, r.storage)``."""
    groups: dict[Hashable, list[float]] = defaultdict(list)
    for record in records:
        groups[key(record)].append(record.error)
    return {group: float(np.mean(errors)) for group, errors in groups.items()}


def group_median(
    records: Iterable[ErrorRecord],
    key: Callable[[ErrorRecord], Hashable],
) -> dict[Hashable, float]:
    """Median error per group — robust to the heavy upper tail of
    importance-sampling estimators (rare large errors are part of the
    1/3 failure probability that Theorem 2's median boosting absorbs)."""
    groups: dict[Hashable, list[float]] = defaultdict(list)
    for record in records:
        groups[key(record)].append(record.error)
    return {group: float(np.median(errors)) for group, errors in groups.items()}


def summarize(
    records: Sequence[ErrorRecord],
    methods: Sequence[str],
    storages: Sequence[int],
) -> dict[str, list[float]]:
    """Per-method mean-error series over the storage sweep.

    Returns ``{method: [mean_error_at_storage for storage in storages]}``
    — exactly the series a Figure 4/6 panel plots.
    """
    means = group_mean(records, key=lambda r: (r.method, r.storage))
    return {
        method: [means.get((method, storage), float("nan")) for storage in storages]
        for method in methods
    }


def summarize_median(
    records: Sequence[ErrorRecord],
    methods: Sequence[str],
    storages: Sequence[int],
) -> dict[str, list[float]]:
    """Median-error variant of :func:`summarize` (for shape assertions)."""
    medians = group_median(records, key=lambda r: (r.method, r.storage))
    return {
        method: [medians.get((method, storage), float("nan")) for storage in storages]
        for method in methods
    }
