"""Run every experiment and write a single consolidated report.

``python -m repro.experiments.all [--quick|--paper] [--out FILE]``
regenerates Table 1, Figures 4-6 and the ablations in one pass and
writes the combined text report (the source material of
EXPERIMENTS.md) to stdout and optionally to a file.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.experiments import ablations, figure4, figure5, figure6, table1

__all__ = ["run_all", "main"]


def run_all(scale: str = "default") -> str:
    """Execute every driver at the requested scale; returns the report."""
    if scale not in ("quick", "default", "paper"):
        raise ValueError(f"unknown scale {scale!r}")

    def pick(config_cls):
        if scale == "quick":
            return config_cls.quick()
        if scale == "paper" and hasattr(config_cls, "paper_scale"):
            return config_cls.paper_scale()
        return config_cls()

    sections = []
    timings = []

    start = time.perf_counter()
    if scale == "quick":
        sections.append(table1.render(table1.run(m=64, trials=2)))
    else:
        sections.append(table1.render(table1.run()))
    timings.append(("Table 1", time.perf_counter() - start))

    start = time.perf_counter()
    config4 = pick(figure4.Figure4Config)
    sections.append(figure4.render(figure4.run(config4), config4))
    timings.append(("Figure 4", time.perf_counter() - start))

    start = time.perf_counter()
    sections.append(figure5.render(figure5.run(pick(figure5.Figure5Config))))
    timings.append(("Figure 5", time.perf_counter() - start))

    start = time.perf_counter()
    config6 = pick(figure6.Figure6Config)
    sections.append(figure6.render(figure6.run(config6), config6))
    timings.append(("Figure 6", time.perf_counter() - start))

    start = time.perf_counter()
    sections.append(ablations.run_all(pick(ablations.AblationConfig)))
    timings.append(("Ablations", time.perf_counter() - start))

    footer = "\n".join(
        f"  {name}: {elapsed:.1f}s" for name, elapsed in timings
    )
    sections.append(f"Wall-clock per experiment ({scale} scale):\n{footer}")
    return "\n\n" + ("\n\n" + "=" * 72 + "\n\n").join(sections)


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    scale_group = parser.add_mutually_exclusive_group()
    scale_group.add_argument("--quick", action="store_true")
    scale_group.add_argument("--paper", action="store_true")
    parser.add_argument("--out", type=str, default=None, help="also write to FILE")
    args = parser.parse_args(argv)
    scale = "quick" if args.quick else "paper" if args.paper else "default"
    report = run_all(scale)
    sys.stdout.write(report + "\n")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")


if __name__ == "__main__":
    main()
