"""Figure 6 — text (cosine) similarity estimation on a newsgroups corpus.

The paper samples 700 documents from 20 newsgroups, builds TF-IDF
vectors over unigrams + bigrams, and estimates cosine similarity for
>200k document pairs at storage sizes 100-400, in two strata:

* (a) all documents;
* (b) documents longer than 700 words — where unweighted MinHash
  degrades (large supports dilute the heavy TF-IDF weights) while
  Weighted MinHash keeps its accuracy.

Our corpus is the synthetic Zipfian generator of
:mod:`repro.data.newsgroups` (see DESIGN.md's substitution table);
vectors are unit-normalized so inner products are cosines and the
normalized error equals absolute cosine error.

Run ``python -m repro.experiments.figure6`` (``--paper`` for 700 docs).
"""

from __future__ import annotations

import argparse
import itertools
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.data.newsgroups import NewsgroupsConfig, generate_corpus
from repro.experiments.metrics import ErrorRecord, summarize
from repro.experiments.report import format_series_panel
from repro.experiments.runner import PAPER_METHODS, run_sweep
from repro.text.tfidf import TfidfVectorizer
from repro.vectors.sparse import SparseVector

__all__ = ["Figure6Config", "run", "render", "main"]

#: Figure 6(b)'s document-length threshold, in words.
LONG_DOCUMENT_WORDS = 700


@dataclass(frozen=True)
class Figure6Config:
    storages: Sequence[int] = (100, 200, 300, 400)
    trials: int = 3
    num_sampled_pairs: int = 150
    methods: Sequence[str] = PAPER_METHODS
    corpus: NewsgroupsConfig = field(default_factory=lambda: NewsgroupsConfig(num_documents=120))
    seed: int = 0

    @classmethod
    def paper_scale(cls) -> "Figure6Config":
        return cls(
            trials=10,
            num_sampled_pairs=2_000,
            corpus=NewsgroupsConfig(num_documents=700),
        )

    @classmethod
    def quick(cls) -> "Figure6Config":
        return cls(
            storages=(100, 300),
            trials=1,
            num_sampled_pairs=20,
            corpus=NewsgroupsConfig(num_documents=40),
        )


def build_vectors(
    config: Figure6Config,
) -> tuple[list[SparseVector], list[int]]:
    """Corpus → unit TF-IDF vectors, plus each document's word count."""
    documents = generate_corpus(config.corpus, seed=config.seed)
    vectorizer = TfidfVectorizer(use_bigrams=True, normalize=True)
    vectors = vectorizer.fit_transform([doc.tokens for doc in documents])
    lengths = [doc.num_words for doc in documents]
    return vectors, lengths


def _sample_pairs(
    vectors: list[SparseVector],
    eligible: list[int],
    count: int,
    rng: np.random.Generator,
) -> list[tuple[SparseVector, SparseVector]]:
    all_pairs = list(itertools.combinations(eligible, 2))
    if not all_pairs:
        return []
    chosen = rng.choice(len(all_pairs), size=min(count, len(all_pairs)), replace=False)
    return [(vectors[all_pairs[i][0]], vectors[all_pairs[i][1]]) for i in chosen]


def run(
    config: Figure6Config = Figure6Config(),
) -> dict[str, list[ErrorRecord]]:
    """Two strata: 'all' documents and '>700 words' documents."""
    vectors, lengths = build_vectors(config)
    rng = np.random.default_rng(config.seed + 17)
    strata = {
        "all": list(range(len(vectors))),
        "long": [
            index
            for index, words in enumerate(lengths)
            if words > LONG_DOCUMENT_WORDS
        ],
    }
    results: dict[str, list[ErrorRecord]] = {}
    for stratum, eligible in strata.items():
        pairs = _sample_pairs(vectors, eligible, config.num_sampled_pairs, rng)
        if len(pairs) == 0:
            results[stratum] = []
            continue
        results[stratum] = run_sweep(
            pairs,
            storages=config.storages,
            trials=config.trials,
            methods=config.methods,
            seed=config.seed,
        )
    return results


def render(results: dict[str, list[ErrorRecord]], config: Figure6Config) -> str:
    titles = {
        "all": "Figure 6(a) All documents: mean cosine error vs storage",
        "long": (
            f"Figure 6(b) Documents > {LONG_DOCUMENT_WORDS} words: "
            "mean cosine error vs storage"
        ),
    }
    sections = []
    for stratum, records in results.items():
        if not records:
            sections.append(f"{titles[stratum]}\n(no eligible documents)")
            continue
        series = summarize(records, config.methods, config.storages)
        sections.append(
            format_series_panel(titles[stratum], config.storages, series)
        )
    return "\n\n".join(sections)


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true")
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    if args.paper:
        config = Figure6Config.paper_scale()
    elif args.quick:
        config = Figure6Config.quick()
    else:
        config = Figure6Config()
    print(render(run(config), config))


if __name__ == "__main__":
    main()
