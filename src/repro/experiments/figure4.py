"""Figure 4 — inner product estimation on synthetic data.

Four panels, one per support-overlap ratio (1%, 5%, 10%, 50%), each
plotting mean normalized estimation error against sketch storage for
the five methods (JL, CS, MH, KMV, WMH) on the Section 5.1 synthetic
workload (n = 10000, nnz = 2000, 10% outliers in [20, 30]).

Paper's qualitative findings this reproduces:

* at overlap <= 10%, WMH clearly beats the linear sketches;
* unweighted sampling (MH, KMV) also beats linear sketches at 1%
  overlap but is hurt by the outliers as overlap grows;
* at 50% overlap, linear sketching is comparable to WMH.

Run ``python -m repro.experiments.figure4`` (add ``--paper`` for the
full-size sweep).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.data.synthetic import SyntheticConfig, generate_pair
from repro.experiments.metrics import ErrorRecord, summarize
from repro.experiments.report import format_series_panel
from repro.experiments.runner import PAPER_METHODS, run_sweep

__all__ = ["Figure4Config", "run", "render", "main"]


@dataclass(frozen=True)
class Figure4Config:
    """Sweep configuration; defaults are a fast, shape-preserving scale."""

    overlaps: Sequence[float] = (0.01, 0.05, 0.10, 0.50)
    storages: Sequence[int] = (100, 200, 300, 400)
    trials: int = 5
    pairs_per_overlap: int = 1
    methods: Sequence[str] = PAPER_METHODS
    synthetic: SyntheticConfig = field(default_factory=SyntheticConfig)
    seed: int = 0

    @classmethod
    def paper_scale(cls) -> "Figure4Config":
        """The full Section 5.1 protocol (10 trials, denser sweep)."""
        return cls(storages=(50, 100, 150, 200, 250, 300, 350, 400), trials=10)

    @classmethod
    def quick(cls) -> "Figure4Config":
        """Small scale for tests and smoke runs."""
        return cls(
            overlaps=(0.05, 0.50),
            storages=(100, 300),
            trials=2,
            synthetic=SyntheticConfig(n=2_000, nnz=400),
        )


def run(config: Figure4Config = Figure4Config()) -> dict[float, list[ErrorRecord]]:
    """Execute the sweep; returns records per overlap panel."""
    panels: dict[float, list[ErrorRecord]] = {}
    for panel_index, overlap in enumerate(config.overlaps):
        pairs = [
            generate_pair(
                config.synthetic.with_overlap(overlap),
                seed=config.seed + 1000 * panel_index + pair_id,
            )
            for pair_id in range(config.pairs_per_overlap)
        ]
        panels[overlap] = run_sweep(
            pairs,
            storages=config.storages,
            trials=config.trials,
            methods=config.methods,
            seed=config.seed + panel_index,
        )
    return panels


def summarize_panels(
    panels: Mapping[float, list[ErrorRecord]], config: Figure4Config
) -> dict[float, dict[str, list[float]]]:
    """Mean-error series per panel: ``{overlap: {method: [err/storage]}}``."""
    return {
        overlap: summarize(records, config.methods, config.storages)
        for overlap, records in panels.items()
    }


def render(panels: Mapping[float, list[ErrorRecord]], config: Figure4Config) -> str:
    """Text rendering of all four panels."""
    sections = []
    for overlap, records in panels.items():
        series = summarize(records, config.methods, config.storages)
        sections.append(
            format_series_panel(
                f"Figure 4 ({overlap:.0%} overlap): mean normalized error "
                f"vs storage (words)",
                config.storages,
                series,
            )
        )
    return "\n\n".join(sections)


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper", action="store_true", help="run the full paper-scale sweep"
    )
    parser.add_argument(
        "--quick", action="store_true", help="run the reduced smoke-test sweep"
    )
    args = parser.parse_args(argv)
    if args.paper:
        config = Figure4Config.paper_scale()
    elif args.quick:
        config = Figure4Config.quick()
    else:
        config = Figure4Config()
    print(render(run(config), config))


if __name__ == "__main__":
    main()
