"""repro — Weighted MinHash inner-product sketching (PODS 2023).

A from-scratch reproduction of Bessa, Daliri, Freire, Musco, Musco,
Santos & Zhang, *"Weighted Minwise Hashing Beats Linear Sketching for
Inner Product Estimation"* (PODS 2023, arXiv:2301.05811).

Quickstart::

    from repro import SparseVector, WeightedMinHash

    sketcher = WeightedMinHash(m=256, seed=42)
    estimate = sketcher.estimate(sketcher.sketch(a), sketcher.sketch(b))

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core import (
    MedianBoosted,
    NaiveWeightedMinHash,
    Sketcher,
    WeightedMinHash,
    WMHSketch,
    compare_bounds,
    estimate_inner_product,
    linear_sketch_bound,
    minhash_bound,
    wmh_advantage,
    wmh_bound,
)
from repro.io import pack_sketch, unpack_sketch
from repro.sketches import (
    ICWS,
    CountSketch,
    JohnsonLindenstrauss,
    KMinimumValues,
    MinHash,
    SimHash,
)
from repro.vectors import SparseVector

__version__ = "1.0.0"

__all__ = [
    "ICWS",
    "CountSketch",
    "JohnsonLindenstrauss",
    "KMinimumValues",
    "MedianBoosted",
    "MinHash",
    "NaiveWeightedMinHash",
    "SimHash",
    "Sketcher",
    "SparseVector",
    "WMHSketch",
    "WeightedMinHash",
    "compare_bounds",
    "estimate_inner_product",
    "linear_sketch_bound",
    "minhash_bound",
    "pack_sketch",
    "unpack_sketch",
    "wmh_advantage",
    "wmh_bound",
    "__version__",
]
