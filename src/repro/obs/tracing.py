"""Span tracing: ``trace_span`` context managers exported as JSONL.

Tracing answers the question the registry cannot: *where did this one
query go?*  When enabled (``REPRO_TRACE=<path>`` in the environment, or
:func:`enable_tracing`/:func:`tracing` from code), every span writes
one JSON line on exit::

    {"name": "query.search", "span_id": "1234:7", "parent_id": "1234:6",
     "start_s": 0.0123, "wall_ms": 3.21, "cpu_ms": 3.05,
     "pid": 1234, "thread": 140245, "attrs": {"route": "lsh", ...}}

* spans nest through a **thread-local stack** — a span opened while
  another is active records it as its parent, so the exported events
  reconstruct the call tree without any global state beyond the stack;
* ``start_s`` is seconds since the trace was enabled (one epoch per
  trace file); ``wall_ms`` is monotonic wall time, ``cpu_ms`` is
  thread CPU time, both for the span body only;
* the file is opened in append mode and events are batched as whole
  lines in a process-private buffer, flushed in one ``O_APPEND`` write
  when a **top-level** span completes (and on close), so concurrent
  threads (and forked pool workers, which re-open the file under their
  own pid with a fresh buffer) interleave whole lines, never fragments;
* when tracing is **disabled** — the default — :func:`trace_span`
  returns a module-level no-op singleton: no span object, no clock
  reads, no allocation beyond the call itself.  Benchmarks gate this
  fast path at <2% of query latency.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Iterator

import contextlib

__all__ = [
    "TRACE_ENV",
    "disable_tracing",
    "enable_tracing",
    "read_trace",
    "trace_enabled",
    "trace_span",
    "tracing",
    "validate_trace",
]

#: Environment knob: a non-empty value enables tracing to that path for
#: the whole process (read once at import, see ``_init_from_env``).
TRACE_ENV = "REPRO_TRACE"

_IDS = itertools.count(1)
_LOCAL = threading.local()


def _stack() -> list[str]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def _encode_line(event: dict[str, Any]) -> bytes:
    """One schema event as a JSON line, hand-rolled for the hot path.

    Every field except ``attrs`` is a number or an identifier the
    library itself minted (span names are code literals, ids are
    ``pid:counter``), so string fields need no escaping; ``attrs`` is
    arbitrary caller data and goes through :func:`json.dumps`.  This is
    several times cheaper than ``json.dumps`` on the whole event, and
    the emit path is what bounds tracing overhead per query.
    """
    attrs = event["attrs"]
    attrs_json = json.dumps(attrs, separators=(",", ":")) if attrs else "{}"
    parent = event["parent_id"]
    parent_json = f'"{parent}"' if parent is not None else "null"
    return (
        f'{{"name":"{event["name"]}","span_id":"{event["span_id"]}",'
        f'"parent_id":{parent_json},"start_s":{event["start_s"]},'
        f'"wall_ms":{event["wall_ms"]},"cpu_ms":{event["cpu_ms"]},'
        f'"pid":{event["pid"]},"thread":{event["thread"]},'
        f'"attrs":{attrs_json}}}\n'
    ).encode()


#: Buffered trace bytes are flushed once this is exceeded, even if no
#: top-level span has completed (bounds buffer growth under deep or
#: synthesized-event-only workloads).
_FLUSH_BYTES = 32 * 1024


class _TraceWriter:
    """Append-mode JSONL sink, re-opened per pid after a fork.

    Events buffer as whole encoded lines and hit the file in one
    ``O_APPEND`` ``os.write`` per flush — per-event syscalls would
    dominate the cost of tracing a millisecond-scale query.  Flushes
    happen when a top-level span completes (see ``_Span.__exit__``),
    when the buffer passes ``_FLUSH_BYTES``, and on close; a forked
    child starts from an empty buffer (the parent owns what it had
    buffered at fork time) with its own descriptor.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.epoch = time.perf_counter()
        self._open()

    def _open(self) -> None:
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._buf: list[bytes] = []
        self._buf_bytes = 0

    def write(self, event: dict[str, Any]) -> None:
        if os.getpid() != self._pid:  # forked child: private handle
            self._open()
        line = _encode_line(event)
        with self._lock:
            self._buf.append(line)
            self._buf_bytes += len(line)
            if self._buf_bytes >= _FLUSH_BYTES:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._buf:
            return
        data = b"".join(self._buf)
        self._buf = []
        self._buf_bytes = 0
        while data:
            written = os.write(self._fd, data)
            data = data[written:]

    def flush(self) -> None:
        if os.getpid() != self._pid:
            return
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        with contextlib.suppress(ValueError, OSError):
            self.flush()
            os.close(self._fd)


_WRITER: _TraceWriter | None = None


class _NoopSpan:
    """The disabled-tracing singleton: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def add(self, **attrs: Any) -> None:
        pass

    def __bool__(self) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    """A live span; created only while tracing is enabled."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_t0", "_c0")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = f"{os.getpid()}:{next(_IDS)}"
        self.parent_id: str | None = None
        self._t0 = 0.0
        self._c0 = 0.0

    def add(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __bool__(self) -> bool:
        return True

    def __enter__(self) -> "_Span":
        stack = _stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._c0 = time.thread_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, *exc: Any) -> bool:
        wall = time.perf_counter() - self._t0
        cpu = time.thread_time() - self._c0
        stack = _stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        writer = _WRITER
        if writer is not None:
            writer.write(
                span_event(
                    self.name,
                    span_id=self.span_id,
                    parent_id=self.parent_id,
                    start_s=self._t0 - writer.epoch,
                    wall_ms=wall * 1e3,
                    cpu_ms=cpu * 1e3,
                    attrs=self.attrs,
                )
            )
            if not stack:
                # A completed top-level span is a natural durability
                # point: everything it buffered lands in one write.
                writer.flush()
        return False


def span_event(
    name: str,
    span_id: str,
    parent_id: str | None,
    start_s: float,
    wall_ms: float,
    cpu_ms: float,
    attrs: dict[str, Any],
) -> dict[str, Any]:
    """One trace event in the canonical schema (see module docstring)."""
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "start_s": round(start_s, 6),
        "wall_ms": round(wall_ms, 4),
        "cpu_ms": round(cpu_ms, 4),
        "pid": os.getpid(),
        "thread": threading.get_ident(),
        "attrs": attrs,
    }


def trace_span(name: str, **attrs: Any) -> "_Span | _NoopSpan":
    """A context manager timing ``name``; no-op singleton when disabled.

    The enabled span exposes ``.add(**attrs)`` for attributes only
    known at the end of the block; the disabled singleton accepts (and
    drops) the same calls, so call sites never branch on trace state.
    """
    if _WRITER is None:
        return _NOOP
    return _Span(name, attrs)


def trace_enabled() -> bool:
    return _WRITER is not None


def current_span_id() -> str | None:
    """The innermost live span's id on this thread (for synthesized
    events that should parent under the active span)."""
    stack = getattr(_LOCAL, "stack", None)
    return stack[-1] if stack else None


def emit_event(event: dict[str, Any]) -> None:
    """Write one pre-built event (used by the per-query recorder)."""
    writer = _WRITER
    if writer is not None:
        writer.write(event)


def trace_epoch() -> float:
    """``perf_counter`` value all ``start_s`` offsets are relative to."""
    writer = _WRITER
    return writer.epoch if writer is not None else 0.0


def next_span_id() -> str:
    return f"{os.getpid()}:{next(_IDS)}"


def enable_tracing(path: str | os.PathLike) -> None:
    """Start appending span events to ``path`` (JSONL)."""
    global _WRITER
    disable_tracing()
    _WRITER = _TraceWriter(str(path))


def disable_tracing() -> None:
    """Stop tracing; subsequent ``trace_span`` calls are no-ops."""
    global _WRITER
    if _WRITER is not None:
        _WRITER.close()
    _WRITER = None


@contextlib.contextmanager
def tracing(path: str | os.PathLike) -> Iterator[None]:
    """Scoped tracing: enabled inside the block, restored after.

    Used by ``query --trace out.jsonl`` and the benchmarks; restores
    the previous writer (if any) so nested scopes compose.
    """
    global _WRITER
    previous = _WRITER
    _WRITER = _TraceWriter(str(path))
    try:
        yield
    finally:
        _WRITER.close()
        _WRITER = previous


def _init_from_env() -> None:
    path = os.environ.get(TRACE_ENV, "").strip()
    if path:
        enable_tracing(path)
        # Env-enabled tracing has no scope to close it: drain the
        # buffered tail when the process exits.
        import atexit

        atexit.register(disable_tracing)


_init_from_env()


# ----------------------------------------------------------------------
# reading traces back (tests, benchmarks, CI schema gate)
# ----------------------------------------------------------------------

_REQUIRED_KEYS = {
    "name": str,
    "span_id": str,
    "start_s": (int, float),
    "wall_ms": (int, float),
    "cpu_ms": (int, float),
    "pid": int,
    "thread": int,
    "attrs": dict,
}


def read_trace(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Parse a JSONL trace file into its event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def validate_trace(events: list[dict[str, Any]]) -> None:
    """Raise ``ValueError`` unless every event follows the span schema.

    Checks required keys and types, non-negative durations, unique span
    ids, and that every non-null ``parent_id`` references another event
    in the trace (the call tree is reconstructible).
    """
    ids = set()
    for i, event in enumerate(events):
        for key, types in _REQUIRED_KEYS.items():
            if key not in event:
                raise ValueError(f"event {i} is missing {key!r}: {event}")
            if not isinstance(event[key], types):
                raise ValueError(
                    f"event {i} field {key!r} has type "
                    f"{type(event[key]).__name__}, expected {types}"
                )
        if "parent_id" not in event:
            raise ValueError(f"event {i} is missing 'parent_id'")
        if event["parent_id"] is not None and not isinstance(
            event["parent_id"], str
        ):
            raise ValueError(f"event {i} has non-string parent_id")
        if event["wall_ms"] < 0 or event["cpu_ms"] < 0:
            raise ValueError(f"event {i} has a negative duration: {event}")
        if event["span_id"] in ids:
            raise ValueError(f"duplicate span_id {event['span_id']!r}")
        ids.add(event["span_id"])
    for i, event in enumerate(events):
        parent = event["parent_id"]
        if parent is not None and parent not in ids:
            raise ValueError(
                f"event {i} ({event['name']!r}) references unknown parent "
                f"{parent!r}"
            )
