"""Process-wide metrics: counters, gauges, and log-bucket histograms.

The registry is the live half of the telemetry layer: hot paths record
cheap aggregates (a counter bump, one histogram observation per query
or per ingest chunk) and readers pull a JSON-able :meth:`snapshot` at
any time — the same schema the CLI ``stats --telemetry`` command, the
``BENCH_*.json`` artifacts, and the tests all consume.

Design constraints, in order:

* **stdlib only** — the registry must be importable from every layer
  (``io``, ``store``, ``parallel``) without adding dependencies or
  import cycles, so it uses ``math``/``bisect``/``threading`` and
  nothing else;
* **mergeable** — :class:`Histogram` keeps *fixed* log-spaced bucket
  bounds (powers of two, the same for every instance), so snapshots
  taken in process-pool workers merge into the parent registry by
  elementwise bucket addition.  Merging is associative and order
  independent for counters and histograms, which is what lets
  ``repro.parallel`` fold per-chunk worker snapshots in completion
  order;
* **deterministic percentiles** — percentiles are computed from bucket
  counts alone: the reported quantile is the upper bound of the bucket
  holding the rank-``ceil(q·n/100)`` observation.  Observations lying
  exactly on a bucket bound are therefore reported *exactly* (the
  bound is the answer); interior values are reported as their bucket's
  upper bound, an over-estimate by at most one bucket width.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from typing import Any, Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Histogram bucket bounds are ``2**k`` for ``k`` in this closed range:
#: 2^-20 (~1 µs when observing milliseconds) up to 2^40 (~1 TiB when
#: observing bytes).  One fixed layout for every histogram keeps all
#: snapshots mergeable without negotiating bucket schemes.
LOW_EXP = -20
HIGH_EXP = 40

_BOUNDS: list[float] = [float(2.0**k) for k in range(LOW_EXP, HIGH_EXP + 1)]


class Counter:
    """A monotonically growing sum (int or float)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def add(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed log-bucket histogram with deterministic percentiles.

    Buckets are the fixed powers-of-two bounds of the module (underflow
    values clamp into the first bucket; values above the last bound go
    to a dedicated overflow bucket whose percentile reports the exact
    observed maximum).  Alongside the bucket counts the histogram keeps
    the exact ``count``/``sum``/``min``/``max``, so means and extremes
    never suffer bucket rounding.
    """

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        # one slot per bound + one overflow slot at the end
        self.counts = [0] * (len(_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        # bisect_left: the first bound >= value — a value exactly on a
        # bound lands in the bucket *bounded above by it*, which is what
        # makes percentiles exact at bucket edges.
        self.counts[bisect_left(_BOUNDS, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def percentile(self, q: float) -> float:
        """The upper bucket bound holding the rank-``ceil(q·n/100)``
        observation; exact when observations sit on bucket bounds.

        Empty histograms return ``nan``.  The overflow bucket reports
        the exact observed maximum (there is no finite upper bound).
        """
        if self.count == 0:
            return math.nan
        rank = min(max(math.ceil(q * self.count / 100.0), 1), self.count)
        seen = 0
        for i, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= rank:
                return self.max if i == len(_BOUNDS) else _BOUNDS[i]
        return self.max  # unreachable; counts sum to self.count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (elementwise bucket addition)."""
        for i, bucket in enumerate(other.counts):
            self.counts[i] += bucket
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_json(self) -> dict[str, Any]:
        buckets = {str(i): c for i, c in enumerate(self.counts) if c}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean if self.count else None,
            "p50": self.percentile(50) if self.count else None,
            "p95": self.percentile(95) if self.count else None,
            "p99": self.percentile(99) if self.count else None,
            "low_exp": LOW_EXP,
            "high_exp": HIGH_EXP,
            "buckets": buckets,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "Histogram":
        if (
            payload.get("low_exp") != LOW_EXP
            or payload.get("high_exp") != HIGH_EXP
        ):
            raise ValueError(
                f"histogram bucket layout mismatch: snapshot has "
                f"[{payload.get('low_exp')}, {payload.get('high_exp')}], "
                f"this process uses [{LOW_EXP}, {HIGH_EXP}]"
            )
        hist = cls()
        for key, value in payload.get("buckets", {}).items():
            hist.counts[int(key)] = int(value)
        hist.count = int(payload["count"])
        hist.total = float(payload["sum"])
        if hist.count:
            hist.min = float(payload["min"])
            hist.max = float(payload["max"])
        return hist


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    One process-wide instance (``repro.obs.get_registry()``) backs the
    live system; short-lived private instances collect per-chunk ingest
    metrics inside pool workers, whose snapshots the parent merges.

    All recording methods are cheap and thread-safe (one registry lock;
    recording is a dict lookup plus an add).  ``enabled=False`` turns
    every recording method into an early-return no-op — the disabled
    telemetry fast path.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- recording ------------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        if not self.enabled:
            return
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            counter.add(amount)

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
            gauge.set(value)

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    # -- reading --------------------------------------------------------

    def counter_value(self, name: str) -> float:
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def gauge_value(self, name: str) -> float | None:
        gauge = self._gauges.get(name)
        return gauge.value if gauge is not None else None

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(
                set(self._counters) | set(self._gauges) | set(self._histograms)
            )

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able copy of every metric (the shared schema)."""
        with self._lock:
            return {
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: gauge.value
                    for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: hist.to_json()
                    for name, hist in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a pool worker) in.

        Counters and histogram buckets add; gauges are last-write-wins.
        Merging is associative, and merging worker snapshots in any
        completion order yields the same counters and histograms as
        recording every observation in one process.
        """
        if not self.enabled:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                counter = self._counters.get(name)
                if counter is None:
                    counter = self._counters[name] = Counter()
                counter.add(value)
            for name, value in snapshot.get("gauges", {}).items():
                gauge = self._gauges.get(name)
                if gauge is None:
                    gauge = self._gauges[name] = Gauge()
                gauge.set(value)
            for name, payload in snapshot.get("histograms", {}).items():
                incoming = Histogram.from_json(payload)
                hist = self._histograms.get(name)
                if hist is None:
                    self._histograms[name] = incoming
                else:
                    hist.merge(incoming)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def validate_snapshot(snapshot: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``snapshot`` follows the schema.

    Used by tests and the CI benchmark gate to pin the metrics
    vocabulary shared by the live registry and the bench artifacts.
    """
    if not isinstance(snapshot, dict):
        raise ValueError("snapshot must be a dict")
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            raise ValueError(f"snapshot is missing the {section!r} section")
        if not isinstance(snapshot[section], dict):
            raise ValueError(f"snapshot section {section!r} must be a dict")
    for name, value in snapshot["counters"].items():
        if not isinstance(value, (int, float)):
            raise ValueError(f"counter {name!r} has non-numeric value {value!r}")
    for name, payload in snapshot["histograms"].items():
        missing = {"count", "sum", "buckets", "low_exp", "high_exp"} - set(payload)
        if missing:
            raise ValueError(f"histogram {name!r} is missing keys {missing}")
        Histogram.from_json(payload)  # layout + bucket types
    json.dumps(snapshot)  # must round-trip as JSON


def merge_snapshots(snapshots: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Merge several snapshots into one (associative, see ``merge``)."""
    registry = MetricsRegistry(enabled=True)
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()
