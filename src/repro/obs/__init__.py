"""``repro.obs`` — zero-dependency telemetry: metrics, traces, accounting.

One small layer, three surfaces:

* :class:`~repro.obs.registry.MetricsRegistry` — process-wide counters,
  gauges, and fixed-log-bucket histograms.  Snapshots are plain JSON
  and **mergeable**, so per-chunk registries collected inside
  ``repro.parallel`` pool workers fold back into the parent's registry
  and ingest metrics survive the process boundary;
* :func:`~repro.obs.tracing.trace_span` — context-manager span tracing
  with a thread-local span stack, exported as JSONL (one event per
  span) when enabled via ``REPRO_TRACE=<path>`` or
  :func:`~repro.obs.tracing.enable_tracing`; a no-op singleton
  otherwise;
* :class:`PhaseRecorder` / :func:`record_phases` — the per-query
  accounting used by the search hot path: one clock pair per phase
  mark, folded into both the registry (``query.phase_ms.*``
  histograms) and the trace (a root span plus one child per phase)
  without instrumenting the hot loop twice.

Everything here is stdlib-only and import-cycle-free: ``obs`` is a
leaf module every other layer (``io``, ``store``, ``parallel``,
``datasearch``) may import.

Knobs
-----
``REPRO_OBS=0``
    Disable metrics recording (the registry's no-op fast path).
    Default: enabled — recording is a counter bump or one histogram
    observation per query/chunk, far below measurement noise.
``REPRO_TRACE=/path/to/trace.jsonl``
    Enable span tracing to that file for the whole process.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    validate_snapshot,
)
from repro.obs.tracing import (
    TRACE_ENV,
    current_span_id,
    disable_tracing,
    emit_event,
    enable_tracing,
    next_span_id,
    read_trace,
    span_event,
    trace_enabled,
    trace_epoch,
    trace_span,
    tracing,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS_ENV",
    "MetricsRegistry",
    "PhaseRecorder",
    "TRACE_ENV",
    "active",
    "count",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "get_registry",
    "merge",
    "merge_snapshots",
    "metrics_enabled",
    "observe",
    "read_trace",
    "record_phases",
    "recorder",
    "runtime_snapshot",
    "set_gauge",
    "trace_enabled",
    "trace_span",
    "tracing",
    "validate_snapshot",
    "validate_trace",
]

#: Environment knob: set to ``0``/``false``/``off`` to disable metrics
#: recording process-wide (read once at import; ``enable_metrics``
#: flips it at runtime).
METRICS_ENV = "REPRO_OBS"


def _env_metrics_enabled() -> bool:
    return os.environ.get(METRICS_ENV, "").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


_REGISTRY = MetricsRegistry(enabled=_env_metrics_enabled())


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented layer records to."""
    return _REGISTRY


def metrics_enabled() -> bool:
    return _REGISTRY.enabled


def enable_metrics(on: bool = True) -> None:
    """Turn registry recording on/off at runtime (``REPRO_OBS`` sets
    the initial state)."""
    _REGISTRY.enabled = bool(on)


def active() -> bool:
    """True when any telemetry consumer exists (metrics or tracing).

    Hot paths gate their clock reads on this: when False, per-query
    accounting costs one function call and one branch.
    """
    return _REGISTRY.enabled or trace_enabled()


# -- convenience recording on the global registry ----------------------


def count(name: str, amount: float = 1) -> None:
    _REGISTRY.count(name, amount)


def observe(name: str, value: float) -> None:
    _REGISTRY.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    _REGISTRY.set_gauge(name, value)


def merge(snapshot: dict[str, Any]) -> None:
    """Fold a worker registry snapshot into the global registry."""
    _REGISTRY.merge(snapshot)


# -- per-query phase accounting ----------------------------------------


class PhaseRecorder:
    """Contiguous phase timings for one operation (query, batch, ...).

    ``mark(name)`` closes the phase that started at the previous mark
    (or at construction), recording its wall and thread-CPU time.
    Phases therefore tile the recorded interval exactly — the trace's
    child spans sum to the root span up to the tail after the last
    mark, which is what lets benchmarks reconcile span sums against
    end-to-end latency.
    """

    __slots__ = ("t0", "c0", "_last_wall", "_last_cpu", "phases")

    def __init__(self) -> None:
        self.c0 = self._last_cpu = time.thread_time()
        self.t0 = self._last_wall = time.perf_counter()
        self.phases: list[tuple[str, float, float]] = []

    def mark(self, name: str) -> None:
        wall = time.perf_counter()
        cpu = time.thread_time()
        self.phases.append((name, wall - self._last_wall, cpu - self._last_cpu))
        self._last_wall, self._last_cpu = wall, cpu

    def total(self) -> float:
        return time.perf_counter() - self.t0

    def phase_seconds(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for name, wall, _ in self.phases:
            out[name] = out.get(name, 0.0) + wall
        return out


def recorder() -> PhaseRecorder | None:
    """A fresh :class:`PhaseRecorder`, or ``None`` when telemetry is
    fully disabled (the zero-clock fast path)."""
    if _REGISTRY.enabled or trace_enabled():
        return PhaseRecorder()
    return None


def record_phases(
    rec: PhaseRecorder,
    name: str,
    prefix: str,
    attrs: dict[str, Any] | None = None,
) -> None:
    """Fold a finished recorder into the registry and the trace.

    Registry: one ``{prefix}.latency_ms`` observation plus one
    ``{prefix}.phase_ms.{phase}`` observation per phase.  Trace: a root
    event named ``name`` (parented under the innermost live
    ``trace_span``, so e.g. a session span adopts the query breakdown)
    with one child event per phase, named ``{prefix}.{phase}``.
    """
    total_wall = rec.total()
    total_cpu = time.thread_time() - rec.c0
    if _REGISTRY.enabled:
        _REGISTRY.observe(f"{prefix}.latency_ms", total_wall * 1e3)
        for phase, wall, _cpu in rec.phases:
            _REGISTRY.observe(f"{prefix}.phase_ms.{phase}", wall * 1e3)
    if trace_enabled():
        epoch = trace_epoch()
        root_id = next_span_id()
        emit_event(
            span_event(
                name,
                span_id=root_id,
                parent_id=current_span_id(),
                start_s=rec.t0 - epoch,
                wall_ms=total_wall * 1e3,
                cpu_ms=total_cpu * 1e3,
                attrs=dict(attrs or {}),
            )
        )
        start = rec.t0
        for phase, wall, cpu in rec.phases:
            emit_event(
                span_event(
                    f"{prefix}.{phase}",
                    span_id=next_span_id(),
                    parent_id=root_id,
                    start_s=start - epoch,
                    wall_ms=wall * 1e3,
                    cpu_ms=cpu * 1e3,
                    attrs={},
                )
            )
            start += wall


def runtime_snapshot() -> dict[str, Any]:
    """The registry snapshot with live runtime gauges refreshed.

    Re-exports the process-wide WMH :class:`~repro.core.wmh.MinimaCache`
    state (hits, misses, evictions, entries, bytes) as ``wmh_cache.*``
    gauges before snapshotting, so one call yields the full live
    picture.  With metrics disabled the snapshot is empty by design.
    """
    try:
        from repro.core.wmh import shared_minima_cache
    except ImportError:  # pragma: no cover - partial installs
        pass
    else:
        for key, value in shared_minima_cache().stats().items():
            _REGISTRY.set_gauge(f"wmh_cache.{key}", value)
    return _REGISTRY.snapshot()
