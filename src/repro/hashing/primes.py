"""Prime-number utilities for universal hashing.

The paper's experiments use Carter–Wegman hashing modulo a 31-bit prime
(Section 5, "Choice of Hash Function").  We pin the same modulus — the
Mersenne prime ``2**31 - 1`` — and provide a deterministic Miller–Rabin
test plus ``next_prime`` so tests and the naive expanded-vector sketcher
can pick moduli for other domain sizes.
"""

from __future__ import annotations

__all__ = ["MERSENNE_31", "MERSENNE_61", "is_prime", "next_prime"]

#: The 31-bit Mersenne prime used as the default hash modulus.
MERSENNE_31 = (1 << 31) - 1

#: The 61-bit Mersenne prime, used when the index domain exceeds 2**31.
MERSENNE_61 = (1 << 61) - 1

# Witness set proven sufficient for deterministic Miller-Rabin on all
# integers below 3,317,044,064,679,887,385,961,981 (> 2**64).
_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(candidate: int) -> bool:
    """Deterministic Miller–Rabin primality test for 64-bit integers."""
    if candidate < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if candidate % p == 0:
            return candidate == p
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in _WITNESSES:
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def next_prime(floor: int) -> int:
    """Return the smallest prime ``>= floor``."""
    if floor <= 2:
        return 2
    candidate = floor | 1  # only odd candidates
    while not is_prime(candidate):
        candidate += 2
    return candidate
