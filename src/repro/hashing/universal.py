"""Carter–Wegman 2-wise independent hash families.

This is the hash family the paper's experiments actually use
(Section 5, "Choice of Hash Function"): a linear function with random
coefficients modulo a 31-bit prime ``p``,

    h(i) = (alpha * i + beta) mod p,      alpha in [1, p-1], beta in [0, p-1],

mapped to the unit interval as ``h(i) / p``.  Because ``p`` has 31 bits
the raw hash fits a 32-bit integer, which is what drives the paper's
storage accounting: one MinHash-style sample = 64-bit value + 32-bit
hash = 1.5 words (see :mod:`repro.experiments.runner`).

The family is 2-wise independent over the index domain ``[0, p)``.
Callers with larger key spaces (e.g. 64-bit table-key digests) must
first fold keys into the domain — :func:`fold_to_domain` does this with
a splitmix64 finalizer so folding collisions are birthday-bounded.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.primes import MERSENNE_31
from repro.hashing.splitmix import mix64

__all__ = ["TwoWiseHashFamily", "fold_to_domain"]


def fold_to_domain(indices: np.ndarray, prime: int = MERSENNE_31) -> np.ndarray:
    """Fold arbitrary 64-bit indices into the CW domain ``[0, prime)``.

    Applies the splitmix64 finalizer before reduction so that
    structured index sets (consecutive integers, strided keys) do not
    interact with the linear structure of the CW family.
    """
    mixed = mix64(np.asarray(indices, dtype=np.uint64))
    return (np.asarray(mixed, dtype=np.uint64) % np.uint64(prime)).astype(np.int64)


class TwoWiseHashFamily:
    """A batch of ``m`` independent 2-wise hash functions mod ``prime``.

    Parameters
    ----------
    m:
        Number of hash functions (one per sketch repetition).
    seed:
        Seed for drawing the ``alpha, beta`` coefficients.
    prime:
        Field modulus; defaults to the Mersenne prime ``2**31 - 1``.

    Notes
    -----
    Coefficients are drawn with ``numpy.random.Generator(PCG64(seed))``,
    so the family is a pure function of ``(m, seed, prime)`` — two
    parties constructing it with the same arguments evaluate identical
    functions, which is what makes independently computed sketches
    comparable.
    """

    def __init__(self, m: int, seed: int, prime: int = MERSENNE_31) -> None:
        if m <= 0:
            raise ValueError(f"need at least one hash function, got m={m}")
        if prime <= 2:
            raise ValueError(f"prime must exceed 2, got {prime}")
        self.m = int(m)
        self.seed = int(seed)
        self.prime = int(prime)
        rng = np.random.Generator(np.random.PCG64(seed))
        self._alpha = rng.integers(1, prime, size=m, dtype=np.uint64)
        self._beta = rng.integers(0, prime, size=m, dtype=np.uint64)

    def hash_ints(self, indices: np.ndarray) -> np.ndarray:
        """Hash folded indices to integers; shape ``(m, len(indices))``.

        ``indices`` must already lie inside ``[0, prime)`` (use
        :func:`fold_to_domain` for raw keys).  The computation uses
        ``uint64`` arithmetic: ``alpha * i`` is at most
        ``(2**31)**2 < 2**63``, so no overflow occurs.
        """
        idx = np.asarray(indices, dtype=np.uint64)
        if idx.size and int(idx.max()) >= self.prime:
            raise ValueError(
                "index outside the hash domain "
                f"[0, {self.prime}); fold keys first with fold_to_domain()"
            )
        with np.errstate(over="ignore"):
            raw = (self._alpha[:, None] * idx[None, :] + self._beta[:, None]) % np.uint64(
                self.prime
            )
        return raw

    def hash_unit(self, indices: np.ndarray) -> np.ndarray:
        """Hash to floats in ``(0, 1]``; shape ``(m, len(indices))``.

        We map ``h`` to ``(h + 1) / p`` so the value 0 — which would
        break minimum-based union estimators — can never occur.
        """
        return (self.hash_ints(indices).astype(np.float64) + 1.0) / self.prime

    def single_ints(self, row: int, indices: np.ndarray) -> np.ndarray:
        """Integer hashes of just the ``row``-th function.

        The raw 31-bit values order exactly like their unit-interval
        images (``(h + 1) / p`` is strictly monotone), which lets
        selection kernels compare integers and defer the division to
        the handful of retained entries.
        """
        idx = np.asarray(indices, dtype=np.uint64)
        with np.errstate(over="ignore"):
            return (self._alpha[row] * idx + self._beta[row]) % np.uint64(self.prime)

    def single_unit(self, row: int, indices: np.ndarray) -> np.ndarray:
        """Evaluate just the ``row``-th function; shape ``(len(indices),)``."""
        return (self.single_ints(row, indices).astype(np.float64) + 1.0) / self.prime
