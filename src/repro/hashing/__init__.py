"""Hashing substrate: counter-based uniform streams and 2-wise families.

Two constructions back every sketch in this package:

* :mod:`repro.hashing.splitmix` — a counter-based splitmix64 stream that
  plays the role of the paper's idealized "uniformly random hash
  function to [0, 1]" and supports consistent replay across vectors.
* :mod:`repro.hashing.universal` — the Carter–Wegman 2-wise family
  modulo a 31-bit prime that the paper's experiments use.
"""

from repro.hashing.primes import MERSENNE_31, MERSENNE_61, is_prime, next_prime
from repro.hashing.splitmix import (
    GOLDEN_GAMMA,
    counter_uniform,
    derive_key,
    derive_key_grid,
    hash_bytes,
    hash_string,
    mix64,
    uniform_from_bits,
)
from repro.hashing.universal import TwoWiseHashFamily, fold_to_domain

__all__ = [
    "GOLDEN_GAMMA",
    "MERSENNE_31",
    "MERSENNE_61",
    "TwoWiseHashFamily",
    "counter_uniform",
    "derive_key",
    "derive_key_grid",
    "fold_to_domain",
    "hash_bytes",
    "hash_string",
    "is_prime",
    "mix64",
    "next_prime",
    "uniform_from_bits",
]
