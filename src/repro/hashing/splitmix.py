"""Counter-based deterministic randomness built on splitmix64.

The paper's analysis assumes access to *uniformly random hash functions*
mapping indices to the real interval ``[0, 1]``.  Two properties of that
idealization matter for the algorithms:

1. **Cross-vector consistency** — two vectors sketched independently
   (different machines, different times) must evaluate the *same*
   function on shared indices, so hash collisions certify shared
   support.  This rules out stateful generators: everything must be a
   pure function of ``(seed, position)``.

2. **Stream semantics** — the fast Weighted MinHash implementation
   (see :mod:`repro.core.wmh`) replays, per ``(repetition, block)``
   pair, a stream of uniform draws that simulates the prefix-minimum
   record process of the expanded vector.  Both vectors must replay the
   identical stream.

splitmix64 (Steele, Lea & Flood 2014) is a counter-based generator with
excellent statistical quality: ``mix64(key + counter * GOLDEN)`` is a
pure function, trivially vectorizable with numpy ``uint64`` arithmetic,
and passes BigCrush as a stream.  We use it wherever the *idealized*
uniform hash is required; the Carter–Wegman 2-wise family that the
paper's own experiments use lives in :mod:`repro.hashing.universal`.

All functions here operate on (arrays of) ``numpy.uint64`` and wrap
modulo ``2**64`` exactly like the reference C implementation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GOLDEN_GAMMA",
    "mix64",
    "derive_key",
    "derive_key_grid",
    "counter_uniform",
    "uniform_from_bits",
    "hash_bytes",
    "hash_bytes_many",
    "hash_string",
]

#: The golden-ratio increment of the splitmix64 stream.
GOLDEN_GAMMA = np.uint64(0x9E3779B97F4A7C15)

_MIX_MUL_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MUL_2 = np.uint64(0x94D049BB133111EB)
_SHIFT_30 = np.uint64(30)
_SHIFT_27 = np.uint64(27)
_SHIFT_31 = np.uint64(31)
_SHIFT_12 = np.uint64(12)

#: ``2**-52`` — converts a 52-bit integer into a float in ``[0, 1)``.
#: 52 bits (not the customary 53) so that the offset-by-half-an-ulp
#: maximum ``(2**52 - 0.5) * 2**-52 = 1 - 2**-53`` is exactly
#: representable: with 53 bits the maximum would round up to 1.0.
_INV_2_52 = float(2.0**-52)


def mix64(x: np.ndarray | np.uint64 | int) -> np.ndarray | np.uint64:
    """Apply the splitmix64 finalizer to ``x`` (element-wise).

    This is a bijection on 64-bit integers with full avalanche: every
    output bit depends on every input bit.  Inputs are converted to
    ``numpy.uint64``; Python integers are reduced modulo ``2**64``.
    """
    z = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = (z ^ (z >> _SHIFT_30)) * _MIX_MUL_1
        z = (z ^ (z >> _SHIFT_27)) * _MIX_MUL_2
        z = z ^ (z >> _SHIFT_31)
    if np.isscalar(x) or np.ndim(x) == 0:
        return np.uint64(z)
    return z


def derive_key(*parts: int) -> np.uint64:
    """Derive a single 64-bit stream key from integer components.

    Chaining ``mix64`` over the parts gives independent-looking keys for
    distinct tuples, e.g. ``derive_key(seed, repetition, block)``.
    """
    key = np.uint64(0x6A09E667F3BCC909)  # fractional bits of sqrt(2)
    with np.errstate(over="ignore"):
        for part in parts:
            key = mix64(key + np.uint64(part % (1 << 64)) + GOLDEN_GAMMA)
    return np.uint64(key)


def derive_key_grid(seed: int, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Derive a ``(len(rows), len(cols))`` grid of independent stream keys.

    ``rows`` typically indexes sketch repetitions and ``cols`` indexes
    vector blocks.  The result equals
    ``derive_key(seed, rows[i], cols[j])`` element-wise but is computed
    with two vectorized mixing passes.
    """
    rows64 = np.asarray(rows, dtype=np.uint64)
    cols64 = np.asarray(cols, dtype=np.uint64)
    base = np.uint64(0x6A09E667F3BCC909)
    with np.errstate(over="ignore"):
        key0 = mix64(base + np.uint64(seed % (1 << 64)) + GOLDEN_GAMMA)
        row_keys = mix64(key0 + rows64 + GOLDEN_GAMMA)
        grid = mix64(row_keys[:, None] + cols64[None, :] + GOLDEN_GAMMA)
    return grid


def uniform_from_bits(bits: np.ndarray) -> np.ndarray:
    """Map 64-bit words to floats strictly inside ``(0, 1)``.

    We keep the top 52 bits and offset by half an ulp so the result can
    never be exactly ``0.0`` or ``1.0`` — both endpoints would break the
    geometric-skip sampling in the fast WMH sketcher (``log1p(-1)``)
    and the Flajolet–Martin union estimator (division by a zero
    minimum).
    """
    bits = np.asarray(bits, dtype=np.uint64)
    return ((bits >> _SHIFT_12).astype(np.float64) + 0.5) * _INV_2_52


def counter_uniform(keys: np.ndarray | np.uint64, counter: int) -> np.ndarray:
    """Return the ``counter``-th uniform draw of each key's stream.

    ``counter_uniform(k, c)`` is a pure function of ``(k, c)``: the same
    pair always yields the same float, which is what lets two
    independently computed sketches replay identical randomness.
    """
    keys64 = np.asarray(keys, dtype=np.uint64)
    with np.errstate(over="ignore"):
        state = keys64 + np.uint64(counter) * GOLDEN_GAMMA
    return uniform_from_bits(mix64(state))


_FNV_OFFSET = np.uint64(0xCBF29CE484222325)
_FNV_PRIME = np.uint64(0x00000100000001B3)


def hash_bytes(data: bytes) -> int:
    """FNV-1a 64-bit hash of a byte string, finalized with ``mix64``.

    Used to map arbitrary table keys and text tokens into the integer
    index domain.  Deterministic across processes (unlike Python's
    built-in ``hash``, which is salted per interpreter run).
    """
    h = _FNV_OFFSET
    with np.errstate(over="ignore"):
        for byte in data:
            h = (h ^ np.uint64(byte)) * _FNV_PRIME
    return int(mix64(h))


def hash_string(text: str) -> int:
    """Hash a unicode string to a deterministic 64-bit integer."""
    return hash_bytes(text.encode("utf-8"))


def hash_bytes_many(
    data: np.ndarray, offsets: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`hash_bytes` over many packed byte strings.

    ``data`` is one flat ``uint8`` buffer holding the strings back to
    back; string ``i`` occupies ``data[offsets[i] : offsets[i] +
    lengths[i]]``.  The FNV-1a recurrence is advanced one *byte
    position* at a time across all strings still long enough, so the
    loop runs ``max(lengths)`` numpy passes instead of one Python-level
    multiply per byte.  Each result is bit-identical to
    ``hash_bytes(bytes_i)``.
    """
    data = np.asarray(data, dtype=np.uint8)
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    h = np.full(offsets.shape, _FNV_OFFSET, dtype=np.uint64)
    if offsets.size == 0:
        return h
    # Strings still active at the current byte position, narrowed as
    # shorter strings finish (their hash state is final once their
    # bytes run out, exactly like the scalar loop ending).
    active = np.arange(offsets.size)
    with np.errstate(over="ignore"):
        for pos in range(int(lengths.max())):
            keep = lengths[active] > pos
            if not keep.all():
                active = active[keep]
            byte = data[offsets[active] + pos].astype(np.uint64)
            h[active] = (h[active] ^ byte) * _FNV_PRIME
    return mix64(h)
