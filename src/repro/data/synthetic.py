"""Synthetic vector workloads (Section 5.1 of the paper).

The paper's synthetic experiment: length-10000 vectors with 2000
non-zero entries each, where

* the fraction of non-zeros shared by both vectors ("overlap") is the
  controlled variable — panels use 1%, 5%, 10% and 50%;
* non-zero entries are "normal random variables with values between
  -1 and 1" (we use a standard normal truncated to ``[-1, 1]``);
* 10% of non-zeros are outliers drawn uniformly from ``[20, 30]`` —
  the heavy entries that break unweighted MinHash and motivate
  weighted sampling.

:func:`generate_pair` produces one such pair; :class:`SyntheticConfig`
carries the knobs so experiments and tests can shrink the workload.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.vectors.sparse import SparseVector

__all__ = ["SyntheticConfig", "generate_pair", "generate_values", "PAPER_CONFIG"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the Section 5.1 generator."""

    n: int = 10_000
    nnz: int = 2_000
    overlap: float = 0.1
    outlier_fraction: float = 0.1
    outlier_low: float = 20.0
    outlier_high: float = 30.0

    def __post_init__(self) -> None:
        if self.nnz > self.n:
            raise ValueError(f"nnz={self.nnz} cannot exceed n={self.n}")
        if not 0.0 <= self.overlap <= 1.0:
            raise ValueError(f"overlap must be in [0, 1], got {self.overlap}")
        if not 0.0 <= self.outlier_fraction <= 1.0:
            raise ValueError(
                f"outlier_fraction must be in [0, 1], got {self.outlier_fraction}"
            )
        shared = int(round(self.overlap * self.nnz))
        # Both supports must fit in the domain: shared + 2 * (nnz - shared).
        if 2 * self.nnz - shared > self.n:
            raise ValueError(
                "domain too small for two supports with the requested overlap: "
                f"need {2 * self.nnz - shared} indices, have n={self.n}"
            )

    def with_overlap(self, overlap: float) -> "SyntheticConfig":
        return replace(self, overlap=overlap)


#: The exact configuration of the paper's Figure 4.
PAPER_CONFIG = SyntheticConfig()


def generate_values(rng: np.random.Generator, size: int, config: SyntheticConfig) -> np.ndarray:
    """Non-zero values: truncated standard normal + uniform outliers."""
    values = rng.normal(size=size)
    # Truncate to [-1, 1] by resampling (matches "normal random
    # variables with values between -1 and 1").
    out_of_range = np.abs(values) > 1.0
    while out_of_range.any():
        values[out_of_range] = rng.normal(size=int(out_of_range.sum()))
        out_of_range = np.abs(values) > 1.0
    if config.outlier_fraction > 0.0:
        num_outliers = int(round(config.outlier_fraction * size))
        outlier_positions = rng.choice(size, size=num_outliers, replace=False)
        values[outlier_positions] = rng.uniform(
            config.outlier_low, config.outlier_high, size=num_outliers
        )
    return values


def generate_pair(
    config: SyntheticConfig = PAPER_CONFIG, seed: int = 0
) -> tuple[SparseVector, SparseVector]:
    """One synthetic ``(a, b)`` pair with the configured overlap.

    The shared support has exactly ``round(overlap * nnz)`` indices;
    the remaining indices of each vector are disjoint, so the realized
    overlap ratio is exact rather than merely expected.
    """
    rng = np.random.default_rng(seed)
    shared_count = int(round(config.overlap * config.nnz))
    distinct_count = config.nnz - shared_count
    permutation = rng.permutation(config.n)
    shared = permutation[:shared_count]
    only_a = permutation[shared_count : shared_count + distinct_count]
    only_b = permutation[
        shared_count + distinct_count : shared_count + 2 * distinct_count
    ]
    indices_a = np.concatenate([shared, only_a])
    indices_b = np.concatenate([shared, only_b])
    vector_a = SparseVector(
        indices_a, generate_values(rng, config.nnz, config), n=config.n
    )
    vector_b = SparseVector(
        indices_b, generate_values(rng, config.nnz, config), n=config.n
    )
    return vector_a, vector_b
