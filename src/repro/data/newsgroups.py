"""Newsgroups-like synthetic corpus (Figure 6 workload).

The paper samples 700 documents from the 20 newsgroups dataset and
estimates cosine similarity between >200k TF-IDF vector pairs, split by
document length (all documents vs documents longer than 700 words).
The dataset cannot be fetched offline, so — per the DESIGN.md
substitution rule — this generator produces a corpus with the
statistical properties Figure 6 actually exercises:

* **Zipfian vocabulary** — term frequencies follow a power law, so
  TF-IDF weights are heavily skewed (the regime where weighted
  sampling beats unweighted);
* **topic structure** — each document draws most tokens from one of
  ``num_topics`` topic distributions (distinct Zipf permutations of a
  shared vocabulary) plus a background distribution, so same-topic
  pairs have meaningful cosine similarity and cross-topic pairs have
  small-but-nonzero similarity, like real newsgroup posts;
* **heavy-tailed document lengths** — lognormal, calibrated so a
  meaningful fraction of documents exceeds 700 words and the ">700
  words" stratum of Figure 6(b) is populated.

Tokens are synthetic strings (``"w<rank>"``), which is all TF-IDF ever
sees of real text anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NewsgroupsConfig", "Document", "generate_corpus"]


@dataclass(frozen=True)
class Document:
    """One synthetic post: its topic, and its tokens."""

    doc_id: int
    topic: int
    tokens: list[str]

    @property
    def num_words(self) -> int:
        return len(self.tokens)


@dataclass(frozen=True)
class NewsgroupsConfig:
    """Knobs of the synthetic corpus generator."""

    num_documents: int = 700
    num_topics: int = 20
    vocabulary_size: int = 5_000
    zipf_exponent: float = 1.1
    topic_mix: float = 0.7
    length_log_mean: float = 5.6  # median ~270 words
    length_log_sigma: float = 0.9
    min_length: int = 30


def _zipf_probabilities(size: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def generate_corpus(
    config: NewsgroupsConfig = NewsgroupsConfig(), seed: int = 0
) -> list[Document]:
    """Generate the synthetic corpus.

    Each topic reuses the same Zipf weight profile over a private
    permutation of the vocabulary, so every topic has its own "head"
    terms while all topics share the long tail; a ``topic_mix`` of 0.7
    means 70% of a document's tokens come from its topic distribution
    and 30% from the global background.
    """
    rng = np.random.default_rng(seed)
    base_probabilities = _zipf_probabilities(
        config.vocabulary_size, config.zipf_exponent
    )
    topic_permutations = [
        rng.permutation(config.vocabulary_size) for _ in range(config.num_topics)
    ]
    documents: list[Document] = []
    for doc_id in range(config.num_documents):
        topic = int(rng.integers(config.num_topics))
        length = max(
            config.min_length,
            int(rng.lognormal(config.length_log_mean, config.length_log_sigma)),
        )
        from_topic = rng.random(length) < config.topic_mix
        ranks = rng.choice(
            config.vocabulary_size, size=length, p=base_probabilities
        )
        word_ids = np.where(
            from_topic, topic_permutations[topic][ranks], ranks
        )
        tokens = [f"w{word_id}" for word_id in word_ids]
        documents.append(Document(doc_id=doc_id, topic=topic, tokens=tokens))
    return documents
