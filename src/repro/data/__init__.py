"""Workload generators for the paper's three experiment families."""

from repro.data.newsgroups import Document, NewsgroupsConfig
from repro.data.newsgroups import generate_corpus as generate_newsgroups_corpus
from repro.data.synthetic import (
    PAPER_CONFIG,
    SyntheticConfig,
    generate_pair,
    generate_values,
)
from repro.data.worldbank import (
    ColumnPair,
    WorldBankConfig,
    generate_column_pair,
)
from repro.data.worldbank import generate_corpus as generate_worldbank_corpus

__all__ = [
    "PAPER_CONFIG",
    "ColumnPair",
    "Document",
    "NewsgroupsConfig",
    "SyntheticConfig",
    "WorldBankConfig",
    "generate_column_pair",
    "generate_newsgroups_corpus",
    "generate_pair",
    "generate_values",
    "generate_worldbank_corpus",
]
