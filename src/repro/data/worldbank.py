"""World-Bank-like numeric column pairs (Figure 5 workload).

The paper's Figure 5 takes 5000 pairs of numeric columns from 56 World
Bank finance datasets, normalizes each column to unit norm, estimates
their inner products with sketches of storage 400, and *bins the pairs
by key-overlap ratio and by kurtosis* (a proxy for outliers).  The real
datasets are not redistributable/offline-fetchable, so — per the
substitution rule in DESIGN.md — we generate column pairs whose two
binning axes are directly controlled:

* **overlap** — the fraction of the smaller key set shared by both
  columns.  The paper reports 42% of World Bank pairs below 0.1 and
  35% below 0.05, so the default sampler skews low (Beta(0.7, 1.6)).
* **tail weight** — column values are a two-component mixture: a
  standard normal body and, with probability ``outlier_rate``, a
  Pareto-tailed outlier with scale ``outlier_scale``.  Sweeping these
  sweeps the empirical kurtosis through the paper's bins (≈3 for pure
  Gaussian columns up to hundreds for heavy tails).

Pairs come back with their *measured* overlap and kurtosis so the
experiment bins them exactly like the paper binned real data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.vectors.ops import kurtosis, overlap_ratio
from repro.vectors.sparse import SparseVector

__all__ = ["ColumnPair", "WorldBankConfig", "generate_column_pair", "generate_corpus"]


@dataclass(frozen=True)
class ColumnPair:
    """A generated pair plus the metadata Figure 5 bins on."""

    left: SparseVector
    right: SparseVector
    overlap: float
    kurtosis: float
    seed: int


@dataclass(frozen=True)
class WorldBankConfig:
    """Knobs of the World-Bank-like generator."""

    n: int = 50_000
    rows_low: int = 200
    rows_high: int = 2_000
    outlier_rate_low: float = 0.0
    outlier_rate_high: float = 0.15
    outlier_scale: float = 25.0
    pareto_shape: float = 1.5
    overlap_alpha: float = 0.7
    overlap_beta: float = 1.6


def _column_values(
    rng: np.random.Generator, size: int, outlier_rate: float, config: WorldBankConfig
) -> np.ndarray:
    """Normal body + Pareto-tailed outliers, then unit normalization."""
    values = rng.normal(size=size)
    if outlier_rate > 0.0:
        outliers = rng.random(size) < outlier_rate
        count = int(outliers.sum())
        if count:
            magnitudes = config.outlier_scale * (
                1.0 + rng.pareto(config.pareto_shape, size=count)
            )
            values[outliers] = rng.choice([-1.0, 1.0], size=count) * magnitudes
    # Guard against exact zeros so supports have the intended size.
    values[values == 0.0] = 1e-9
    norm = float(np.linalg.norm(values))
    return values / norm


def generate_column_pair(
    overlap: float,
    outlier_rate: float,
    seed: int,
    config: WorldBankConfig = WorldBankConfig(),
) -> ColumnPair:
    """One unit-norm column pair with a prescribed key overlap."""
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be in [0, 1], got {overlap}")
    rng = np.random.default_rng(seed)
    rows = int(rng.integers(config.rows_low, config.rows_high + 1))
    shared_count = int(round(overlap * rows))
    distinct = rows - shared_count
    permutation = rng.permutation(config.n)
    shared = permutation[:shared_count]
    only_left = permutation[shared_count : shared_count + distinct]
    only_right = permutation[shared_count + distinct : shared_count + 2 * distinct]

    left_values = _column_values(rng, rows, outlier_rate, config)
    right_values = _column_values(rng, rows, outlier_rate, config)
    left = SparseVector(
        np.concatenate([shared, only_left]), left_values, n=config.n
    )
    right = SparseVector(
        np.concatenate([shared, only_right]), right_values, n=config.n
    )
    return ColumnPair(
        left=left,
        right=right,
        overlap=overlap_ratio(left, right),
        kurtosis=max(kurtosis(left.values), kurtosis(right.values)),
        seed=seed,
    )


def generate_corpus(
    num_pairs: int,
    seed: int = 0,
    config: WorldBankConfig = WorldBankConfig(),
) -> Iterator[ColumnPair]:
    """Stream of pairs with paper-like overlap/kurtosis marginals.

    Overlap is Beta-distributed (skewed low, matching the World Bank
    statistics quoted in Section 1.2); the outlier rate is uniform over
    the configured range so kurtosis spans all Figure 5 rows.
    """
    rng = np.random.default_rng(seed)
    for pair_id in range(num_pairs):
        overlap = float(rng.beta(config.overlap_alpha, config.overlap_beta))
        outlier_rate = float(
            rng.uniform(config.outlier_rate_low, config.outlier_rate_high)
        )
        yield generate_column_pair(
            overlap=overlap,
            outlier_rate=outlier_rate,
            seed=int(rng.integers(0, 2**31)),
            config=config,
        )
