"""The paper's error guarantees as executable formulas (Table 1).

Table 1 compares high-probability additive error bounds for size-m
sketches (constants suppressed; we expose them as ``ε ≈ 1/sqrt(m)``
scalings so bound *ratios* between methods are meaningful, which is all
Table 1 asserts):

=====================  ==========================================================  =============
method                 error bound                                                 assumptions
=====================  ==========================================================  =============
JL / AMS / CountSketch ``ε ||a|| ||b||``                                            none (Fact 1)
MinHash (MH)           ``ε c² sqrt(max(|A|,|B|) |A∩B|)``                            entries in [-c, c] (Thm 4)
Weighted MinHash (WMH) ``ε max(||a_I|| ||b||, ||a|| ||b_I||)``                      none (Thm 2)
=====================  ==========================================================  =============

with ``A, B`` the supports, ``I = A ∩ B``, ``a_I`` the restriction of
``a`` to ``I``.  For binary vectors the MH and WMH bounds coincide
(Section 2), and ``WMH <= JL`` always since ``||a_I|| <= ||a||``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.vectors.ops import intersection_norms, support_intersection
from repro.vectors.sparse import SparseVector

__all__ = [
    "epsilon_for_samples",
    "samples_for_epsilon",
    "linear_sketch_bound",
    "minhash_bound",
    "wmh_bound",
    "wmh_advantage",
    "BoundComparison",
    "compare_bounds",
]


def epsilon_for_samples(m: int) -> float:
    """The accuracy parameter ``ε`` achieved by ``m = O(1/ε²)`` samples."""
    if m <= 0:
        raise ValueError(f"sample count must be positive, got {m}")
    return 1.0 / math.sqrt(m)


def samples_for_epsilon(epsilon: float) -> int:
    """Samples needed for accuracy ``ε`` (constant-free inverse)."""
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    return int(math.ceil(1.0 / epsilon**2))


def linear_sketch_bound(a: SparseVector, b: SparseVector, m: int) -> float:
    """Fact 1: ``ε ||a|| ||b||`` for JL / AMS / CountSketch."""
    return epsilon_for_samples(m) * a.norm() * b.norm()


def minhash_bound(a: SparseVector, b: SparseVector, m: int) -> float:
    """Theorem 4: ``ε c² sqrt(max(|A|,|B|) |A∩B|)``, c = max |entry|.

    Only meaningful when entries are uniformly bounded; ``c`` is taken
    as the larger infinity norm of the pair.
    """
    c = max(a.norm_inf(), b.norm_inf())
    inter = support_intersection(a, b).size
    larger_support = max(a.nnz, b.nnz)
    return epsilon_for_samples(m) * c * c * math.sqrt(larger_support * inter)


def wmh_bound(a: SparseVector, b: SparseVector, m: int) -> float:
    """Theorem 2: ``ε max(||a_I|| ||b||, ||a|| ||b_I||)``."""
    norm_a_inter, norm_b_inter = intersection_norms(a, b)
    return epsilon_for_samples(m) * max(
        norm_a_inter * b.norm(), a.norm() * norm_b_inter
    )


def wmh_advantage(a: SparseVector, b: SparseVector) -> float:
    """Bound ratio ``Fact1 / Thm2`` — how much WMH beats linear sketching.

    Always ``>= 1``.  For "typical" vectors with an overlap fraction
    ``γ`` the ratio is about ``1/sqrt(γ)`` (paper, Section 1.1), i.e. a
    sketch-size saving factor of about ``γ``.  Returns ``inf`` for
    disjoint supports (WMH bound is 0, linear bound is not).
    """
    linear = a.norm() * b.norm()
    norm_a_inter, norm_b_inter = intersection_norms(a, b)
    weighted = max(norm_a_inter * b.norm(), a.norm() * norm_b_inter)
    if weighted == 0.0:
        return math.inf if linear > 0.0 else 1.0
    return linear / weighted


@dataclass(frozen=True)
class BoundComparison:
    """All three Table 1 bounds evaluated on one vector pair."""

    linear: float
    minhash: float
    wmh: float
    m: int

    @property
    def wmh_vs_linear(self) -> float:
        """``linear / wmh`` — WMH's guaranteed advantage factor."""
        if self.wmh == 0.0:
            return math.inf if self.linear > 0.0 else 1.0
        return self.linear / self.wmh


def compare_bounds(a: SparseVector, b: SparseVector, m: int) -> BoundComparison:
    """Evaluate every Table 1 bound on the pair ``(a, b)``."""
    return BoundComparison(
        linear=linear_sketch_bound(a, b, m),
        minhash=minhash_bound(a, b, m),
        wmh=wmh_bound(a, b, m),
        m=m,
    )
