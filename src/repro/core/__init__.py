"""The paper's primary contribution: Weighted MinHash inner-product sketching.

* :mod:`repro.core.rounding` — Algorithm 4 (unit-norm discretization);
* :mod:`repro.core.wmh` — Algorithm 3, fast active-index sketcher;
* :mod:`repro.core.wmh_naive` — Algorithm 3, literal expanded-vector
  reference implementation;
* :mod:`repro.core.estimator` — Algorithm 5 (estimation procedure);
* :mod:`repro.core.median` — Theorem 2's median-of-t boosting;
* :mod:`repro.core.theory` — Table 1's error bounds as formulas.
"""

from repro.core.bank import SketchBank
from repro.core.base import (
    WORDS_PER_SAMPLE_SAMPLING,
    SketchMismatchError,
    Sketcher,
)
from repro.core.estimator import (
    estimate_inner_product,
    estimate_weighted_union,
    estimate_weighted_union_from_jaccard,
)
from repro.core.median import MedianBoosted, MedianSketch
from repro.core.rounding import RoundedVector, round_unit_vector, round_vector
from repro.core.theory import (
    BoundComparison,
    compare_bounds,
    epsilon_for_samples,
    linear_sketch_bound,
    minhash_bound,
    samples_for_epsilon,
    wmh_advantage,
    wmh_bound,
)
from repro.core.wmh import DEFAULT_L, WeightedMinHash, WMHSketch
from repro.core.wmh_naive import NaiveWeightedMinHash

__all__ = [
    "DEFAULT_L",
    "WORDS_PER_SAMPLE_SAMPLING",
    "BoundComparison",
    "MedianBoosted",
    "MedianSketch",
    "NaiveWeightedMinHash",
    "RoundedVector",
    "SketchBank",
    "SketchMismatchError",
    "Sketcher",
    "WMHSketch",
    "WeightedMinHash",
    "compare_bounds",
    "epsilon_for_samples",
    "estimate_inner_product",
    "estimate_weighted_union",
    "estimate_weighted_union_from_jaccard",
    "linear_sketch_bound",
    "minhash_bound",
    "round_unit_vector",
    "round_vector",
    "samples_for_epsilon",
    "wmh_advantage",
    "wmh_bound",
]
