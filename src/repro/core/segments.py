"""Segmented reductions for batch sketching.

Batch sketchers lay the non-zeros of many vectors out as one
concatenated axis (the CSR layout of
:class:`~repro.vectors.sparse.SparseMatrix`) and run their per-entry
work — hashing, record simulation — in a single vectorized pass.  The
final per-vector reduction (the argmin over each row's blocks that
Algorithms 1 and 3 take) then needs *segmented* min/argmin over that
concatenated axis, which numpy expresses with ``ufunc.reduceat``.

The helpers here are deliberately exact mirrors of the scalar
reductions: ``segmented_min_argmin`` returns, per segment, the same
minimum float and the same first-position argmin that ``np.min`` /
``np.argmin`` return on the segment alone, so batch sketches are
bit-identical to the scalar loop.
"""

from __future__ import annotations

import numpy as np

__all__ = ["segmented_min_argmin", "segmented_min_argmin_rows", "chunk_boundaries"]


def segmented_min_argmin(
    matrix: np.ndarray, indptr: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment minimum and first-argmin along the last axis.

    Parameters
    ----------
    matrix:
        ``(m, total)`` array whose columns are grouped into segments.
    indptr:
        ``(num_segments + 1,)`` boundaries; every segment must be
        non-empty (callers filter empty rows out beforehand).

    Returns
    -------
    (mins, argpos):
        Both ``(m, num_segments)``.  ``mins[r, s]`` equals
        ``matrix[r, indptr[s]:indptr[s+1]].min()`` exactly and
        ``argpos[r, s]`` is the **global** column index of the first
        occurrence of that minimum — matching ``np.argmin`` tie-breaking.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    num_segments = indptr.size - 1
    m, total = matrix.shape
    if num_segments == 0:
        empty = np.empty((m, 0))
        return empty, np.empty((m, 0), dtype=np.int64)
    if indptr[-1] != total or np.any(np.diff(indptr) <= 0):
        raise ValueError("indptr must partition the columns into non-empty segments")
    starts = indptr[:-1]
    # One reduction pass: numpy orders complex numbers lexicographically
    # (real part first, imaginary as tie-break), so min over
    # ``value + column*i`` yields the minimum value *and* its first
    # column — the same tie-breaking as np.argmin — in a single
    # reduceat instead of a min / expand / compare / min sequence.
    composite = matrix + 1j * np.arange(total, dtype=np.float64)
    reduced = np.minimum.reduceat(composite, starts, axis=1)
    return reduced.real, reduced.imag.astype(np.int64)


def segmented_min_argmin_rows(
    matrix: np.ndarray, indptr: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment minimum and first-argmin along the *first* axis.

    Row-major counterpart of :func:`segmented_min_argmin` for batch
    kernels that lay their per-entry data out as ``(total, m)`` — one
    contiguous row of ``m`` repetitions per non-zero.  That layout turns
    the per-row gather of a ``(queries, m)`` table into contiguous
    row copies instead of strided column picks, which is what makes the
    reduction memory-bound rather than cache-miss-bound.

    Parameters
    ----------
    matrix:
        ``(total, m)`` array whose rows are grouped into segments.
    indptr:
        ``(num_segments + 1,)`` boundaries; every segment must be
        non-empty.

    Returns
    -------
    (mins, argpos):
        Both ``(num_segments, m)``.  ``mins[s, r]`` equals
        ``matrix[indptr[s]:indptr[s+1], r].min()`` exactly and
        ``argpos[s, r]`` is the **global** row index of the first
        occurrence of that minimum — matching ``np.argmin`` tie-breaking.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    num_segments = indptr.size - 1
    total, m = matrix.shape
    if num_segments == 0:
        empty = np.empty((0, m))
        return empty, np.empty((0, m), dtype=np.int64)
    if indptr[-1] != total or np.any(np.diff(indptr) <= 0):
        raise ValueError("indptr must partition the rows into non-empty segments")
    # Same complex-lexicographic trick as the column-major variant: one
    # reduceat yields the minimum value and its first row index.
    composite = np.empty((total, m), dtype=np.complex128)
    composite.real = matrix
    composite.imag = np.broadcast_to(
        np.arange(total, dtype=np.float64)[:, None], (total, m)
    )
    reduced = np.minimum.reduceat(composite, indptr[:-1], axis=0)
    return reduced.real, reduced.imag.astype(np.int64)


def chunk_boundaries(indptr: np.ndarray, target_nnz: int) -> list[tuple[int, int]]:
    """Split rows into chunks of roughly ``target_nnz`` total non-zeros.

    Returns ``(row_lo, row_hi)`` pairs covering ``[0, num_rows)``; every
    chunk holds at least one row, so a single huge row still processes.
    Batch sketchers use this to bound the ``(m, chunk_nnz)`` working-set
    size while keeping each numpy call large enough to amortize.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    num_rows = indptr.size - 1
    chunks: list[tuple[int, int]] = []
    lo = 0
    while lo < num_rows:
        hi = int(np.searchsorted(indptr, indptr[lo] + max(target_nnz, 1), side="right")) - 1
        hi = min(max(hi, lo + 1), num_rows)
        chunks.append((lo, hi))
        lo = hi
    return chunks
