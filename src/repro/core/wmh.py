"""Weighted MinHash sketching (Algorithm 3), fast implementation.

Conceptually (paper, Section 4), Algorithm 3 MinHashes an *expanded*
vector ``ā`` of length ``n * L``: block ``i`` holds ``L`` slots of which
the first ``k_i = ã[i]^2 * L`` are occupied by the value ``ã[i]``,
where ``ã`` is the norm-scaled, rounded input (Algorithm 4).  The
sketch stores, per repetition, the minimum hash over all occupied slots
and the value of the block it came from, plus the original norm
``||a||``.

Hashing all ``n * L`` slots is infeasible — the paper requires
``L > n``, ideally ``100n`` or more.  Section 5 ("Efficient Weighted
Hashing") prescribes the *active index* technique of Gollapudi &
Panigrahy: within a block, only the prefix-minimum **records** of the
hash sequence matter, and the record process can be simulated directly:

* the hash of slot 1 is ``Uniform(0, 1)``;
* given the current record ``(pos, z)``, the next slot with hash below
  ``z`` is ``Geometric(z)`` slots ahead, and its hash is
  ``Uniform(0, z)``.

The minimum over a block's first ``k`` slots is the value of the last
record at position ``<= k``.  Expected records per block: ``O(log L)``.

**Consistency across vectors** is the subtle requirement: if two
vectors share block ``i``, their sketches must see the *same* hash
sequence there, with supports that are nested prefixes (the vector with
larger ``k_i`` sees a superset of slots).  We achieve this by driving
each block's record simulation from a counter-based splitmix64 stream
keyed on ``(seed, repetition, block)``: both vectors replay the
identical record stream and simply stop at their own ``k_i``.  This
reproduces the exact joint distribution of expanded-vector MinHash —
cross-checked against the naive implementation in
:mod:`repro.core.wmh_naive` — at ``O(nnz * m * log L)`` cost.

The simulation is vectorized over the full ``(m, nnz)`` grid: each
round advances every still-active (repetition, block) cell by one
record, and cells retire once their next record would overshoot their
block's occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.base import WORDS_PER_SAMPLE_SAMPLING, Sketcher
from repro.core.rounding import RoundedVector, round_vector
from repro.hashing.splitmix import counter_uniform, derive_key_grid
from repro.vectors.sparse import SparseVector

__all__ = ["WMHSketch", "WeightedMinHash", "DEFAULT_L", "simulate_block_minima"]

#: Default discretization parameter.  The paper wants ``L`` at least
#: ``n`` and ideally 100-1000x larger; 2**26 ≈ 6.7e7 comfortably covers
#: the experiments here (n = 10**4, so L/n > 6000) and keeps the record
#: process short (~ln L ≈ 18 records per block).
DEFAULT_L = 1 << 26


@dataclass(frozen=True)
class WMHSketch:
    """Output of Algorithm 3: ``{W_hash, W_val, ||a||}`` plus config.

    ``hashes[i]`` is the minimum hash of repetition ``i`` over the
    occupied slots of the expanded vector; ``values[i]`` is the rounded
    unit-vector entry of the block that attained it.  The zero vector
    yields ``hashes = +inf`` and ``values = 0``.
    """

    hashes: np.ndarray
    values: np.ndarray
    norm: float
    m: int
    L: int
    seed: int

    def storage_words(self) -> float:
        """1.5 words per sample (64-bit value + 32-bit hash) + the norm."""
        return WORDS_PER_SAMPLE_SAMPLING * self.m + 1.0


def simulate_block_minima(
    seed: int,
    m: int,
    block_ids: np.ndarray,
    counts: np.ndarray,
    max_rounds: int = 512,
) -> np.ndarray:
    """Simulate per-(repetition, block) prefix-minimum hashes.

    Parameters
    ----------
    seed, m:
        Sketch seed and repetition count; repetition ``r`` of any vector
        sketched with this seed uses stream key ``(seed, r, block)``.
    block_ids:
        Integer ids of the vector's occupied blocks (original vector
        indices), shape ``(B,)``.
    counts:
        Occupied slot counts ``k >= 1`` per block, shape ``(B,)``.
    max_rounds:
        Safety cap on simulation rounds; the expected number of records
        is ``ln k`` so 512 is unreachable in practice.

    Returns
    -------
    Array of shape ``(m, B)``: the minimum hash over the first
    ``counts[j]`` slots of block ``block_ids[j]``, per repetition.
    """
    block_ids = np.asarray(block_ids, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if np.any(counts < 1):
        raise ValueError("all block counts must be >= 1")
    n_blocks = block_ids.size
    keys = derive_key_grid(seed, np.arange(m, dtype=np.int64), block_ids).ravel()
    minima = counter_uniform(keys, 0)

    # Compacted state of the still-active cells.  Record 0 is the hash
    # of slot 1; every block has k >= 1 so it is always accepted.
    # Positions are tracked in float64 (exact up to 2**53, far beyond
    # any usable L).
    cell_ids = np.arange(keys.size)
    act_keys = keys
    act_z = minima.copy()
    act_pos = np.ones(keys.size, dtype=np.float64)
    act_limit = np.broadcast_to(counts.astype(np.float64), (m, n_blocks)).ravel()
    counter = 1
    rounds = 0
    golden = np.uint64(0x9E3779B97F4A7C15)
    mul1 = np.uint64(0xBF58476D1CE4E5B9)
    mul2 = np.uint64(0x94D049BB133111EB)
    inv_2_52 = 2.0**-52
    with np.errstate(over="ignore"):
        while cell_ids.size:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError(
                    "record simulation did not converge; this indicates a "
                    "corrupted occupancy count"
                )
            # Two splitmix64 stream draws per record, inlined to avoid
            # per-call overhead in this hot loop (equivalent to
            # counter_uniform(act_keys, counter) and counter + 1).
            state = act_keys + np.uint64(counter) * golden
            draws = []
            for offset in (np.uint64(0), golden):
                word = state + offset
                word = (word ^ (word >> np.uint64(30))) * mul1
                word = (word ^ (word >> np.uint64(27))) * mul2
                word = word ^ (word >> np.uint64(31))
                draws.append(
                    ((word >> np.uint64(12)).astype(np.float64) + 0.5) * inv_2_52
                )
            u_skip, u_value = draws
            counter += 2
            # Geometric(z) via inversion: smallest t >= 1 with u < z
            # after t trials.  log1p(-z) < 0 strictly since z in (0, 1).
            skip = np.ceil(np.log(u_skip) / np.log1p(-act_z))
            next_pos = act_pos + skip
            accepted = next_pos <= act_limit
            new_z = act_z[accepted] * u_value[accepted]
            kept = cell_ids[accepted]
            minima[kept] = new_z
            cell_ids = kept
            act_keys = act_keys[accepted]
            act_z = new_z
            act_pos = next_pos[accepted]
            act_limit = act_limit[accepted]
    return minima.reshape(m, n_blocks)


class WeightedMinHash(Sketcher):
    """The paper's Weighted MinHash inner-product sketcher (Algorithm 3).

    Parameters
    ----------
    m:
        Number of samples (sketch repetitions).
    seed:
        Random seed; sketches are comparable only across identical
        ``(m, seed, L)``.
    L:
        Discretization parameter of Algorithm 4.  Has **no** effect on
        sketch size, only on sketching cost (logarithmically) and on
        rounding fidelity; keep it well above the vector dimension
        (paper: at least ``n``, ideally ``100n``-``1000n``).
    """

    name = "WMH"

    def __init__(self, m: int, seed: int = 0, L: int = DEFAULT_L) -> None:
        if m <= 0:
            raise ValueError(f"sample count m must be positive, got {m}")
        if L < 1:
            raise ValueError(f"discretization parameter L must be >= 1, got {L}")
        self.m = int(m)
        self.seed = int(seed)
        self.L = int(L)

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "WeightedMinHash":
        """Size the sketch to ``words`` 64-bit words (1.5 words/sample)."""
        m = int(words / WORDS_PER_SAMPLE_SAMPLING)
        return cls(m=max(m, 1), seed=seed, **kwargs)

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.m + 1.0

    # ------------------------------------------------------------------

    def sketch(self, vector: SparseVector) -> WMHSketch:
        """Compress ``vector``; the zero vector yields an empty sketch."""
        if vector.nnz == 0:
            return WMHSketch(
                hashes=np.full(self.m, np.inf),
                values=np.zeros(self.m),
                norm=0.0,
                m=self.m,
                L=self.L,
                seed=self.seed,
            )
        rounded = round_vector(vector, self.L)
        return self.sketch_rounded(rounded)

    def sketch_rounded(self, rounded: RoundedVector) -> WMHSketch:
        """Sketch a pre-rounded vector (shared by ablation variants)."""
        if rounded.L != self.L:
            raise ValueError(
                f"rounded vector has L={rounded.L}, sketcher expects {self.L}"
            )
        minima = simulate_block_minima(
            self.seed, self.m, rounded.indices, rounded.counts
        )
        best = np.argmin(minima, axis=1)
        rows = np.arange(self.m)
        return WMHSketch(
            hashes=minima[rows, best],
            values=rounded.values[best],
            norm=rounded.norm,
            m=self.m,
            L=self.L,
            seed=self.seed,
        )

    def estimate(self, sketch_a: WMHSketch, sketch_b: WMHSketch) -> float:
        """Algorithm 5 — implemented in :mod:`repro.core.estimator`."""
        from repro.core.estimator import estimate_inner_product

        return estimate_inner_product(sketch_a, sketch_b)
