"""Weighted MinHash sketching (Algorithm 3), fast implementation.

Conceptually (paper, Section 4), Algorithm 3 MinHashes an *expanded*
vector ``ā`` of length ``n * L``: block ``i`` holds ``L`` slots of which
the first ``k_i = ã[i]^2 * L`` are occupied by the value ``ã[i]``,
where ``ã`` is the norm-scaled, rounded input (Algorithm 4).  The
sketch stores, per repetition, the minimum hash over all occupied slots
and the value of the block it came from, plus the original norm
``||a||``.

Hashing all ``n * L`` slots is infeasible — the paper requires
``L > n``, ideally ``100n`` or more.  Section 5 ("Efficient Weighted
Hashing") prescribes the *active index* technique of Gollapudi &
Panigrahy: within a block, only the prefix-minimum **records** of the
hash sequence matter, and the record process can be simulated directly:

* the hash of slot 1 is ``Uniform(0, 1)``;
* given the current record ``(pos, z)``, the next slot with hash below
  ``z`` is ``Geometric(z)`` slots ahead, and its hash is
  ``Uniform(0, z)``.

The minimum over a block's first ``k`` slots is the value of the last
record at position ``<= k``.  Expected records per block: ``O(log L)``.

**Consistency across vectors** is the subtle requirement: if two
vectors share block ``i``, their sketches must see the *same* hash
sequence there, with supports that are nested prefixes (the vector with
larger ``k_i`` sees a superset of slots).  We achieve this by driving
each block's record simulation from a counter-based splitmix64 stream
keyed on ``(seed, repetition, block)``: both vectors replay the
identical record stream and simply stop at their own ``k_i``.  This
reproduces the exact joint distribution of expanded-vector MinHash —
cross-checked against the naive implementation in
:mod:`repro.core.wmh_naive` — at ``O(nnz * m * log L)`` cost.

The simulation is vectorized over the full ``(m, nnz)`` grid: each
round advances every still-active (repetition, block) cell by one
record, and cells retire once their next record would overshoot their
block's occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.bank import SketchBank
from repro.core.base import WORDS_PER_SAMPLE_SAMPLING, Sketcher
from repro.core.rounding import RoundedVector, round_vector
from repro.core.segments import chunk_boundaries, segmented_min_argmin
from repro.hashing.splitmix import counter_uniform, derive_key_grid
from repro.vectors.sparse import SparseMatrix, SparseVector, as_sparse_matrix

__all__ = [
    "WMHSketch",
    "WeightedMinHash",
    "DEFAULT_L",
    "simulate_block_minima",
    "simulate_block_minima_grouped",
]

#: Working-set cap for batch sketching: the scatter phase materializes
#: a few ``(m, chunk_nnz)`` float64 arrays, so keep m * chunk_nnz near
#: this many elements (~64 MB per temporary at the default).
_BATCH_CELL_TARGET = 500_000

#: Cell cap per grouped-simulation call.  The record loop touches ~10
#: state arrays per round; keeping m * blocks_per_chunk around this
#: size keeps them cache-resident, which measures ~3x faster than one
#: monolithic pass.
_SIM_CELL_TARGET = 200_000

#: Default discretization parameter.  The paper wants ``L`` at least
#: ``n`` and ideally 100-1000x larger; 2**26 ≈ 6.7e7 comfortably covers
#: the experiments here (n = 10**4, so L/n > 6000) and keeps the record
#: process short (~ln L ≈ 18 records per block).
DEFAULT_L = 1 << 26


@dataclass(frozen=True)
class WMHSketch:
    """Output of Algorithm 3: ``{W_hash, W_val, ||a||}`` plus config.

    ``hashes[i]`` is the minimum hash of repetition ``i`` over the
    occupied slots of the expanded vector; ``values[i]`` is the rounded
    unit-vector entry of the block that attained it.  The zero vector
    yields ``hashes = +inf`` and ``values = 0``.
    """

    hashes: np.ndarray
    values: np.ndarray
    norm: float
    m: int
    L: int
    seed: int

    def storage_words(self) -> float:
        """1.5 words per sample (64-bit value + 32-bit hash) + the norm."""
        return WORDS_PER_SAMPLE_SAMPLING * self.m + 1.0


def simulate_block_minima(
    seed: int,
    m: int,
    block_ids: np.ndarray,
    counts: np.ndarray,
    max_rounds: int = 512,
) -> np.ndarray:
    """Simulate per-(repetition, block) prefix-minimum hashes.

    Parameters
    ----------
    seed, m:
        Sketch seed and repetition count; repetition ``r`` of any vector
        sketched with this seed uses stream key ``(seed, r, block)``.
    block_ids:
        Integer ids of the vector's occupied blocks (original vector
        indices), shape ``(B,)``.
    counts:
        Occupied slot counts ``k >= 1`` per block, shape ``(B,)``.
    max_rounds:
        Safety cap on simulation rounds; the expected number of records
        is ``ln k`` so 512 is unreachable in practice.

    Returns
    -------
    Array of shape ``(m, B)``: the minimum hash over the first
    ``counts[j]`` slots of block ``block_ids[j]``, per repetition.
    """
    block_ids = np.asarray(block_ids, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if np.any(counts < 1):
        raise ValueError("all block counts must be >= 1")
    n_blocks = block_ids.size
    keys = derive_key_grid(seed, np.arange(m, dtype=np.int64), block_ids).ravel()
    minima = counter_uniform(keys, 0)

    # Compacted state of the still-active cells.  Record 0 is the hash
    # of slot 1; every block has k >= 1 so it is always accepted.
    # Positions are tracked in float64 (exact up to 2**53, far beyond
    # any usable L).
    cell_ids = np.arange(keys.size)
    act_keys = keys
    act_z = minima.copy()
    act_pos = np.ones(keys.size, dtype=np.float64)
    act_limit = np.broadcast_to(counts.astype(np.float64), (m, n_blocks)).ravel()
    counter = 1
    rounds = 0
    golden = np.uint64(0x9E3779B97F4A7C15)
    mul1 = np.uint64(0xBF58476D1CE4E5B9)
    mul2 = np.uint64(0x94D049BB133111EB)
    inv_2_52 = 2.0**-52
    with np.errstate(over="ignore"):
        while cell_ids.size:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError(
                    "record simulation did not converge; this indicates a "
                    "corrupted occupancy count"
                )
            # Two splitmix64 stream draws per record, inlined to avoid
            # per-call overhead in this hot loop (equivalent to
            # counter_uniform(act_keys, counter) and counter + 1).
            state = act_keys + np.uint64(counter) * golden
            draws = []
            for offset in (np.uint64(0), golden):
                word = state + offset
                word = (word ^ (word >> np.uint64(30))) * mul1
                word = (word ^ (word >> np.uint64(27))) * mul2
                word = word ^ (word >> np.uint64(31))
                draws.append(
                    ((word >> np.uint64(12)).astype(np.float64) + 0.5) * inv_2_52
                )
            u_skip, u_value = draws
            counter += 2
            # Geometric(z) via inversion: smallest t >= 1 with u < z
            # after t trials.  log1p(-z) < 0 strictly since z in (0, 1).
            skip = np.ceil(np.log(u_skip) / np.log1p(-act_z))
            next_pos = act_pos + skip
            accepted = next_pos <= act_limit
            new_z = act_z[accepted] * u_value[accepted]
            kept = cell_ids[accepted]
            minima[kept] = new_z
            cell_ids = kept
            act_keys = act_keys[accepted]
            act_z = new_z
            act_pos = next_pos[accepted]
            act_limit = act_limit[accepted]
    return minima.reshape(m, n_blocks)


def simulate_block_minima_grouped(
    seed: int,
    m: int,
    block_ids: np.ndarray,
    query_indptr: np.ndarray,
    query_counts: np.ndarray,
    max_rounds: int = 512,
) -> np.ndarray:
    """Evaluate per-block prefix minima at many occupancy counts at once.

    The record stream of a ``(repetition, block)`` pair is a pure
    function of ``(seed, repetition, block)`` — every vector occupying
    that block replays the *same* stream and merely stops at its own
    occupancy ``k``.  When a matrix of vectors shares blocks, the
    stream therefore only needs simulating **once per block**, to the
    block's largest requested occupancy; each smaller occupancy's
    minimum is the ``z`` of the last record at position ``<= k``, read
    off as the records pass it.

    Parameters
    ----------
    seed, m:
        As in :func:`simulate_block_minima`.
    block_ids:
        Distinct block ids, shape ``(U,)``.
    query_indptr:
        ``(U + 1,)`` boundaries grouping ``query_counts`` by block;
        every block must own at least one query.
    query_counts:
        Requested occupancies ``k >= 1``, shape ``(Q,)``.  Duplicates
        are fine; keep each block's segment sorted (the batch sketcher
        does) so the final lookup hits searchsorted's monotone fast
        path.

    Returns
    -------
    ``(m, Q)`` array: entry ``(r, q)`` equals
    ``simulate_block_minima(seed, m, [block of q], [k_q])[r, 0]``
    exactly — the batch and scalar paths are bit-identical.
    """
    block_ids = np.asarray(block_ids, dtype=np.int64)
    query_indptr = np.asarray(query_indptr, dtype=np.int64)
    query_counts = np.asarray(query_counts, dtype=np.int64)
    num_blocks = block_ids.size
    num_queries = query_counts.size
    if query_indptr.size != num_blocks + 1 or (
        num_blocks and np.any(np.diff(query_indptr) < 1)
    ):
        raise ValueError("every block needs at least one query count")
    if np.any(query_counts < 1):
        raise ValueError("all query counts must be >= 1")
    if num_queries == 0:
        return np.empty((m, 0))

    # Composite keys ``cell * stride + position`` linearize the
    # (cell, position) order so both the record log and the queries
    # become one globally sorted axis.
    stride = int(query_counts.max()) + 2
    num_cells = m * num_blocks
    if num_cells * stride >= 2**62:
        raise ValueError("query counts too large to compose per-cell search keys")

    keys = derive_key_grid(seed, np.arange(m, dtype=np.int64), block_ids).ravel()

    # Phase 1 — simulate every cell's record stream once, to its
    # block's largest requested occupancy, logging records as
    # (cell, position, z) triplets.  Record 0 is (pos 1, u0).
    limits = query_counts[query_indptr[1:] - 1].astype(np.float64)  # k_max per block
    act_cell = np.arange(num_cells, dtype=np.int64)
    act_keys = keys
    act_z = counter_uniform(keys, 0)
    act_pos = np.ones(num_cells, dtype=np.float64)
    act_limit = np.broadcast_to(limits, (m, num_blocks)).ravel()
    log_cell = [act_cell]
    log_pos = [act_pos]
    log_z = [act_z]

    counter = 1
    rounds = 0
    golden = np.uint64(0x9E3779B97F4A7C15)
    mul1 = np.uint64(0xBF58476D1CE4E5B9)
    mul2 = np.uint64(0x94D049BB133111EB)
    inv_2_52 = 2.0**-52

    def _draw(state: np.ndarray) -> np.ndarray:
        word = (state ^ (state >> np.uint64(30))) * mul1
        word = (word ^ (word >> np.uint64(27))) * mul2
        word = word ^ (word >> np.uint64(31))
        return ((word >> np.uint64(12)).astype(np.float64) + 0.5) * inv_2_52

    with np.errstate(over="ignore"):
        while act_cell.size:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError(
                    "record simulation did not converge; this indicates a "
                    "corrupted occupancy count"
                )
            state = act_keys + np.uint64(counter) * golden
            u_skip = _draw(state)
            skip = np.ceil(np.log(u_skip) / np.log1p(-act_z))
            next_pos = act_pos + skip
            accepted = next_pos <= act_limit

            act_cell = act_cell[accepted]
            act_keys = act_keys[accepted]
            # The value draw is consumed only by accepted cells (pure
            # function of (key, counter), so skipping retiring cells
            # changes nothing downstream).
            u_value = _draw(act_keys + np.uint64(counter) * golden + golden)
            act_z = act_z[accepted] * u_value
            act_pos = next_pos[accepted]
            act_limit = act_limit[accepted]
            if act_cell.size:
                log_cell.append(act_cell)
                log_pos.append(act_pos)
                log_z.append(act_z)
            counter += 2

    # Phase 2 — answer every query with one binary search over the
    # sorted record log.  A stable sort by cell keeps each cell's
    # records in round order, i.e. ascending position; the answer for
    # occupancy k is the z of the last record at position <= k.
    rec_cell = np.concatenate(log_cell)
    rec_pos = np.concatenate(log_pos)
    rec_z = np.concatenate(log_z)
    order = np.argsort(rec_cell, kind="stable")
    rec_keys = rec_cell[order] * stride + rec_pos[order].astype(np.int64)
    rec_z = rec_z[order]

    entry_keys = (
        np.repeat(np.arange(num_blocks, dtype=np.int64), np.diff(query_indptr))
        * stride
        + query_counts
    )
    query_keys = (
        np.arange(m, dtype=np.int64)[:, None] * (num_blocks * stride)
        + entry_keys[None, :]
    )
    # query_keys.ravel() is globally sorted, which numpy's searchsorted
    # exploits; every cell owns a record at position 1, so the index
    # never underflows its cell's segment.
    hits = np.searchsorted(rec_keys, query_keys.ravel(), side="right") - 1
    return rec_z[hits].reshape(m, num_queries)


class WeightedMinHash(Sketcher):
    """The paper's Weighted MinHash inner-product sketcher (Algorithm 3).

    Parameters
    ----------
    m:
        Number of samples (sketch repetitions).
    seed:
        Random seed; sketches are comparable only across identical
        ``(m, seed, L)``.
    L:
        Discretization parameter of Algorithm 4.  Has **no** effect on
        sketch size, only on sketching cost (logarithmically) and on
        rounding fidelity; keep it well above the vector dimension
        (paper: at least ``n``, ideally ``100n``-``1000n``).
    """

    name = "WMH"

    def __init__(self, m: int, seed: int = 0, L: int = DEFAULT_L) -> None:
        if m <= 0:
            raise ValueError(f"sample count m must be positive, got {m}")
        if L < 1:
            raise ValueError(f"discretization parameter L must be >= 1, got {L}")
        self.m = int(m)
        self.seed = int(seed)
        self.L = int(L)

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "WeightedMinHash":
        """Size the sketch to ``words`` 64-bit words (1.5 words/sample)."""
        m = int(words / WORDS_PER_SAMPLE_SAMPLING)
        return cls(m=max(m, 1), seed=seed, **kwargs)

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.m + 1.0

    # ------------------------------------------------------------------

    def sketch(self, vector: SparseVector) -> WMHSketch:
        """Compress ``vector``; the zero vector yields an empty sketch."""
        if vector.nnz == 0:
            return WMHSketch(
                hashes=np.full(self.m, np.inf),
                values=np.zeros(self.m),
                norm=0.0,
                m=self.m,
                L=self.L,
                seed=self.seed,
            )
        rounded = round_vector(vector, self.L)
        return self.sketch_rounded(rounded)

    def sketch_rounded(self, rounded: RoundedVector) -> WMHSketch:
        """Sketch a pre-rounded vector (shared by ablation variants)."""
        if rounded.L != self.L:
            raise ValueError(
                f"rounded vector has L={rounded.L}, sketcher expects {self.L}"
            )
        minima = simulate_block_minima(
            self.seed, self.m, rounded.indices, rounded.counts
        )
        best = np.argmin(minima, axis=1)
        rows = np.arange(self.m)
        return WMHSketch(
            hashes=minima[rows, best],
            values=rounded.values[best],
            norm=rounded.norm,
            m=self.m,
            L=self.L,
            seed=self.seed,
        )

    def estimate(self, sketch_a: WMHSketch, sketch_b: WMHSketch) -> float:
        """Algorithm 5 — implemented in :mod:`repro.core.estimator`."""
        from repro.core.estimator import estimate_inner_product

        return estimate_inner_product(sketch_a, sketch_b)

    # ------------------------------------------------------------------
    # batch path
    # ------------------------------------------------------------------

    def _bank_params(self) -> dict[str, Any]:
        return {"m": self.m, "seed": self.seed, "L": self.L}

    def _check_query(self, sketch: WMHSketch) -> None:
        self._require(
            sketch.m == self.m and sketch.seed == self.seed and sketch.L == self.L,
            f"query sketch (m={sketch.m}, seed={sketch.seed}, L={sketch.L}) does "
            f"not match sketcher (m={self.m}, seed={self.seed}, L={self.L})",
        )

    def pack_bank(self, sketches: Sequence[WMHSketch]) -> SketchBank:
        for sketch in sketches:
            self._check_query(sketch)
        count = len(sketches)
        return SketchBank(
            kind=self.name,
            params=self._bank_params(),
            columns={
                "hashes": np.stack([s.hashes for s in sketches])
                if count
                else np.empty((0, self.m)),
                "values": np.stack([s.values for s in sketches])
                if count
                else np.empty((0, self.m)),
                "norms": np.array([s.norm for s in sketches], dtype=np.float64),
            },
            words_per_sketch=self.storage_words(),
        )

    def bank_row(self, bank: SketchBank, i: int) -> WMHSketch:
        self._check_bank(bank)
        return WMHSketch(
            hashes=bank.columns["hashes"][i],
            values=bank.columns["values"][i],
            norm=float(bank.columns["norms"][i]),
            m=self.m,
            L=self.L,
            seed=self.seed,
        )

    def sketch_batch(
        self, matrix: SparseMatrix | Sequence[SparseVector] | np.ndarray
    ) -> SketchBank:
        """Sketch all rows in one record simulation (Section 5 batched).

        Because every vector sketched under one seed replays the same
        per-``(repetition, block)`` record stream, the per-block minima
        depend only on the distinct ``(block, occupancy)`` pairs present
        in the matrix: those are simulated **once** and scattered back
        to the rows, so blocks shared across rows (common keys, common
        tokens) cost one simulation instead of one per row.  Results are
        bit-identical to the scalar loop.
        """
        rows = as_sparse_matrix(matrix)
        total = rows.num_rows
        hashes = np.full((total, self.m), np.inf)
        values = np.zeros((total, self.m))
        norms = np.zeros(total)

        # Algorithm 4 per row; empty rows keep the empty-sketch sentinel.
        active_rows: list[int] = []
        rounded: list[RoundedVector] = []
        for i in range(total):
            vector = rows.row(i)
            if vector.nnz == 0:
                continue
            rv = round_vector(vector, self.L)
            norms[i] = rv.norm
            active_rows.append(i)
            rounded.append(rv)

        if active_rows:
            blocks = np.concatenate([rv.indices for rv in rounded])
            counts = np.concatenate([rv.counts for rv in rounded])
            row_values = np.concatenate([rv.values for rv in rounded])
            sizes = np.array([rv.nnz for rv in rounded], dtype=np.int64)
            indptr = np.concatenate([[0], np.cumsum(sizes)])

            # Group the entries by (block, occupancy): each block's
            # record stream is simulated once — to its largest
            # occupancy — and each *distinct* (block, occupancy) pair
            # is evaluated once, no matter how many rows share it (in a
            # data lake, same-sized tables over a shared key domain
            # collapse to a fraction of the raw entry count).
            perm = np.lexsort((counts, blocks))
            sorted_blocks = blocks[perm]
            sorted_counts = counts[perm]
            new_pair = np.concatenate(
                [[True], (np.diff(sorted_blocks) != 0) | (np.diff(sorted_counts) != 0)]
            )
            query_of_entry = np.cumsum(new_pair) - 1
            query_blocks = sorted_blocks[new_pair]
            query_counts = sorted_counts[new_pair]
            new_block = np.concatenate([[True], np.diff(query_blocks) != 0])
            unique_blocks = query_blocks[new_block]
            query_indptr = np.concatenate(
                [np.flatnonzero(new_block), [query_blocks.size]]
            )

            minima = np.empty((self.m, query_blocks.size))
            blocks_per_chunk = max(1, _SIM_CELL_TARGET // max(self.m, 1))
            for ulo in range(0, unique_blocks.size, blocks_per_chunk):
                uhi = min(ulo + blocks_per_chunk, unique_blocks.size)
                q_lo, q_hi = int(query_indptr[ulo]), int(query_indptr[uhi])
                minima[:, q_lo:q_hi] = simulate_block_minima_grouped(
                    self.seed,
                    self.m,
                    unique_blocks[ulo:uhi],
                    query_indptr[ulo : uhi + 1] - q_lo,
                    query_counts[q_lo:q_hi],
                )
            inverse = np.empty(sorted_blocks.size, dtype=np.int64)
            inverse[perm] = query_of_entry

            # Scatter to rows and reduce, chunked to bound memory.
            row_index = np.array(active_rows, dtype=np.int64)
            for lo, hi in chunk_boundaries(indptr, _BATCH_CELL_TARGET // max(self.m, 1)):
                lo_nnz, hi_nnz = int(indptr[lo]), int(indptr[hi])
                cols = minima[:, inverse[lo_nnz:hi_nnz]]
                mins, argpos = segmented_min_argmin(cols, indptr[lo : hi + 1] - lo_nnz)
                chunk_rows = row_index[lo:hi]
                hashes[chunk_rows] = mins.T
                values[chunk_rows] = row_values[lo_nnz + argpos].T

        return SketchBank(
            kind=self.name,
            params=self._bank_params(),
            columns={"hashes": hashes, "values": values, "norms": norms},
            words_per_sketch=self.storage_words(),
        )

    def estimate_many(self, query_sketch: WMHSketch, bank: SketchBank) -> np.ndarray:
        """Algorithm 5 against every bank row in one vectorized pass."""
        self._check_bank(bank)
        self._check_query(query_sketch)
        out = np.zeros(len(bank))
        if len(bank) == 0 or query_sketch.norm == 0.0:
            return out
        norms = bank.columns["norms"]
        active = norms > 0.0
        if not active.any():
            return out
        bank_hashes = bank.columns["hashes"][active]
        bank_values = bank.columns["values"][active]
        mins = np.minimum(query_sketch.hashes[None, :], bank_hashes)
        totals = mins.sum(axis=1)
        m_tilde = (self.m / totals - 1.0) / self.L
        matches = query_sketch.hashes[None, :] == bank_hashes
        q = np.minimum(query_sketch.values[None, :] ** 2, bank_values**2)
        products = query_sketch.values[None, :] * bank_values
        terms = np.where(matches & (q > 0.0), products / np.where(q > 0.0, q, 1.0), 0.0)
        scaled = (m_tilde / self.m) * terms.sum(axis=1)
        out[active] = (query_sketch.norm * norms[active]) * scaled
        return out
