"""Weighted MinHash sketching (Algorithm 3), fast implementation.

Conceptually (paper, Section 4), Algorithm 3 MinHashes an *expanded*
vector ``ā`` of length ``n * L``: block ``i`` holds ``L`` slots of which
the first ``k_i = ã[i]^2 * L`` are occupied by the value ``ã[i]``,
where ``ã`` is the norm-scaled, rounded input (Algorithm 4).  The
sketch stores, per repetition, the minimum hash over all occupied slots
and the value of the block it came from, plus the original norm
``||a||``.

Hashing all ``n * L`` slots is infeasible — the paper requires
``L > n``, ideally ``100n`` or more.  Section 5 ("Efficient Weighted
Hashing") prescribes the *active index* technique of Gollapudi &
Panigrahy: within a block, only the prefix-minimum **records** of the
hash sequence matter, and the record process can be simulated directly:

* the hash of slot 1 is ``Uniform(0, 1)``;
* given the current record ``(pos, z)``, the next slot with hash below
  ``z`` is ``Geometric(z)`` slots ahead, and its hash is
  ``Uniform(0, z)``.

The minimum over a block's first ``k`` slots is the value of the last
record at position ``<= k``.  Expected records per block: ``O(log L)``.

**Consistency across vectors** is the subtle requirement: if two
vectors share block ``i``, their sketches must see the *same* hash
sequence there, with supports that are nested prefixes (the vector with
larger ``k_i`` sees a superset of slots).  We achieve this by driving
each block's record simulation from a counter-based splitmix64 stream
keyed on ``(seed, repetition, block)``: both vectors replay the
identical record stream and simply stop at their own ``k_i``.  This
reproduces the exact joint distribution of expanded-vector MinHash —
cross-checked against the naive implementation in
:mod:`repro.core.wmh_naive` — at ``O(nnz * m * log L)`` cost.

The simulation is vectorized over the full ``(m, nnz)`` grid: each
round advances every still-active (repetition, block) cell by one
record, and cells retire once their next record would overshoot their
block's occupancy.

**Memoization.**  A block's minima at occupancy ``k`` is a pure
function of ``(seed, m, block, k)`` — independent of which vector, which
batch, or which lake append asked for it.  Real lakes repeat column
occupancies constantly (same-sized tables over a shared key domain), so
both the scalar and the batch path consult a bounded, process-wide LRU
(:class:`MinimaCache`) before simulating, and only the missing
``(block, occupancy)`` pairs ever reach the record simulation.  Cache
hits return the exact array the simulation would produce, so results
are bit-identical with the cache on, off, cold, or warm.
"""

from __future__ import annotations

import os
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.bank import SketchBank
from repro.core.base import WORDS_PER_SAMPLE_SAMPLING, Sketcher
from repro.core.rounding import RoundedVector, round_unit_vector, round_vector
from repro.core.segments import chunk_boundaries, segmented_min_argmin_rows
from repro.hashing.splitmix import counter_uniform, derive_key_grid
from repro.vectors.sparse import SparseMatrix, SparseVector, as_sparse_matrix

__all__ = [
    "WMHSketch",
    "WeightedMinHash",
    "MinimaCache",
    "DEFAULT_L",
    "DEFAULT_CACHE_BYTES",
    "shared_minima_cache",
    "simulate_block_minima",
    "simulate_block_minima_grouped",
]

#: Working-set cap for batch sketching: the scatter phase materializes
#: a few ``(m, chunk_nnz)`` float64 arrays, so keep m * chunk_nnz near
#: this many elements (~64 MB per temporary at the default).
_BATCH_CELL_TARGET = 500_000

#: Cell cap per grouped-simulation call.  The record loop touches ~10
#: state arrays per round; keeping m * blocks_per_chunk around this
#: size keeps them cache-resident, which measures ~3x faster than one
#: monolithic pass.
_SIM_CELL_TARGET = 200_000

#: Cell cap for the estimation kernels: ``estimate_many`` and
#: ``estimate_cross`` bound every temporary to about this many float64
#: elements (a few MB), so scoring a query batch against a lake never
#: materializes ``(rows, m)``-shaped intermediates.
_ESTIMATE_CELL_TARGET = 500_000

#: Default discretization parameter.  The paper wants ``L`` at least
#: ``n`` and ideally 100-1000x larger; 2**26 ≈ 6.7e7 comfortably covers
#: the experiments here (n = 10**4, so L/n > 6000) and keeps the record
#: process short (~ln L ≈ 18 records per block).
DEFAULT_L = 1 << 26

def _env_cache_bytes(default: int = 256 * 1024 * 1024) -> int:
    """Parse ``REPRO_WMH_CACHE_BYTES``, surviving malformed values.

    A typo'd deployment config must not take down every ``import
    repro`` — an unparsable value warns and falls back to the default.
    """
    raw = os.environ.get("REPRO_WMH_CACHE_BYTES")
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring invalid REPRO_WMH_CACHE_BYTES={raw!r} "
            f"(expected an integer byte count); using {default}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default


#: Budget of the process-wide minima cache; override with the
#: ``REPRO_WMH_CACHE_BYTES`` environment variable (0 disables caching).
#: One entry costs ``8 * m`` bytes, so the default holds ~160k columns
#: at the experiments' m = 200.
DEFAULT_CACHE_BYTES = _env_cache_bytes()


class MinimaCache:
    """Bounded LRU of per-``(block, occupancy)`` record-process minima.

    Keys are ``(seed, m, block, occupancy)`` tuples (``L`` is deliberately
    absent: the record stream and its truncation depend only on the
    occupancy count, so sketchers differing *only* in ``L`` share
    entries).  Values are the contiguous ``(m,)`` float64 columns that
    :func:`simulate_block_minima` would produce — cache hits are
    bit-identical to re-simulation, so the cache can never change a
    sketch, only the time it takes to build one.

    Eviction is least-recently-used, bounded by ``max_bytes`` of array
    payload.  ``max_bytes <= 0`` disables the cache entirely.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._payload_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0

    @property
    def nbytes(self) -> int:
        """Current array payload held by the cache."""
        return self._payload_bytes

    def get(self, key: tuple) -> np.ndarray | None:
        column = self._entries.get(key)
        if column is None:
            self.misses += 1
            return None
        # Recency bookkeeping is pressure-gated: while the cache is
        # under half full there is no eviction pressure, so skipping
        # ``move_to_end`` cannot change *what* is cached — only the
        # order a hypothetical future eviction would pick — and it
        # removes the dominant per-hit cost on sketch-heavy ingests.
        if self._payload_bytes * 2 > self.max_bytes:
            self._entries.move_to_end(key)
        self.hits += 1
        return column

    def put(self, key: tuple, column: np.ndarray) -> None:
        if self.max_bytes <= 0:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._payload_bytes -= old.nbytes
        self._entries[key] = column
        self._payload_bytes += column.nbytes
        while self._payload_bytes > self.max_bytes and self._entries:
            _, dropped = self._entries.popitem(last=False)
            self._payload_bytes -= dropped.nbytes
            self.evictions += 1

    def put_many(self, keys: Sequence[tuple], columns: np.ndarray) -> None:
        """Insert ``columns[i]`` (rows of a ``(len(keys), m)`` array)
        under ``keys[i]``.

        Each row is copied into its own buffer so eviction actually
        releases memory entry by entry — storing views of ``columns``
        would keep the whole batch buffer pinned while any single view
        survived, silently breaking the ``max_bytes`` bound.
        """
        if self.max_bytes <= 0 or not len(keys):
            return
        entries = self._entries
        for key in keys:
            old = entries.pop(key, None)
            if old is not None:
                self._payload_bytes -= old.nbytes
        entries.update(zip(keys, map(np.copy, columns)))
        self._payload_bytes += columns.nbytes
        while self._payload_bytes > self.max_bytes and entries:
            _, dropped = entries.popitem(last=False)
            self._payload_bytes -= dropped.nbytes
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self._payload_bytes = 0

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "bytes": self._payload_bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: The process-wide cache every sketcher uses unless given its own.
_SHARED_CACHE = MinimaCache(DEFAULT_CACHE_BYTES)


def shared_minima_cache() -> MinimaCache:
    """The process-wide :class:`MinimaCache` (inspect, resize, clear)."""
    return _SHARED_CACHE


@dataclass(frozen=True)
class WMHSketch:
    """Output of Algorithm 3: ``{W_hash, W_val, ||a||}`` plus config.

    ``hashes[i]`` is the minimum hash of repetition ``i`` over the
    occupied slots of the expanded vector; ``values[i]`` is the rounded
    unit-vector entry of the block that attained it.  The zero vector
    yields ``hashes = +inf`` and ``values = 0``.
    """

    hashes: np.ndarray
    values: np.ndarray
    norm: float
    m: int
    L: int
    seed: int

    def storage_words(self) -> float:
        """1.5 words per sample (64-bit value + 32-bit hash) + the norm."""
        return WORDS_PER_SAMPLE_SAMPLING * self.m + 1.0


def simulate_block_minima(
    seed: int,
    m: int,
    block_ids: np.ndarray,
    counts: np.ndarray,
    max_rounds: int = 512,
) -> np.ndarray:
    """Simulate per-(repetition, block) prefix-minimum hashes.

    Parameters
    ----------
    seed, m:
        Sketch seed and repetition count; repetition ``r`` of any vector
        sketched with this seed uses stream key ``(seed, r, block)``.
    block_ids:
        Integer ids of the vector's occupied blocks (original vector
        indices), shape ``(B,)``.
    counts:
        Occupied slot counts ``k >= 1`` per block, shape ``(B,)``.
    max_rounds:
        Safety cap on simulation rounds; the expected number of records
        is ``ln k`` so 512 is unreachable in practice.

    Returns
    -------
    Array of shape ``(m, B)``: the minimum hash over the first
    ``counts[j]`` slots of block ``block_ids[j]``, per repetition.
    """
    block_ids = np.asarray(block_ids, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if np.any(counts < 1):
        raise ValueError("all block counts must be >= 1")
    n_blocks = block_ids.size
    keys = derive_key_grid(seed, np.arange(m, dtype=np.int64), block_ids).ravel()
    minima = counter_uniform(keys, 0)

    # Compacted state of the still-active cells.  Record 0 is the hash
    # of slot 1; every block has k >= 1 so it is always accepted.
    # Positions are tracked in float64 (exact up to 2**53, far beyond
    # any usable L).
    cell_ids = np.arange(keys.size)
    act_keys = keys
    act_z = minima.copy()
    act_pos = np.ones(keys.size, dtype=np.float64)
    act_limit = np.broadcast_to(counts.astype(np.float64), (m, n_blocks)).ravel()
    counter = 1
    rounds = 0
    golden = np.uint64(0x9E3779B97F4A7C15)
    mul1 = np.uint64(0xBF58476D1CE4E5B9)
    mul2 = np.uint64(0x94D049BB133111EB)
    inv_2_52 = 2.0**-52
    with np.errstate(over="ignore"):
        while cell_ids.size:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError(
                    "record simulation did not converge; this indicates a "
                    "corrupted occupancy count"
                )
            # Two splitmix64 stream draws per record, inlined to avoid
            # per-call overhead in this hot loop (equivalent to
            # counter_uniform(act_keys, counter) and counter + 1).
            state = act_keys + np.uint64(counter) * golden
            draws = []
            for offset in (np.uint64(0), golden):
                word = state + offset
                word = (word ^ (word >> np.uint64(30))) * mul1
                word = (word ^ (word >> np.uint64(27))) * mul2
                word = word ^ (word >> np.uint64(31))
                draws.append(
                    ((word >> np.uint64(12)).astype(np.float64) + 0.5) * inv_2_52
                )
            u_skip, u_value = draws
            counter += 2
            # Geometric(z) via inversion: smallest t >= 1 with u < z
            # after t trials.  log1p(-z) < 0 strictly since z in (0, 1).
            skip = np.ceil(np.log(u_skip) / np.log1p(-act_z))
            next_pos = act_pos + skip
            accepted = next_pos <= act_limit
            new_z = act_z[accepted] * u_value[accepted]
            kept = cell_ids[accepted]
            minima[kept] = new_z
            cell_ids = kept
            act_keys = act_keys[accepted]
            act_z = new_z
            act_pos = next_pos[accepted]
            act_limit = act_limit[accepted]
    return minima.reshape(m, n_blocks)


def simulate_block_minima_grouped(
    seed: int,
    m: int,
    block_ids: np.ndarray,
    query_indptr: np.ndarray,
    query_counts: np.ndarray,
    max_rounds: int = 512,
) -> np.ndarray:
    """Evaluate per-block prefix minima at many occupancy counts at once.

    The record stream of a ``(repetition, block)`` pair is a pure
    function of ``(seed, repetition, block)`` — every vector occupying
    that block replays the *same* stream and merely stops at its own
    occupancy ``k``.  When a matrix of vectors shares blocks, the
    stream therefore only needs simulating **once per block**, to the
    block's largest requested occupancy.

    The simulation and the query answering are **fused**: each block's
    query occupancies are visited in ascending order by a per-cell
    cursor, and the moment a record advance passes an occupancy ``k``
    the current ``z`` — the last record at position ``<= k`` — is
    written straight into the output.  No record log, no sort, no
    binary search, and no allocation proportional to the record count.

    Parameters
    ----------
    seed, m:
        As in :func:`simulate_block_minima`.
    block_ids:
        Distinct block ids, shape ``(U,)``.
    query_indptr:
        ``(U + 1,)`` boundaries grouping ``query_counts`` by block;
        every block must own at least one query.
    query_counts:
        Requested occupancies ``k >= 1``, shape ``(Q,)``.  Each block's
        segment must be sorted ascending (the batch sketcher's distinct
        ``(block, count)`` grouping guarantees this); duplicates are
        fine.

    Returns
    -------
    ``(m, Q)`` array: entry ``(r, q)`` equals
    ``simulate_block_minima(seed, m, [block of q], [k_q])[r, 0]``
    exactly — the batch and scalar paths are bit-identical.
    """
    block_ids = np.asarray(block_ids, dtype=np.int64)
    query_indptr = np.asarray(query_indptr, dtype=np.int64)
    query_counts = np.asarray(query_counts, dtype=np.int64)
    num_blocks = block_ids.size
    num_queries = query_counts.size
    if query_indptr.size != num_blocks + 1 or (
        num_blocks and np.any(np.diff(query_indptr) < 1)
    ):
        raise ValueError("every block needs at least one query count")
    if np.any(query_counts < 1):
        raise ValueError("all query counts must be >= 1")
    if num_queries == 0:
        return np.empty((m, 0))
    ascending = np.diff(query_counts) >= 0
    ascending[query_indptr[1:-1] - 1] = True  # block boundaries may reset
    if not ascending.all():
        raise ValueError("each block's query counts must be sorted ascending")

    keys = derive_key_grid(seed, np.arange(m, dtype=np.int64), block_ids).ravel()
    num_cells = m * num_blocks

    # Active-cell state, compacted as cells retire.  Record 0 is the
    # hash of slot 1; every block has k >= 1 so it is always accepted.
    # Each cell walks its block's ascending query occupancies with a
    # cursor (act_qptr .. qend) and flat output base repetition * Q.
    limits = query_counts[query_indptr[1:] - 1].astype(np.float64)  # k_max per block
    thresholds = query_counts.astype(np.float64)
    act_keys = keys
    act_z = counter_uniform(keys, 0)
    act_pos = np.ones(num_cells, dtype=np.float64)
    act_limit = np.broadcast_to(limits, (m, num_blocks)).ravel()
    act_qptr = np.tile(query_indptr[:-1], m)
    act_qend = np.tile(query_indptr[1:], m)
    act_base = np.repeat(np.arange(m, dtype=np.int64) * num_queries, num_blocks)
    out = np.empty(m * num_queries)
    last_query = num_queries - 1

    counter = 1
    rounds = 0
    golden = np.uint64(0x9E3779B97F4A7C15)
    mul1 = np.uint64(0xBF58476D1CE4E5B9)
    mul2 = np.uint64(0x94D049BB133111EB)
    inv_2_52 = 2.0**-52

    def _draw(state: np.ndarray) -> np.ndarray:
        word = (state ^ (state >> np.uint64(30))) * mul1
        word = (word ^ (word >> np.uint64(27))) * mul2
        word = word ^ (word >> np.uint64(31))
        return ((word >> np.uint64(12)).astype(np.float64) + 0.5) * inv_2_52

    with np.errstate(over="ignore"):
        while act_keys.size:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError(
                    "record simulation did not converge; this indicates a "
                    "corrupted occupancy count"
                )
            state = act_keys + np.uint64(counter) * golden
            u_skip = _draw(state)
            skip = np.ceil(np.log(u_skip) / np.log1p(-act_z))
            next_pos = act_pos + skip
            # Answer every query this advance passes: the current z is
            # the last record at position <= k exactly when the next
            # record lands beyond k.  Retiring cells (next_pos beyond
            # their largest occupancy) drain their remaining cursor
            # here, so every query is written exactly once.
            # Active cells always hold an unanswered query (a drained
            # cursor implies the record passed k_max, which retires the
            # cell below), so act_qptr is in range.
            ready = np.flatnonzero(thresholds[act_qptr] < next_pos)
            while ready.size:
                cursor = act_qptr[ready]
                out[act_base[ready] + cursor] = act_z[ready]
                cursor += 1
                act_qptr[ready] = cursor
                more = (cursor < act_qend[ready]) & (
                    thresholds[np.minimum(cursor, last_query)] < next_pos[ready]
                )
                ready = ready[more]
            # One flatnonzero feeds every compaction below (a boolean
            # mask would re-scan itself once per indexed array).
            keep = np.flatnonzero(next_pos <= act_limit)

            act_keys = act_keys.take(keep)
            # The value draw is consumed only by accepted cells (pure
            # function of (key, counter), so skipping retiring cells
            # changes nothing downstream).
            u_value = _draw(act_keys + np.uint64(counter) * golden + golden)
            act_z = act_z.take(keep) * u_value
            act_pos = next_pos.take(keep)
            act_limit = act_limit.take(keep)
            act_qptr = act_qptr.take(keep)
            act_qend = act_qend.take(keep)
            act_base = act_base.take(keep)
            counter += 2

    return out.reshape(m, num_queries)


class WeightedMinHash(Sketcher):
    """The paper's Weighted MinHash inner-product sketcher (Algorithm 3).

    Parameters
    ----------
    m:
        Number of samples (sketch repetitions).
    seed:
        Random seed; sketches are comparable only across identical
        ``(m, seed, L)``.
    L:
        Discretization parameter of Algorithm 4.  Has **no** effect on
        sketch size, only on sketching cost (logarithmically) and on
        rounding fidelity; keep it well above the vector dimension
        (paper: at least ``n``, ideally ``100n``-``1000n``).
    cache_bytes:
        Minima-memoization budget.  ``None`` (default) shares the
        process-wide :func:`shared_minima_cache`; ``0`` disables
        memoization for this sketcher; a positive value gives the
        sketcher a private :class:`MinimaCache` of that size.  The
        cache never changes sketch bits, only sketching time.
    """

    name = "WMH"

    def __init__(
        self,
        m: int,
        seed: int = 0,
        L: int = DEFAULT_L,
        cache_bytes: int | None = None,
    ) -> None:
        if m <= 0:
            raise ValueError(f"sample count m must be positive, got {m}")
        if L < 1:
            raise ValueError(f"discretization parameter L must be >= 1, got {L}")
        self.m = int(m)
        self.seed = int(seed)
        self.L = int(L)
        self._cache_bytes = cache_bytes
        if cache_bytes is None:
            self._cache: MinimaCache | None = _SHARED_CACHE
        elif cache_bytes <= 0:
            self._cache = None
        else:
            self._cache = MinimaCache(cache_bytes)

    def __getstate__(self) -> dict[str, Any]:
        # The memo cache never crosses process boundaries: pickling a
        # sketcher (e.g. to a parallel-ingest worker) ships only its
        # configuration; the receiving process re-resolves its own
        # shared or private cache.
        return {
            "m": self.m,
            "seed": self.seed,
            "L": self.L,
            "cache_bytes": self._cache_bytes,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(
            state["m"], state["seed"], state["L"], state["cache_bytes"]
        )

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "WeightedMinHash":
        """Size the sketch to ``words`` 64-bit words (1.5 words/sample)."""
        m = int(words / WORDS_PER_SAMPLE_SAMPLING)
        return cls(m=max(m, 1), seed=seed, **kwargs)

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.m + 1.0

    # ------------------------------------------------------------------

    def sketch(self, vector: SparseVector) -> WMHSketch:
        """Compress ``vector``; the zero vector yields an empty sketch."""
        if vector.nnz == 0:
            return WMHSketch(
                hashes=np.full(self.m, np.inf),
                values=np.zeros(self.m),
                norm=0.0,
                m=self.m,
                L=self.L,
                seed=self.seed,
            )
        rounded = round_vector(vector, self.L)
        return self.sketch_rounded(rounded)

    def _live_cache(self) -> MinimaCache | None:
        cache = self._cache
        if cache is None or not cache.enabled:
            return None
        return cache

    def sketch_rounded(self, rounded: RoundedVector) -> WMHSketch:
        """Sketch a pre-rounded vector (shared by ablation variants)."""
        if rounded.L != self.L:
            raise ValueError(
                f"rounded vector has L={rounded.L}, sketcher expects {self.L}"
            )
        # rounded.indices are sorted and unique (SparseVector
        # invariant), so they satisfy the distinct-pair precondition of
        # the cache-served resolver directly.
        minima = self._distinct_pair_minima(rounded.indices, rounded.counts).T
        best = np.argmin(minima, axis=1)
        rows = np.arange(self.m)
        return WMHSketch(
            hashes=minima[rows, best],
            values=rounded.values[best],
            norm=rounded.norm,
            m=self.m,
            L=self.L,
            seed=self.seed,
        )

    def estimate(self, sketch_a: WMHSketch, sketch_b: WMHSketch) -> float:
        """Algorithm 5 — implemented in :mod:`repro.core.estimator`."""
        from repro.core.estimator import estimate_inner_product

        return estimate_inner_product(sketch_a, sketch_b)

    # ------------------------------------------------------------------
    # batch path
    # ------------------------------------------------------------------

    def _bank_params(self) -> dict[str, Any]:
        return {"m": self.m, "seed": self.seed, "L": self.L}

    def bank_layout(self) -> dict[str, tuple[tuple[int, ...], str]]:
        return {
            "hashes": ((self.m,), "<f8"),
            "values": ((self.m,), "<f8"),
            "norms": ((), "<f8"),
        }

    def _check_query(self, sketch: WMHSketch) -> None:
        self._require(
            sketch.m == self.m and sketch.seed == self.seed and sketch.L == self.L,
            f"query sketch (m={sketch.m}, seed={sketch.seed}, L={sketch.L}) does "
            f"not match sketcher (m={self.m}, seed={self.seed}, L={self.L})",
        )

    def pack_bank(self, sketches: Sequence[WMHSketch]) -> SketchBank:
        for sketch in sketches:
            self._check_query(sketch)
        count = len(sketches)
        return SketchBank(
            kind=self.name,
            params=self._bank_params(),
            columns={
                "hashes": np.stack([s.hashes for s in sketches])
                if count
                else np.empty((0, self.m)),
                "values": np.stack([s.values for s in sketches])
                if count
                else np.empty((0, self.m)),
                "norms": np.array([s.norm for s in sketches], dtype=np.float64),
            },
            words_per_sketch=self.storage_words(),
        )

    def signature_length(self) -> int:
        return self.m

    def signature_key(self, sketch: WMHSketch) -> np.ndarray:
        """Per-repetition minimum hashes — equal entries certify
        collisions, which is exactly what banded LSH buckets on."""
        self._check_query(sketch)
        return sketch.hashes

    def signature_keys(self, bank: SketchBank) -> np.ndarray:
        self._check_bank(bank)
        return bank.columns["hashes"]

    def bank_row(self, bank: SketchBank, i: int) -> WMHSketch:
        self._check_bank(bank)
        return WMHSketch(
            hashes=bank.columns["hashes"][i],
            values=bank.columns["values"][i],
            norm=float(bank.columns["norms"][i]),
            m=self.m,
            L=self.L,
            seed=self.seed,
        )

    def _distinct_pair_minima(
        self, query_blocks: np.ndarray, query_counts: np.ndarray
    ) -> np.ndarray:
        """Minima for distinct ``(block, occupancy)`` pairs, cache-served.

        Input arrays must be lexsorted by ``(block, count)`` with no
        duplicate pairs (the batch sketcher guarantees this).  Cached
        pairs are copied out of the memo cache; only the misses are
        simulated — one record stream per missing block, evaluated at
        that block's missing occupancies — and inserted afterwards.

        Returns a ``(Q, m)`` array with one contiguous row per pair
        (the transpose of the simulators' layout, which is what the
        row-major scatter phase wants to gather from).
        """
        num_queries = query_blocks.size
        out = np.empty((num_queries, self.m))
        cache = self._live_cache()
        if cache is not None and len(cache):
            seed, m = self.seed, self.m
            missing: list[int] = []
            for q, (block, count) in enumerate(
                zip(query_blocks.tolist(), query_counts.tolist())
            ):
                column = cache.get((seed, m, block, count))
                if column is None:
                    missing.append(q)
                else:
                    out[q] = column
            miss_idx = np.asarray(missing, dtype=np.int64)
        else:
            miss_idx = np.arange(num_queries, dtype=np.int64)

        if miss_idx.size:
            miss_blocks = query_blocks[miss_idx]
            miss_counts = query_counts[miss_idx]
            # The miss subset inherits the (block, count) ordering, so
            # grouping by block is a run-length scan.
            new_block = np.concatenate([[True], np.diff(miss_blocks) != 0])
            unique_blocks = miss_blocks[new_block]
            miss_indptr = np.concatenate(
                [np.flatnonzero(new_block), [miss_blocks.size]]
            )
            sim = np.empty((miss_idx.size, self.m))
            blocks_per_chunk = max(1, _SIM_CELL_TARGET // max(self.m, 1))
            for ulo in range(0, unique_blocks.size, blocks_per_chunk):
                uhi = min(ulo + blocks_per_chunk, unique_blocks.size)
                q_lo, q_hi = int(miss_indptr[ulo]), int(miss_indptr[uhi])
                sim[q_lo:q_hi] = simulate_block_minima_grouped(
                    self.seed,
                    self.m,
                    unique_blocks[ulo:uhi],
                    miss_indptr[ulo : uhi + 1] - q_lo,
                    miss_counts[q_lo:q_hi],
                ).T
            out[miss_idx] = sim
            if cache is not None:
                seed, m = self.seed, self.m
                cache.put_many(
                    [
                        (seed, m, block, count)
                        for block, count in zip(
                            miss_blocks.tolist(), miss_counts.tolist()
                        )
                    ],
                    sim,
                )
        return out

    def _sketch_batch(
        self, matrix: SparseMatrix | Sequence[SparseVector] | np.ndarray
    ) -> SketchBank:
        """Sketch all rows in one record simulation (Section 5 batched).

        Because every vector sketched under one seed replays the same
        per-``(repetition, block)`` record stream, the per-block minima
        depend only on the distinct ``(block, occupancy)`` pairs present
        in the matrix: those are looked up in the memo cache or
        simulated **once** and scattered back to the rows, so blocks
        shared across rows (common keys, common tokens) cost one
        simulation instead of one per row.  Results are bit-identical
        to the scalar loop.
        """
        rows = as_sparse_matrix(matrix).without_explicit_zeros()
        total = rows.num_rows
        hashes = np.full((total, self.m), np.inf)
        values = np.zeros((total, self.m))
        norms = np.zeros(total)

        # Algorithm 4 per row, straight off the CSR slices (identical
        # arithmetic to round_vector, minus the per-row SparseVector
        # shuffle); empty rows keep the empty-sketch sentinel.
        mat_indptr = rows.indptr
        active_rows: list[int] = []
        parts_blocks: list[np.ndarray] = []
        parts_values: list[np.ndarray] = []
        parts_counts: list[np.ndarray] = []
        for i in range(total):
            lo, hi = int(mat_indptr[i]), int(mat_indptr[i + 1])
            if lo == hi:
                continue
            vals = rows.values[lo:hi]
            nrm = float(np.linalg.norm(vals))
            if nrm == 0.0:
                # Entries are nonzero but their squares underflowed;
                # the scalar path's round_vector rejects this too.
                raise ValueError("cannot round the zero vector")
            rounded_vals, row_counts = round_unit_vector(vals / nrm, self.L)
            keep = row_counts > 0
            norms[i] = nrm
            active_rows.append(i)
            parts_blocks.append(rows.indices[lo:hi][keep])
            parts_values.append(rounded_vals[keep])
            parts_counts.append(row_counts[keep])

        if active_rows:
            blocks = np.concatenate(parts_blocks)
            counts = np.concatenate(parts_counts)
            row_values = np.concatenate(parts_values)
            sizes = np.array([part.size for part in parts_blocks], dtype=np.int64)
            indptr = np.concatenate([[0], np.cumsum(sizes)])

            # Group the entries by (block, occupancy): each *distinct*
            # (block, occupancy) pair is resolved once, no matter how
            # many rows share it (in a data lake, same-sized tables
            # over a shared key domain collapse to a fraction of the
            # raw entry count).
            perm = np.lexsort((counts, blocks))
            sorted_blocks = blocks[perm]
            sorted_counts = counts[perm]
            new_pair = np.concatenate(
                [[True], (np.diff(sorted_blocks) != 0) | (np.diff(sorted_counts) != 0)]
            )
            query_of_entry = np.cumsum(new_pair) - 1
            query_blocks = sorted_blocks[new_pair]
            query_counts = sorted_counts[new_pair]
            inverse = np.empty(sorted_blocks.size, dtype=np.int64)
            inverse[perm] = query_of_entry

            minima = self._distinct_pair_minima(query_blocks, query_counts)

            # Scatter to rows and reduce, chunked to bound memory.  The
            # row-major (entries, m) layout makes the gather contiguous
            # per entry and the reduction emit (rows, m) directly.
            row_index = np.array(active_rows, dtype=np.int64)
            for lo, hi in chunk_boundaries(indptr, _BATCH_CELL_TARGET // max(self.m, 1)):
                lo_nnz, hi_nnz = int(indptr[lo]), int(indptr[hi])
                gathered = minima[inverse[lo_nnz:hi_nnz]]
                mins, argpos = segmented_min_argmin_rows(
                    gathered, indptr[lo : hi + 1] - lo_nnz
                )
                chunk_rows = row_index[lo:hi]
                hashes[chunk_rows] = mins
                values[chunk_rows] = row_values[lo_nnz + argpos]

        return SketchBank(
            kind=self.name,
            params=self._bank_params(),
            columns={"hashes": hashes, "values": values, "norms": norms},
            words_per_sketch=self.storage_words(),
        )

    def _estimate_block(
        self,
        query_hashes: np.ndarray,
        query_values: np.ndarray,
        bank_hashes: np.ndarray,
        bank_values: np.ndarray,
        bank_values_sq: np.ndarray | None = None,
    ) -> np.ndarray:
        """Algorithm 5 for one ``(..., m)``-aligned block, fused.

        ``query_*`` and ``bank_*`` must broadcast against each other on
        the leading axes; the result drops the trailing ``m`` axis and
        omits the norm product (applied by the callers).  Min-sum,
        match detection, and the importance-weighted term sum run over
        one block so the callers can bound every temporary by chunking.
        ``bank_values_sq`` lets :meth:`estimate_cross` hoist the
        query-independent ``bank_values**2`` out of its per-query loop.
        """
        mins = np.minimum(query_hashes, bank_hashes)
        totals = mins.sum(axis=-1)
        m_tilde = (self.m / totals - 1.0) / self.L
        matches = query_hashes == bank_hashes
        if bank_values_sq is None:
            bank_values_sq = np.square(bank_values)
        q = np.minimum(np.square(query_values), bank_values_sq)
        products = query_values * bank_values
        terms = np.where(matches & (q > 0.0), products / np.where(q > 0.0, q, 1.0), 0.0)
        return (m_tilde / self.m) * terms.sum(axis=-1)

    def estimate_many(self, query_sketch: WMHSketch, bank: SketchBank) -> np.ndarray:
        """Algorithm 5 against every bank row in one fused chunked pass.

        Temporaries are bounded to ``(chunk, m)`` blocks of roughly
        :data:`_ESTIMATE_CELL_TARGET` elements — the full-lake
        ``(rows, m)`` intermediates of the naive formulation never
        materialize — and every per-row value is bit-identical to the
        unchunked arithmetic (each row's estimate depends only on that
        row).
        """
        self._check_bank(bank)
        self._check_query(query_sketch)
        count = len(bank)
        out = np.zeros(count)
        if count == 0 or query_sketch.norm == 0.0:
            return out
        norms = bank.columns["norms"]
        bank_hashes = bank.columns["hashes"]
        bank_values = bank.columns["values"]
        query_hashes = query_sketch.hashes[None, :]
        query_values = query_sketch.values[None, :]
        chunk = max(1, _ESTIMATE_CELL_TARGET // max(self.m, 1))
        for lo in range(0, count, chunk):
            hi = min(lo + chunk, count)
            scaled = self._estimate_block(
                query_hashes,
                query_values,
                bank_hashes[lo:hi],
                bank_values[lo:hi],
            )
            block = (query_sketch.norm * norms[lo:hi]) * scaled
            # The zero vector's sentinel rows (norm 0, hashes +inf) go
            # through the arithmetic too; pin them to exact +0.0.
            block[norms[lo:hi] == 0.0] = 0.0
            out[lo:hi] = block
        return out

    def estimate_cross(self, query_bank: SketchBank, bank: SketchBank) -> np.ndarray:
        """Algorithm 5 for every query/row pair, one bank traversal.

        Row ``i`` of the result is bit-identical to
        ``estimate_many(bank_row(query_bank, i), bank)``.  The loop
        nest is bank-chunk-outer / query-inner: each bounded
        ``(row_chunk, m)`` slice of the bank columns is loaded once and
        stays cache-resident while the *whole* query batch scores
        against it, so the bank streams through memory once per batch
        instead of once per query — and the inner arithmetic is the
        exact 2-D kernel of :meth:`estimate_many`.
        """
        self._check_bank(query_bank)
        self._check_bank(bank)
        num_queries = len(query_bank)
        count = len(bank)
        out = np.zeros((num_queries, count))
        if num_queries == 0 or count == 0:
            return out
        q_hashes = query_bank.columns["hashes"]
        q_values = query_bank.columns["values"]
        q_norms = query_bank.columns["norms"]
        bank_hashes = bank.columns["hashes"]
        bank_values = bank.columns["values"]
        norms = bank.columns["norms"]
        row_chunk = max(1, _ESTIMATE_CELL_TARGET // max(self.m, 1))
        for lo in range(0, count, row_chunk):
            hi = min(lo + row_chunk, count)
            block_hashes = bank_hashes[lo:hi]
            block_values = bank_values[lo:hi]
            block_values_sq = np.square(block_values)
            block_norms = norms[lo:hi]
            block_zero = block_norms == 0.0
            for qi in range(num_queries):
                scaled = self._estimate_block(
                    q_hashes[qi][None, :],
                    q_values[qi][None, :],
                    block_hashes,
                    block_values,
                    block_values_sq,
                )
                row = (q_norms[qi] * block_norms) * scaled
                # The zero vector's sentinel bank rows go through the
                # arithmetic too; pin them to exact +0.0 (as
                # estimate_many does).
                row[block_zero] = 0.0
                out[qi, lo:hi] = row
        # estimate_many short-circuits zero-norm queries to all zeros.
        out[q_norms == 0.0, :] = 0.0
        return out
