"""Columnar storage for many sketches of one configuration.

The paper's flagship workload (Section 1.2 dataset search) sketches an
entire data lake once and scores a single query against thousands of
stored sketches.  Holding those sketches as a Python list of per-vector
objects forces every downstream consumer into a scalar loop;
:class:`SketchBank` instead stacks the sketch fields into contiguous
arrays (one row per sketched vector) so ``estimate_many`` can score a
query against the whole bank with a handful of vectorized operations.

A bank is produced by ``Sketcher.sketch_batch`` (or by packing existing
scalar sketches with ``Sketcher.pack_bank``) and is deliberately dumb:
it knows its column arrays, which sketcher *kind* produced it, and the
configuration ``params`` two banks must share to be comparable.  All
method-specific logic (how to turn a row back into a scalar sketch, how
to estimate against a query) stays on the :class:`~repro.core.base.Sketcher`.

Banks are sliceable (``bank[2:10]`` is a bank over those rows),
concatenable (:meth:`SketchBank.concat`), and serializable
(:func:`repro.io.serialize.pack_bank`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = ["SketchBank"]

#: Column name used by the generic object-dtype fallback bank.
OBJECT_COLUMN = "sketches"


@dataclass(frozen=True)
class SketchBank:
    """A columnar stack of sketches sharing one configuration.

    Attributes
    ----------
    kind:
        ``Sketcher.name`` of the method that produced the bank.
    params:
        The configuration (seed, sample count, ...) every row shares;
        two banks (or a query sketch and a bank) are comparable only
        when these match exactly.
    columns:
        Named arrays whose first axis indexes the sketched vectors.
        Vectorized sketchers store real field arrays (``hashes``,
        ``values``, ``norms`` ...); the generic fallback stores one
        object-dtype column of scalar sketch objects.
    words_per_sketch:
        Storage footprint of one row in 64-bit words, following the
        paper's Section 5 accounting (1.5 words per sampling entry).
    """

    kind: str
    params: Mapping[str, Any]
    columns: Mapping[str, np.ndarray]
    words_per_sketch: float = 0.0
    _length: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("a SketchBank needs at least one column")
        lengths = {name: arr.shape[0] for name, arr in self.columns.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(
                f"column first-axis lengths disagree: {lengths}"
            )
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "columns", dict(self.columns))
        object.__setattr__(self, "_length", next(iter(lengths.values())))

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def __getitem__(self, selector: slice | np.ndarray | Sequence[int]) -> "SketchBank":
        """Row-select into a new bank (slice, index array, or bool mask)."""
        if isinstance(selector, (int, np.integer)):
            selector = slice(int(selector), int(selector) + 1)
        return SketchBank(
            kind=self.kind,
            params=self.params,
            columns={name: arr[selector] for name, arr in self.columns.items()},
            words_per_sketch=self.words_per_sketch,
        )

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------

    @classmethod
    def concat(cls, banks: Sequence["SketchBank"]) -> "SketchBank":
        """Stack compatible banks into one (same kind/params/columns)."""
        if not banks:
            raise ValueError("cannot concatenate zero banks")
        if len(banks) == 1:
            # Zero-copy fast path: a single bank is already the answer.
            # This is what keeps stored banks (memory-mapped shard
            # views) un-copied through SketchIndex._compact when the
            # index holds exactly one cached prefix.
            return banks[0]
        first = banks[0]
        for other in banks[1:]:
            if other.kind != first.kind or dict(other.params) != dict(first.params):
                raise ValueError(
                    f"cannot concatenate banks of kind/params "
                    f"({first.kind}, {first.params}) and "
                    f"({other.kind}, {other.params})"
                )
            if set(other.columns) != set(first.columns):
                raise ValueError("cannot concatenate banks with different columns")
        return cls(
            kind=first.kind,
            params=first.params,
            columns={
                name: np.concatenate([bank.columns[name] for bank in banks])
                for name in first.columns
            },
            words_per_sketch=first.words_per_sketch,
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def storage_words(self) -> float:
        """Total footprint in 64-bit words (paper accounting)."""
        return self.words_per_sketch * len(self)

    def nbytes(self) -> int:
        """In-memory footprint of the column arrays, in bytes.

        Object-dtype columns count pointer size only (their sketches
        live on the heap); numeric columns count raw array bytes.  A
        zero-copy bank over a memory-mapped shard reports the mapped
        size, not resident memory.
        """
        return int(sum(arr.nbytes for arr in self.columns.values()))

    def is_object_bank(self) -> bool:
        """True for generic fallback banks of scalar sketch objects."""
        return (
            OBJECT_COLUMN in self.columns
            and self.columns[OBJECT_COLUMN].dtype == object
        )

    def __repr__(self) -> str:
        return (
            f"SketchBank(kind={self.kind!r}, sketches={len(self)}, "
            f"columns={sorted(self.columns)}, words={self.storage_words():.1f})"
        )
