"""Median-of-t failure-probability boosting (Theorem 2, final step).

A single sketch of size ``m = O(1/ε²)`` achieves the Theorem 2 error
bound with probability 2/3.  Concatenating ``t = O(log 1/δ)``
independently seeded sketches and returning the **median** of the ``t``
estimates boosts the success probability to ``1 - δ`` (standard
Chernoff argument; paper, Appendix A.2 "Putting everything together").

:class:`MedianBoosted` is generic: it wraps any :class:`Sketcher`
factory, so it boosts WMH, MinHash, KMV, ... identically.  Note that
the paper's experiments use *single* sketches for the sampling methods
("we use a single sketch without any median estimate") — boosting is
exercised by the ablation benchmarks instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.base import SketchMismatchError, Sketcher
from repro.vectors.sparse import SparseVector

__all__ = ["MedianBoosted", "MedianSketch"]


@dataclass(frozen=True)
class MedianSketch:
    """Concatenation of ``t`` independently seeded sketches."""

    parts: tuple[Any, ...]

    @property
    def t(self) -> int:
        return len(self.parts)


class MedianBoosted(Sketcher):
    """Boost any sketcher to ``1 - δ`` success via median-of-t.

    Parameters
    ----------
    factory:
        Callable ``(seed) -> Sketcher`` building one inner sketch; each
        of the ``t`` parts gets a distinct derived seed.
    t:
        Number of independent repetitions (odd values make the median
        unambiguous; even values average the two central estimates).
    seed:
        Master seed from which the ``t`` part seeds are derived.
    """

    name = "median"

    def __init__(self, factory: Callable[[int], Sketcher], t: int, seed: int = 0) -> None:
        if t <= 0:
            raise ValueError(f"repetition count t must be positive, got {t}")
        self.t = int(t)
        self.seed = int(seed)
        # Large stride keeps derived seeds distinct from typical user seeds.
        self._parts = tuple(factory(seed * 1_000_003 + 7919 * i + 1) for i in range(t))
        self.name = f"median{t}({self._parts[0].name})"

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "MedianBoosted":
        raise NotImplementedError(
            "MedianBoosted splits a budget across parts; use "
            "MedianBoosted.split_storage instead"
        )

    @classmethod
    def split_storage(
        cls,
        inner_cls: type[Sketcher],
        words: int,
        t: int,
        seed: int = 0,
        **inner_kwargs: Any,
    ) -> "MedianBoosted":
        """Build a median-of-t sketcher whose *total* budget is ``words``.

        Each part gets ``words / t`` so that comparisons against single
        sketches remain storage-equalized.
        """
        per_part = max(int(words / t), 1)

        def factory(part_seed: int) -> Sketcher:
            return inner_cls.from_storage(per_part, seed=part_seed, **inner_kwargs)

        return cls(factory, t=t, seed=seed)

    def storage_words(self) -> float:
        return float(sum(part.storage_words() for part in self._parts))

    def sketch(self, vector: SparseVector) -> MedianSketch:
        return MedianSketch(parts=tuple(part.sketch(vector) for part in self._parts))

    def estimate(self, sketch_a: MedianSketch, sketch_b: MedianSketch) -> float:
        if sketch_a.t != sketch_b.t:
            raise SketchMismatchError(
                f"repetition counts differ: {sketch_a.t} vs {sketch_b.t}"
            )
        estimates: Sequence[float] = [
            part.estimate(pa, pb)
            for part, pa, pb in zip(self._parts, sketch_a.parts, sketch_b.parts)
        ]
        return float(np.median(estimates))
