"""Inner-product estimation from Weighted MinHash sketches (Algorithm 5).

Given sketches ``W_a = {W_hash_a, W_val_a, ||a||}`` and
``W_b = {W_hash_b, W_val_b, ||b||}`` built with identical
``(m, seed, L)``:

1. ``q_i = min(W_val_a[i]^2, W_val_b[i]^2)`` — the sampling probability
   (up to the common normalizer) of the matched block, used to
   importance-weight the sample;
2. ``M̃ = (1/L) * (m / sum_i min(W_hash_a[i], W_hash_b[i]) - 1)`` — a
   Flajolet–Martin style estimate of the *weighted union size*
   ``M = sum_j max(ã[j]^2, b̃[j]^2)`` (it is exactly a distinct-elements
   estimate of the expanded supports' union, divided by ``L``);
3. ``I = (M̃/m) * sum_i 1[hash match] * W_val_a[i] * W_val_b[i] / q_i``;
4. return ``||a|| * ||b|| * I``.

Theorem 2: with ``m = O(log(1/δ)/ε^2)`` samples (median-boosted, see
:mod:`repro.core.median`) the error is at most
``ε * max(||a_I||·||b||, ||a||·||b_I||)`` with probability ``1 - δ``.

Two estimator variants are provided for the ablation study:

* ``weighted_union="fm"`` — the paper's estimator (step 2 above);
* ``weighted_union="jaccard"`` — estimates ``M`` from the observed
  collision rate instead: the weighted Jaccard ``J̄`` satisfies
  ``M = 2 / (1 + J̄)`` for unit vectors (since ``Σmin + Σmax = 2``),
  and the match fraction is an unbiased estimate of ``J̄``.  This
  variant needs no hash values at all, which is what makes the ICWS
  sketch (:mod:`repro.sketches.icws`) usable for inner products.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SketchMismatchError
from repro.core.wmh import WMHSketch

__all__ = [
    "estimate_inner_product",
    "estimate_weighted_union",
    "estimate_weighted_union_from_jaccard",
]


def _check_compatible(sketch_a: WMHSketch, sketch_b: WMHSketch) -> None:
    if sketch_a.m != sketch_b.m:
        raise SketchMismatchError(
            f"sample counts differ: {sketch_a.m} vs {sketch_b.m}"
        )
    if sketch_a.seed != sketch_b.seed:
        raise SketchMismatchError(
            f"seeds differ: {sketch_a.seed} vs {sketch_b.seed}"
        )
    if sketch_a.L != sketch_b.L:
        raise SketchMismatchError(
            f"discretization parameters differ: {sketch_a.L} vs {sketch_b.L}"
        )


def estimate_weighted_union(sketch_a: WMHSketch, sketch_b: WMHSketch) -> float:
    """The ``M̃`` estimator (line 2 of Algorithm 5).

    ``min(W_hash_a[i], W_hash_b[i])`` is the minimum hash over the
    *union* of the two expanded supports (block occupancies are nested
    prefixes, so the smaller of the two per-block minima is the union's
    block minimum).  Lemma 1 of the paper then gives a ``(1 ± ε)``
    estimate of ``|Ā ∪ B̄| = L * M``.
    """
    mins = np.minimum(sketch_a.hashes, sketch_b.hashes)
    total = float(mins.sum())
    if total <= 0.0 or not np.isfinite(total):
        raise ValueError("invalid hash minima; were the sketches empty?")
    m = sketch_a.m
    return (m / total - 1.0) / sketch_a.L


def estimate_weighted_union_from_jaccard(match_fraction: float) -> float:
    """Ablation variant: ``M = 2 / (1 + J̄)`` for unit-norm inputs.

    ``Σ_j min(ã_j², b̃_j²) + Σ_j max(ã_j², b̃_j²) = ||ã||² + ||b̃||² = 2``,
    so the weighted union ``M = Σmax`` is determined by the weighted
    Jaccard ``J̄ = Σmin/Σmax`` alone, and ``J̄`` is estimated by the
    collision rate of the sketches.
    """
    if not 0.0 <= match_fraction <= 1.0:
        raise ValueError(f"match fraction must be in [0, 1], got {match_fraction}")
    return 2.0 / (1.0 + match_fraction)


def estimate_inner_product(
    sketch_a: WMHSketch,
    sketch_b: WMHSketch,
    weighted_union: str = "fm",
) -> float:
    """Algorithm 5: estimate ``<a, b>`` from two WMH sketches.

    Parameters
    ----------
    sketch_a, sketch_b:
        Sketches produced by :class:`repro.core.wmh.WeightedMinHash`
        instances with identical ``(m, seed, L)``.
    weighted_union:
        ``"fm"`` for the paper's Flajolet–Martin style ``M̃`` (default),
        ``"jaccard"`` for the collision-rate variant (ablation; also
        the only option for hash-free sketches like ICWS).
    """
    _check_compatible(sketch_a, sketch_b)
    if sketch_a.norm == 0.0 or sketch_b.norm == 0.0:
        return 0.0

    matches = sketch_a.hashes == sketch_b.hashes
    if weighted_union == "fm":
        m_tilde = estimate_weighted_union(sketch_a, sketch_b)
    elif weighted_union == "jaccard":
        m_tilde = estimate_weighted_union_from_jaccard(float(matches.mean()))
    else:
        raise ValueError(f"unknown weighted_union variant: {weighted_union!r}")

    # q_i = min(val_a^2, val_b^2); guarded division because q is only
    # meaningful (and provably non-zero) on matched repetitions.
    q = np.minimum(sketch_a.values**2, sketch_b.values**2)
    products = sketch_a.values * sketch_b.values
    terms = np.where(matches & (q > 0.0), products / np.where(q > 0.0, q, 1.0), 0.0)
    scaled_sum = (m_tilde / sketch_a.m) * float(terms.sum())
    return sketch_a.norm * sketch_b.norm * scaled_sum
