"""Vector rounding for Weighted MinHash (Algorithm 4 of the paper).

Given a *unit* vector ``z`` and an integer discretization parameter
``L``, produce a unit vector ``z̃`` whose squared entries are all
integer multiples of ``1/L``:

1. round every squared entry **down**:
   ``z̃[i] = sign(z[i]) * sqrt(floor(z[i]^2 * L) / L)``;
2. find ``i* = argmax_i |z[i]|`` and add the lost mass back:
   ``z̃[i*]^2 += 1 - ||z̃||^2``.

The scheme is deliberately non-standard (paper, footnote 4): rounding
every entry down except the largest — which is rounded *up* — yields
small **relative** error in the analysis and avoids additive error
depending on ``1/L``.  Lemma 3 of the paper proves the invariants that
the tests in ``tests/core/test_rounding.py`` enforce:

* the output is exactly unit norm (in exact arithmetic: the occupancy
  counts sum to exactly ``L``);
* every squared output entry is an integer multiple of ``1/L``;
* sketching is invariant under the rounding, i.e. Algorithm 3 produces
  identical sketches for ``a`` and ``a' = ||a|| * round(a/||a||, L)``.

Implementation notes
--------------------
We work on the sparse representation and return, alongside the rounded
values, the integer occupancy counts ``k[i] = z̃[i]^2 * L`` — these are
exactly the number of occupied slots in block ``i`` of the conceptually
expanded vector that Algorithm 3 MinHashes, so the sketcher consumes
them directly.  All bookkeeping is done on the integer counts, which
makes "sums to exactly L" an exact integer statement rather than a
floating-point approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vectors.sparse import SparseVector

__all__ = ["RoundedVector", "round_unit_vector", "round_vector"]

# Tolerance used when flooring z^2 * L: if the product sits within this
# relative distance below an integer we snap up to it, so that vectors
# whose squared entries are *already* integer multiples of 1/L (stored
# as nearest-double approximations) round to themselves. Lemma 3's
# claim 2 — sketch(a) == sketch(round(a)) — relies on this idempotence.
_SNAP = 1e-9


@dataclass(frozen=True)
class RoundedVector:
    """Result of Algorithm 4 on the norm-scaled input.

    Attributes
    ----------
    indices:
        Indices whose rounded value is non-zero (a subset of the input
        support: small entries may round to zero).
    values:
        Rounded unit-vector values ``z̃[i]`` at ``indices``.
    counts:
        Integer occupancy counts ``k[i] = z̃[i]^2 * L``; always
        ``>= 1`` and summing exactly to ``L``.
    norm:
        Euclidean norm of the *original* (un-scaled) vector — stored in
        the sketch and used by the estimator's final rescaling.
    L:
        The discretization parameter.
    """

    indices: np.ndarray
    values: np.ndarray
    counts: np.ndarray
    norm: float
    L: int

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def as_sparse(self) -> SparseVector:
        """The rounded unit vector as a :class:`SparseVector`."""
        return SparseVector(self.indices, self.values)


def round_unit_vector(values: np.ndarray, L: int) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 4 on the values of a unit vector.

    Parameters
    ----------
    values:
        Non-zero entries of a unit-norm vector (any order).
    L:
        Integer discretization parameter, ``>= 1``.

    Returns
    -------
    (rounded_values, counts):
        ``rounded_values[i] = sign(values[i]) * sqrt(counts[i] / L)``
        with integer ``counts`` summing to exactly ``L``.  Entries whose
        count is zero are returned as exact ``0.0``.
    """
    if L < 1:
        raise ValueError(f"discretization parameter L must be >= 1, got {L}")
    vals = np.asarray(values, dtype=np.float64)
    if vals.size == 0:
        raise ValueError("cannot round an empty (zero) vector")
    sq_scaled = vals * vals * float(L)
    counts = np.floor(sq_scaled + _SNAP).astype(np.int64)
    # Line 2-3 of Algorithm 4: the largest-magnitude entry absorbs the
    # mass lost to flooring, so the result stays exactly unit norm.
    largest = int(np.argmax(np.abs(vals)))
    deficit = int(L) - int(counts.sum())
    if deficit < 0:
        # Only possible if the input was not unit norm to begin with.
        raise ValueError(
            "input is not a unit vector: sum of floored squared entries "
            f"exceeds L by {-deficit}"
        )
    counts[largest] += deficit
    rounded = np.sign(vals) * np.sqrt(counts.astype(np.float64) / float(L))
    return rounded, counts


def round_vector(vector: SparseVector, L: int) -> RoundedVector:
    """Scale ``vector`` to unit norm and apply Algorithm 4.

    This is line 2 of Algorithm 3: ``ã = Round(a / ||a||, L)``.  Entries
    that round to zero are dropped from the returned support (they
    occupy no slots in the expanded vector, so the sketcher never sees
    them).  Raises on the zero vector — callers handle that case by
    emitting an empty sketch.
    """
    nrm = vector.norm()
    if nrm == 0.0:
        raise ValueError("cannot round the zero vector")
    rounded, counts = round_unit_vector(vector.values / nrm, L)
    keep = counts > 0
    return RoundedVector(
        indices=vector.indices[keep].copy(),
        values=rounded[keep],
        counts=counts[keep],
        norm=nrm,
        L=int(L),
    )
