"""Common interface for inner-product sketchers.

Every method evaluated in the paper — linear (JL, CountSketch) and
sampling-based (MinHash, KMV, Weighted MinHash) — fits one contract:

* ``sketch(vector)``  — independently compress one vector;
* ``estimate(sa, sb)`` — approximate ``<a, b>`` from two sketches built
  with identical configuration (same seed / sample count).

The contract also carries the paper's *storage accounting*
(Section 5, "Storage Size"): experiments compare methods at equal
storage measured in 64-bit words.  Linear sketches cost one word per
row; sampling sketches cost 1.5 words per sample (64-bit value +
32-bit hash).  ``samples_for_storage`` converts a word budget into the
method's sample-count parameter so sweeps stay storage-equalized.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.vectors.sparse import SparseVector

__all__ = ["Sketcher", "SketchMismatchError", "WORDS_PER_SAMPLE_SAMPLING"]

#: A sampling sketch entry = 64-bit value + 32-bit hash = 1.5 words.
WORDS_PER_SAMPLE_SAMPLING = 1.5


class SketchMismatchError(ValueError):
    """Raised when two sketches were not built with matching parameters."""


class Sketcher(abc.ABC):
    """Abstract base for all inner-product sketching methods."""

    #: Human-readable method name used in experiment reports.
    name: str = "abstract"

    @abc.abstractmethod
    def sketch(self, vector: SparseVector) -> Any:
        """Compress ``vector`` into this method's sketch object."""

    @abc.abstractmethod
    def estimate(self, sketch_a: Any, sketch_b: Any) -> float:
        """Estimate ``<a, b>`` from two compatible sketches."""

    @abc.abstractmethod
    def storage_words(self) -> float:
        """Storage footprint of one sketch, in 64-bit words."""

    @classmethod
    @abc.abstractmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "Sketcher":
        """Construct the method sized to a storage budget of ``words``."""

    def estimate_pair(self, a: SparseVector, b: SparseVector) -> float:
        """Convenience: sketch both vectors and estimate in one call."""
        return self.estimate(self.sketch(a), self.sketch(b))

    @staticmethod
    def _require(condition: bool, message: str) -> None:
        if not condition:
            raise SketchMismatchError(message)
