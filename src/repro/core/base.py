"""Common interface for inner-product sketchers.

Every method evaluated in the paper — linear (JL, CountSketch) and
sampling-based (MinHash, KMV, Weighted MinHash) — fits one contract:

* ``sketch(vector)``  — independently compress one vector;
* ``estimate(sa, sb)`` — approximate ``<a, b>`` from two sketches built
  with identical configuration (same seed / sample count);
* ``sketch_batch(matrix)`` — compress every row of a matrix into a
  columnar :class:`~repro.core.bank.SketchBank`;
* ``estimate_many(query, bank)`` — approximate the inner product of one
  query vector against every bank row, returning an array;
* ``estimate_cross(query_bank, bank)`` — approximate every pairwise
  inner product between two banks, returning a ``(Q, N)`` matrix (the
  multi-query serving primitive: a batch of analyst queries traverses
  the stored bank once instead of once per query).

The batch half of the contract has a correct-but-generic default that
wraps the scalar path (an object-dtype bank plus a Python loop), so
every sketcher is batch-capable out of the box; the methods on the
paper's critical path (WMH, MinHash, KMV, JL, CountSketch) override it
with truly vectorized implementations that produce bit-identical
results.

The contract also carries the paper's *storage accounting*
(Section 5, "Storage Size"): experiments compare methods at equal
storage measured in 64-bit words.  Linear sketches cost one word per
row; sampling sketches cost 1.5 words per sample (64-bit value +
32-bit hash).  ``from_storage`` converts a word budget into the
method's sample-count parameter so sweeps stay storage-equalized.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

import numpy as np

from repro.core.bank import OBJECT_COLUMN, SketchBank
from repro.vectors.sparse import SparseMatrix, SparseVector, as_sparse_matrix

__all__ = [
    "Sketcher",
    "SketchBank",
    "SketchMismatchError",
    "WORDS_PER_SAMPLE_SAMPLING",
]

#: A sampling sketch entry = 64-bit value + 32-bit hash = 1.5 words.
WORDS_PER_SAMPLE_SAMPLING = 1.5


class SketchMismatchError(ValueError):
    """Raised when two sketches were not built with matching parameters."""


class Sketcher(abc.ABC):
    """Abstract base for all inner-product sketching methods."""

    #: Human-readable method name used in experiment reports.
    name: str = "abstract"

    @abc.abstractmethod
    def sketch(self, vector: SparseVector) -> Any:
        """Compress ``vector`` into this method's sketch object."""

    @abc.abstractmethod
    def estimate(self, sketch_a: Any, sketch_b: Any) -> float:
        """Estimate ``<a, b>`` from two compatible sketches."""

    @abc.abstractmethod
    def storage_words(self) -> float:
        """Storage footprint of one sketch, in 64-bit words."""

    @classmethod
    @abc.abstractmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "Sketcher":
        """Construct the method sized to a storage budget of ``words``."""

    def estimate_pair(self, a: SparseVector, b: SparseVector) -> float:
        """Convenience: sketch both vectors and estimate in one call."""
        return self.estimate(self.sketch(a), self.sketch(b))

    # ------------------------------------------------------------------
    # batch contract (generic fallbacks; hot methods override)
    # ------------------------------------------------------------------

    def sketch_batch(
        self,
        matrix: SparseMatrix | Sequence[SparseVector] | np.ndarray,
        workers: int | None = None,
    ) -> SketchBank:
        """Sketch every row of ``matrix`` into one :class:`SketchBank`.

        ``workers`` opts into the chunked process-pool executor of
        :mod:`repro.parallel`: ``None`` or ``1`` sketches in-process,
        ``> 1`` fans row chunks out to that many worker processes.
        Because every sketcher is a pure function of ``(config, row)``,
        the resulting bank is bit-identical for any worker count.
        """
        if workers is not None and workers > 1:
            from repro.parallel import parallel_sketch_batch

            return parallel_sketch_batch(self, matrix, workers=workers)
        return self._sketch_batch(matrix)

    def _sketch_batch(
        self, matrix: SparseMatrix | Sequence[SparseVector] | np.ndarray
    ) -> SketchBank:
        """Serial batch implementation behind :meth:`sketch_batch`.

        The default wraps the scalar path row by row; vectorized
        sketchers override this with a single pass over the CSR arrays.
        """
        rows = as_sparse_matrix(matrix)
        return self.pack_bank([self.sketch(row) for row in rows])

    def estimate_many(self, query_sketch: Any, bank: SketchBank) -> np.ndarray:
        """Estimate ``<query, row_i>`` for every bank row.

        Returns a float64 array of length ``len(bank)``.  The default
        loops the scalar estimator; vectorized sketchers score the
        whole bank in a handful of array operations.
        """
        self._check_bank(bank)
        return np.array(
            [
                self.estimate(query_sketch, self.bank_row(bank, i))
                for i in range(len(bank))
            ],
            dtype=np.float64,
        )

    def estimate_cross(self, query_bank: SketchBank, bank: SketchBank) -> np.ndarray:
        """Estimate ``<query_i, row_j>`` for every query/row pair.

        Returns a float64 array of shape ``(len(query_bank), len(bank))``
        whose row ``i`` equals ``estimate_many(query_i, bank)`` exactly.
        The default loops :meth:`estimate_many` over the query rows;
        vectorized sketchers override it to traverse ``bank`` once for
        the whole query batch.
        """
        self._check_bank(query_bank)
        self._check_bank(bank)
        if len(query_bank) == 0:
            return np.zeros((0, len(bank)))
        return np.stack(
            [
                self.estimate_many(self.bank_row(query_bank, i), bank)
                for i in range(len(query_bank))
            ]
        )

    # ------------------------------------------------------------------
    # signature keys (LSH candidate generation; sampling methods only)
    # ------------------------------------------------------------------

    def signature_length(self) -> int | None:
        """Entries in this method's per-repetition signature, or ``None``.

        Sampling sketchers whose repetitions certify matches by key
        equality (WMH/MinHash hash values, ICWS sample keys) expose
        their signatures for banded LSH candidate generation
        (:mod:`repro.mips.lsh`); linear sketches return ``None``.
        """
        return None

    def signature_key(self, sketch: Any) -> np.ndarray | None:
        """One sketch's signature keys (1-D, ``signature_length`` long)."""
        return None

    def signature_keys(self, bank: SketchBank) -> np.ndarray | None:
        """Signature keys for every bank row (2-D, one row per sketch).

        The default stacks :meth:`signature_key` over the bank's scalar
        sketches; columnar sketchers override this with a zero-copy
        column view.  Returns ``None`` when the method has no signature.
        """
        if self.signature_length() is None:
            return None
        self._check_bank(bank)
        if len(bank) == 0:
            return np.empty((0, self.signature_length()), dtype=np.uint64)
        return np.stack(
            [
                self.signature_key(self.bank_row(bank, i))
                for i in range(len(bank))
            ]
        )

    def pack_bank(self, sketches: Sequence[Any]) -> SketchBank:
        """Stack scalar sketch objects into a bank.

        The generic fallback keeps the objects in one object-dtype
        column; columnar sketchers override this to stack real field
        arrays.
        """
        column = np.empty(len(sketches), dtype=object)
        for i, sketch in enumerate(sketches):
            column[i] = sketch
        return SketchBank(
            kind=self.name,
            params=self._bank_params(),
            columns={OBJECT_COLUMN: column},
            words_per_sketch=self.storage_words(),
        )

    def bank_row(self, bank: SketchBank, i: int) -> Any:
        """Materialize bank row ``i`` as this method's scalar sketch."""
        self._check_bank(bank)
        if not bank.is_object_bank():
            raise TypeError(
                f"{type(self).__name__} stores banks as object columns; "
                f"got columns {sorted(bank.columns)}"
            )
        return bank.columns[OBJECT_COLUMN][i]

    def bank_to_sketches(self, bank: SketchBank) -> list[Any]:
        """Materialize every bank row as a scalar sketch object."""
        return [self.bank_row(bank, i) for i in range(len(bank))]

    def _bank_params(self) -> dict[str, Any]:
        """Configuration two banks must share to be comparable.

        Subclasses return their identifying parameters (seed, sample
        count, ...).  Used by :meth:`_check_bank` to reject cross-seed
        / cross-size comparisons at the bank level.
        """
        return {}

    def bank_layout(self) -> dict[str, tuple[tuple[int, ...], str]] | None:
        """Fixed per-row column layout of this sketcher's banks, if any.

        Maps each bank column name to ``(row_shape, dtype_str)``, where
        ``row_shape`` is the shape of **one row's** entry (``()`` for a
        scalar per row) and ``dtype_str`` is the numpy dtype string
        (e.g. ``"<f8"``).  A non-``None`` layout promises that
        ``_sketch_batch`` over ``N`` rows returns exactly these columns
        with shapes ``(N, *row_shape)`` — which lets the streaming
        ingest pipeline pre-size a shard file and let chunk workers
        write their rows at exact byte offsets.  Sketchers whose banks
        are object columns (the generic fallback) return ``None`` and
        take the materialize-then-concat path instead.
        """
        return None

    def _check_bank(self, bank: SketchBank) -> None:
        self._require(
            bank.kind == self.name,
            f"bank holds {bank.kind!r} sketches, sketcher is {self.name!r}",
        )
        expected = self._bank_params()
        self._require(
            dict(bank.params) == expected,
            f"bank parameters {dict(bank.params)} do not match "
            f"sketcher parameters {expected}",
        )

    @staticmethod
    def _require(condition: bool, message: str) -> None:
        if not condition:
            raise SketchMismatchError(message)
