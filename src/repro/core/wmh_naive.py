"""Reference Weighted MinHash via explicit vector expansion.

This is Algorithm 3 implemented *literally*: materialize the expanded
vector ``ā`` of length ``n * L`` (block ``i`` = ``L`` slots, the first
``k_i = ã[i]^2 * L`` occupied), hash every occupied slot with a
Carter–Wegman 2-wise function over the ``n * L`` domain, and take the
arg-min per repetition.

Cost is ``O(m * Σ k_i) = O(m * L)`` per vector, so this is only usable
for small ``L`` — it exists as the ground truth that the fast
record-process implementation (:mod:`repro.core.wmh`) is validated
against, and as the honest baseline in the sketching-cost benchmark.

Sketches produced here are mutually compatible (same estimator, same
cross-vector consistency) but are **not** interchangeable with fast
sketches: the two implementations draw their hash values from different
constructions.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.base import WORDS_PER_SAMPLE_SAMPLING, Sketcher
from repro.core.rounding import round_vector
from repro.core.wmh import WMHSketch
from repro.hashing.primes import next_prime
from repro.hashing.universal import TwoWiseHashFamily
from repro.vectors.sparse import SparseVector

__all__ = ["NaiveWeightedMinHash"]


class NaiveWeightedMinHash(Sketcher):
    """Literal expanded-vector Weighted MinHash (testing/ground truth).

    Parameters
    ----------
    m, seed:
        As in :class:`repro.core.wmh.WeightedMinHash`.
    L:
        Discretization parameter; directly multiplies sketching cost.
    n:
        Ambient dimension — required here (unlike the fast sketcher)
        because the expanded hash domain ``n * L`` must be fixed ahead
        of time for sketches to be comparable.
    """

    name = "WMH-naive"

    def __init__(self, m: int, n: int, seed: int = 0, L: int = 1024) -> None:
        if m <= 0:
            raise ValueError(f"sample count m must be positive, got {m}")
        if n <= 0:
            raise ValueError(f"dimension n must be positive, got {n}")
        if L < 1:
            raise ValueError(f"discretization parameter L must be >= 1, got {L}")
        self.m = int(m)
        self.n = int(n)
        self.L = int(L)
        self.seed = int(seed)
        # The CW domain must cover every expanded slot index < n * L.
        self._prime = next_prime(self.n * self.L + 1)
        self._family = TwoWiseHashFamily(self.m, seed=self.seed, prime=self._prime)

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "NaiveWeightedMinHash":
        m = int(words / WORDS_PER_SAMPLE_SAMPLING)
        return cls(m=max(m, 1), seed=seed, **kwargs)

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.m + 1.0

    def expanded_slots(self, vector: SparseVector) -> tuple[np.ndarray, np.ndarray]:
        """Occupied slot ids of ``ā`` and the block value of each slot."""
        rounded = round_vector(vector, self.L)
        slot_blocks = np.repeat(rounded.indices, rounded.counts)
        offsets_within = np.concatenate(
            [np.arange(k, dtype=np.int64) for k in rounded.counts]
        )
        slots = slot_blocks * np.int64(self.L) + offsets_within
        slot_values = np.repeat(rounded.values, rounded.counts)
        return slots, slot_values

    def sketch(self, vector: SparseVector) -> WMHSketch:
        if vector.nnz == 0:
            return WMHSketch(
                hashes=np.full(self.m, np.inf),
                values=np.zeros(self.m),
                norm=0.0,
                m=self.m,
                L=self.L,
                seed=self.seed,
            )
        if vector.n is not None and vector.n > self.n:
            raise ValueError(
                f"vector dimension {vector.n} exceeds sketcher domain {self.n}"
            )
        if vector.indices.size and int(vector.indices.max()) >= self.n:
            raise ValueError("vector has indices outside the sketcher domain")
        slots, slot_values = self.expanded_slots(vector)
        hashes = self._family.hash_unit(slots)  # (m, num_slots)
        best = np.argmin(hashes, axis=1)
        rows = np.arange(self.m)
        return WMHSketch(
            hashes=hashes[rows, best],
            values=slot_values[best],
            norm=vector.norm(),
            m=self.m,
            L=self.L,
            seed=self.seed,
        )

    def estimate(self, sketch_a: WMHSketch, sketch_b: WMHSketch) -> float:
        from repro.core.estimator import estimate_inner_product

        return estimate_inner_product(sketch_a, sketch_b)
