"""Johnson–Lindenstrauss / AMS sign projection (baseline "JL").

The classic linear sketch of Fact 1: ``S(a) = Πa`` for a random
``m x n`` matrix ``Π`` with i.i.d. ``±1/sqrt(m)`` entries, estimated by
the sketch inner product ``<S(a), S(b)>``.  This is the "tug-of-war" /
AMS sketch of Alon–Matias–Szegedy and the dense-projection JL transform
of Achlioptas (binary-coin variant).

Guarantee (Fact 1): with ``m = O(log(1/δ)/ε²)`` rows,
``|<S(a),S(b)> - <a,b>| <= ε ||a|| ||b||`` with probability ``1 - δ`` —
optimal for dense vectors, but insensitive to support overlap, which is
exactly the weakness Theorem 2 exploits.

Implementation: the matrix is never materialized.  Column ``j`` of
``Π`` is derived on demand from a splitmix64 stream keyed on
``(seed, j)``, so sketching touches only the non-zero entries
(``O(nnz * m)``) and works over open index domains, while two machines
sketching different vectors still agree on ``Π``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.bank import SketchBank
from repro.core.base import Sketcher
from repro.hashing.splitmix import counter_uniform, derive_key_grid
from repro.vectors.sparse import SparseMatrix, SparseVector, as_sparse_matrix

__all__ = ["JLSketch", "JohnsonLindenstrauss"]


@dataclass(frozen=True)
class JLSketch:
    """A linear sketch ``Πa``: ``m`` doubles (1 word each)."""

    projection: np.ndarray
    m: int
    seed: int

    def storage_words(self) -> float:
        return float(self.m)


class JohnsonLindenstrauss(Sketcher):
    """Dense ±1 random projection sized ``m`` rows."""

    name = "JL"

    def __init__(self, m: int, seed: int = 0) -> None:
        if m <= 0:
            raise ValueError(f"row count m must be positive, got {m}")
        self.m = int(m)
        self.seed = int(seed)

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "JohnsonLindenstrauss":
        """Linear sketches store one 64-bit double per row: ``m = words``."""
        return cls(m=max(int(words), 1), seed=seed, **kwargs)

    def storage_words(self) -> float:
        return float(self.m)

    def _signs(self, indices: np.ndarray) -> np.ndarray:
        """The ``(m, nnz)`` block of ``Π`` restricted to ``indices``.

        Entry ``(r, j)`` is ``+1`` or ``-1`` according to one uniform
        draw of the stream keyed on ``(seed, r, indices[j])``.
        """
        keys = derive_key_grid(self.seed, np.arange(self.m, dtype=np.int64), indices)
        uniforms = counter_uniform(keys, 0)
        return np.where(uniforms < 0.5, -1.0, 1.0)

    def sketch(self, vector: SparseVector) -> JLSketch:
        if vector.nnz == 0:
            return JLSketch(projection=np.zeros(self.m), m=self.m, seed=self.seed)
        signs = self._signs(vector.indices)
        # einsum (not BLAS matvec) so the contraction order is
        # deterministic and identical to the batch path.
        projection = np.einsum("mn,n->m", signs, vector.values) / np.sqrt(self.m)
        return JLSketch(projection=projection, m=self.m, seed=self.seed)

    def estimate(self, sketch_a: JLSketch, sketch_b: JLSketch) -> float:
        self._require(
            sketch_a.m == sketch_b.m and sketch_a.seed == sketch_b.seed,
            "JL sketches built with different (m, seed) are not comparable",
        )
        # einsum (not BLAS dot) so the scalar path reduces in exactly
        # the same order as estimate_many's row-wise contraction.
        return float(np.einsum("m,m->", sketch_a.projection, sketch_b.projection))

    # ------------------------------------------------------------------
    # batch path
    # ------------------------------------------------------------------

    def _bank_params(self) -> dict[str, Any]:
        return {"m": self.m, "seed": self.seed}

    def bank_layout(self) -> dict[str, tuple[tuple[int, ...], str]]:
        return {"projections": ((self.m,), "<f8")}

    def _check_query(self, sketch: JLSketch) -> None:
        self._require(
            sketch.m == self.m and sketch.seed == self.seed,
            f"query sketch (m={sketch.m}, seed={sketch.seed}) does not match "
            f"sketcher (m={self.m}, seed={self.seed})",
        )

    def pack_bank(self, sketches: Sequence[JLSketch]) -> SketchBank:
        for sketch in sketches:
            self._check_query(sketch)
        return SketchBank(
            kind=self.name,
            params=self._bank_params(),
            columns={
                "projections": np.stack([s.projection for s in sketches])
                if sketches
                else np.empty((0, self.m))
            },
            words_per_sketch=self.storage_words(),
        )

    def bank_row(self, bank: SketchBank, i: int) -> JLSketch:
        self._check_bank(bank)
        return JLSketch(
            projection=bank.columns["projections"][i], m=self.m, seed=self.seed
        )

    def _sketch_batch(
        self, matrix: SparseMatrix | Sequence[SparseVector] | np.ndarray
    ) -> SketchBank:
        """Project all rows, deriving each distinct column of ``Π`` once.

        The expensive part of JL sketching is deriving the sign columns
        (five mixing passes per ``(row, index)`` cell); indices shared
        across matrix rows are derived once here.  Each row's projection
        is then the same ``signs @ values`` contraction the scalar path
        runs, so results are bit-identical.
        """
        rows = as_sparse_matrix(matrix)
        projections = np.zeros((rows.num_rows, self.m))
        if rows.nnz:
            unique_indices, inverse = np.unique(rows.indices, return_inverse=True)
            unique_signs = self._signs(unique_indices)  # (m, U)
            scale = np.sqrt(self.m)
            indptr = rows.indptr
            for i in range(rows.num_rows):
                lo, hi = int(indptr[i]), int(indptr[i + 1])
                if lo == hi:
                    continue
                # ascontiguousarray: column gathers come out F-ordered,
                # which would change the reduction order vs. the scalar
                # path's C-ordered sign matrix.
                signs = np.ascontiguousarray(unique_signs[:, inverse[lo:hi]])
                projections[i] = np.einsum("mn,n->m", signs, rows.values[lo:hi]) / scale
        return SketchBank(
            kind=self.name,
            params=self._bank_params(),
            columns={"projections": projections},
            words_per_sketch=self.storage_words(),
        )

    def estimate_many(self, query_sketch: JLSketch, bank: SketchBank) -> np.ndarray:
        """Inner products of the query projection with every bank row."""
        self._check_bank(bank)
        self._check_query(query_sketch)
        return np.einsum(
            "nm,m->n", bank.columns["projections"], query_sketch.projection
        )

    def estimate_cross(self, query_bank: SketchBank, bank: SketchBank) -> np.ndarray:
        """All pairwise projection inner products in one contraction.

        einsum's sequential sum-of-products kernel reduces the shared
        ``m`` axis in the same order as :meth:`estimate_many`'s
        contraction, so each result row is bit-identical to the
        per-query call.
        """
        self._check_bank(query_bank)
        self._check_bank(bank)
        return np.einsum(
            "qm,nm->qn", query_bank.columns["projections"], bank.columns["projections"]
        )
