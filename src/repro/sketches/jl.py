"""Johnson–Lindenstrauss / AMS sign projection (baseline "JL").

The classic linear sketch of Fact 1: ``S(a) = Πa`` for a random
``m x n`` matrix ``Π`` with i.i.d. ``±1/sqrt(m)`` entries, estimated by
the sketch inner product ``<S(a), S(b)>``.  This is the "tug-of-war" /
AMS sketch of Alon–Matias–Szegedy and the dense-projection JL transform
of Achlioptas (binary-coin variant).

Guarantee (Fact 1): with ``m = O(log(1/δ)/ε²)`` rows,
``|<S(a),S(b)> - <a,b>| <= ε ||a|| ||b||`` with probability ``1 - δ`` —
optimal for dense vectors, but insensitive to support overlap, which is
exactly the weakness Theorem 2 exploits.

Implementation: the matrix is never materialized.  Column ``j`` of
``Π`` is derived on demand from a splitmix64 stream keyed on
``(seed, j)``, so sketching touches only the non-zero entries
(``O(nnz * m)``) and works over open index domains, while two machines
sketching different vectors still agree on ``Π``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.base import Sketcher
from repro.hashing.splitmix import counter_uniform, derive_key_grid
from repro.vectors.sparse import SparseVector

__all__ = ["JLSketch", "JohnsonLindenstrauss"]


@dataclass(frozen=True)
class JLSketch:
    """A linear sketch ``Πa``: ``m`` doubles (1 word each)."""

    projection: np.ndarray
    m: int
    seed: int

    def storage_words(self) -> float:
        return float(self.m)


class JohnsonLindenstrauss(Sketcher):
    """Dense ±1 random projection sized ``m`` rows."""

    name = "JL"

    def __init__(self, m: int, seed: int = 0) -> None:
        if m <= 0:
            raise ValueError(f"row count m must be positive, got {m}")
        self.m = int(m)
        self.seed = int(seed)

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "JohnsonLindenstrauss":
        """Linear sketches store one 64-bit double per row: ``m = words``."""
        return cls(m=max(int(words), 1), seed=seed, **kwargs)

    def storage_words(self) -> float:
        return float(self.m)

    def _signs(self, indices: np.ndarray) -> np.ndarray:
        """The ``(m, nnz)`` block of ``Π`` restricted to ``indices``.

        Entry ``(r, j)`` is ``+1`` or ``-1`` according to one uniform
        draw of the stream keyed on ``(seed, r, indices[j])``.
        """
        keys = derive_key_grid(self.seed, np.arange(self.m, dtype=np.int64), indices)
        uniforms = counter_uniform(keys, 0)
        return np.where(uniforms < 0.5, -1.0, 1.0)

    def sketch(self, vector: SparseVector) -> JLSketch:
        if vector.nnz == 0:
            return JLSketch(projection=np.zeros(self.m), m=self.m, seed=self.seed)
        signs = self._signs(vector.indices)
        projection = (signs @ vector.values) / np.sqrt(self.m)
        return JLSketch(projection=projection, m=self.m, seed=self.seed)

    def estimate(self, sketch_a: JLSketch, sketch_b: JLSketch) -> float:
        self._require(
            sketch_a.m == sketch_b.m and sketch_a.seed == sketch_b.seed,
            "JL sketches built with different (m, seed) are not comparable",
        )
        return float(np.dot(sketch_a.projection, sketch_b.projection))
