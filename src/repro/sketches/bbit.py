"""b-bit minwise hashing (Li & König, WWW 2010).

Related work in Section 2 of the paper: instead of storing each MinHash
minimum in full, store only its lowest ``b`` bits.  Two minima that
truly coincide (probability = the Jaccard similarity ``J``) always
agree on those bits; two distinct minima still collide by chance with
probability ``~2^-b``.  Inverting

    P[bits match] = J + (1 - J) * 2^-b

turns the observed bit-match rate into an unbiased Jaccard estimate at
``b/64``-th the storage of a full hash — the classic storage/variance
trade-off that motivated the paper's own interest in compact sketches.

Set-intersection estimation additionally stores the exact support
sizes (two integers): ``|A ∩ B| = J/(1+J) * (|A| + |B|)``.  This
sketch targets *binary* vectors (sets); it complements rather than
replaces the value-augmented sketches used for general inner products.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.base import Sketcher
from repro.hashing.universal import TwoWiseHashFamily, fold_to_domain
from repro.vectors.sparse import SparseVector

__all__ = ["BbitSketch", "BbitMinHash"]


@dataclass(frozen=True)
class BbitSketch:
    """``m`` b-bit fingerprints plus the exact support size."""

    bits: np.ndarray
    support_size: int
    m: int
    b: int
    seed: int

    def storage_words(self) -> float:
        # m fingerprints of b bits each, plus one 64-bit size counter.
        return (self.m * self.b) / 64.0 + 1.0


class BbitMinHash(Sketcher):
    """b-bit minwise hashing for set (binary-vector) similarity.

    Parameters
    ----------
    m:
        Number of independent MinHash repetitions.
    b:
        Bits kept per repetition, ``1 <= b <= 32``.
    """

    name = "bbit"

    def __init__(self, m: int, b: int = 1, seed: int = 0) -> None:
        if m <= 0:
            raise ValueError(f"sample count m must be positive, got {m}")
        if not 1 <= b <= 32:
            raise ValueError(f"bit width b must be in [1, 32], got {b}")
        self.m = int(m)
        self.b = int(b)
        self.seed = int(seed)
        self._family = TwoWiseHashFamily(self.m, seed=self.seed)
        self._mask = np.uint64((1 << b) - 1)

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "BbitMinHash":
        b = int(kwargs.pop("b", 1))
        m = max(int((words - 1) * 64 / b), 1)
        return cls(m=m, b=b, seed=seed, **kwargs)

    def storage_words(self) -> float:
        return (self.m * self.b) / 64.0 + 1.0

    def sketch(self, vector: SparseVector) -> BbitSketch:
        """Fingerprint the *support* of ``vector`` (values are ignored)."""
        if vector.nnz == 0:
            return BbitSketch(
                bits=np.zeros(self.m, dtype=np.uint64),
                support_size=0,
                m=self.m,
                b=self.b,
                seed=self.seed,
            )
        folded = fold_to_domain(vector.indices)
        hashes = self._family.hash_ints(folded)  # (m, nnz) integers in [0, p)
        minima_positions = np.argmin(hashes, axis=1)
        rows = np.arange(self.m)
        minima = hashes[rows, minima_positions]
        return BbitSketch(
            bits=minima & self._mask,
            support_size=vector.nnz,
            m=self.m,
            b=self.b,
            seed=self.seed,
        )

    def _bank_params(self) -> dict[str, Any]:
        return {"m": self.m, "b": self.b, "seed": self.seed}

    def estimate_jaccard(self, sketch_a: BbitSketch, sketch_b: BbitSketch) -> float:
        """Collision-corrected Jaccard estimate, clamped to [0, 1]."""
        self._require(
            sketch_a.m == sketch_b.m
            and sketch_a.b == sketch_b.b
            and sketch_a.seed == sketch_b.seed,
            "b-bit sketches built with different (m, b, seed)",
        )
        if sketch_a.support_size == 0 or sketch_b.support_size == 0:
            return 0.0
        match_rate = float(np.mean(sketch_a.bits == sketch_b.bits))
        floor = 2.0**-sketch_a.b
        corrected = (match_rate - floor) / (1.0 - floor)
        return min(max(corrected, 0.0), 1.0)

    def estimate_intersection(
        self, sketch_a: BbitSketch, sketch_b: BbitSketch
    ) -> float:
        """``|A ∩ B| = J/(1+J) * (|A| + |B|)`` from the Jaccard estimate."""
        jaccard = self.estimate_jaccard(sketch_a, sketch_b)
        if jaccard == 0.0:
            return 0.0
        return (
            jaccard
            / (1.0 + jaccard)
            * (sketch_a.support_size + sketch_b.support_size)
        )

    def estimate(self, sketch_a: BbitSketch, sketch_b: BbitSketch) -> float:
        """Inner product = intersection size, valid for binary vectors."""
        return self.estimate_intersection(sketch_a, sketch_b)
