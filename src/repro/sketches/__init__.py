"""Baseline and extension sketches evaluated against Weighted MinHash.

Paper baselines (Section 5): :class:`JohnsonLindenstrauss` ("JL"),
:class:`CountSketch` ("CS"), :class:`MinHash` ("MH"),
:class:`KMinimumValues` ("KMV").  Extensions: :class:`SimHash`
(1-bit cosine sketch) and :class:`ICWS` (expansion-free weighted
sampling).
"""

from repro.sketches.bbit import BbitMinHash, BbitSketch
from repro.sketches.countsketch import CountSketch, CountSketchData
from repro.sketches.icws import ICWS, ICWSSketch
from repro.sketches.jl import JLSketch, JohnsonLindenstrauss
from repro.sketches.kmv import KMinimumValues, KMVSketch
from repro.sketches.minhash import MinHash, MinHashSketch
from repro.sketches.priority import PrioritySampling, PrioritySketch
from repro.sketches.simhash import SimHash, SimHashSketch

__all__ = [
    "ICWS",
    "ICWSSketch",
    "BbitMinHash",
    "BbitSketch",
    "CountSketch",
    "CountSketchData",
    "JLSketch",
    "JohnsonLindenstrauss",
    "KMVSketch",
    "KMinimumValues",
    "MinHash",
    "MinHashSketch",
    "PrioritySampling",
    "PrioritySketch",
    "SimHash",
    "SimHashSketch",
]
