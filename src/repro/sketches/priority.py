"""Coordinated priority (sequential Poisson) sampling sketch.

The paper's Related Work groups "weighted versions of coordinated
random sampling [Cohen and Kaplan 2007, 2013]" into the Weighted
MinHash family it builds on.  This module implements that member of the
family: **priority sampling** with *coordinated* randomness.

Per index ``j`` with weight ``w_j = a[j]²`` (the same squared-magnitude
measure as Algorithm 3), draw a shared uniform ``u_j`` — shared because
it is a pure function of ``(seed, j)``, so every vector sketched with
the same seed uses the *same* ``u_j`` (Cohen–Kaplan coordination).  The
priority of ``j`` is ``w_j / u_j``; the sketch keeps the ``k`` highest
priorities plus the threshold ``τ`` = the (k+1)-th priority.  Index
``j`` then appears in the sketch with probability ``min(1, w_j / τ)``
(conditionally on τ), and Horvitz–Thompson reweighting gives unbiased
subset-sum estimates.

For inner products between two coordinated sketches: because the
samples share ``u_j``, index ``j`` is in *both* sketches exactly when
``w^a_j / u_j ≥ τ_a`` and ``w^b_j / u_j ≥ τ_b``, i.e. with probability
``min(1, w^a_j/τ_a, w^b_j/τ_b)``; the estimator divides each matched
product by that joint inclusion probability (Cohen & Kaplan, "What you
can do with coordinated samples").

Compared to Weighted MinHash this sketch samples *without* replacement
(k distinct coordinates) and needs no discretization parameter; it is
included as a second, independently-derived member of the weighted
coordinated family — useful both as a baseline and as a cross-check on
WMH's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.bank import SketchBank
from repro.core.base import WORDS_PER_SAMPLE_SAMPLING, Sketcher
from repro.hashing.splitmix import counter_uniform, derive_key, mix64
from repro.vectors.sparse import SparseVector, as_sparse_matrix

__all__ = ["PrioritySketch", "PrioritySampling"]


@dataclass(frozen=True)
class PrioritySketch:
    """Top-k coordinated priority sample of one vector.

    ``indices``/``values`` are the sampled coordinates, ``weights``
    their sampling weights (squared values), ``threshold`` the (k+1)-th
    priority (``inf`` when the whole support fit, making inclusion
    certain).
    """

    indices: np.ndarray
    values: np.ndarray
    weights: np.ndarray
    threshold: float
    k: int
    seed: int

    def storage_words(self) -> float:
        # index (32-bit) + value (64-bit) per sample, plus the threshold.
        return WORDS_PER_SAMPLE_SAMPLING * self.k + 1.0


class PrioritySampling(Sketcher):
    """Coordinated priority-sampling sketcher with ``k`` retained samples."""

    name = "PS"

    def __init__(self, k: int, seed: int = 0) -> None:
        if k <= 0:
            raise ValueError(f"sample count k must be positive, got {k}")
        self.k = int(k)
        self.seed = int(seed)

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "PrioritySampling":
        k = int(words / WORDS_PER_SAMPLE_SAMPLING)
        return cls(k=max(k, 1), seed=seed, **kwargs)

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.k + 1.0

    def _shared_uniforms(self, indices: np.ndarray) -> np.ndarray:
        """The coordinated ``u_j`` — a pure function of ``(seed, j)``."""
        keys = mix64(
            np.asarray(indices, dtype=np.uint64)
            + np.uint64(derive_key(self.seed, 0x5EED))
        )
        return counter_uniform(np.asarray(keys, dtype=np.uint64), 0)

    def sketch(self, vector: SparseVector) -> PrioritySketch:
        if vector.nnz == 0:
            return PrioritySketch(
                indices=np.empty(0, np.int64),
                values=np.empty(0),
                weights=np.empty(0),
                threshold=np.inf,
                k=self.k,
                seed=self.seed,
            )
        weights = vector.values**2
        uniforms = self._shared_uniforms(vector.indices)
        priorities = weights / uniforms
        chosen, threshold = self._select(priorities)
        return PrioritySketch(
            indices=vector.indices[chosen].copy(),
            values=vector.values[chosen].copy(),
            weights=weights[chosen].copy(),
            threshold=threshold,
            k=self.k,
            seed=self.seed,
        )

    def _select(self, priorities: np.ndarray) -> tuple[np.ndarray, float]:
        """Top-``k`` positions by priority plus the (k+1)-th threshold.

        Stable descending order (ties keep the earlier coordinate) so
        the scalar and batch paths select identically.
        """
        order = np.argsort(-priorities, kind="stable")
        if priorities.size <= self.k:
            return order, np.inf  # every coordinate included with certainty
        return order[: self.k], float(priorities[order[self.k]])

    def _bank_params(self) -> dict[str, Any]:
        return {"k": self.k, "seed": self.seed}

    def _sketch_batch(self, matrix: Any) -> SketchBank:
        """Coordinated sampling of all rows from one uniform derivation.

        The coordinated ``u_j`` are a pure function of ``(seed, j)``,
        so the mixing passes — the expensive part of priority sampling —
        run once per *distinct* index in the matrix instead of once per
        ``(row, index)`` cell; the per-row top-``k`` selection then works
        on array slices.  Results are bit-identical to the scalar loop.
        """
        rows = as_sparse_matrix(matrix).without_explicit_zeros()
        indptr = rows.indptr
        all_indices = rows.indices
        all_values = rows.values
        sketches: list[PrioritySketch] = []
        if all_indices.size:
            unique_indices, inverse = np.unique(all_indices, return_inverse=True)
            uniforms = self._shared_uniforms(unique_indices)[inverse]
            weights = all_values**2
            priorities = weights / uniforms
        empty = PrioritySketch(
            indices=np.empty(0, np.int64),
            values=np.empty(0),
            weights=np.empty(0),
            threshold=np.inf,
            k=self.k,
            seed=self.seed,
        )
        for i in range(rows.num_rows):
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            if lo == hi:
                sketches.append(empty)
                continue
            chosen, threshold = self._select(priorities[lo:hi])
            sketches.append(
                PrioritySketch(
                    indices=all_indices[lo:hi][chosen],
                    values=all_values[lo:hi][chosen],
                    weights=weights[lo:hi][chosen],
                    threshold=threshold,
                    k=self.k,
                    seed=self.seed,
                )
            )
        return self.pack_bank(sketches)

    def estimate(self, sketch_a: PrioritySketch, sketch_b: PrioritySketch) -> float:
        self._require(
            sketch_a.k == sketch_b.k and sketch_a.seed == sketch_b.seed,
            "priority sketches built with different (k, seed)",
        )
        if sketch_a.indices.size == 0 or sketch_b.indices.size == 0:
            return 0.0
        common, pos_a, pos_b = np.intersect1d(
            sketch_a.indices, sketch_b.indices, return_indices=True
        )
        del common
        if pos_a.size == 0:
            return 0.0
        products = sketch_a.values[pos_a] * sketch_b.values[pos_b]
        # Joint inclusion probability under coordination: the shared u_j
        # must clear both thresholds.
        inclusion_a = (
            np.minimum(1.0, sketch_a.weights[pos_a] / sketch_a.threshold)
            if np.isfinite(sketch_a.threshold)
            else np.ones(pos_a.size)
        )
        inclusion_b = (
            np.minimum(1.0, sketch_b.weights[pos_b] / sketch_b.threshold)
            if np.isfinite(sketch_b.threshold)
            else np.ones(pos_b.size)
        )
        joint = np.minimum(inclusion_a, inclusion_b)
        return float(np.sum(products / joint))

    def estimate_sum(self, sketch: PrioritySketch) -> float:
        """Horvitz–Thompson estimate of ``Σ_j a[j]`` from one sketch."""
        if sketch.indices.size == 0:
            return 0.0
        if not np.isfinite(sketch.threshold):
            return float(sketch.values.sum())
        inclusion = np.minimum(1.0, sketch.weights / sketch.threshold)
        return float(np.sum(sketch.values / inclusion))
