"""SimHash — 1-bit random-projection cosine sketch (Charikar 2002).

Related work in the paper (Section 2, "Locality Sensitive Hashing"):
SimHash stores only the *sign* of each random projection,
``bit_r = sign(<g_r, a>)`` with Gaussian ``g_r``, so a sample costs one
bit instead of one double.  The probability that two vectors disagree
on a bit equals ``θ/π`` (θ = angle between them), giving the estimator

    cos_hat = cos(π · (1 - agreement_fraction))
    <a, b>  ≈ ||a|| ||b|| · cos_hat.

SimHash can be viewed as a 1-bit quantized JL sketch; the paper cites
it when discussing sketch quantization as future work.  We include it
as an extension baseline in the ablation benchmarks: at equal *storage*
it gets 64x more samples than JL, but its per-sample information is far
lower, and its error does not benefit from support sparsity.

Projection vectors are derived on demand: entry ``g[r, j]`` comes from
a Box–Muller transform of two splitmix64 stream draws keyed on
``(seed, r, j)``, so sketches computed independently agree on ``g``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.base import Sketcher
from repro.hashing.splitmix import counter_uniform, derive_key_grid
from repro.vectors.sparse import SparseVector

__all__ = ["SimHashSketch", "SimHash"]

#: SimHash samples are single bits: 64 of them per 64-bit word.
BITS_PER_WORD = 64


@dataclass(frozen=True)
class SimHashSketch:
    """``m`` projection-sign bits plus the vector norm."""

    bits: np.ndarray
    norm: float
    m: int
    seed: int

    def storage_words(self) -> float:
        # Bits pack 64 per word; the norm costs one more word.
        return self.m / BITS_PER_WORD + 1.0


class SimHash(Sketcher):
    """1-bit Gaussian projection sketch with ``m`` bits."""

    name = "SimHash"

    def __init__(self, m: int, seed: int = 0) -> None:
        if m <= 0:
            raise ValueError(f"bit count m must be positive, got {m}")
        self.m = int(m)
        self.seed = int(seed)

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "SimHash":
        bits = max(int((words - 1) * BITS_PER_WORD), 1)
        return cls(m=bits, seed=seed, **kwargs)

    def storage_words(self) -> float:
        return self.m / BITS_PER_WORD + 1.0

    def _gaussians(self, indices: np.ndarray) -> np.ndarray:
        """``(m, nnz)`` Gaussian projection entries via Box–Muller."""
        keys = derive_key_grid(self.seed, np.arange(self.m, dtype=np.int64), indices)
        u1 = counter_uniform(keys, 0)
        u2 = counter_uniform(keys, 1)
        return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * math.pi * u2)

    def sketch(self, vector: SparseVector) -> SimHashSketch:
        if vector.nnz == 0:
            return SimHashSketch(
                bits=np.zeros(self.m, dtype=bool),
                norm=0.0,
                m=self.m,
                seed=self.seed,
            )
        projections = self._gaussians(vector.indices) @ vector.values
        return SimHashSketch(
            bits=projections >= 0.0,
            norm=vector.norm(),
            m=self.m,
            seed=self.seed,
        )

    def estimate_cosine(self, sketch_a: SimHashSketch, sketch_b: SimHashSketch) -> float:
        """Estimate ``cos(angle(a, b))`` from bit agreement."""
        self._require(
            sketch_a.m == sketch_b.m and sketch_a.seed == sketch_b.seed,
            "SimHash sketches built with different (m, seed)",
        )
        agreement = float(np.mean(sketch_a.bits == sketch_b.bits))
        return math.cos(math.pi * (1.0 - agreement))

    def _bank_params(self) -> dict[str, Any]:
        return {"m": self.m, "seed": self.seed}

    def estimate(self, sketch_a: SimHashSketch, sketch_b: SimHashSketch) -> float:
        self._require(
            sketch_a.m == sketch_b.m and sketch_a.seed == sketch_b.seed,
            "SimHash sketches built with different (m, seed)",
        )
        if sketch_a.norm == 0.0 or sketch_b.norm == 0.0:
            return 0.0
        return sketch_a.norm * sketch_b.norm * self.estimate_cosine(sketch_a, sketch_b)
