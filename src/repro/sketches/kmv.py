"""K-Minimum-Values sketch (baseline "KMV"), Beyer et al. 2007.

Closely related to MinHash but samples *without* replacement: one hash
function ``h`` is applied to every non-zero index and the ``k`` pairs
``(h(j), a[j])`` with the smallest hashes are kept.  Unlike MinHash,
only one hash function is ever evaluated, so sketching costs
``O(nnz + k log k)``.

Estimation follows Beyer et al. (distinct values under multiset
operations) augmented with values as in Santos et al. 2021
(correlation sketches):

* merge the two sketches' distinct hashes and keep the bottom ``k``;
  let ``τ`` be the largest retained hash;
* ``Û = (k - 1) / τ`` estimates ``|A ∪ B|`` (hashes are uniform on
  ``(0, 1]``);
* retained hashes present in *both* sketches are uniform samples of
  ``A ∩ B``; the inner product estimate is
  ``(Û / k) · Σ_matched a[j]·b[j]``.

When a vector has fewer than ``k`` non-zeros the sketch is exact
(stores the whole support) and the union estimator switches to the
exact count of merged distinct hashes.

The batch path stores sketches in inf-padded ``(count, k)`` arrays and
scores a query against every row with one vectorized merge; the scalar
``estimate`` delegates to the same kernel, so scalar and batch results
are bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.bank import SketchBank
from repro.core.base import WORDS_PER_SAMPLE_SAMPLING, Sketcher
from repro.core.segments import chunk_boundaries
from repro.hashing.universal import TwoWiseHashFamily, fold_to_domain
from repro.vectors.sparse import SparseMatrix, SparseVector, as_sparse_matrix

__all__ = ["KMVSketch", "KMinimumValues"]

#: Batch working-set cap (elements of the per-chunk padded matrices).
_BATCH_CELL_TARGET = 8_000_000


@dataclass(frozen=True)
class KMVSketch:
    """Bottom-``k`` hash/value pairs, sorted by hash.

    ``exact`` marks sketches that contain the entire support (vector
    had ``nnz <= k``), in which case no extrapolation is needed.
    """

    hashes: np.ndarray
    values: np.ndarray
    k: int
    seed: int
    exact: bool

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.k


class KMinimumValues(Sketcher):
    """KMV sampling sketch sized to ``k`` retained minima."""

    name = "KMV"

    def __init__(self, k: int, seed: int = 0) -> None:
        if k <= 1:
            raise ValueError(f"KMV needs k >= 2, got {k}")
        self.k = int(k)
        self.seed = int(seed)
        self._family = TwoWiseHashFamily(1, seed=self.seed)

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "KMinimumValues":
        k = int(words / WORDS_PER_SAMPLE_SAMPLING)
        return cls(k=max(k, 2), seed=seed, **kwargs)

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.k

    def sketch(self, vector: SparseVector) -> KMVSketch:
        if vector.nnz == 0:
            return KMVSketch(
                hashes=np.empty(0),
                values=np.empty(0),
                k=self.k,
                seed=self.seed,
                exact=True,
            )
        folded = fold_to_domain(vector.indices)
        raw = self._family.single_ints(0, folded)
        # Bottom-k on packed ``raw_hash << 32 | position`` keys: the
        # integer order is exactly the (hash, first-position) order the
        # estimator's stable merge assumes, hash ties included, and one
        # argpartition + k-element sort replaces the float boundary
        # bookkeeping.  O(nnz + k log k).
        keys = (raw << np.uint64(32)) | np.arange(raw.size, dtype=np.uint64)
        if keys.size <= self.k:
            order = np.argsort(keys)
        else:
            candidates = np.argpartition(keys, self.k - 1)[: self.k]
            order = candidates[np.argsort(keys[candidates])]
        return KMVSketch(
            hashes=(raw[order].astype(np.float64) + 1.0) / self._family.prime,
            values=vector.values[order],
            k=self.k,
            seed=self.seed,
            exact=raw.size <= self.k,
        )

    def estimate_union_size(self, sketch_a: KMVSketch, sketch_b: KMVSketch) -> float:
        """Distinct-elements estimate of ``|A ∪ B|`` (Beyer et al.)."""
        merged = np.union1d(sketch_a.hashes, sketch_b.hashes)
        if merged.size == 0:
            return 0.0
        if sketch_a.exact and sketch_b.exact:
            return float(merged.size)
        k_used = min(self.k, merged.size)
        tau = float(merged[k_used - 1])
        return (k_used - 1) / tau

    def estimate(self, sketch_a: KMVSketch, sketch_b: KMVSketch) -> float:
        self._require(
            sketch_a.k == sketch_b.k and sketch_a.seed == sketch_b.seed,
            "KMV sketches built with different (k, seed)",
        )
        # Single source of truth: the scalar estimate is the one-row
        # case of the vectorized merge kernel.
        return float(self.estimate_many(sketch_a, self.pack_bank([sketch_b]))[0])

    # ------------------------------------------------------------------
    # batch path
    # ------------------------------------------------------------------

    def _bank_params(self) -> dict[str, Any]:
        return {"k": self.k, "seed": self.seed}

    def bank_layout(self) -> dict[str, tuple[tuple[int, ...], str]]:
        return {
            "hashes": ((self.k,), "<f8"),
            "values": ((self.k,), "<f8"),
            "sizes": ((), "<i8"),
            "exact": ((), "|b1"),
        }

    def _check_query(self, sketch: KMVSketch) -> None:
        self._require(
            sketch.k == self.k and sketch.seed == self.seed,
            f"query sketch (k={sketch.k}, seed={sketch.seed}) does not match "
            f"sketcher (k={self.k}, seed={self.seed})",
        )

    def pack_bank(self, sketches: Sequence[KMVSketch]) -> SketchBank:
        for sketch in sketches:
            self._check_query(sketch)
        count = len(sketches)
        hashes = np.full((count, self.k), np.inf)
        values = np.zeros((count, self.k))
        sizes = np.zeros(count, dtype=np.int64)
        exact = np.zeros(count, dtype=bool)
        for i, sketch in enumerate(sketches):
            stored = sketch.hashes.size
            hashes[i, :stored] = sketch.hashes
            values[i, :stored] = sketch.values
            sizes[i] = stored
            exact[i] = sketch.exact
        return SketchBank(
            kind=self.name,
            params=self._bank_params(),
            columns={"hashes": hashes, "values": values, "sizes": sizes, "exact": exact},
            words_per_sketch=self.storage_words(),
        )

    def bank_row(self, bank: SketchBank, i: int) -> KMVSketch:
        self._check_bank(bank)
        stored = int(bank.columns["sizes"][i])
        return KMVSketch(
            hashes=bank.columns["hashes"][i, :stored],
            values=bank.columns["values"][i, :stored],
            k=self.k,
            seed=self.seed,
            exact=bool(bank.columns["exact"][i]),
        )

    def _sketch_batch(
        self, matrix: SparseMatrix | Sequence[SparseVector] | np.ndarray
    ) -> SketchBank:
        """Sketch all rows with one hash pass over the distinct indices.

        The single KMV hash function is evaluated once per distinct
        folded index in the matrix; the per-row bottom-``k`` selection
        then runs as a padded ``argpartition`` over packed
        ``raw_hash << 32 | position`` keys — ``O(width)`` per row plus a
        ``k``-element sort, instead of a full-width stable argsort.
        The packed-key order is the scalar path's (hash, position)
        order, so results are bit-identical to the scalar loop.
        """
        rows = as_sparse_matrix(matrix).without_explicit_zeros()
        total = rows.num_rows
        hashes = np.full((total, self.k), np.inf)
        values = np.zeros((total, self.k))
        sizes = np.zeros(total, dtype=np.int64)
        exact = np.zeros(total, dtype=bool)

        row_sizes = rows.row_sizes()
        sizes[:] = np.minimum(row_sizes, self.k)
        exact[:] = row_sizes <= self.k

        active = row_sizes > 0
        if active.any():
            row_index = np.flatnonzero(active)
            indptr = np.concatenate([[0], np.cumsum(row_sizes[active])])
            # One multiply-mod per entry is cheaper than deduplicating:
            # KMV evaluates a single hash function, so the sort inside
            # np.unique would cost more than it saves.
            folded = fold_to_domain(rows.indices)
            entry_keys = self._family.single_ints(0, folded) << np.uint64(32)
            # Padding sorts after every real key: its high 32 bits are
            # all-ones, a raw hash is at most prime - 1 < 2**31.
            pad_key = np.uint64(np.iinfo(np.uint64).max)

            for lo, hi in chunk_boundaries(indptr, _BATCH_CELL_TARGET):
                lo_nnz, hi_nnz = int(indptr[lo]), int(indptr[hi])
                if hi_nnz - lo_nnz >= 1 << 32:
                    raise ValueError(
                        "a single row exceeds 2**32 non-zeros; cannot pack "
                        "positions into the selection keys"
                    )
                chunk_sizes = np.diff(indptr[lo : hi + 1])
                width = int(chunk_sizes.max())
                count = hi - lo
                padded = np.full((count, width), pad_key, dtype=np.uint64)
                local_rows = np.repeat(np.arange(count), chunk_sizes)
                local_cols = (
                    np.arange(hi_nnz - lo_nnz)
                    - np.repeat(indptr[lo:hi] - lo_nnz, chunk_sizes)
                )
                padded[local_rows, local_cols] = entry_keys[
                    lo_nnz:hi_nnz
                ] | np.arange(hi_nnz - lo_nnz, dtype=np.uint64)
                keep = min(self.k, width)
                chosen = np.partition(padded, keep - 1, axis=1)[:, :keep]
                chosen.sort(axis=1)
                positions = np.minimum(
                    (chosen & np.uint64(0xFFFFFFFF)).astype(np.int64) + lo_nnz,
                    hi_nnz - 1,  # padding decodes out of range; masked below
                )
                chunk_rows = row_index[lo:hi]
                hashes[chunk_rows, :keep] = (
                    (chosen >> np.uint64(32)).astype(np.float64) + 1.0
                ) / self._family.prime
                values[chunk_rows, :keep] = rows.values[positions]
            # Padding keys decode to garbage hashes/values; restore the
            # sentinel layout (inf hash, zero value) beyond each row's
            # stored size.
            pad_mask = np.arange(self.k)[None, :] >= sizes[:, None]
            hashes[pad_mask] = np.inf
            values[pad_mask] = 0.0

        return SketchBank(
            kind=self.name,
            params=self._bank_params(),
            columns={"hashes": hashes, "values": values, "sizes": sizes, "exact": exact},
            words_per_sketch=self.storage_words(),
        )

    def estimate_many(self, query_sketch: KMVSketch, bank: SketchBank) -> np.ndarray:
        """Beyer-et-al. estimation against every bank row, vectorized.

        Per row the kernel stable-merges the query's and the row's
        sorted hash arrays (ties place the row's copy first, marking a
        shared coordinate), recovers the ``k``-th smallest distinct
        hash ``τ``, and Horvitz–Thompson-weights the matched products —
        the same quantities the classic ``union1d``/``intersect1d``
        formulation produces.  The merge runs in row chunks so its
        ``(rows, 2k)`` merge/argsort temporaries stay bounded on large
        lakes; each row's value is bit-identical to the unchunked pass.
        """
        self._check_bank(bank)
        self._check_query(query_sketch)
        count = len(bank)
        out = np.zeros(count)
        if count == 0 or query_sketch.hashes.size == 0:
            return out
        width = bank.columns["hashes"].shape[1]
        chunk = max(1, _BATCH_CELL_TARGET // max(width + query_sketch.hashes.size, 1))
        for lo in range(0, count, chunk):
            hi = min(lo + chunk, count)
            out[lo:hi] = self._estimate_block(
                query_sketch,
                bank.columns["hashes"][lo:hi],
                bank.columns["values"][lo:hi],
                bank.columns["sizes"][lo:hi],
                bank.columns["exact"][lo:hi],
            )
        return out

    def _estimate_block(
        self,
        query_sketch: KMVSketch,
        bank_hashes: np.ndarray,
        bank_values: np.ndarray,
        bank_sizes: np.ndarray,
        bank_exact: np.ndarray,
    ) -> np.ndarray:
        """The merge kernel for one chunk of bank rows."""
        count = bank_hashes.shape[0]
        query_hashes = query_sketch.hashes
        query_values = query_sketch.values
        sq = query_hashes.size
        width = bank_hashes.shape[1]

        # Merged view: row hashes first, query hashes appended; stable
        # argsort keeps the row copy of a shared hash before the query
        # copy, so "equal to predecessor" identifies common coordinates.
        combined = np.concatenate(
            [bank_hashes, np.broadcast_to(query_hashes, (count, sq))], axis=1
        )
        order = np.argsort(combined, axis=1, kind="stable")
        merged = np.take_along_axis(combined, order, axis=1)
        from_query = order >= width

        previous = np.empty_like(merged)
        previous[:, 0] = -np.inf
        previous[:, 1:] = merged[:, :-1]
        prev_from_query = np.zeros_like(from_query)
        prev_from_query[:, 1:] = from_query[:, :-1]
        prev_order = np.zeros_like(order)
        prev_order[:, 1:] = order[:, :-1]

        finite = np.isfinite(merged)
        duplicate = (merged == previous) & (from_query != prev_from_query) & finite

        # Distinct union: merged size and the k_used-th smallest value.
        distinct = (~duplicate) & finite
        union_sizes = distinct.sum(axis=1)
        empty_rows = union_sizes == 0
        k_used = np.minimum(self.k, np.maximum(union_sizes, 1))
        distinct_rank = np.cumsum(distinct, axis=1)  # 1-based among distinct
        tau_mask = distinct & (distinct_rank == k_used[:, None])
        tau = np.max(np.where(tau_mask, merged, -np.inf), axis=1)

        # Matched products: at a duplicate position the pair
        # (predecessor, current) holds one row copy and one query copy.
        row_pos = np.where(from_query, prev_order, order)
        query_pos = np.where(from_query, order, prev_order) - width
        query_pos = np.clip(query_pos, 0, sq - 1)
        row_ids = np.arange(count)[:, None]
        products = bank_values[row_ids, np.clip(row_pos, 0, width - 1)] * query_values[
            query_pos
        ]
        within = duplicate & (merged <= tau[:, None])
        matched = np.where(within, products, 0.0).sum(axis=1)

        both_exact = bank_exact & bool(query_sketch.exact)
        with np.errstate(divide="ignore", invalid="ignore"):
            union_estimate = np.where(
                both_exact, union_sizes.astype(np.float64), (k_used - 1) / tau
            )
            scaled = (union_estimate / k_used) * matched
        out = np.where(both_exact, matched, scaled)
        out[empty_rows] = 0.0
        out[bank_sizes == 0] = 0.0
        return out
