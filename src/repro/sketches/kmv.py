"""K-Minimum-Values sketch (baseline "KMV"), Beyer et al. 2007.

Closely related to MinHash but samples *without* replacement: one hash
function ``h`` is applied to every non-zero index and the ``k`` pairs
``(h(j), a[j])`` with the smallest hashes are kept.  Unlike MinHash,
only one hash function is ever evaluated, so sketching costs
``O(nnz + k log k)``.

Estimation follows Beyer et al. (distinct values under multiset
operations) augmented with values as in Santos et al. 2021
(correlation sketches):

* merge the two sketches' distinct hashes and keep the bottom ``k``;
  let ``τ`` be the largest retained hash;
* ``Û = (k - 1) / τ`` estimates ``|A ∪ B|`` (hashes are uniform on
  ``(0, 1]``);
* retained hashes present in *both* sketches are uniform samples of
  ``A ∩ B``; the inner product estimate is
  ``(Û / k) · Σ_matched a[j]·b[j]``.

When a vector has fewer than ``k`` non-zeros the sketch is exact
(stores the whole support) and the union estimator switches to the
exact count of merged distinct hashes.

The batch path stores sketches in inf-padded ``(count, k)`` arrays and
scores a query against every row with one vectorized merge; the scalar
``estimate`` delegates to the same kernel, so scalar and batch results
are bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.bank import SketchBank
from repro.core.base import WORDS_PER_SAMPLE_SAMPLING, Sketcher
from repro.core.segments import chunk_boundaries
from repro.hashing.universal import TwoWiseHashFamily, fold_to_domain
from repro.vectors.sparse import SparseMatrix, SparseVector, as_sparse_matrix

__all__ = ["KMVSketch", "KMinimumValues"]

#: Batch working-set cap (elements of the per-chunk padded matrices).
_BATCH_CELL_TARGET = 8_000_000


@dataclass(frozen=True)
class KMVSketch:
    """Bottom-``k`` hash/value pairs, sorted by hash.

    ``exact`` marks sketches that contain the entire support (vector
    had ``nnz <= k``), in which case no extrapolation is needed.
    """

    hashes: np.ndarray
    values: np.ndarray
    k: int
    seed: int
    exact: bool

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.k


class KMinimumValues(Sketcher):
    """KMV sampling sketch sized to ``k`` retained minima."""

    name = "KMV"

    def __init__(self, k: int, seed: int = 0) -> None:
        if k <= 1:
            raise ValueError(f"KMV needs k >= 2, got {k}")
        self.k = int(k)
        self.seed = int(seed)
        self._family = TwoWiseHashFamily(1, seed=self.seed)

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "KMinimumValues":
        k = int(words / WORDS_PER_SAMPLE_SAMPLING)
        return cls(k=max(k, 2), seed=seed, **kwargs)

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.k

    def sketch(self, vector: SparseVector) -> KMVSketch:
        if vector.nnz == 0:
            return KMVSketch(
                hashes=np.empty(0),
                values=np.empty(0),
                k=self.k,
                seed=self.seed,
                exact=True,
            )
        folded = fold_to_domain(vector.indices)
        hashes = self._family.single_unit(0, folded)
        # Bottom-k with deterministic first-position tie-breaking,
        # identical to the batch path's padded stable argsort, in
        # O(nnz + k log k): partition, then resolve ties at the k-th
        # boundary by ascending position.
        if hashes.size <= self.k:
            order = np.argsort(hashes, kind="stable")
        else:
            candidates = np.argpartition(hashes, self.k - 1)[: self.k]
            tau = hashes[candidates].max()
            below = np.flatnonzero(hashes < tau)
            at_tau = np.flatnonzero(hashes == tau)
            chosen = np.concatenate([below, at_tau[: self.k - below.size]])
            order = chosen[np.argsort(hashes[chosen], kind="stable")]
        return KMVSketch(
            hashes=hashes[order],
            values=vector.values[order],
            k=self.k,
            seed=self.seed,
            exact=hashes.size <= self.k,
        )

    def estimate_union_size(self, sketch_a: KMVSketch, sketch_b: KMVSketch) -> float:
        """Distinct-elements estimate of ``|A ∪ B|`` (Beyer et al.)."""
        merged = np.union1d(sketch_a.hashes, sketch_b.hashes)
        if merged.size == 0:
            return 0.0
        if sketch_a.exact and sketch_b.exact:
            return float(merged.size)
        k_used = min(self.k, merged.size)
        tau = float(merged[k_used - 1])
        return (k_used - 1) / tau

    def estimate(self, sketch_a: KMVSketch, sketch_b: KMVSketch) -> float:
        self._require(
            sketch_a.k == sketch_b.k and sketch_a.seed == sketch_b.seed,
            "KMV sketches built with different (k, seed)",
        )
        # Single source of truth: the scalar estimate is the one-row
        # case of the vectorized merge kernel.
        return float(self.estimate_many(sketch_a, self.pack_bank([sketch_b]))[0])

    # ------------------------------------------------------------------
    # batch path
    # ------------------------------------------------------------------

    def _bank_params(self) -> dict[str, Any]:
        return {"k": self.k, "seed": self.seed}

    def _check_query(self, sketch: KMVSketch) -> None:
        self._require(
            sketch.k == self.k and sketch.seed == self.seed,
            f"query sketch (k={sketch.k}, seed={sketch.seed}) does not match "
            f"sketcher (k={self.k}, seed={self.seed})",
        )

    def pack_bank(self, sketches: Sequence[KMVSketch]) -> SketchBank:
        for sketch in sketches:
            self._check_query(sketch)
        count = len(sketches)
        hashes = np.full((count, self.k), np.inf)
        values = np.zeros((count, self.k))
        sizes = np.zeros(count, dtype=np.int64)
        exact = np.zeros(count, dtype=bool)
        for i, sketch in enumerate(sketches):
            stored = sketch.hashes.size
            hashes[i, :stored] = sketch.hashes
            values[i, :stored] = sketch.values
            sizes[i] = stored
            exact[i] = sketch.exact
        return SketchBank(
            kind=self.name,
            params=self._bank_params(),
            columns={"hashes": hashes, "values": values, "sizes": sizes, "exact": exact},
            words_per_sketch=self.storage_words(),
        )

    def bank_row(self, bank: SketchBank, i: int) -> KMVSketch:
        self._check_bank(bank)
        stored = int(bank.columns["sizes"][i])
        return KMVSketch(
            hashes=bank.columns["hashes"][i, :stored],
            values=bank.columns["values"][i, :stored],
            k=self.k,
            seed=self.seed,
            exact=bool(bank.columns["exact"][i]),
        )

    def sketch_batch(
        self, matrix: SparseMatrix | Sequence[SparseVector] | np.ndarray
    ) -> SketchBank:
        """Sketch all rows with one hash pass over the distinct indices.

        The single KMV hash function is evaluated once per distinct
        folded index in the matrix; the per-row bottom-``k`` selection
        then runs as a padded stable argsort over row chunks.  Results
        are bit-identical to the scalar loop.
        """
        rows = as_sparse_matrix(matrix)
        total = rows.num_rows
        hashes = np.full((total, self.k), np.inf)
        values = np.zeros((total, self.k))
        sizes = np.zeros(total, dtype=np.int64)
        exact = np.zeros(total, dtype=bool)

        row_sizes = rows.row_sizes()
        sizes[:] = np.minimum(row_sizes, self.k)
        exact[:] = row_sizes <= self.k

        active = row_sizes > 0
        if active.any():
            row_index = np.flatnonzero(active)
            indptr = np.concatenate([[0], np.cumsum(row_sizes[active])])
            folded = fold_to_domain(rows.indices)
            unique_folded, inverse = np.unique(folded, return_inverse=True)
            unique_hashes = self._family.single_unit(0, unique_folded)

            for lo, hi in chunk_boundaries(indptr, _BATCH_CELL_TARGET):
                lo_nnz, hi_nnz = int(indptr[lo]), int(indptr[hi])
                chunk_sizes = np.diff(indptr[lo : hi + 1])
                width = int(chunk_sizes.max())
                count = hi - lo
                padded = np.full((count, width), np.inf)
                padded_values = np.zeros((count, width))
                local_rows = np.repeat(np.arange(count), chunk_sizes)
                local_cols = (
                    np.arange(hi_nnz - lo_nnz)
                    - np.repeat(indptr[lo:hi] - lo_nnz, chunk_sizes)
                )
                padded[local_rows, local_cols] = unique_hashes[
                    inverse[lo_nnz:hi_nnz]
                ]
                padded_values[local_rows, local_cols] = rows.values[lo_nnz:hi_nnz]
                keep = min(self.k, width)
                order = np.argsort(padded, axis=1, kind="stable")[:, :keep]
                chunk_rows = row_index[lo:hi]
                selected = np.take_along_axis(padded, order, axis=1)
                hashes[chunk_rows, :keep] = selected
                values[chunk_rows, :keep] = np.take_along_axis(
                    padded_values, order, axis=1
                )
            # Padding positions sorted in carry inf hashes; restore the
            # sentinel layout (inf hash, zero value) beyond each row's
            # stored size.
            pad_mask = np.arange(self.k)[None, :] >= sizes[:, None]
            hashes[pad_mask] = np.inf
            values[pad_mask] = 0.0

        return SketchBank(
            kind=self.name,
            params=self._bank_params(),
            columns={"hashes": hashes, "values": values, "sizes": sizes, "exact": exact},
            words_per_sketch=self.storage_words(),
        )

    def estimate_many(self, query_sketch: KMVSketch, bank: SketchBank) -> np.ndarray:
        """Beyer-et-al. estimation against every bank row, vectorized.

        Per row the kernel stable-merges the query's and the row's
        sorted hash arrays (ties place the row's copy first, marking a
        shared coordinate), recovers the ``k``-th smallest distinct
        hash ``τ``, and Horvitz–Thompson-weights the matched products —
        the same quantities the classic ``union1d``/``intersect1d``
        formulation produces, computed for all rows at once.
        """
        self._check_bank(bank)
        self._check_query(query_sketch)
        count = len(bank)
        out = np.zeros(count)
        if count == 0 or query_sketch.hashes.size == 0:
            return out
        bank_hashes = bank.columns["hashes"]
        bank_values = bank.columns["values"]
        bank_sizes = bank.columns["sizes"]
        bank_exact = bank.columns["exact"]

        query_hashes = query_sketch.hashes
        query_values = query_sketch.values
        sq = query_hashes.size
        width = bank_hashes.shape[1]

        # Merged view: row hashes first, query hashes appended; stable
        # argsort keeps the row copy of a shared hash before the query
        # copy, so "equal to predecessor" identifies common coordinates.
        combined = np.concatenate(
            [bank_hashes, np.broadcast_to(query_hashes, (count, sq))], axis=1
        )
        order = np.argsort(combined, axis=1, kind="stable")
        merged = np.take_along_axis(combined, order, axis=1)
        from_query = order >= width

        previous = np.empty_like(merged)
        previous[:, 0] = -np.inf
        previous[:, 1:] = merged[:, :-1]
        prev_from_query = np.zeros_like(from_query)
        prev_from_query[:, 1:] = from_query[:, :-1]
        prev_order = np.zeros_like(order)
        prev_order[:, 1:] = order[:, :-1]

        finite = np.isfinite(merged)
        duplicate = (merged == previous) & (from_query != prev_from_query) & finite

        # Distinct union: merged size and the k_used-th smallest value.
        distinct = (~duplicate) & finite
        union_sizes = distinct.sum(axis=1)
        empty_rows = union_sizes == 0
        k_used = np.minimum(self.k, np.maximum(union_sizes, 1))
        distinct_rank = np.cumsum(distinct, axis=1)  # 1-based among distinct
        tau_mask = distinct & (distinct_rank == k_used[:, None])
        tau = np.max(np.where(tau_mask, merged, -np.inf), axis=1)

        # Matched products: at a duplicate position the pair
        # (predecessor, current) holds one row copy and one query copy.
        row_pos = np.where(from_query, prev_order, order)
        query_pos = np.where(from_query, order, prev_order) - width
        query_pos = np.clip(query_pos, 0, sq - 1)
        row_ids = np.arange(count)[:, None]
        products = bank_values[row_ids, np.clip(row_pos, 0, width - 1)] * query_values[
            query_pos
        ]
        within = duplicate & (merged <= tau[:, None])
        matched = np.where(within, products, 0.0).sum(axis=1)

        both_exact = bank_exact & bool(query_sketch.exact)
        with np.errstate(divide="ignore", invalid="ignore"):
            union_estimate = np.where(
                both_exact, union_sizes.astype(np.float64), (k_used - 1) / tau
            )
            scaled = (union_estimate / k_used) * matched
        out = np.where(both_exact, matched, scaled)
        out[empty_rows] = 0.0
        out[bank_sizes == 0] = 0.0
        return out
