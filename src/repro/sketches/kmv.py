"""K-Minimum-Values sketch (baseline "KMV"), Beyer et al. 2007.

Closely related to MinHash but samples *without* replacement: one hash
function ``h`` is applied to every non-zero index and the ``k`` pairs
``(h(j), a[j])`` with the smallest hashes are kept.  Unlike MinHash,
only one hash function is ever evaluated, so sketching costs
``O(nnz + k log k)``.

Estimation follows Beyer et al. (distinct values under multiset
operations) augmented with values as in Santos et al. 2021
(correlation sketches):

* merge the two sketches' distinct hashes and keep the bottom ``k``;
  let ``τ`` be the largest retained hash;
* ``Û = (k - 1) / τ`` estimates ``|A ∪ B|`` (hashes are uniform on
  ``(0, 1]``);
* retained hashes present in *both* sketches are uniform samples of
  ``A ∩ B``; the inner product estimate is
  ``(Û / k) · Σ_matched a[j]·b[j]``.

When a vector has fewer than ``k`` non-zeros the sketch is exact
(stores the whole support) and the union estimator switches to the
exact count of merged distinct hashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.base import WORDS_PER_SAMPLE_SAMPLING, Sketcher
from repro.hashing.universal import TwoWiseHashFamily, fold_to_domain
from repro.vectors.sparse import SparseVector

__all__ = ["KMVSketch", "KMinimumValues"]


@dataclass(frozen=True)
class KMVSketch:
    """Bottom-``k`` hash/value pairs, sorted by hash.

    ``exact`` marks sketches that contain the entire support (vector
    had ``nnz <= k``), in which case no extrapolation is needed.
    """

    hashes: np.ndarray
    values: np.ndarray
    k: int
    seed: int
    exact: bool

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.k


class KMinimumValues(Sketcher):
    """KMV sampling sketch sized to ``k`` retained minima."""

    name = "KMV"

    def __init__(self, k: int, seed: int = 0) -> None:
        if k <= 1:
            raise ValueError(f"KMV needs k >= 2, got {k}")
        self.k = int(k)
        self.seed = int(seed)
        self._family = TwoWiseHashFamily(1, seed=self.seed)

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "KMinimumValues":
        k = int(words / WORDS_PER_SAMPLE_SAMPLING)
        return cls(k=max(k, 2), seed=seed, **kwargs)

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.k

    def sketch(self, vector: SparseVector) -> KMVSketch:
        if vector.nnz == 0:
            return KMVSketch(
                hashes=np.empty(0),
                values=np.empty(0),
                k=self.k,
                seed=self.seed,
                exact=True,
            )
        folded = fold_to_domain(vector.indices)
        hashes = self._family.single_unit(0, folded)
        if hashes.size <= self.k:
            order = np.argsort(hashes)
        else:
            smallest = np.argpartition(hashes, self.k)[: self.k]
            order = smallest[np.argsort(hashes[smallest])]
        return KMVSketch(
            hashes=hashes[order],
            values=vector.values[order],
            k=self.k,
            seed=self.seed,
            exact=hashes.size <= self.k,
        )

    def estimate_union_size(self, sketch_a: KMVSketch, sketch_b: KMVSketch) -> float:
        """Distinct-elements estimate of ``|A ∪ B|`` (Beyer et al.)."""
        merged = np.union1d(sketch_a.hashes, sketch_b.hashes)
        if merged.size == 0:
            return 0.0
        if sketch_a.exact and sketch_b.exact:
            return float(merged.size)
        k_used = min(self.k, merged.size)
        tau = float(merged[k_used - 1])
        return (k_used - 1) / tau

    def estimate(self, sketch_a: KMVSketch, sketch_b: KMVSketch) -> float:
        self._require(
            sketch_a.k == sketch_b.k and sketch_a.seed == sketch_b.seed,
            "KMV sketches built with different (k, seed)",
        )
        if sketch_a.hashes.size == 0 or sketch_b.hashes.size == 0:
            return 0.0
        merged = np.union1d(sketch_a.hashes, sketch_b.hashes)
        k_used = min(self.k, merged.size)
        tau = float(merged[k_used - 1])
        union_estimate = self.estimate_union_size(sketch_a, sketch_b)

        # Samples of A ∩ B: hashes <= τ present in both sketches.
        common, pos_a, pos_b = np.intersect1d(
            sketch_a.hashes, sketch_b.hashes, assume_unique=True, return_indices=True
        )
        within = common <= tau
        matched_products = float(
            np.dot(sketch_a.values[pos_a[within]], sketch_b.values[pos_b[within]])
        )
        if sketch_a.exact and sketch_b.exact:
            return matched_products  # both supports fully known
        return (union_estimate / k_used) * matched_products
