"""CountSketch (baseline "CS"), Charikar–Chen–Farach-Colton 2002.

A sparse linear sketch: each repetition hashes every index to one of
``w`` buckets with a random sign, and the bucket accumulates the signed
value.  The inner product of two tables is an unbiased estimate of
``<a, b>``; following the paper (and Larsen–Pagh–Tětek 2021), we use
**5 independent repetitions and take the median** of the per-repetition
estimates, with the storage budget split evenly across repetitions.

Both the bucket hash and the sign hash are Carter–Wegman 2-wise
functions modulo the 31-bit Mersenne prime, which is all the analysis
requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.bank import SketchBank
from repro.core.base import Sketcher
from repro.hashing.universal import TwoWiseHashFamily, fold_to_domain
from repro.vectors.sparse import SparseMatrix, SparseVector, as_sparse_matrix

__all__ = ["CountSketchData", "CountSketch", "DEFAULT_REPETITIONS"]

#: The paper follows Larsen et al.: 5 repetitions, median estimate.
DEFAULT_REPETITIONS = 5

#: Cell cap for the per-chunk (queries, rows, repetitions) temporary of
#: ``estimate_cross`` (a few MB), so batched serving never materializes
#: a lake-sized intermediate.
_CROSS_CELL_TARGET = 500_000


@dataclass(frozen=True)
class CountSketchData:
    """``(repetitions, width)`` table of signed bucket sums."""

    table: np.ndarray
    repetitions: int
    width: int
    seed: int

    def storage_words(self) -> float:
        return float(self.repetitions * self.width)


class CountSketch(Sketcher):
    """CountSketch with median-of-repetitions estimation.

    Parameters
    ----------
    width:
        Buckets per repetition.
    repetitions:
        Independent tables; the estimate is their median (default 5).
    seed:
        Seed for the bucket/sign hash families.
    """

    name = "CS"

    def __init__(
        self,
        width: int,
        repetitions: int = DEFAULT_REPETITIONS,
        seed: int = 0,
    ) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        if repetitions <= 0:
            raise ValueError(f"repetitions must be positive, got {repetitions}")
        self.width = int(width)
        self.repetitions = int(repetitions)
        self.seed = int(seed)
        # Two independent CW families: bucket placement and signs.
        self._buckets = TwoWiseHashFamily(repetitions, seed=seed * 2 + 1)
        self._signs = TwoWiseHashFamily(repetitions, seed=seed * 2 + 2)

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "CountSketch":
        """Split the word budget evenly across the repetitions."""
        repetitions = int(kwargs.pop("repetitions", DEFAULT_REPETITIONS))
        width = max(int(words) // repetitions, 1)
        return cls(width=width, repetitions=repetitions, seed=seed, **kwargs)

    def storage_words(self) -> float:
        return float(self.repetitions * self.width)

    def sketch(self, vector: SparseVector) -> CountSketchData:
        table = np.zeros((self.repetitions, self.width), dtype=np.float64)
        if vector.nnz:
            folded = fold_to_domain(vector.indices)
            buckets = self._buckets.hash_ints(folded) % np.uint64(self.width)
            signs = np.where(
                self._signs.hash_ints(folded) & np.uint64(1), 1.0, -1.0
            )
            for rep in range(self.repetitions):
                np.add.at(
                    table[rep],
                    buckets[rep].astype(np.int64),
                    signs[rep] * vector.values,
                )
        return CountSketchData(
            table=table,
            repetitions=self.repetitions,
            width=self.width,
            seed=self.seed,
        )

    def estimate(self, sketch_a: CountSketchData, sketch_b: CountSketchData) -> float:
        self._require(
            sketch_a.repetitions == sketch_b.repetitions
            and sketch_a.width == sketch_b.width
            and sketch_a.seed == sketch_b.seed,
            "CountSketch tables built with different parameters",
        )
        per_repetition = np.einsum("rw,rw->r", sketch_a.table, sketch_b.table)
        return float(np.median(per_repetition))

    # ------------------------------------------------------------------
    # batch path
    # ------------------------------------------------------------------

    def _bank_params(self) -> dict[str, Any]:
        return {"repetitions": self.repetitions, "width": self.width, "seed": self.seed}

    def bank_layout(self) -> dict[str, tuple[tuple[int, ...], str]]:
        return {"tables": ((self.repetitions, self.width), "<f8")}

    def _check_query(self, sketch: CountSketchData) -> None:
        self._require(
            sketch.repetitions == self.repetitions
            and sketch.width == self.width
            and sketch.seed == self.seed,
            f"query table (r={sketch.repetitions}, w={sketch.width}, "
            f"seed={sketch.seed}) does not match sketcher "
            f"(r={self.repetitions}, w={self.width}, seed={self.seed})",
        )

    def pack_bank(self, sketches: Sequence[CountSketchData]) -> SketchBank:
        for sketch in sketches:
            self._check_query(sketch)
        return SketchBank(
            kind=self.name,
            params=self._bank_params(),
            columns={
                "tables": np.stack([s.table for s in sketches])
                if sketches
                else np.empty((0, self.repetitions, self.width))
            },
            words_per_sketch=self.storage_words(),
        )

    def bank_row(self, bank: SketchBank, i: int) -> CountSketchData:
        self._check_bank(bank)
        return CountSketchData(
            table=bank.columns["tables"][i],
            repetitions=self.repetitions,
            width=self.width,
            seed=self.seed,
        )

    def _sketch_batch(
        self, matrix: SparseMatrix | Sequence[SparseVector] | np.ndarray
    ) -> SketchBank:
        """Accumulate all rows' tables from one hash pass.

        Bucket and sign hashes are evaluated once per distinct folded
        index in the matrix, then scattered into the per-row tables with
        one ``np.add.at`` per repetition.  The scatter visits entries in
        row order, matching the scalar accumulation order exactly.
        """
        rows = as_sparse_matrix(matrix)
        tables = np.zeros((rows.num_rows, self.repetitions, self.width))
        if rows.nnz:
            folded = fold_to_domain(rows.indices)
            unique_folded, inverse = np.unique(folded, return_inverse=True)
            buckets = (
                self._buckets.hash_ints(unique_folded) % np.uint64(self.width)
            ).astype(np.int64)
            signs = np.where(self._signs.hash_ints(unique_folded) & np.uint64(1), 1.0, -1.0)
            row_ids = np.repeat(np.arange(rows.num_rows), rows.row_sizes())
            for rep in range(self.repetitions):
                np.add.at(
                    tables[:, rep, :],
                    (row_ids, buckets[rep][inverse]),
                    signs[rep][inverse] * rows.values,
                )
        return SketchBank(
            kind=self.name,
            params=self._bank_params(),
            columns={"tables": tables},
            words_per_sketch=self.storage_words(),
        )

    def estimate_many(
        self, query_sketch: CountSketchData, bank: SketchBank
    ) -> np.ndarray:
        """Median-of-repetitions estimates against every bank row."""
        self._check_bank(bank)
        self._check_query(query_sketch)
        per_repetition = np.einsum(
            "nrw,rw->nr", bank.columns["tables"], query_sketch.table
        )
        if per_repetition.shape[0] == 0:
            return np.zeros(0)
        return np.median(per_repetition, axis=1)

    def estimate_cross(self, query_bank: SketchBank, bank: SketchBank) -> np.ndarray:
        """Median-of-repetitions estimates for every query/row pair.

        The ``w``-contraction runs per bounded bank chunk, so the
        ``(Q, chunk, repetitions)`` per-repetition temporary never
        scales with the lake; einsum reduces ``w`` in the same
        sequential order as :meth:`estimate_many` and the median is
        per-pair, so each result row is bit-identical to the per-query
        call.
        """
        self._check_bank(query_bank)
        self._check_bank(bank)
        num_queries = len(query_bank)
        count = len(bank)
        out = np.zeros((num_queries, count))
        if num_queries == 0 or count == 0:
            return out
        query_tables = query_bank.columns["tables"]
        bank_tables = bank.columns["tables"]
        row_chunk = max(
            1, _CROSS_CELL_TARGET // max(num_queries * self.repetitions, 1)
        )
        for lo in range(0, count, row_chunk):
            hi = min(lo + row_chunk, count)
            per_repetition = np.einsum(
                "qrw,nrw->qnr", query_tables, bank_tables[lo:hi]
            )
            out[:, lo:hi] = np.median(per_repetition, axis=2)
        return out
