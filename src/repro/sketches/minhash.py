"""Unweighted MinHash inner-product sketch (Algorithms 1 and 2).

The warm-up method of Section 3 and the experimental baseline "MH".
Per repetition ``i``, hash every non-zero index with an independent
function ``h_i`` and keep the minimum hash together with the vector
value at the arg-min index.  Estimation (Algorithm 2):

    Ũ   = m / Σ_i min(H_hash_a[i], H_hash_b[i]) - 1      (union size)
    est = (Ũ/m) Σ_i 1[H_hash_a[i] = H_hash_b[i]] · H_val_a[i] · H_val_b[i]

Ũ is a Flajolet–Martin style distinct-elements estimate of
``|A ∪ B|`` (Lemma 1); matched repetitions are uniform samples from
``A ∩ B`` (Fact 3).  Theorem 4: for entries bounded in ``[-c, c]`` the
error is ``ε c² sqrt(max(|A|,|B|)·|A∩B|)`` — which degrades badly under
heavy entries, the failure mode Weighted MinHash fixes.

Hashing follows the paper's experiments: 2-wise Carter–Wegman functions
modulo the 31-bit Mersenne prime, stored as 32-bit values (hence the
1.5-words-per-sample storage accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.base import WORDS_PER_SAMPLE_SAMPLING, Sketcher
from repro.hashing.universal import TwoWiseHashFamily, fold_to_domain
from repro.vectors.sparse import SparseVector

__all__ = ["MinHashSketch", "MinHash"]


@dataclass(frozen=True)
class MinHashSketch:
    """Output of Algorithm 1: ``{H_hash, H_val}``."""

    hashes: np.ndarray
    values: np.ndarray
    m: int
    seed: int

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.m


class MinHash(Sketcher):
    """Unweighted (augmented) MinHash sampling sketch."""

    name = "MH"

    def __init__(self, m: int, seed: int = 0) -> None:
        if m <= 0:
            raise ValueError(f"sample count m must be positive, got {m}")
        self.m = int(m)
        self.seed = int(seed)
        self._family = TwoWiseHashFamily(self.m, seed=self.seed)

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "MinHash":
        m = int(words / WORDS_PER_SAMPLE_SAMPLING)
        return cls(m=max(m, 1), seed=seed, **kwargs)

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.m

    def sketch(self, vector: SparseVector) -> MinHashSketch:
        if vector.nnz == 0:
            return MinHashSketch(
                hashes=np.full(self.m, np.inf),
                values=np.zeros(self.m),
                m=self.m,
                seed=self.seed,
            )
        folded = fold_to_domain(vector.indices)
        hashes = self._family.hash_unit(folded)  # (m, nnz)
        best = np.argmin(hashes, axis=1)
        rows = np.arange(self.m)
        return MinHashSketch(
            hashes=hashes[rows, best],
            values=vector.values[best],
            m=self.m,
            seed=self.seed,
        )

    def estimate(self, sketch_a: MinHashSketch, sketch_b: MinHashSketch) -> float:
        self._require(
            sketch_a.m == sketch_b.m and sketch_a.seed == sketch_b.seed,
            "MinHash sketches built with different (m, seed)",
        )
        if not np.isfinite(sketch_a.hashes).any() or not np.isfinite(sketch_b.hashes).any():
            return 0.0
        minima = np.minimum(sketch_a.hashes, sketch_b.hashes)
        union_estimate = sketch_a.m / float(minima.sum()) - 1.0
        matches = sketch_a.hashes == sketch_b.hashes
        matched_products = float(
            np.sum(np.where(matches, sketch_a.values * sketch_b.values, 0.0))
        )
        return (union_estimate / sketch_a.m) * matched_products
