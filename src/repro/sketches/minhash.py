"""Unweighted MinHash inner-product sketch (Algorithms 1 and 2).

The warm-up method of Section 3 and the experimental baseline "MH".
Per repetition ``i``, hash every non-zero index with an independent
function ``h_i`` and keep the minimum hash together with the vector
value at the arg-min index.  Estimation (Algorithm 2):

    Ũ   = m / Σ_i min(H_hash_a[i], H_hash_b[i]) - 1      (union size)
    est = (Ũ/m) Σ_i 1[H_hash_a[i] = H_hash_b[i]] · H_val_a[i] · H_val_b[i]

Ũ is a Flajolet–Martin style distinct-elements estimate of
``|A ∪ B|`` (Lemma 1); matched repetitions are uniform samples from
``A ∩ B`` (Fact 3).  Theorem 4: for entries bounded in ``[-c, c]`` the
error is ``ε c² sqrt(max(|A|,|B|)·|A∩B|)`` — which degrades badly under
heavy entries, the failure mode Weighted MinHash fixes.

Hashing follows the paper's experiments: 2-wise Carter–Wegman functions
modulo the 31-bit Mersenne prime, stored as 32-bit values (hence the
1.5-words-per-sample storage accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.bank import SketchBank
from repro.core.base import WORDS_PER_SAMPLE_SAMPLING, Sketcher
from repro.core.segments import chunk_boundaries
from repro.hashing.universal import TwoWiseHashFamily, fold_to_domain
from repro.vectors.sparse import SparseMatrix, SparseVector, as_sparse_matrix

__all__ = ["MinHashSketch", "MinHash"]

#: Batch working-set cap (elements of the per-chunk (m, nnz) matrices).
_BATCH_CELL_TARGET = 500_000


@dataclass(frozen=True)
class MinHashSketch:
    """Output of Algorithm 1: ``{H_hash, H_val}``."""

    hashes: np.ndarray
    values: np.ndarray
    m: int
    seed: int

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.m


class MinHash(Sketcher):
    """Unweighted (augmented) MinHash sampling sketch."""

    name = "MH"

    def __init__(self, m: int, seed: int = 0) -> None:
        if m <= 0:
            raise ValueError(f"sample count m must be positive, got {m}")
        self.m = int(m)
        self.seed = int(seed)
        self._family = TwoWiseHashFamily(self.m, seed=self.seed)

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "MinHash":
        m = int(words / WORDS_PER_SAMPLE_SAMPLING)
        return cls(m=max(m, 1), seed=seed, **kwargs)

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.m

    def sketch(self, vector: SparseVector) -> MinHashSketch:
        if vector.nnz == 0:
            return MinHashSketch(
                hashes=np.full(self.m, np.inf),
                values=np.zeros(self.m),
                m=self.m,
                seed=self.seed,
            )
        folded = fold_to_domain(vector.indices)
        hashes = self._family.hash_unit(folded)  # (m, nnz)
        best = np.argmin(hashes, axis=1)
        rows = np.arange(self.m)
        return MinHashSketch(
            hashes=hashes[rows, best],
            values=vector.values[best],
            m=self.m,
            seed=self.seed,
        )

    def estimate(self, sketch_a: MinHashSketch, sketch_b: MinHashSketch) -> float:
        self._require(
            sketch_a.m == sketch_b.m and sketch_a.seed == sketch_b.seed,
            "MinHash sketches built with different (m, seed)",
        )
        if not np.isfinite(sketch_a.hashes).any() or not np.isfinite(sketch_b.hashes).any():
            return 0.0
        minima = np.minimum(sketch_a.hashes, sketch_b.hashes)
        union_estimate = sketch_a.m / float(minima.sum()) - 1.0
        matches = sketch_a.hashes == sketch_b.hashes
        matched_products = float(
            np.sum(np.where(matches, sketch_a.values * sketch_b.values, 0.0))
        )
        return (union_estimate / sketch_a.m) * matched_products

    # ------------------------------------------------------------------
    # batch path
    # ------------------------------------------------------------------

    def _bank_params(self) -> dict[str, Any]:
        return {"m": self.m, "seed": self.seed}

    def bank_layout(self) -> dict[str, tuple[tuple[int, ...], str]]:
        return {
            "hashes": ((self.m,), "<f8"),
            "values": ((self.m,), "<f8"),
        }

    def _check_query(self, sketch: MinHashSketch) -> None:
        self._require(
            sketch.m == self.m and sketch.seed == self.seed,
            f"query sketch (m={sketch.m}, seed={sketch.seed}) does not match "
            f"sketcher (m={self.m}, seed={self.seed})",
        )

    def pack_bank(self, sketches: Sequence[MinHashSketch]) -> SketchBank:
        for sketch in sketches:
            self._check_query(sketch)
        count = len(sketches)
        return SketchBank(
            kind=self.name,
            params=self._bank_params(),
            columns={
                "hashes": np.stack([s.hashes for s in sketches])
                if count
                else np.empty((0, self.m)),
                "values": np.stack([s.values for s in sketches])
                if count
                else np.empty((0, self.m)),
            },
            words_per_sketch=self.storage_words(),
        )

    def signature_length(self) -> int:
        return self.m

    def signature_key(self, sketch: MinHashSketch) -> np.ndarray:
        """Per-repetition minimum hashes, the banded-LSH signature."""
        self._check_query(sketch)
        return sketch.hashes

    def signature_keys(self, bank: SketchBank) -> np.ndarray:
        self._check_bank(bank)
        return bank.columns["hashes"]

    def bank_row(self, bank: SketchBank, i: int) -> MinHashSketch:
        self._check_bank(bank)
        return MinHashSketch(
            hashes=bank.columns["hashes"][i],
            values=bank.columns["values"][i],
            m=self.m,
            seed=self.seed,
        )

    def _sketch_batch(
        self, matrix: SparseMatrix | Sequence[SparseVector] | np.ndarray
    ) -> SketchBank:
        """Sketch all rows with one hash pass over the distinct indices.

        The ``m`` Carter–Wegman functions are evaluated once per
        distinct folded index in the matrix (indices shared across rows
        — common vocabulary, common keys — are hashed once).  The
        per-row reduction then runs entirely on packed integer keys
        ``raw_hash << 32 | entry_position``: one unsigned minimum per
        segment yields the minimum hash *and* its first position in a
        single pass, with no float division and no complex temporaries.
        ``(h, position)`` ordering is exactly ``np.argmin`` ordering on
        the unit-interval hashes — ``(h + 1) / p`` is strictly monotone
        in ``h`` — so results are bit-identical to the scalar loop,
        including genuine 31-bit hash-collision ties.
        """
        rows = as_sparse_matrix(matrix).without_explicit_zeros()
        total = rows.num_rows
        hashes = np.full((total, self.m), np.inf)
        values = np.zeros((total, self.m))

        sizes = rows.row_sizes()
        active = sizes > 0
        if active.any():
            # Empty rows contribute no entries, so the concatenated
            # index/value arrays are exactly the active rows' entries.
            row_index = np.flatnonzero(active)
            row_values = rows.values
            indptr = np.concatenate([[0], np.cumsum(sizes[active])])

            folded = fold_to_domain(rows.indices)
            unique_folded, inverse = np.unique(folded, return_inverse=True)
            # (U, m) row-major so each entry's gather is one contiguous
            # row copy; pre-shifted so the chunk loop only adds
            # positions.
            unique_keys = np.ascontiguousarray(
                self._family.hash_ints(unique_folded).T
            ) << np.uint64(32)

            for lo, hi in chunk_boundaries(
                indptr, _BATCH_CELL_TARGET // max(self.m, 1)
            ):
                lo_nnz, hi_nnz = int(indptr[lo]), int(indptr[hi])
                if hi_nnz - lo_nnz >= 1 << 32:
                    raise ValueError(
                        "a single row exceeds 2**32 non-zeros; cannot pack "
                        "positions into the reduction keys"
                    )
                gathered = unique_keys[inverse[lo_nnz:hi_nnz]]
                gathered += np.arange(hi_nnz - lo_nnz, dtype=np.uint64)[:, None]
                reduced = np.minimum.reduceat(
                    gathered, (indptr[lo:hi] - lo_nnz), axis=0
                )
                argpos = (reduced & np.uint64(0xFFFFFFFF)).astype(np.int64) + lo_nnz
                chunk_rows = row_index[lo:hi]
                hashes[chunk_rows] = (
                    (reduced >> np.uint64(32)).astype(np.float64) + 1.0
                ) / self._family.prime
                values[chunk_rows] = row_values[argpos]

        return SketchBank(
            kind=self.name,
            params=self._bank_params(),
            columns={"hashes": hashes, "values": values},
            words_per_sketch=self.storage_words(),
        )

    def _estimate_block(
        self,
        query_hashes: np.ndarray,
        query_values: np.ndarray,
        bank_hashes: np.ndarray,
        bank_values: np.ndarray,
    ) -> np.ndarray:
        """Algorithm 2 for one ``(..., m)``-aligned block, fused.

        Inputs broadcast on the leading axes; the trailing ``m`` axis is
        reduced away.  A non-empty sketch's hashes are all finite, so an
        empty row (all ``+inf``) matches nothing and its estimate comes
        out exactly ``+0.0`` — no activity mask needed.
        """
        minima = np.minimum(query_hashes, bank_hashes)
        union_estimate = self.m / minima.sum(axis=-1) - 1.0
        matches = query_hashes == bank_hashes
        matched_products = np.sum(
            np.where(matches, query_values * bank_values, 0.0), axis=-1
        )
        return (union_estimate / self.m) * matched_products

    def estimate_many(self, query_sketch: MinHashSketch, bank: SketchBank) -> np.ndarray:
        """Algorithm 2 against every bank row in one fused chunked pass.

        Temporaries are bounded ``(chunk, m)`` blocks (about
        :data:`_BATCH_CELL_TARGET` elements) instead of full-lake
        ``(rows, m)`` intermediates; each row's value is bit-identical
        to the unchunked arithmetic.
        """
        self._check_bank(bank)
        self._check_query(query_sketch)
        count = len(bank)
        out = np.zeros(count)
        if count == 0 or not np.isfinite(query_sketch.hashes).any():
            return out
        bank_hashes = bank.columns["hashes"]
        bank_values = bank.columns["values"]
        query_hashes = query_sketch.hashes[None, :]
        query_values = query_sketch.values[None, :]
        chunk = max(1, _BATCH_CELL_TARGET // max(self.m, 1))
        for lo in range(0, count, chunk):
            hi = min(lo + chunk, count)
            out[lo:hi] = self._estimate_block(
                query_hashes, query_values, bank_hashes[lo:hi], bank_values[lo:hi]
            )
        return out

    def estimate_cross(self, query_bank: SketchBank, bank: SketchBank) -> np.ndarray:
        """Algorithm 2 for every query/row pair, one bank traversal.

        Row ``i`` is bit-identical to ``estimate_many`` of query ``i``.
        Bank-chunk-outer / query-inner loop nest: each bounded
        ``(row_chunk, m)`` bank slice stays cache-resident while the
        whole query batch scores against it, so the bank streams
        through memory once per batch instead of once per query.
        """
        self._check_bank(query_bank)
        self._check_bank(bank)
        num_queries = len(query_bank)
        count = len(bank)
        out = np.zeros((num_queries, count))
        if num_queries == 0 or count == 0:
            return out
        q_hashes = query_bank.columns["hashes"]
        q_values = query_bank.columns["values"]
        bank_hashes = bank.columns["hashes"]
        bank_values = bank.columns["values"]
        row_chunk = max(1, _BATCH_CELL_TARGET // max(self.m, 1))
        for lo in range(0, count, row_chunk):
            hi = min(lo + row_chunk, count)
            block_hashes = bank_hashes[lo:hi]
            block_values = bank_values[lo:hi]
            for qi in range(num_queries):
                out[qi, lo:hi] = self._estimate_block(
                    q_hashes[qi][None, :],
                    q_values[qi][None, :],
                    block_hashes,
                    block_values,
                )
        # estimate_many short-circuits empty queries to exact +0.0; an
        # (empty query, empty row) pair would otherwise produce -0.0
        # through the inf min-sum.
        out[~np.isfinite(q_hashes).any(axis=1), :] = 0.0
        return out
