"""Ioffe's Improved Consistent Weighted Sampling (ICWS, ICDM 2010).

The paper's Section 5 ("Efficient Weighted Hashing") points at the
Consistent Weighted Sampling family — Manasse et al., Ioffe, Wu et
al. — as the practical way to compute Weighted MinHash without any
expansion at all: ICWS sketches in ``O(nnz * m)`` with **no
discretization parameter L whatsoever**, handling real-valued weights
exactly.  We implement it as the "fast-WMH" extension and cross-check
that its collision rate equals the weighted Jaccard similarity, like
the expansion-based sketch.

Per repetition ``i`` and non-zero index ``j`` with weight
``w_j = ã[j]^2`` (the same squared-normalized sampling measure as
Algorithm 3), draw from the stream keyed ``(seed, i, j)``:

    r ~ Gamma(2,1),  c ~ Gamma(2,1),  β ~ Uniform(0,1)
    t      = floor(ln w_j / r + β)
    ln y   = r (t - β)
    ln s   = ln c - ln y - r

and select ``j* = argmin_j s_j``, emitting the pair ``(j*, t_{j*})``.
Ioffe proves ``Pr[(j*, t*) match] = weighted Jaccard`` of the two
weight vectors, and that the scheme is *consistent*: shrinking a
weight can only move the sample monotonically.

Inner-product estimation: ICWS produces no uniform minimum hash, so
the Flajolet–Martin weighted-union estimator of Algorithm 5 is
unavailable.  Instead we use the identity (valid because both weight
vectors sum to 1): ``M = Σ max = 2/(1 + J̄)``, estimating ``J̄`` by the
observed match rate — the "jaccard" estimator variant of
:mod:`repro.core.estimator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.base import WORDS_PER_SAMPLE_SAMPLING, Sketcher
from repro.core.estimator import estimate_weighted_union_from_jaccard
from repro.hashing.splitmix import counter_uniform, derive_key_grid, mix64
from repro.vectors.sparse import SparseVector

__all__ = ["ICWSSketch", "ICWS"]


@dataclass(frozen=True)
class ICWSSketch:
    """Per repetition: a sample key ``mix(j*, t*)`` and the value ``ã[j*]``."""

    keys: np.ndarray
    values: np.ndarray
    norm: float
    m: int
    seed: int

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.m + 1.0


class ICWS(Sketcher):
    """Consistent Weighted Sampling sketcher over squared-normalized weights."""

    name = "ICWS"

    def __init__(self, m: int, seed: int = 0) -> None:
        if m <= 0:
            raise ValueError(f"sample count m must be positive, got {m}")
        self.m = int(m)
        self.seed = int(seed)

    @classmethod
    def from_storage(cls, words: int, seed: int = 0, **kwargs: Any) -> "ICWS":
        m = int(words / WORDS_PER_SAMPLE_SAMPLING)
        return cls(m=max(m, 1), seed=seed, **kwargs)

    def storage_words(self) -> float:
        return WORDS_PER_SAMPLE_SAMPLING * self.m + 1.0

    def sketch(self, vector: SparseVector) -> ICWSSketch:
        if vector.nnz == 0:
            return ICWSSketch(
                keys=np.zeros(self.m, dtype=np.uint64),
                values=np.zeros(self.m),
                norm=0.0,
                m=self.m,
                seed=self.seed,
            )
        norm = vector.norm()
        unit_values = vector.values / norm
        weights = unit_values**2
        log_w = np.log(weights)

        keys = derive_key_grid(
            self.seed, np.arange(self.m, dtype=np.int64), vector.indices
        )
        # Gamma(2,1) = -ln(u1 * u2); five stream draws per (rep, index).
        r = -np.log(counter_uniform(keys, 0) * counter_uniform(keys, 1))
        c = -np.log(counter_uniform(keys, 2) * counter_uniform(keys, 3))
        beta = counter_uniform(keys, 4)

        t = np.floor(log_w[None, :] / r + beta)
        log_y = r * (t - beta)
        log_score = np.log(c) - log_y - r

        best = np.argmin(log_score, axis=1)
        rows = np.arange(self.m)
        chosen_index = vector.indices[best]
        chosen_t = t[rows, best].astype(np.int64)
        # Combine (index, t) into one comparable 64-bit sample key.
        with np.errstate(over="ignore"):
            sample_keys = mix64(
                chosen_index.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
                ^ chosen_t.astype(np.uint64)
            )
        return ICWSSketch(
            keys=np.asarray(sample_keys, dtype=np.uint64),
            values=unit_values[best],
            norm=norm,
            m=self.m,
            seed=self.seed,
        )

    def estimate_weighted_jaccard(self, sketch_a: ICWSSketch, sketch_b: ICWSSketch) -> float:
        """Match-rate estimate of the weighted Jaccard similarity."""
        self._require(
            sketch_a.m == sketch_b.m and sketch_a.seed == sketch_b.seed,
            "ICWS sketches built with different (m, seed)",
        )
        return float(np.mean(sketch_a.keys == sketch_b.keys))

    def _bank_params(self) -> dict[str, Any]:
        return {"m": self.m, "seed": self.seed}

    def signature_length(self) -> int:
        return self.m

    def signature_key(self, sketch: ICWSSketch) -> np.ndarray:
        """ICWS sample keys — equality certifies a repetition match.

        The generic :meth:`~repro.core.base.Sketcher.signature_keys`
        stacks these per bank row (ICWS banks are object banks).
        """
        self._require(
            sketch.m == self.m and sketch.seed == self.seed,
            f"query sketch (m={sketch.m}, seed={sketch.seed}) does not match "
            f"sketcher (m={self.m}, seed={self.seed})",
        )
        return sketch.keys

    def estimate(self, sketch_a: ICWSSketch, sketch_b: ICWSSketch) -> float:
        self._require(
            sketch_a.m == sketch_b.m and sketch_a.seed == sketch_b.seed,
            "ICWS sketches built with different (m, seed)",
        )
        if sketch_a.norm == 0.0 or sketch_b.norm == 0.0:
            return 0.0
        matches = sketch_a.keys == sketch_b.keys
        m_hat = estimate_weighted_union_from_jaccard(float(matches.mean()))
        q = np.minimum(sketch_a.values**2, sketch_b.values**2)
        products = sketch_a.values * sketch_b.values
        terms = np.where(
            matches & (q > 0.0), products / np.where(q > 0.0, q, 1.0), 0.0
        )
        scaled_sum = (m_hat / self.m) * float(terms.sum())
        return sketch_a.norm * sketch_b.norm * scaled_sum
