"""Locality-sensitive retrieval over MinHash-style signatures.

The paper's related-work section connects inner-product sketching to
locality sensitive hashing and maximum inner product search (MIPS):
MinHash-style signatures don't just *estimate* similarity, they can
*index* it — band the signature, bucket each band, and two vectors
collide in some band with probability ``1 - (1 - J^r)^b`` where ``J``
is their (weighted) Jaccard similarity, ``r`` the rows per band and
``b`` the number of bands (the classic S-curve; Gionis et al. 1999,
Broder 1997).

:class:`SignatureLSH` implements the banding scheme over any per-
repetition sample keys — WMH/MinHash hash values or ICWS sample keys —
**array-backed**: every indexed row contributes one uint64 digest per
band (the band index is mixed into the digest, so all bands share one
sorted array), and candidate lookup is a batched ``np.searchsorted``
with no Python loop over rows.  The same structure powers

* :class:`MIPSIndex` — LSH shortlists candidates, the Algorithm 5
  estimator scores them (sketch-only approximate MIPS), and
* the lake-wide candidate generator of
  :class:`repro.datasearch.lshindex.LakeIndex`, which makes
  ``DatasetSearch`` joinability sublinear in lake size.

:func:`tune` picks the ``(bands, rows_per_band)`` split of an
``m``-entry signature that meets a recall target at a given similarity
while staying as selective as possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.core.bank import SketchBank
from repro.core.wmh import WeightedMinHash, WMHSketch
from repro.hashing.splitmix import GOLDEN_GAMMA, mix64
from repro.vectors.sparse import SparseVector

__all__ = ["SignatureLSH", "MIPSIndex", "MIPSHit", "collision_probability", "tune"]


def collision_probability(
    similarity: float | np.ndarray, rows_per_band: int, bands: int
) -> float | np.ndarray:
    """The LSH S-curve ``1 - (1 - J^r)^b``, vectorized over ``similarity``.

    ``similarity`` may be a scalar or any array of values in ``[0, 1]``;
    the result matches the input's shape (a Python float for scalar
    input).
    """
    sims = np.asarray(similarity, dtype=np.float64)
    # The inverted comparison also rejects NaN, like the scalar
    # ``0 <= s <= 1`` check always did.
    if not np.all((sims >= 0.0) & (sims <= 1.0)):
        raise ValueError(f"similarity must be in [0, 1], got {similarity}")
    out = 1.0 - (1.0 - sims**rows_per_band) ** bands
    if np.isscalar(similarity) or np.ndim(similarity) == 0:
        return float(out)
    return out


def tune(
    m: int, target_sim: float, target_recall: float = 0.95
) -> tuple[int, int]:
    """Best ``(bands, rows_per_band)`` split of an ``m``-entry signature.

    Among all bandings with ``bands * rows_per_band <= m``, picks the
    **most selective** one (largest ``rows_per_band``, with
    ``bands = m // rows_per_band``) whose expected recall at
    ``target_sim`` — ``collision_probability(target_sim, r, m // r)`` —
    still clears ``target_recall``.  Larger ``r`` suppresses low-
    similarity collisions faster, so this maximizes pruning subject to
    the recall floor.  If no split reaches the target (tiny ``m`` or a
    very low ``target_sim``), the maximum-recall banding ``(m, 1)`` is
    returned.
    """
    if m <= 0:
        raise ValueError(f"signature length m must be positive, got {m}")
    if not 0.0 <= target_sim <= 1.0:
        raise ValueError(f"target_sim must be in [0, 1], got {target_sim}")
    if not 0.0 < target_recall < 1.0:
        raise ValueError(
            f"target_recall must be in (0, 1), got {target_recall}"
        )
    rows = np.arange(1, m + 1)
    bands = m // rows
    recalls = 1.0 - (1.0 - float(target_sim) ** rows.astype(np.float64)) ** bands
    feasible = np.flatnonzero(recalls >= target_recall)
    if feasible.size == 0:
        return int(m), 1
    r = int(rows[feasible[-1]])
    return int(m // r), r


def _as_key_matrix(signatures: np.ndarray) -> np.ndarray:
    """2-D uint64 key matrix from raw signatures (one row per item).

    Float signatures (WMH/MinHash hash values) are reinterpreted as
    their IEEE-754 bit patterns — hash values live in ``(0, 1)`` or are
    the ``+inf`` empty-sketch sentinel, so float equality coincides
    with bit equality.  Integer signatures (ICWS sample keys) are used
    as-is.
    """
    array = np.asarray(signatures)
    if array.ndim == 1:
        array = array[None, :]
    if array.ndim != 2:
        raise ValueError(
            f"signatures must be 1-D or 2-D, got shape {array.shape}"
        )
    if np.issubdtype(array.dtype, np.floating):
        return np.ascontiguousarray(array, dtype=np.float64).view(np.uint64)
    if np.issubdtype(array.dtype, np.integer):
        return np.ascontiguousarray(array).astype(np.uint64, copy=False)
    raise TypeError(f"cannot band signatures of dtype {array.dtype}")


class SignatureLSH:
    """Banded LSH over per-repetition signature keys, array-backed.

    The signature is split into ``bands`` groups of ``rows_per_band``
    consecutive entries; each group is folded into one uint64 digest
    (splitmix64 mixing, with the band index as salt so distinct bands
    cannot collide).  All digests of all rows live in **one** sorted
    uint64 array, so a query is ``bands`` binary searches — batched
    across queries with a single ``np.searchsorted`` call — instead of
    a dict probe per band.  Two signatures become candidates if any
    band's digest matches (spurious uint64 digest collisions occur with
    probability ~2^-64 per band pair, far below the sketch noise floor).

    ``insert_bank`` / ``candidates_many`` index and probe whole
    signature matrices with no Python loop over rows; the scalar
    ``insert`` / ``candidates`` keep the original per-item API.
    """

    def __init__(self, bands: int, rows_per_band: int) -> None:
        if bands <= 0 or rows_per_band <= 0:
            raise ValueError("bands and rows_per_band must be positive")
        self.bands = int(bands)
        self.rows_per_band = int(rows_per_band)
        # Per-band digest salts: mixing the band index into the digest
        # lets every band share one sorted lookup array.
        with np.errstate(over="ignore"):
            self._band_salt = mix64(
                np.arange(self.bands, dtype=np.uint64) + GOLDEN_GAMMA
            )
        #: Appended digest blocks, each of shape (rows, bands); kept as
        #: chunks so inserts are O(chunk) and consolidation is lazy.
        self._chunks: list[np.ndarray] = []
        self._size = 0
        #: Sorted lookup state: (sorted flattened digests, owning row
        #: per sorted position), covering the first ``_sorted_count``
        #: rows.  Extended lazily after inserts by sorting only the new
        #: rows and merging into the existing array (O(n) instead of a
        #: full re-sort).
        self._sorted: tuple[np.ndarray, np.ndarray] | None = None
        self._sorted_count = 0
        #: Position -> caller item id; ``None`` means identity (ids are
        #: the 0-based insert positions), the mode lake indexes use.
        self._ids: list[Hashable] | None = None

    # ------------------------------------------------------------------
    # construction / persistence hooks
    # ------------------------------------------------------------------

    @classmethod
    def from_digests(
        cls, bands: int, rows_per_band: int, digests: np.ndarray
    ) -> "SignatureLSH":
        """Rebuild an index from a stored ``(rows, bands)`` digest matrix.

        The inverse of :meth:`digest_matrix`; used by the persistent
        lake store to reload an index without re-deriving digests from
        signatures.  Item ids are the row positions.
        """
        digests = np.ascontiguousarray(digests, dtype=np.uint64)
        if digests.ndim != 2 or digests.shape[1] != bands:
            raise ValueError(
                f"digest matrix must be (rows, {bands}), got {digests.shape}"
            )
        lsh = cls(bands, rows_per_band)
        if digests.shape[0]:
            lsh._chunks.append(digests)
            lsh._size = digests.shape[0]
        return lsh

    def digest_matrix(self) -> np.ndarray:
        """The consolidated ``(rows, bands)`` uint64 digest matrix.

        Row order is insertion order, and each row's digests depend only
        on that row's signature — so incrementally built and from-
        scratch indexes over the same signatures are byte-identical.
        """
        if not self._chunks:
            return np.empty((0, self.bands), dtype=np.uint64)
        if len(self._chunks) > 1:
            self._chunks = [np.concatenate(self._chunks, axis=0)]
        return self._chunks[0]

    # ------------------------------------------------------------------
    # digesting
    # ------------------------------------------------------------------

    @property
    def signature_length(self) -> int:
        return self.bands * self.rows_per_band

    def _band_digests(self, keys: np.ndarray) -> np.ndarray:
        """Fold a ``(rows, >= signature_length)`` key matrix to digests.

        Returns a ``(rows, bands)`` uint64 matrix: each band's
        ``rows_per_band`` keys are chained through the splitmix64
        finalizer, seeded with the band's salt.
        """
        if keys.shape[1] < self.signature_length:
            raise ValueError(
                f"signature has {keys.shape[1]} entries; banding needs "
                f"{self.signature_length}"
            )
        used = keys[:, : self.signature_length].reshape(
            keys.shape[0], self.bands, self.rows_per_band
        )
        digests = np.broadcast_to(
            self._band_salt[None, :], used.shape[:2]
        ).copy()
        with np.errstate(over="ignore"):
            for j in range(self.rows_per_band):
                digests = mix64(digests + used[:, :, j] + GOLDEN_GAMMA)
        return digests

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------

    def _append_digests(self, digests: np.ndarray) -> None:
        if digests.shape[0] == 0:
            return
        self._chunks.append(digests)
        self._size += digests.shape[0]

    def insert_signatures(self, signatures: np.ndarray) -> None:
        """Batch-index raw signatures (one row per item, position ids).

        Rows are assigned consecutive positions continuing from the
        current size; ids stay in identity mode unless explicit ids were
        registered earlier.
        """
        keys = _as_key_matrix(signatures)
        if self._ids is not None:
            self._ids.extend(range(self._size, self._size + keys.shape[0]))
        self._append_digests(self._band_digests(keys))

    def _materialize_ids(self) -> list[Hashable]:
        if self._ids is None:
            self._ids = list(range(self._size))
        return self._ids

    def insert(self, item_id: Hashable, signature: np.ndarray) -> None:
        """Index one signature under ``item_id``."""
        keys = _as_key_matrix(signature)
        digests = self._band_digests(keys)
        self._materialize_ids().append(item_id)
        self._append_digests(digests)

    def insert_bank(
        self,
        ids: Sequence[Hashable] | None,
        bank: "SketchBank",
        column: str = "hashes",
    ) -> None:
        """Batch-index signatures straight from a :class:`SketchBank`.

        ``bank.column(column)`` must be a 2-D array with one signature
        per row, aligned with ``ids`` (``None`` keeps position ids).
        The resulting candidate sets are identical to ``insert``-ing
        each row in order, but digesting and appending are single
        vectorized passes.
        """
        signatures = bank.column(column)
        if signatures.ndim != 2:
            raise ValueError(
                f"bank column {column!r} must be 2-D (rows x signature), "
                f"got shape {signatures.shape}"
            )
        if ids is not None and len(ids) != signatures.shape[0]:
            raise ValueError(
                f"{len(ids)} ids for {signatures.shape[0]} bank rows"
            )
        keys = _as_key_matrix(signatures)
        digests = self._band_digests(keys)
        if ids is not None:
            self._materialize_ids().extend(ids)
        elif self._ids is not None:
            self._ids.extend(
                range(self._size, self._size + signatures.shape[0])
            )
        self._append_digests(digests)

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def _ensure_sorted(self) -> tuple[np.ndarray, np.ndarray]:
        if self._sorted is not None and self._sorted_count == self._size:
            return self._sorted
        matrix = self.digest_matrix()
        if self._sorted is None or self._sorted_count == 0:
            flat = matrix.ravel()
            order = np.argsort(flat, kind="stable")
            # Row-major ravel: flattened position p belongs to row
            # p // bands.
            self._sorted = (flat[order], (order // self.bands).astype(np.int64))
        else:
            # Incremental merge: sort only the newly appended rows and
            # splice them into the existing sorted array — O(tail log
            # tail + n) instead of re-sorting all n*bands digests after
            # every append.
            tail = matrix[self._sorted_count :].ravel()
            order = np.argsort(tail, kind="stable")
            tail_digests = tail[order]
            tail_rows = (order // self.bands).astype(np.int64) + self._sorted_count
            digests, rows = self._sorted
            at = np.searchsorted(digests, tail_digests)
            self._sorted = (
                np.insert(digests, at, tail_digests),
                np.insert(rows, at, tail_rows),
            )
        self._sorted_count = self._size
        return self._sorted

    def candidates_many(self, signatures: np.ndarray) -> list[np.ndarray]:
        """Candidate row positions for every query signature.

        ``signatures`` is a ``(queries, >= signature_length)`` matrix;
        returns one ascending, deduplicated int64 position array per
        query.  The whole batch is answered with one ``searchsorted``
        against the flattened sorted digest array — no Python loop over
        bands or rows.
        """
        keys = _as_key_matrix(signatures)
        num_queries = keys.shape[0]
        empty = [np.empty(0, dtype=np.int64) for _ in range(num_queries)]
        if num_queries == 0 or self._size == 0:
            self._band_digests(keys)  # still validate the length
            return empty
        query_digests = self._band_digests(keys).ravel()
        sorted_digests, sorted_rows = self._ensure_sorted()
        lo = np.searchsorted(sorted_digests, query_digests, side="left")
        hi = np.searchsorted(sorted_digests, query_digests, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return empty
        # Expand every [lo, hi) run into explicit sorted-array offsets.
        starts = np.repeat(lo, counts)
        run_starts = np.cumsum(counts) - counts
        offsets = np.arange(total, dtype=np.int64) - np.repeat(run_starts, counts)
        rows = sorted_rows[starts + offsets]
        owners = np.repeat(
            np.arange(num_queries * self.bands, dtype=np.int64) // self.bands,
            counts,
        )
        # Per-query dedup in one pass: unique (owner, row) pairs.
        combined = owners * np.int64(self._size) + rows
        unique = np.unique(combined)
        unique_owner = unique // self._size
        unique_row = unique % self._size
        bounds = np.searchsorted(
            unique_owner, np.arange(num_queries + 1, dtype=np.int64)
        )
        return [
            unique_row[bounds[q] : bounds[q + 1]] for q in range(num_queries)
        ]

    def candidate_rows(self, signature: np.ndarray) -> np.ndarray:
        """Ascending positions sharing at least one band with the query."""
        return self.candidates_many(np.asarray(signature)[None, :])[0]

    def candidates(self, signature: np.ndarray) -> set[Hashable]:
        """All item ids sharing at least one band bucket with the query."""
        rows = self.candidate_rows(signature)
        if self._ids is None:
            return set(rows.tolist())
        return {self._ids[row] for row in rows.tolist()}

    def expected_recall(self, similarity: float | np.ndarray) -> float | np.ndarray:
        """Probability this table surfaces an item of given similarity."""
        return collision_probability(similarity, self.rows_per_band, self.bands)


@dataclass(frozen=True)
class MIPSHit:
    """One scored retrieval result."""

    item_id: Hashable
    score: float


class MIPSIndex:
    """Approximate maximum-inner-product search over WMH sketches.

    Vectors are sketched once; retrieval shortlists candidates via
    banded LSH on the hash signature and ranks them with **one**
    ``estimate_many`` call over the candidate rows (bit-identical to
    the scalar ``estimate`` loop).  ``probe_all=True`` skips the LSH
    filter (exhaustive sketch scan) — useful as a recall reference.
    """

    def __init__(
        self,
        sketcher: WeightedMinHash,
        bands: int = 16,
        rows_per_band: int = 4,
    ) -> None:
        if bands * rows_per_band > sketcher.m:
            raise ValueError(
                f"banding needs {bands * rows_per_band} signature entries but "
                f"the sketcher has only m={sketcher.m}"
            )
        self.sketcher = sketcher
        self._lsh = SignatureLSH(bands, rows_per_band)
        self._sketches: dict[Hashable, WMHSketch] = {}

    def add(self, item_id: Hashable, vector: SparseVector) -> None:
        sketch = self.sketcher.sketch(vector)
        self._sketches[item_id] = sketch
        self._lsh.insert(item_id, sketch.hashes)

    def add_batch(
        self, ids: Sequence[Hashable], vectors: Sequence[SparseVector]
    ) -> None:
        """Sketch and index many vectors with one batch pass.

        Uses the vectorized ``sketch_batch`` fast path and
        :meth:`SignatureLSH.insert_bank`, producing exactly the same
        index state as ``add``-ing each vector in order.
        """
        if len(ids) != len(vectors):
            raise ValueError(f"{len(ids)} ids for {len(vectors)} vectors")
        if not ids:
            return
        bank = self.sketcher.sketch_batch(vectors)
        for item_id, sketch in zip(ids, self.sketcher.bank_to_sketches(bank)):
            self._sketches[item_id] = sketch
        self._lsh.insert_bank(ids, bank)

    def __len__(self) -> int:
        return len(self._sketches)

    def query(
        self,
        vector: SparseVector,
        top_k: int = 10,
        probe_all: bool = False,
    ) -> list[MIPSHit]:
        query_sketch = self.sketcher.sketch(vector)
        if probe_all:
            candidate_ids: list[Hashable] = list(self._sketches)
        else:
            candidate_ids = sorted(
                self._lsh.candidates(query_sketch.hashes), key=repr
            )
        if not candidate_ids:
            return []
        # One estimate_many over the candidate rows instead of a scalar
        # estimate per candidate; WMH's batch estimator is bit-identical
        # to the scalar loop, so the ranking cannot change.
        bank = self.sketcher.pack_bank(
            [self._sketches[item_id] for item_id in candidate_ids]
        )
        scores = self.sketcher.estimate_many(query_sketch, bank)
        hits = [
            MIPSHit(item_id=item_id, score=float(score))
            for item_id, score in zip(candidate_ids, scores.tolist())
        ]
        hits.sort(key=lambda hit: hit.score, reverse=True)
        return hits[:top_k]

    def tune_report(self, similarities: Sequence[float]) -> str:
        """Human-readable recall estimates at the current banding."""
        lines = [
            f"LSH banding: {self._lsh.bands} bands x "
            f"{self._lsh.rows_per_band} rows"
        ]
        for similarity in similarities:
            recall = self._lsh.expected_recall(similarity)
            lines.append(f"  weighted Jaccard {similarity:.2f} -> recall {recall:.3f}")
        return "\n".join(lines)
