"""Locality-sensitive retrieval over Weighted MinHash signatures.

The paper's related-work section connects inner-product sketching to
locality sensitive hashing and maximum inner product search (MIPS):
MinHash-style signatures don't just *estimate* similarity, they can
*index* it — band the signature, bucket each band, and two vectors
collide in some band with probability ``1 - (1 - J^r)^b`` where ``J``
is their (weighted) Jaccard similarity, ``r`` the rows per band and
``b`` the number of bands (the classic S-curve; Gionis et al. 1999,
Broder 1997).

:class:`SignatureLSH` implements the banding scheme over any per-
repetition sample keys — WMH hash values or ICWS sample keys — so the
same sketches that estimate inner products also power candidate
generation.  :class:`MIPSIndex` combines the two: LSH shortlists
candidates, the Algorithm 5 estimator scores them, giving sketch-only
approximate maximum-inner-product search.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.core.bank import SketchBank
from repro.core.wmh import WeightedMinHash, WMHSketch
from repro.vectors.sparse import SparseVector

__all__ = ["SignatureLSH", "MIPSIndex", "collision_probability"]


def collision_probability(similarity: float, rows_per_band: int, bands: int) -> float:
    """The LSH S-curve: ``1 - (1 - J^r)^b``."""
    if not 0.0 <= similarity <= 1.0:
        raise ValueError(f"similarity must be in [0, 1], got {similarity}")
    return 1.0 - (1.0 - similarity**rows_per_band) ** bands


class SignatureLSH:
    """Banded LSH over per-repetition signature keys.

    Parameters
    ----------
    bands, rows_per_band:
        The signature is split into ``bands`` groups of ``rows_per_band``
        consecutive entries; each group is hashed to a bucket.  Two
        signatures become candidates if any band's bucket matches.
        ``bands * rows_per_band`` entries of the signature are used
        (the signature must be at least that long).
    """

    def __init__(self, bands: int, rows_per_band: int) -> None:
        if bands <= 0 or rows_per_band <= 0:
            raise ValueError("bands and rows_per_band must be positive")
        self.bands = int(bands)
        self.rows_per_band = int(rows_per_band)
        self._buckets: list[dict[bytes, list[Hashable]]] = [
            defaultdict(list) for _ in range(bands)
        ]
        self._size = 0

    @property
    def signature_length(self) -> int:
        return self.bands * self.rows_per_band

    def _band_digests(self, signature: np.ndarray) -> list[bytes]:
        if signature.size < self.signature_length:
            raise ValueError(
                f"signature has {signature.size} entries; banding needs "
                f"{self.signature_length}"
            )
        used = signature[: self.signature_length]
        return [
            used[band * self.rows_per_band : (band + 1) * self.rows_per_band].tobytes()
            for band in range(self.bands)
        ]

    def insert(self, item_id: Hashable, signature: np.ndarray) -> None:
        """Index one signature under ``item_id``."""
        for band, digest in enumerate(self._band_digests(signature)):
            self._buckets[band][digest].append(item_id)
        self._size += 1

    def insert_bank(
        self,
        ids: Sequence[Hashable],
        bank: "SketchBank",
        column: str = "hashes",
    ) -> None:
        """Batch-index signatures straight from a :class:`SketchBank`.

        ``bank.column(column)`` must be a 2-D array with one signature
        per row, aligned with ``ids`` — e.g. the ``hashes`` column a
        vectorized ``sketch_batch`` produces.  Buckets are identical to
        ``insert``-ing each row: band digests are the raw bytes of the
        row's band slice, extracted here with one ``tobytes`` per band
        instead of per (row, band).
        """
        signatures = np.ascontiguousarray(bank.column(column))
        if signatures.ndim != 2:
            raise ValueError(
                f"bank column {column!r} must be 2-D (rows x signature), "
                f"got shape {signatures.shape}"
            )
        if len(ids) != signatures.shape[0]:
            raise ValueError(
                f"{len(ids)} ids for {signatures.shape[0]} bank rows"
            )
        if signatures.shape[1] < self.signature_length:
            raise ValueError(
                f"signatures have {signatures.shape[1]} entries; banding "
                f"needs {self.signature_length}"
            )
        band_bytes = self.rows_per_band * signatures.dtype.itemsize
        for band in range(self.bands):
            block = np.ascontiguousarray(
                signatures[:, band * self.rows_per_band : (band + 1) * self.rows_per_band]
            )
            raw = block.tobytes()
            buckets = self._buckets[band]
            for i, item_id in enumerate(ids):
                buckets[raw[i * band_bytes : (i + 1) * band_bytes]].append(item_id)
        self._size += len(ids)

    def candidates(self, signature: np.ndarray) -> set[Hashable]:
        """All items sharing at least one band bucket with the query."""
        found: set[Hashable] = set()
        for band, digest in enumerate(self._band_digests(signature)):
            found.update(self._buckets[band].get(digest, ()))
        return found

    def __len__(self) -> int:
        return self._size

    def expected_recall(self, similarity: float) -> float:
        """Probability this table surfaces an item of given similarity."""
        return collision_probability(similarity, self.rows_per_band, self.bands)


@dataclass(frozen=True)
class MIPSHit:
    """One scored retrieval result."""

    item_id: Hashable
    score: float


class MIPSIndex:
    """Approximate maximum-inner-product search over WMH sketches.

    Vectors are sketched once; retrieval shortlists candidates via
    banded LSH on the hash signature and ranks them by the Algorithm 5
    inner-product estimate.  ``probe_all=True`` skips the LSH filter
    (exhaustive sketch scan) — useful as a recall reference.
    """

    def __init__(
        self,
        sketcher: WeightedMinHash,
        bands: int = 16,
        rows_per_band: int = 4,
    ) -> None:
        if bands * rows_per_band > sketcher.m:
            raise ValueError(
                f"banding needs {bands * rows_per_band} signature entries but "
                f"the sketcher has only m={sketcher.m}"
            )
        self.sketcher = sketcher
        self._lsh = SignatureLSH(bands, rows_per_band)
        self._sketches: dict[Hashable, WMHSketch] = {}

    def add(self, item_id: Hashable, vector: SparseVector) -> None:
        sketch = self.sketcher.sketch(vector)
        self._sketches[item_id] = sketch
        self._lsh.insert(item_id, sketch.hashes)

    def add_batch(
        self, ids: Sequence[Hashable], vectors: Sequence[SparseVector]
    ) -> None:
        """Sketch and index many vectors with one batch pass.

        Uses the vectorized ``sketch_batch`` fast path and
        :meth:`SignatureLSH.insert_bank`, producing exactly the same
        index state as ``add``-ing each vector in order.
        """
        if len(ids) != len(vectors):
            raise ValueError(f"{len(ids)} ids for {len(vectors)} vectors")
        if not ids:
            return
        bank = self.sketcher.sketch_batch(vectors)
        for item_id, sketch in zip(ids, self.sketcher.bank_to_sketches(bank)):
            self._sketches[item_id] = sketch
        self._lsh.insert_bank(ids, bank)

    def __len__(self) -> int:
        return len(self._sketches)

    def query(
        self,
        vector: SparseVector,
        top_k: int = 10,
        probe_all: bool = False,
    ) -> list[MIPSHit]:
        query_sketch = self.sketcher.sketch(vector)
        if probe_all:
            candidate_ids: Sequence[Hashable] = list(self._sketches)
        else:
            candidate_ids = sorted(
                self._lsh.candidates(query_sketch.hashes), key=repr
            )
        hits = [
            MIPSHit(
                item_id=item_id,
                score=self.sketcher.estimate(
                    query_sketch, self._sketches[item_id]
                ),
            )
            for item_id in candidate_ids
        ]
        hits.sort(key=lambda hit: hit.score, reverse=True)
        return hits[:top_k]

    def tune_report(self, similarities: Sequence[float]) -> str:
        """Human-readable recall estimates at the current banding."""
        lines = [
            f"LSH banding: {self._lsh.bands} bands x "
            f"{self._lsh.rows_per_band} rows"
        ]
        for similarity in similarities:
            recall = self._lsh.expected_recall(similarity)
            lines.append(f"  weighted Jaccard {similarity:.2f} -> recall {recall:.3f}")
        return "\n".join(lines)
