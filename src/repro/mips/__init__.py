"""Approximate maximum-inner-product search over sketches (extension).

Connects the paper's sketches to the LSH/MIPS literature its related
work cites: banded LSH over signature keys for candidate generation,
Algorithm 5 estimates for ranking.
"""

from repro.mips.lsh import (
    MIPSHit,
    MIPSIndex,
    SignatureLSH,
    collision_probability,
    tune,
)

__all__ = ["MIPSHit", "MIPSIndex", "SignatureLSH", "collision_probability", "tune"]
