"""Shard files: atomic writes, zero-copy reads.

One shard file holds one packed :class:`~repro.core.bank.SketchBank`
(all encoded rows of one ingest batch, tables back to back) in the
``RPRO`` shard container of :func:`repro.io.serialize.pack_shard` —
length- and checksum-guarded so truncated or corrupted files are
rejected before any array is interpreted.

Writes are crash-safe: bytes go to a ``*.tmp`` sibling, are fsynced,
and the file is renamed into place.  A crash mid-write leaves only the
temp file, which opens ignore (the manifest never references it).

Reads default to **zero-copy**: the file is memory-mapped and the
returned bank's columns are read-only views into the map, so opening a
multi-gigabyte lake costs page-table setup, not a byte-for-byte copy;
pages fault in lazily as queries touch them.
"""

from __future__ import annotations

import contextlib
import mmap
import os
import struct
import zlib
from pathlib import Path

from repro import faults, obs
from repro.core.bank import SketchBank
from repro.io.serialize import (
    ShardStreamPlan,
    pack_shard,
    unpack_shard,
    write_chunk_rows,
)

# Failpoints covering every durability step of a shard's life: the
# atomic byte write (torn-capable), its fsyncs and rename, and the
# streamed writer's CRC patch / finalize / abort.  The torture harness
# crashes at each of these and asserts pre-or-post state on reopen.
FP_ATOMIC_WRITE = faults.register(
    "shard.atomic.write", "payload write of write_bytes_atomic (torn-capable)"
)
FP_ATOMIC_FSYNC = faults.register(
    "shard.atomic.fsync", "before fsync of the atomic tmp file"
)
FP_ATOMIC_RENAME = faults.register(
    "shard.atomic.rename", "before the tmp -> final rename"
)
FP_ATOMIC_DIRSYNC = faults.register(
    "shard.atomic.dirsync", "after rename, before the directory fsync"
)
FP_STREAM_WRITE_ROWS = faults.register(
    "shard.stream.write_rows", "before a chunk bank lands in the shard tmp"
)
FP_STREAM_FINALIZE_CRC = faults.register(
    "shard.stream.finalize.crc", "before the CRC-32 patch of a streamed shard"
)
FP_STREAM_FINALIZE_FSYNC = faults.register(
    "shard.stream.finalize.fsync", "after the CRC patch, before the file fsync"
)
FP_STREAM_FINALIZE_RENAME = faults.register(
    "shard.stream.finalize.rename", "before the streamed tmp -> shard rename"
)
FP_STREAM_ABORT = faults.register(
    "shard.stream.abort", "at the top of ShardStreamWriter.abort"
)
FP_DIR_FSYNC = faults.register(
    "shard.fsync_directory", "before any directory-entry fsync"
)

__all__ = [
    "SHARD_SUFFIX",
    "ShardStreamWriter",
    "shard_filename",
    "index_filename",
    "write_bytes_atomic",
    "write_chunk_rows",
    "write_shard",
    "read_shard",
]

#: Extension of shard (and LSH-index) files inside a lake directory.
SHARD_SUFFIX = ".rpro"


def shard_filename(shard_id: int) -> str:
    return f"shard-{shard_id:06d}{SHARD_SUFFIX}"


def index_filename(index_id: int) -> str:
    """Generation-numbered LSH-index file inside a lake directory.

    Index rewrites go to a fresh generation and the manifest repoints
    afterwards — same crash-safety story as shards: an interrupted
    write leaves only an unreferenced file the next open ignores.
    """
    return f"index-{index_id:06d}{SHARD_SUFFIX}"


def fsync_directory(path: Path) -> None:
    """Flush a directory's entry table (rename durability on ext4/xfs)."""
    faults.failpoint(FP_DIR_FSYNC)
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    obs.count("store.fsyncs")


def write_bytes_atomic(path: Path, payload: bytes) -> int:
    """Durably write ``payload`` at ``path`` via tmp + fsync + rename.

    The directory fsync matters: without it a power cut can forget the
    rename itself even though the file's bytes are durable — and a
    later manifest commit could then point at a file that no longer
    exists.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        faults.torn_write(FP_ATOMIC_WRITE, handle, payload)
        handle.flush()
        faults.failpoint(FP_ATOMIC_FSYNC)
        os.fsync(handle.fileno())
    faults.failpoint(FP_ATOMIC_RENAME)
    os.replace(tmp, path)
    faults.failpoint(FP_ATOMIC_DIRSYNC)
    fsync_directory(path.parent)
    obs.count("store.fsyncs")
    obs.count("store.shard_bytes_written", len(payload))
    return len(payload)


def write_shard(path: Path, bank: SketchBank) -> int:
    """Atomically write ``bank`` as a shard file; returns bytes written."""
    return write_bytes_atomic(path, pack_shard(bank))


class ShardStreamWriter:
    """Assemble one shard file incrementally from chunk banks.

    The writer pre-sizes a ``*.tmp`` sibling to the planned byte length,
    writes the fixed prefix (headers + bank meta, CRC zeroed), and lets
    chunk results land at their exact row offsets — from this process
    or from pool workers that open the same temp file.  ``finalize``
    computes the CRC-32 over the payload, patches it in, fsyncs, and
    renames the file into place; the result is byte-identical to
    ``write_shard`` over the equivalent one-shot bank.  A crash before
    ``finalize`` leaves only the temp file, which opens ignore.
    """

    def __init__(self, path: Path, plan: ShardStreamPlan) -> None:
        self.path = Path(path)
        self.plan = plan
        self.tmp_path = self.path.with_name(self.path.name + ".tmp")
        self._handle = open(self.tmp_path, "w+b")
        try:
            self._handle.truncate(plan.file_size)
            self._map = mmap.mmap(self._handle.fileno(), plan.file_size)
            self._map[: len(plan.prefix)] = plan.prefix
        except BaseException:
            self._handle.close()
            with contextlib.suppress(OSError):
                os.unlink(self.tmp_path)
            raise
        self._done = False

    def write_rows(self, bank: SketchBank, row_offset: int) -> None:
        """Place ``bank`` at rows ``[row_offset, row_offset + len(bank))``."""
        faults.failpoint(FP_STREAM_WRITE_ROWS)
        write_chunk_rows(self._map, self.plan, bank, row_offset)

    def finalize(self) -> int:
        """Patch the CRC, make the file durable, and rename into place."""
        plan = self.plan
        faults.failpoint(FP_STREAM_FINALIZE_CRC)
        checksum = zlib.crc32(memoryview(self._map)[plan.payload_offset :])
        self._map[plan.checksum_offset : plan.checksum_offset + 4] = struct.pack(
            "<I", checksum
        )
        self._map.flush()
        self._map.close()
        self._handle.flush()
        faults.failpoint(FP_STREAM_FINALIZE_FSYNC)
        os.fsync(self._handle.fileno())
        self._handle.close()
        faults.failpoint(FP_STREAM_FINALIZE_RENAME)
        os.replace(self.tmp_path, self.path)
        fsync_directory(self.path.parent)
        self._done = True
        obs.count("store.fsyncs")
        obs.count("store.shard_bytes_written", plan.file_size)
        return plan.file_size

    def abort(self) -> None:
        """Drop the temp file (idempotent; safe after ``finalize``)."""
        if self._done:
            return
        faults.failpoint(FP_STREAM_ABORT)
        with contextlib.suppress(ValueError, OSError):
            self._map.close()
        with contextlib.suppress(OSError):
            self._handle.close()
        with contextlib.suppress(OSError):
            os.unlink(self.tmp_path)
        self._done = True


def read_shard(
    path: Path, zero_copy: bool = True
) -> tuple[SketchBank, mmap.mmap | None]:
    """Read one shard file back into a bank.

    With ``zero_copy=True`` (the default) the bank's numeric columns
    are views into a read-only memory map of the file; the map is
    returned alongside the bank and must be kept referenced for the
    bank's lifetime (the arrays hold a reference chain through their
    ``base``, so dropping it is safe once the bank itself is dropped).
    """
    if zero_copy:
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        obs.count("store.shard_bytes_read", len(mapped))
        return unpack_shard(memoryview(mapped), copy=False), mapped
    payload = path.read_bytes()
    obs.count("store.shard_bytes_read", len(payload))
    return unpack_shard(payload, copy=True), None
