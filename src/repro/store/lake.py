"""``LakeStore`` — a durable, incrementally-ingested sketch lake.

The paper's economics only work if the lake is sketched **once**: the
expensive pass over raw tables happens at ingest, and every later
process serves queries from the compact sketches.  ``LakeStore`` is
that durable substrate:

* a lake is a directory of binary **shard files** (one packed
  :class:`~repro.core.bank.SketchBank` per ingest batch) plus a JSON
  **manifest** recording the sketcher configuration, the table catalog
  with per-shard row spans, and tombstones;
* :meth:`append` sketches *only* the new tables — one
  ``sketch_batch`` call per batch, never re-sketching existing data —
  and commits shard-first / manifest-last so a crash can at worst leave
  an orphaned file the next open ignores;
* re-ingesting a table name tombstones the old span (shards are
  immutable); :meth:`compact` merges all live spans into one fresh
  shard and reclaims the dead rows;
* :meth:`open` reconstructs the in-memory
  :class:`~repro.datasearch.index.SketchIndex` straight from the
  stored banks — zero-copy over memory-mapped shards, no ``Table``
  objects, no re-sketching — and refuses a caller-provided sketcher
  whose configuration does not match the stored one
  (:class:`~repro.core.base.SketchMismatchError`).

Because banks persist losslessly (raw float64 columns, no hash
quantization), a reopened lake returns search rankings and estimates
bit-identical to the in-memory index built from the same tables.
"""

from __future__ import annotations

import contextlib
import mmap
from pathlib import Path

import numpy as np
from typing import Any, Iterable, Iterator, Sequence

try:  # advisory inter-process write locking (POSIX only)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro import obs
from repro.core.bank import SketchBank
from repro.core.base import Sketcher
from repro.datasearch.index import SketchIndex
from repro.datasearch.lshindex import DEFAULT_TARGET_RECALL, LakeIndex
from repro.datasearch.table import Table
from repro.io.serialize import (
    SerializationError,
    pack_lsh_index,
    unpack_lsh_index,
)
from repro.mips.lsh import SignatureLSH, tune
from repro.parallel.streaming import (
    IngestReport,
    SourceTable,
    plan_shard,
    plan_spans,
    stream_sources,
)
from repro.store.config import build_sketcher, check_sketcher_config, sketcher_config
from repro.store.csvio import csv_source
from repro.store.manifest import (
    IndexRecord,
    Manifest,
    ManifestError,
    ShardRecord,
    TableSpan,
)
from repro.store.shard import (
    SHARD_SUFFIX,
    ShardStreamWriter,
    index_filename,
    read_shard,
    shard_filename,
    write_bytes_atomic,
    write_shard,
)

__all__ = ["StoreError", "LakeStore", "is_lake_store"]

_MANIFEST_NAME = "manifest.json"
_LOCK_NAME = ".lock"


class StoreError(RuntimeError):
    """Raised on invalid lake-store operations or corrupted stores."""


class LakeStore:
    """A sketched data lake persisted as shards + manifest.

    Construct via :meth:`create` (new lake) or :meth:`open` (existing
    directory); the constructor itself is internal.  Instances are
    usable as context managers::

        with LakeStore.open("lake.d") as store:
            hits = QuerySession(store).search(my_table, "price")
    """

    #: Auto-tuner defaults for the persisted LSH candidate index: the
    #: banding targets this expected recall at this (weighted Jaccard)
    #: similarity.  ``LSH_TARGET_SIM`` matches the default serving
    #: ``min_containment`` (containment upper-bounds Jaccard, so the
    #: S-curve is evaluated at the conservative end).
    LSH_TARGET_SIM = 0.05
    LSH_TARGET_RECALL = DEFAULT_TARGET_RECALL

    def __init__(
        self,
        path: Path,
        sketcher: Sketcher,
        manifest: Manifest,
        banks: dict[int, SketchBank],
        buffers: dict[int, mmap.mmap | None],
        zero_copy: bool,
        lake_index: LakeIndex | None = None,
    ) -> None:
        self.path = path
        self.sketcher = sketcher
        self._manifest = manifest
        self._banks = banks
        self._buffers = buffers
        self._zero_copy = zero_copy
        self._closed = False
        self._index = self._build_index()
        if lake_index is not None:
            self._index.attach_lsh(lake_index)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, path: str | Path, sketcher: Sketcher) -> "LakeStore":
        """Initialize an empty lake at ``path`` (directory must be new
        or an empty/non-store directory without a manifest)."""
        path = Path(path)
        manifest_path = path / _MANIFEST_NAME
        if manifest_path.exists():
            raise StoreError(
                f"{path} already holds a lake store; use LakeStore.open"
            )
        path.mkdir(parents=True, exist_ok=True)
        manifest = Manifest(sketcher=sketcher_config(sketcher))
        manifest.save(manifest_path)
        return cls(path, sketcher, manifest, {}, {}, zero_copy=True)

    @classmethod
    def open(
        cls,
        path: str | Path,
        sketcher: Sketcher | None = None,
        zero_copy: bool = True,
    ) -> "LakeStore":
        """Open an existing lake and rebuild its index from the shards.

        ``sketcher`` is optional: by default the stored configuration
        is rebuilt exactly.  Passing one asserts it matches the stored
        configuration (``SketchMismatchError`` otherwise) — use this to
        share a sketcher instance across stores.  ``zero_copy=False``
        materializes the banks in memory instead of memory-mapping the
        shard files.
        """
        path = Path(path)
        with obs.trace_span("store.open", path=str(path), zero_copy=zero_copy):
            manifest = Manifest.load(path / _MANIFEST_NAME)
            if sketcher is None:
                sketcher = build_sketcher(manifest.sketcher)
            else:
                check_sketcher_config(manifest.sketcher, sketcher)
            banks: dict[int, SketchBank] = {}
            buffers: dict[int, mmap.mmap | None] = {}
            for shard in manifest.shards:
                shard_path = path / shard.filename
                if not shard_path.is_file():
                    raise StoreError(
                        f"manifest references missing shard {shard.filename}"
                    )
                bank, buffer = read_shard(shard_path, zero_copy=zero_copy)
                sketcher._check_bank(bank)
                banks[shard.shard_id] = bank
                buffers[shard.shard_id] = buffer
            lake_index = cls._load_lsh_index(path, manifest)
            obs.count("store.opens")
            return cls(
                path,
                sketcher,
                manifest,
                banks,
                buffers,
                zero_copy=zero_copy,
                lake_index=lake_index,
            )

    @staticmethod
    def _load_lsh_index(path: Path, manifest: Manifest) -> LakeIndex | None:
        """Read and validate the persisted LSH index, if the manifest
        records one.

        Manifests without an index section (older stores, sketchers
        without signature keys) return ``None`` — queries then rebuild
        the index lazily in memory.  A recorded index that is missing,
        fails its checksum, or disagrees with the catalog raises
        :class:`StoreError` (corruption is rejected, never served).
        """
        record = manifest.index
        if record is None:
            return None
        index_path = path / record.filename
        if not index_path.is_file():
            raise StoreError(
                f"manifest references missing LSH index {record.filename}"
            )
        try:
            lsh = unpack_lsh_index(index_path.read_bytes())
        except SerializationError as exc:
            raise StoreError(
                f"corrupt LSH index {record.filename}: {exc}"
            ) from exc
        live_count = sum(1 for _ in manifest.live_spans())
        if (
            lsh.bands != record.bands
            or lsh.rows_per_band != record.rows_per_band
            or len(lsh) != record.tables
            or record.tables != live_count
        ):
            raise StoreError(
                f"LSH index {record.filename} does not match the manifest "
                f"catalog ({len(lsh)} indexed rows for {live_count} live tables)"
            )
        return LakeIndex(lsh)

    def _build_index(self) -> SketchIndex:
        return SketchIndex.from_banks(
            self.sketcher,
            (
                (
                    span.name,
                    span.num_rows,
                    span.columns,
                    self._banks[shard.shard_id][span.lo : span.hi],
                )
                for shard, span in self._manifest.live_spans()
            ),
        )

    # ------------------------------------------------------------------
    # the served view
    # ------------------------------------------------------------------

    @property
    def index(self) -> SketchIndex:
        """The live :class:`SketchIndex` over all non-tombstoned tables."""
        self._check_open()
        return self._index

    def table_names(self) -> list[str]:
        self._check_open()
        return self._index.table_names()

    def __contains__(self, name: str) -> bool:
        self._check_open()
        return name in self._index

    def __len__(self) -> int:
        self._check_open()
        return len(self._index)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def _writer_lock(self) -> Iterator[None]:
        """Serialize writers and fail cleanly on cross-process races.

        An exclusive (non-blocking) flock guards append/compact; a
        second concurrent writer gets a ``StoreError`` instead of
        silently overwriting the first writer's shard and manifest.
        Once locked, the on-disk manifest is compared against this
        process's view — a mismatch means another process committed
        since we opened, and continuing would lose its tables.
        """
        handle = open(self.path / _LOCK_NAME, "a+")
        try:
            if fcntl is not None:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError as exc:
                    raise StoreError(
                        f"another process is writing to {self.path}"
                    ) from exc
            on_disk = Manifest.load(self.path / _MANIFEST_NAME)
            if on_disk != self._manifest:
                raise StoreError(
                    f"{self.path} was modified by another process since this "
                    f"store was opened; reopen it before writing"
                )
            yield
        finally:
            handle.close()  # closing the fd releases the flock

    def append(
        self,
        tables: Iterable[Table],
        workers: int | None = None,
        index: bool = True,
        chunk_bytes: int | None = None,
    ) -> int | None:
        """Sketch and persist a batch of new tables as one shard.

        Only the given tables are sketched; nothing already stored is
        touched.  A table whose name is already live replaces the old
        version: the new span wins and the old one is tombstoned (space
        is reclaimed by :meth:`compact`).  Returns the new shard id, or
        ``None`` for an empty batch.

        Ingestion **streams**: tables are encoded and sketched in
        byte-budgeted chunks (``chunk_bytes``, default
        ``REPRO_INGEST_CHUNK_BYTES`` or 64 MiB) whose banks land
        directly in the pre-sized shard file, so peak memory is bounded
        by the chunk budget, not the batch.  ``workers`` fans the
        chunks out over that many processes, each writing its own shard
        region.  The shard bytes, manifest, and index are bit-identical
        for any chunk size and any worker count.

        ``index`` maintains the persisted LSH candidate index alongside
        the shard (sketchers with signature keys only): the new tables'
        digests are appended incrementally — existing rows are never
        re-digested — and the index file plus manifest section commit
        with the same shard-first/manifest-last crash safety as the
        data.  ``index=False`` drops the persisted index for this
        store; the next indexing append or :meth:`compact` rebuilds it.
        """
        self._check_open()
        sources = [SourceTable.from_table(table) for table in tables]
        shard_id, _ = self.append_sources(
            sources, workers=workers, index=index, chunk_bytes=chunk_bytes
        )
        return shard_id

    def ingest_csv(
        self,
        paths: Iterable[str | Path],
        key_column: str | None = None,
        aggregate: str = "sum",
        workers: int | None = None,
        index: bool = True,
        chunk_bytes: int | None = None,
    ) -> tuple[int | None, IngestReport | None]:
        """Stream CSV files into one shard without materializing them.

        Only each file's header is read up front (for planning); bodies
        are parsed inside the chunk stage, so at most one chunk's worth
        of files is ever in memory.  Returns ``(shard_id, report)`` —
        see :meth:`append_sources`.
        """
        sources = [
            csv_source(path, key_column=key_column, aggregate=aggregate)
            for path in paths
        ]
        return self.append_sources(
            sources, workers=workers, index=index, chunk_bytes=chunk_bytes
        )

    def append_sources(
        self,
        sources: Iterable[SourceTable],
        workers: int | None = None,
        index: bool = True,
        chunk_bytes: int | None = None,
    ) -> tuple[int | None, IngestReport | None]:
        """Stream lazily-loadable sources into one shard.

        The workhorse behind :meth:`append` and :meth:`ingest_csv`:
        plans the shard layout from the source metadata, streams every
        source through the fused parse → vectorize → sketch chunk stage
        straight into the pre-sized shard file, and commits
        shard-first / manifest-last.  Returns ``(shard_id, report)``;
        the report carries per-stage timings and the peak chunk
        footprint (``None`` for sketchers without a fixed bank layout,
        which take the materialize-everything fallback).
        """
        self._check_open()
        sources = list(sources)
        if not sources:
            return None, None
        names = [source.name for source in sources]
        if len(set(names)) != len(names):
            raise StoreError(f"duplicate table names in one batch: {names}")

        obs.count("store.appends")
        plan = plan_shard(self.sketcher, sources)
        if plan is None:
            with obs.trace_span("store.append", tables=len(sources), streamed=False):
                return self._append_materialized(sources, workers, index), None

        # The writer lock is taken before streaming begins: the stream
        # writes the next shard's temp file, and two uncoordinated
        # writers would race on the same shard id and temp path.
        with obs.trace_span(
            "store.append", tables=len(sources), streamed=True
        ), self._writer_lock():
            shard_id = self._manifest.next_shard_id
            filename = shard_filename(shard_id)
            writer = ShardStreamWriter(self.path / filename, plan)
            try:
                num_rows, report = stream_sources(
                    self.sketcher,
                    sources,
                    plan,
                    writer.tmp_path,
                    workers=workers,
                    chunk_bytes=chunk_bytes,
                )
                writer.finalize()
            except BaseException:
                # Nothing committed: drop the temp file so a failed
                # stream leaves the lake exactly as it was.
                writer.abort()
                raise
            # Serve the shard we just wrote through the usual read
            # path (zero-copy views by default) — the lake's resident
            # footprint stays bounded even right after ingest.
            bank, buffer = read_shard(self.path / filename, zero_copy=self._zero_copy)
            spans = [
                TableSpan(
                    name=source.name,
                    num_rows=rows,
                    columns=source.columns,
                    lo=lo,
                    hi=hi,
                )
                for source, rows, (lo, hi) in zip(
                    sources, num_rows, plan_spans(sources)
                )
            ]
            stale_index = self._commit_shard_locked(
                shard_id, filename, spans, bank, index
            )
        self._finish_append(shard_id, bank, buffer, spans, stale_index)
        return shard_id, report

    def _append_materialized(
        self,
        sources: Sequence[SourceTable],
        workers: int | None,
        index: bool,
    ) -> int:
        """One-shot append for sketchers without a fixed bank layout.

        Object-bank methods (and sketcher-shaped wrappers) cannot be
        assembled at byte offsets, so this path keeps the original
        materialize → encode → one ``sketch_batch`` → pack flow.
        """
        tables = [source.loader() for source in sources]
        vectors: list = []
        spans: list[TableSpan] = []
        for table in tables:
            encoded = SketchIndex.encode_table(table)
            spans.append(
                TableSpan(
                    name=table.name,
                    num_rows=table.num_rows,
                    columns=tuple(table.columns),
                    lo=len(vectors),
                    hi=len(vectors) + len(encoded),
                )
            )
            vectors.extend(encoded)
        # Only forward workers when set: sketcher-shaped objects whose
        # sketch_batch predates the parameter keep working serially.
        if workers is None:
            bank = self.sketcher.sketch_batch(vectors)
        else:
            bank = self.sketcher.sketch_batch(vectors, workers=workers)

        with self._writer_lock():
            shard_id = self._manifest.next_shard_id
            filename = shard_filename(shard_id)
            write_shard(self.path / filename, bank)
            stale_index = self._commit_shard_locked(
                shard_id, filename, spans, bank, index
            )
        self._finish_append(shard_id, bank, None, spans, stale_index)
        return shard_id

    def _commit_shard_locked(
        self,
        shard_id: int,
        filename: str,
        spans: Sequence[TableSpan],
        bank: SketchBank,
        index: bool,
    ) -> str | None:
        """Record a durable shard in the manifest (under the writer lock).

        Commit point: the shard bytes are already on disk, now the
        manifest.  Returns the superseded index filename, if any.
        """
        live = self._manifest.live_table_shard()
        for span in spans:
            if span.name in live:
                self._manifest.tombstones.add((live[span.name], span.name))
        self._manifest.shards.append(
            ShardRecord(shard_id=shard_id, filename=filename, tables=tuple(spans))
        )
        self._manifest.next_shard_id = shard_id + 1

        if index:
            # The persisted snapshot extends a copy of the
            # committed-tables index with the new rows — the served
            # in-memory state is only mutated after the commit, so
            # a failed save never leaves phantom tables.
            stale_index = self._write_append_index_locked(bank, spans)
        else:
            stale_index = self._drop_index_record()
        self._manifest.save(self.path / _MANIFEST_NAME)
        return stale_index

    def _finish_append(
        self,
        shard_id: int,
        bank: SketchBank,
        buffer: mmap.mmap | None,
        spans: Sequence[TableSpan],
        stale_index: str | None,
    ) -> None:
        # Post-commit in-memory updates (what the old manifest already
        # served stays untouched if anything above raised).
        self._banks[shard_id] = bank
        self._buffers[shard_id] = buffer
        for span in spans:
            self._index.attach(
                span.name, span.num_rows, span.columns, bank[span.lo : span.hi]
            )
        self._remove_stale_index(stale_index)

    def compact(self) -> dict[str, Any]:
        """Merge all live spans into one shard; reclaim tombstoned rows.

        Rewrites the lake as a single shard holding the live tables in
        shard (ingest) order, clears the tombstone list, deletes the
        old shard files, and rebuilds the in-memory index over the
        merged bank.  Returns ``{"shards_before", "shards_after",
        "rows_reclaimed"}``.
        """
        self._check_open()
        shards_before = len(self._manifest.shards)
        rows_dead = self._manifest.dead_rows()
        if shards_before <= 1 and rows_dead == 0:
            return {
                "shards_before": shards_before,
                "shards_after": shards_before,
                "rows_reclaimed": 0,
            }
        obs.count("store.compactions")
        with obs.trace_span(
            "store.compact", shards=shards_before, dead_rows=rows_dead
        ):
            return self._compact(shards_before, rows_dead)

    def _compact(self, shards_before: int, rows_dead: int) -> dict[str, Any]:
        pieces: list[SketchBank] = []
        merged_spans: list[TableSpan] = []
        offset = 0
        for shard, span in self._manifest.live_spans():
            pieces.append(self._banks[shard.shard_id][span.lo : span.hi])
            width = span.hi - span.lo
            merged_spans.append(
                TableSpan(
                    name=span.name,
                    num_rows=span.num_rows,
                    columns=span.columns,
                    lo=offset,
                    hi=offset + width,
                )
            )
            offset += width
        if not pieces:
            raise StoreError("cannot compact an empty store")
        merged = SketchBank.concat(pieces)

        with self._writer_lock():
            shard_id = self._manifest.next_shard_id
            filename = shard_filename(shard_id)
            old_files = [shard.filename for shard in self._manifest.shards]
            write_shard(self.path / filename, merged)
            self._manifest.shards = [
                ShardRecord(
                    shard_id=shard_id, filename=filename, tables=tuple(merged_spans)
                )
            ]
            self._manifest.tombstones = set()
            self._manifest.next_shard_id = shard_id + 1
            # The LSH index is rebuilt from the merged bank directly —
            # the served in-memory state is swapped only post-commit.
            stale_index, lsh_snapshot = self._write_compact_index_locked(
                merged, merged_spans
            )
            self._manifest.save(self.path / _MANIFEST_NAME)

        # Post-commit: swap the in-memory view to the merged shard.
        self._release_buffers()
        self._banks = {shard_id: merged}
        self._buffers = {shard_id: None}
        self._index = self._build_index()
        if lsh_snapshot is not None:
            self._index.attach_lsh(lsh_snapshot)
        for old in old_files:
            if old != filename:
                with contextlib.suppress(OSError):
                    (self.path / old).unlink()
        self._remove_stale_index(stale_index)
        return {
            "shards_before": shards_before,
            "shards_after": 1,
            "rows_reclaimed": rows_dead,
        }

    # ------------------------------------------------------------------
    # LSH index persistence
    # ------------------------------------------------------------------

    def _desired_banding(self) -> tuple[int, int]:
        """The **store-owned** banding for the persisted index.

        The existing record's split, or the auto-tuned split at the
        store's recall target.  Query sessions may build the in-memory
        index with their own tuning, but persistence never adopts it —
        otherwise a session-specific deep banding would become every
        future reader's default, silently collapsing their recall.
        """
        record = self._manifest.index
        if record is not None:
            return (record.bands, record.rows_per_band)
        return tune(
            self.sketcher.signature_length(),
            self.LSH_TARGET_SIM,
            self.LSH_TARGET_RECALL,
        )

    def _committed_lake_index(self, desired: tuple[int, int]) -> LakeIndex:
        """The in-memory index over committed tables, at ``desired``
        banding (rebuilt if a query path tuned it differently)."""
        lake = self._index.lsh_index(bands=desired[0], rows_per_band=desired[1])
        if (lake.bands, lake.rows_per_band) != desired:
            self._index.drop_lsh()
            lake = self._index.lsh_index(
                bands=desired[0], rows_per_band=desired[1]
            )
        return lake

    def _emit_index_locked(self, lsh: SignatureLSH, tables: int) -> str | None:
        """Write one index generation + repoint the manifest record.

        Must run under the writer lock, before the manifest is saved:
        the index file lands first (a crash leaves an orphan the old
        manifest never references), then the manifest repoints, then
        the caller deletes the stale generation after the commit.
        Returns the superseded filename, if any.
        """
        payload = pack_lsh_index(lsh)
        filename = index_filename(self._manifest.next_index_id)
        write_bytes_atomic(self.path / filename, payload)
        old = self._manifest.index
        self._manifest.index = IndexRecord(
            filename=filename,
            bands=lsh.bands,
            rows_per_band=lsh.rows_per_band,
            tables=tables,
        )
        self._manifest.next_index_id += 1
        return old.filename if old is not None else None

    def _write_append_index_locked(
        self, bank: SketchBank, spans: Sequence[TableSpan]
    ) -> str | None:
        """Persist the index for an append batch; no served-state writes.

        Extends a *copy* of the committed-tables index with the new
        spans' indicator rows (digests are row-independent, so the copy
        is byte-identical to a from-scratch build over the post-append
        live-span order — ``SketchIndex`` moves replaced entries to the
        end, exactly where the replacing span lands).  The in-memory
        index picks the same rows up lazily after the commit.
        """
        if not LakeIndex.supports(self.sketcher):
            return None
        desired = self._desired_banding()
        lake = self._committed_lake_index(desired)
        matrix = lake.lsh.digest_matrix()
        # A replacing append tombstones the old span: its digest row is
        # dropped and the replacement lands at the end with the rest of
        # the batch — exactly the post-append live-span order.
        batch_names = {span.name for span in spans}
        keep = np.array(
            [name not in batch_names for name in self._index.table_names()],
            dtype=bool,
        )
        if not keep.all():
            matrix = matrix[keep]
        snapshot = LakeIndex(
            SignatureLSH.from_digests(desired[0], desired[1], matrix)
        )
        snapshot.extend(self.sketcher, bank[[span.lo for span in spans]])
        return self._emit_index_locked(
            snapshot.lsh, int(matrix.shape[0]) + len(spans)
        )

    def _write_compact_index_locked(
        self, merged: SketchBank, merged_spans: Sequence[TableSpan]
    ) -> tuple[str | None, LakeIndex | None]:
        """Rebuild + persist the index over a compacted lake's rows.

        Built from the merged bank directly (not the still-serving
        in-memory index), so the served state stays untouched until the
        manifest commit succeeds.  Returns ``(stale_file, snapshot)``;
        the caller attaches the snapshot to the rebuilt index.
        """
        if not LakeIndex.supports(self.sketcher):
            return None, None
        desired = self._desired_banding()
        indicator_rows = (
            merged[[span.lo for span in merged_spans]] if merged_spans else None
        )
        snapshot = LakeIndex.build(
            self.sketcher,
            indicator_rows,
            bands=desired[0],
            rows_per_band=desired[1],
        )
        return self._emit_index_locked(snapshot.lsh, len(snapshot)), snapshot

    def _drop_index_record(self) -> str | None:
        """Detach the persisted index (``append(index=False)``)."""
        record = self._manifest.index
        self._manifest.index = None
        return record.filename if record is not None else None

    def _remove_stale_index(self, filename: str | None) -> None:
        """Best-effort cleanup of a superseded index generation."""
        if filename is None:
            return
        current = self._manifest.index
        if current is not None and current.filename == filename:
            return
        with contextlib.suppress(OSError):
            (self.path / filename).unlink()

    # ------------------------------------------------------------------
    # accounting / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Catalog and footprint summary (CLI ``stats`` output)."""
        self._check_open()
        live_rows = sum(
            span.hi - span.lo for _, span in self._manifest.live_spans()
        )
        file_bytes = sum(
            (self.path / shard.filename).stat().st_size
            for shard in self._manifest.shards
            if (self.path / shard.filename).is_file()
        )
        record = self._manifest.index
        index_bytes = 0
        if record is not None and (self.path / record.filename).is_file():
            index_bytes = (self.path / record.filename).stat().st_size
            file_bytes += index_bytes
        return {
            "path": str(self.path),
            "sketcher": dict(self._manifest.sketcher),
            "tables": len(self._index),
            "value_columns": len(self._index.value_owners()) if len(self._index) else 0,
            "shards": len(self._manifest.shards),
            "live_rows": live_rows,
            "dead_rows": self._manifest.dead_rows(),
            "tombstones": len(self._manifest.tombstones),
            "storage_words": self._index.storage_words() if len(self._index) else 0.0,
            "file_bytes": file_bytes,
            "lsh_index": (
                {
                    "bands": record.bands,
                    "rows_per_band": record.rows_per_band,
                    "tables": record.tables,
                    "file_bytes": index_bytes,
                }
                if record is not None
                else None
            ),
            # Mapped/loaded bank footprint; with zero-copy open this is
            # the mmapped size, not resident memory.
            "bank_bytes": sum(bank.nbytes() for bank in self._banks.values()),
        }

    def orphaned_files(self) -> list[str]:
        """Shard-like files in the directory the manifest does not own.

        Leftovers of interrupted appends (``*.tmp``) or of shards whose
        manifest commit never happened; safe to delete.
        """
        owned = {shard.filename for shard in self._manifest.shards}
        if self._manifest.index is not None:
            owned.add(self._manifest.index.filename)
        found = []
        for entry in sorted(self.path.iterdir()):
            if entry.name == _MANIFEST_NAME or entry.name in owned:
                continue
            if entry.suffix == SHARD_SUFFIX or entry.name.endswith(".tmp"):
                found.append(entry.name)
        return found

    def close(self) -> None:
        """Release the store (memory maps are dropped; banks derived
        from this store must not be used afterwards)."""
        if self._closed:
            return
        self._closed = True
        self._index = None  # type: ignore[assignment]
        self._banks = {}
        self._release_buffers()

    def _release_buffers(self) -> None:
        for buffer in self._buffers.values():
            if buffer is not None:
                # The map survives until the last referencing array is
                # collected; closing eagerly fails while views exist.
                with contextlib.suppress(BufferError):
                    buffer.close()
        self._buffers = {}

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError("the store is closed")

    def __enter__(self) -> "LakeStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        status = "closed" if self._closed else f"tables={len(self._index)}"
        return f"LakeStore({str(self.path)!r}, {status})"


def is_lake_store(path: str | Path) -> bool:
    """True if ``path`` looks like an initialized lake directory."""
    try:
        Manifest.load(Path(path) / _MANIFEST_NAME)
    except ManifestError:
        return False
    return True
