"""``LakeStore`` — a durable, incrementally-ingested sketch lake.

The paper's economics only work if the lake is sketched **once**: the
expensive pass over raw tables happens at ingest, and every later
process serves queries from the compact sketches.  ``LakeStore`` is
that durable substrate:

* a lake is a directory of binary **shard files** (one packed
  :class:`~repro.core.bank.SketchBank` per ingest batch) plus a JSON
  **manifest** recording the sketcher configuration, the table catalog
  with per-shard row spans, and tombstones;
* :meth:`append` sketches *only* the new tables — one
  ``sketch_batch`` call per batch, never re-sketching existing data —
  and commits shard-first / manifest-last so a crash can at worst leave
  an orphaned file the next open ignores;
* re-ingesting a table name tombstones the old span (shards are
  immutable); :meth:`compact` merges all live spans into one fresh
  shard and reclaims the dead rows;
* :meth:`open` reconstructs the in-memory
  :class:`~repro.datasearch.index.SketchIndex` straight from the
  stored banks — zero-copy over memory-mapped shards, no ``Table``
  objects, no re-sketching — and refuses a caller-provided sketcher
  whose configuration does not match the stored one
  (:class:`~repro.core.base.SketchMismatchError`).

Because banks persist losslessly (raw float64 columns, no hash
quantization), a reopened lake returns search rankings and estimates
bit-identical to the in-memory index built from the same tables.
"""

from __future__ import annotations

import contextlib
import hashlib
import mmap
import os
import random
import signal
import threading
import time
from pathlib import Path

import numpy as np
from typing import Any, Iterable, Iterator, Sequence

try:  # advisory inter-process write locking (POSIX only)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro import faults, obs
from repro.core.bank import SketchBank
from repro.core.base import Sketcher
from repro.datasearch.index import SketchIndex
from repro.datasearch.lshindex import DEFAULT_TARGET_RECALL, LakeIndex
from repro.datasearch.table import Table
from repro.io.serialize import (
    SerializationError,
    pack_lsh_index,
    unpack_lsh_index,
)
from repro.mips.lsh import SignatureLSH, tune
from repro.parallel.streaming import (
    IngestReport,
    SourceTable,
    plan_shard,
    plan_spans,
    stream_sources,
)
from repro.store.config import build_sketcher, check_sketcher_config, sketcher_config
from repro.store.csvio import csv_source
from repro.store.manifest import (
    IndexRecord,
    Manifest,
    ManifestError,
    ShardRecord,
    TableSpan,
    previous_manifest_path,
)
from repro.store.shard import (
    SHARD_SUFFIX,
    ShardStreamWriter,
    index_filename,
    read_shard,
    shard_filename,
    write_bytes_atomic,
    write_shard,
)

__all__ = [
    "LOCK_TIMEOUT_ENV",
    "StoreError",
    "LakeStore",
    "is_lake_store",
    "store_generation",
]

_MANIFEST_NAME = "manifest.json"
_LOCK_NAME = ".lock"
_QUARANTINE_DIR = "quarantine"

#: Default writer-lock timeout in seconds (fractions allowed).  Unset
#: or 0 keeps the historical fail-fast behavior; a positive value makes
#: concurrent writers retry with jittered exponential backoff until the
#: deadline instead of one of them dying instantly.
LOCK_TIMEOUT_ENV = "REPRO_LOCK_TIMEOUT"

# Crash points of the store-level commit protocol: lock acquisition,
# the window between a durable shard and its manifest record, index
# emission, and the compaction swap.  Together with the shard/manifest
# failpoints these cover every ordering the torture harness must prove
# safe.
FP_LOCK_ACQUIRE = faults.register(
    "lake.lock.acquire", "before the writer flock is attempted"
)
FP_STREAM_BEGIN = faults.register(
    "lake.append.stream", "after the shard tmp exists, before streaming"
)
FP_COMMIT_SHARD_DURABLE = faults.register(
    "lake.commit.shard_durable", "shard renamed into place, manifest untouched"
)
FP_COMMIT_INDEX_EMITTED = faults.register(
    "lake.commit.index_emitted", "index generation written, manifest untouched"
)
FP_COMMIT_MANIFEST_SAVED = faults.register(
    "lake.commit.manifest_saved", "append committed, in-memory state not yet updated"
)
FP_INDEX_EMIT = faults.register(
    "lake.index.emit", "before the LSH index generation is written"
)
FP_COMPACT_SHARD_DURABLE = faults.register(
    "lake.compact.shard_durable", "merged shard durable, manifest untouched"
)
FP_COMPACT_MANIFEST_SAVED = faults.register(
    "lake.compact.manifest_saved", "compaction committed, old shards not yet deleted"
)


class StoreError(RuntimeError):
    """Raised on invalid lake-store operations or corrupted stores."""


def store_generation(path: str | Path) -> str | None:
    """A stable token of the lake's committed manifest generation.

    Every committed write rewrites ``manifest.json`` atomically, so the
    digest of its bytes identifies one committed generation: two
    processes (or two moments in time) see the same token iff they see
    the same committed catalog.  Readers use this to pin a snapshot —
    a serving tier polls the token and swaps its session only when the
    token moves — without parsing or validating the manifest on every
    poll.  Falls back to the retained previous generation when the live
    file is missing (mid-``os.replace`` is atomic, so this only happens
    on a never-initialized directory); returns ``None`` when neither
    exists.
    """
    manifest_path = Path(path) / _MANIFEST_NAME
    try:
        payload = manifest_path.read_bytes()
    except OSError:
        try:
            payload = previous_manifest_path(manifest_path).read_bytes()
        except OSError:
            return None
    return hashlib.sha256(payload).hexdigest()[:16]


def _resolve_lock_timeout(lock_timeout: float | None) -> float:
    """The effective writer-lock timeout: explicit arg, env, or 0."""
    if lock_timeout is not None:
        return max(float(lock_timeout), 0.0)
    raw = os.environ.get(LOCK_TIMEOUT_ENV, "").strip()
    if not raw:
        return 0.0
    try:
        return max(float(raw), 0.0)
    except ValueError as exc:
        raise StoreError(
            f"invalid {LOCK_TIMEOUT_ENV}={raw!r}: expected seconds as a number"
        ) from exc


@contextlib.contextmanager
def _deliver_sigterm_as_interrupt() -> Iterator[None]:
    """Convert SIGTERM into ``KeyboardInterrupt`` for the scope.

    Streaming ingest owns a visible temp file; a plain SIGTERM would
    kill the process without running the abort path and strand it.
    Inside this scope a TERM (or a ctrl-C, which already raises) lands
    as ``KeyboardInterrupt`` at the next bytecode boundary, the
    ``except BaseException`` cleanup aborts the shard writer, and the
    signal's intent is honored by re-raising out of the operation.
    Only the main thread can (and need) install handlers; elsewhere
    this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.getsignal(signal.SIGTERM)

    def _handler(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt("SIGTERM during streaming ingest")

    signal.signal(signal.SIGTERM, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


class LakeStore:
    """A sketched data lake persisted as shards + manifest.

    Construct via :meth:`create` (new lake) or :meth:`open` (existing
    directory); the constructor itself is internal.  Instances are
    usable as context managers::

        with LakeStore.open("lake.d") as store:
            hits = QuerySession(store).search(my_table, "price")
    """

    #: Auto-tuner defaults for the persisted LSH candidate index: the
    #: banding targets this expected recall at this (weighted Jaccard)
    #: similarity.  ``LSH_TARGET_SIM`` matches the default serving
    #: ``min_containment`` (containment upper-bounds Jaccard, so the
    #: S-curve is evaluated at the conservative end).
    LSH_TARGET_SIM = 0.05
    LSH_TARGET_RECALL = DEFAULT_TARGET_RECALL

    def __init__(
        self,
        path: Path,
        sketcher: Sketcher,
        manifest: Manifest,
        banks: dict[int, SketchBank],
        buffers: dict[int, mmap.mmap | None],
        zero_copy: bool,
        lake_index: LakeIndex | None = None,
        read_only: bool = False,
        degraded: list[str] | None = None,
    ) -> None:
        self.path = path
        self.sketcher = sketcher
        self._manifest = manifest
        self._banks = banks
        self._buffers = buffers
        self._zero_copy = zero_copy
        self._closed = False
        self._read_only = read_only
        #: Human-readable conditions this open survived in degraded
        #: form (manifest fallback, index fallback, salvaged shards).
        #: Empty for a healthy store.
        self.degraded: list[str] = list(degraded or [])
        #: The committed manifest generation this handle serves
        #: (refreshed after this handle's own commits; see
        #: :func:`store_generation`).
        self.generation: str | None = store_generation(path)
        self._index = self._build_index()
        if lake_index is not None:
            self._index.attach_lsh(lake_index)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, path: str | Path, sketcher: Sketcher) -> "LakeStore":
        """Initialize an empty lake at ``path`` (directory must be new
        or an empty/non-store directory without a manifest)."""
        path = Path(path)
        manifest_path = path / _MANIFEST_NAME
        if manifest_path.exists():
            raise StoreError(
                f"{path} already holds a lake store; use LakeStore.open"
            )
        path.mkdir(parents=True, exist_ok=True)
        manifest = Manifest(sketcher=sketcher_config(sketcher))
        manifest.save(manifest_path)
        return cls(path, sketcher, manifest, {}, {}, zero_copy=True)

    @classmethod
    def open(
        cls,
        path: str | Path,
        sketcher: Sketcher | None = None,
        zero_copy: bool = True,
        salvage: bool = False,
    ) -> "LakeStore":
        """Open an existing lake and rebuild its index from the shards.

        ``sketcher`` is optional: by default the stored configuration
        is rebuilt exactly.  Passing one asserts it matches the stored
        configuration (``SketchMismatchError`` otherwise) — use this to
        share a sketcher instance across stores.  ``zero_copy=False``
        materializes the banks in memory instead of memory-mapping the
        shard files.

        Degraded opens: a torn or corrupt ``manifest.json`` falls back
        to the retained previous generation; a missing, corrupt, or
        catalog-mismatched LSH index file is *dropped* instead of
        failing the open — queries route through scan candidates (or a
        lazy in-memory rebuild) and ``query.route.scan_fallback``
        counts the downgrades.  Corrupt or missing **shards** still
        refuse the open (data, not an accelerator) unless
        ``salvage=True``, which skips unreadable shards and serves the
        surviving tables **read-only**; ``store.degraded`` lists what
        was lost and :meth:`repair` makes the store writable again.
        """
        path = Path(path)
        with obs.trace_span(
            "store.open", path=str(path), zero_copy=zero_copy, salvage=salvage
        ):
            degraded: list[str] = []
            manifest = cls._load_manifest(path, degraded)
            if sketcher is None:
                sketcher = build_sketcher(manifest.sketcher)
            else:
                check_sketcher_config(manifest.sketcher, sketcher)
            banks: dict[int, SketchBank] = {}
            buffers: dict[int, mmap.mmap | None] = {}
            for shard in manifest.shards:
                shard_path = path / shard.filename
                try:
                    if not shard_path.is_file():
                        raise StoreError(
                            f"open {path}: manifest references missing shard "
                            f"{shard.filename}"
                        )
                    bank, buffer = read_shard(shard_path, zero_copy=zero_copy)
                    sketcher._check_bank(bank)
                except (StoreError, SerializationError) as exc:
                    if not salvage:
                        if isinstance(exc, StoreError):
                            raise
                        raise StoreError(
                            f"open {path}: corrupt shard {shard.filename}: {exc}"
                        ) from exc
                    degraded.append(f"shard {shard.filename} skipped: {exc}")
                    obs.count("store.recovery.shards_skipped")
                    continue
                banks[shard.shard_id] = bank
                buffers[shard.shard_id] = buffer
            lake_index = cls._load_lsh_index(path, manifest, degraded)
            if lake_index is not None and len(banks) != len(manifest.shards):
                # Salvage dropped shards: the persisted index covers
                # rows that no longer exist — do not serve it.
                lake_index = None
                degraded.append(
                    "lsh_index dropped: persisted index covers skipped shards"
                )
                obs.count("store.recovery.index_fallback")
                obs.count("query.route.scan_fallback")
            obs.count("store.opens")
            return cls(
                path,
                sketcher,
                manifest,
                banks,
                buffers,
                zero_copy=zero_copy,
                lake_index=lake_index,
                read_only=salvage,
                degraded=degraded,
            )

    @staticmethod
    def _load_manifest(path: Path, degraded: list[str]) -> Manifest:
        """Load the live manifest, falling back to the retained
        previous generation when the live one is torn or corrupt.

        The fallback is read-only recovery: the corrupt file is left in
        place for :meth:`fsck` to report (and :meth:`repair` to fix),
        and writes through this handle are refused by the writer lock's
        own staleness load until then.
        """
        manifest_path = path / _MANIFEST_NAME
        try:
            return Manifest.load(manifest_path)
        except ManifestError as primary:
            prev = previous_manifest_path(manifest_path)
            if not prev.is_file():
                raise
            try:
                manifest = Manifest.load(prev)
            except ManifestError:
                raise primary from None
            degraded.append(
                f"manifest: fell back to {prev.name} ({primary})"
            )
            obs.count("store.recovery.manifest_fallback")
            return manifest

    @staticmethod
    def _load_lsh_index(
        path: Path, manifest: Manifest, degraded: list[str]
    ) -> LakeIndex | None:
        """Read and validate the persisted LSH index, if the manifest
        records one.

        Manifests without an index section (older stores, sketchers
        without signature keys) return ``None`` — queries then rebuild
        the index lazily in memory.  A recorded index that is missing,
        fails its checksum, or disagrees with the catalog is treated
        the same way — the index is an accelerator, not data, so the
        open *degrades* to scan/lazy-rebuilt candidates instead of
        failing (``query.route.scan_fallback`` counts it; the dropped
        file stays on disk for ``fsck`` to classify).
        """
        record = manifest.index
        if record is None:
            return None
        problem: str | None = None
        index_path = path / record.filename
        if not index_path.is_file():
            problem = f"missing LSH index {record.filename}"
        else:
            try:
                lsh = unpack_lsh_index(index_path.read_bytes())
            except SerializationError as exc:
                problem = f"corrupt LSH index {record.filename}: {exc}"
            else:
                live_count = sum(1 for _ in manifest.live_spans())
                if (
                    lsh.bands != record.bands
                    or lsh.rows_per_band != record.rows_per_band
                    or len(lsh) != record.tables
                    or record.tables != live_count
                ):
                    problem = (
                        f"LSH index {record.filename} does not match the "
                        f"manifest catalog ({len(lsh)} indexed rows for "
                        f"{live_count} live tables)"
                    )
        if problem is not None:
            degraded.append(f"lsh_index dropped: {problem}")
            obs.count("store.recovery.index_fallback")
            obs.count("query.route.scan_fallback")
            return None
        return LakeIndex(lsh)

    def _build_index(self) -> SketchIndex:
        # Salvage opens may have skipped shards; only spans whose bank
        # actually loaded are served.
        return SketchIndex.from_banks(
            self.sketcher,
            (
                (
                    span.name,
                    span.num_rows,
                    span.columns,
                    self._banks[shard.shard_id][span.lo : span.hi],
                )
                for shard, span in self._manifest.live_spans()
                if shard.shard_id in self._banks
            ),
        )

    # ------------------------------------------------------------------
    # the served view
    # ------------------------------------------------------------------

    @property
    def index(self) -> SketchIndex:
        """The live :class:`SketchIndex` over all non-tombstoned tables."""
        self._check_open()
        return self._index

    def table_names(self) -> list[str]:
        self._check_open()
        return self._index.table_names()

    def __contains__(self, name: str) -> bool:
        self._check_open()
        return name in self._index

    def __len__(self) -> int:
        self._check_open()
        return len(self._index)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def _writer_lock(
        self, lock_timeout: float | None = None, op: str = "write"
    ) -> Iterator[None]:
        """Serialize writers and fail cleanly on cross-process races.

        An exclusive flock guards append/compact.  With the default
        zero timeout a second concurrent writer gets a ``StoreError``
        immediately (the historical fail-fast contract); a positive
        ``lock_timeout`` (or ``REPRO_LOCK_TIMEOUT``) retries with
        jittered exponential backoff until the deadline, so two
        concurrent writers serialize instead of one dying.  Once
        locked, the on-disk manifest is compared against this process's
        view — a mismatch means another process committed since we
        opened, and continuing would lose its tables.
        """
        timeout = _resolve_lock_timeout(lock_timeout)
        handle = open(self.path / _LOCK_NAME, "a+")
        try:
            if fcntl is not None:
                faults.failpoint(FP_LOCK_ACQUIRE)
                self._acquire_flock(handle, timeout, op)
            try:
                on_disk = Manifest.load(self.path / _MANIFEST_NAME)
            except ManifestError as exc:
                raise StoreError(
                    f"{op} on {self.path}: cannot verify the on-disk manifest "
                    f"({exc}); run `python -m repro.store repair` first"
                ) from exc
            if on_disk != self._manifest:
                raise StoreError(
                    f"{op} on {self.path}: modified by another process since "
                    f"this store was opened; reopen it before writing"
                )
            yield
        finally:
            handle.close()  # closing the fd releases the flock

    def _acquire_flock(self, handle: Any, timeout: float, op: str) -> None:
        """Take the exclusive flock, retrying with jittered backoff.

        Jitter matters: two writers waking in lockstep would collide on
        every retry; multiplying the delay by a random factor in
        [0.5, 1) de-synchronizes them.  The delay doubles from 5 ms up
        to 200 ms, and the last sleep is clamped to the deadline, so a
        timeout of ``t`` never waits meaningfully past ``t``.
        """
        deadline = time.monotonic() + timeout
        delay = 0.005
        while True:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                return
            except OSError as exc:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    waited = (
                        f" (gave up after {timeout:g}s)" if timeout > 0 else ""
                    )
                    raise StoreError(
                        f"{op} on {self.path}: another process holds the "
                        f"writer lock{waited}"
                    ) from exc
                obs.count("store.lock_retries")
                time.sleep(min(remaining, delay * random.uniform(0.5, 1.0)))
                delay = min(delay * 2.0, 0.2)

    def append(
        self,
        tables: Iterable[Table],
        workers: int | None = None,
        index: bool = True,
        chunk_bytes: int | None = None,
        lock_timeout: float | None = None,
    ) -> int | None:
        """Sketch and persist a batch of new tables as one shard.

        Only the given tables are sketched; nothing already stored is
        touched.  A table whose name is already live replaces the old
        version: the new span wins and the old one is tombstoned (space
        is reclaimed by :meth:`compact`).  Returns the new shard id, or
        ``None`` for an empty batch.

        Ingestion **streams**: tables are encoded and sketched in
        byte-budgeted chunks (``chunk_bytes``, default
        ``REPRO_INGEST_CHUNK_BYTES`` or 64 MiB) whose banks land
        directly in the pre-sized shard file, so peak memory is bounded
        by the chunk budget, not the batch.  ``workers`` fans the
        chunks out over that many processes, each writing its own shard
        region.  The shard bytes, manifest, and index are bit-identical
        for any chunk size and any worker count.

        ``index`` maintains the persisted LSH candidate index alongside
        the shard (sketchers with signature keys only): the new tables'
        digests are appended incrementally — existing rows are never
        re-digested — and the index file plus manifest section commit
        with the same shard-first/manifest-last crash safety as the
        data.  ``index=False`` drops the persisted index for this
        store; the next indexing append or :meth:`compact` rebuilds it.

        ``lock_timeout`` (seconds; default ``REPRO_LOCK_TIMEOUT`` or
        fail-fast) lets concurrent writers wait for the writer lock
        with jittered exponential backoff instead of erroring.
        """
        self._check_writable("append")
        sources = [SourceTable.from_table(table) for table in tables]
        shard_id, _ = self.append_sources(
            sources,
            workers=workers,
            index=index,
            chunk_bytes=chunk_bytes,
            lock_timeout=lock_timeout,
        )
        return shard_id

    def ingest_csv(
        self,
        paths: Iterable[str | Path],
        key_column: str | None = None,
        aggregate: str = "sum",
        workers: int | None = None,
        index: bool = True,
        chunk_bytes: int | None = None,
        lock_timeout: float | None = None,
    ) -> tuple[int | None, IngestReport | None]:
        """Stream CSV files into one shard without materializing them.

        Only each file's header is read up front (for planning); bodies
        are parsed inside the chunk stage, so at most one chunk's worth
        of files is ever in memory.  Returns ``(shard_id, report)`` —
        see :meth:`append_sources`.
        """
        sources = [
            csv_source(path, key_column=key_column, aggregate=aggregate)
            for path in paths
        ]
        return self.append_sources(
            sources,
            workers=workers,
            index=index,
            chunk_bytes=chunk_bytes,
            lock_timeout=lock_timeout,
        )

    def append_sources(
        self,
        sources: Iterable[SourceTable],
        workers: int | None = None,
        index: bool = True,
        chunk_bytes: int | None = None,
        lock_timeout: float | None = None,
    ) -> tuple[int | None, IngestReport | None]:
        """Stream lazily-loadable sources into one shard.

        The workhorse behind :meth:`append` and :meth:`ingest_csv`:
        plans the shard layout from the source metadata, streams every
        source through the fused parse → vectorize → sketch chunk stage
        straight into the pre-sized shard file, and commits
        shard-first / manifest-last.  Returns ``(shard_id, report)``;
        the report carries per-stage timings and the peak chunk
        footprint (``None`` for sketchers without a fixed bank layout,
        which take the materialize-everything fallback).
        """
        self._check_writable("append")
        sources = list(sources)
        if not sources:
            return None, None
        names = [source.name for source in sources]
        if len(set(names)) != len(names):
            raise StoreError(
                f"append to {self.path}: duplicate table names in one "
                f"batch: {names}"
            )

        obs.count("store.appends")
        plan = plan_shard(self.sketcher, sources)
        if plan is None:
            with obs.trace_span("store.append", tables=len(sources), streamed=False):
                return (
                    self._append_materialized(sources, workers, index, lock_timeout),
                    None,
                )

        # The writer lock is taken before streaming begins: the stream
        # writes the next shard's temp file, and two uncoordinated
        # writers would race on the same shard id and temp path.  The
        # interrupt scope turns SIGTERM into an exception so the abort
        # path below always runs and no temp file outlives the process.
        with obs.trace_span(
            "store.append", tables=len(sources), streamed=True
        ), _deliver_sigterm_as_interrupt(), self._writer_lock(
            lock_timeout, op="append"
        ):
            shard_id = self._manifest.next_shard_id
            filename = shard_filename(shard_id)
            writer = ShardStreamWriter(self.path / filename, plan)
            try:
                faults.failpoint(FP_STREAM_BEGIN)
                num_rows, report = stream_sources(
                    self.sketcher,
                    sources,
                    plan,
                    writer.tmp_path,
                    workers=workers,
                    chunk_bytes=chunk_bytes,
                )
                writer.finalize()
            except BaseException:
                # Nothing committed: drop the temp file so a failed
                # stream leaves the lake exactly as it was.
                writer.abort()
                raise
            # Serve the shard we just wrote through the usual read
            # path (zero-copy views by default) — the lake's resident
            # footprint stays bounded even right after ingest.
            bank, buffer = read_shard(self.path / filename, zero_copy=self._zero_copy)
            spans = [
                TableSpan(
                    name=source.name,
                    num_rows=rows,
                    columns=source.columns,
                    lo=lo,
                    hi=hi,
                )
                for source, rows, (lo, hi) in zip(
                    sources, num_rows, plan_spans(sources)
                )
            ]
            stale_index = self._commit_shard_locked(
                shard_id, filename, spans, bank, index
            )
        self._finish_append(shard_id, bank, buffer, spans, stale_index)
        return shard_id, report

    def _append_materialized(
        self,
        sources: Sequence[SourceTable],
        workers: int | None,
        index: bool,
        lock_timeout: float | None = None,
    ) -> int:
        """One-shot append for sketchers without a fixed bank layout.

        Object-bank methods (and sketcher-shaped wrappers) cannot be
        assembled at byte offsets, so this path keeps the original
        materialize → encode → one ``sketch_batch`` → pack flow.
        """
        tables = [source.loader() for source in sources]
        vectors: list = []
        spans: list[TableSpan] = []
        for table in tables:
            encoded = SketchIndex.encode_table(table)
            spans.append(
                TableSpan(
                    name=table.name,
                    num_rows=table.num_rows,
                    columns=tuple(table.columns),
                    lo=len(vectors),
                    hi=len(vectors) + len(encoded),
                )
            )
            vectors.extend(encoded)
        # Only forward workers when set: sketcher-shaped objects whose
        # sketch_batch predates the parameter keep working serially.
        if workers is None:
            bank = self.sketcher.sketch_batch(vectors)
        else:
            bank = self.sketcher.sketch_batch(vectors, workers=workers)

        with self._writer_lock(lock_timeout, op="append"):
            shard_id = self._manifest.next_shard_id
            filename = shard_filename(shard_id)
            write_shard(self.path / filename, bank)
            stale_index = self._commit_shard_locked(
                shard_id, filename, spans, bank, index
            )
        self._finish_append(shard_id, bank, None, spans, stale_index)
        return shard_id

    def _commit_shard_locked(
        self,
        shard_id: int,
        filename: str,
        spans: Sequence[TableSpan],
        bank: SketchBank,
        index: bool,
    ) -> str | None:
        """Record a durable shard in the manifest (under the writer lock).

        Commit point: the shard bytes are already on disk, now the
        manifest.  Returns the superseded index filename, if any.
        """
        faults.failpoint(FP_COMMIT_SHARD_DURABLE)
        live = self._manifest.live_table_shard()
        for span in spans:
            if span.name in live:
                self._manifest.tombstones.add((live[span.name], span.name))
        self._manifest.shards.append(
            ShardRecord(shard_id=shard_id, filename=filename, tables=tuple(spans))
        )
        self._manifest.next_shard_id = shard_id + 1

        if index:
            # The persisted snapshot extends a copy of the
            # committed-tables index with the new rows — the served
            # in-memory state is only mutated after the commit, so
            # a failed save never leaves phantom tables.
            stale_index = self._write_append_index_locked(bank, spans)
        else:
            stale_index = self._drop_index_record()
        faults.failpoint(FP_COMMIT_INDEX_EMITTED)
        self._manifest.save(self.path / _MANIFEST_NAME)
        faults.failpoint(FP_COMMIT_MANIFEST_SAVED)
        return stale_index

    def _finish_append(
        self,
        shard_id: int,
        bank: SketchBank,
        buffer: mmap.mmap | None,
        spans: Sequence[TableSpan],
        stale_index: str | None,
    ) -> None:
        # Post-commit in-memory updates (what the old manifest already
        # served stays untouched if anything above raised).
        self._banks[shard_id] = bank
        self._buffers[shard_id] = buffer
        for span in spans:
            self._index.attach(
                span.name, span.num_rows, span.columns, bank[span.lo : span.hi]
            )
        self._remove_stale_index(stale_index)
        self.generation = store_generation(self.path)

    def compact(self, lock_timeout: float | None = None) -> dict[str, Any]:
        """Merge all live spans into one shard; reclaim tombstoned rows.

        Rewrites the lake as a single shard holding the live tables in
        shard (ingest) order, clears the tombstone list, deletes the
        old shard files, and rebuilds the in-memory index over the
        merged bank.  Returns ``{"shards_before", "shards_after",
        "rows_reclaimed"}``.  ``lock_timeout`` as in :meth:`append`.
        """
        self._check_writable("compact")
        shards_before = len(self._manifest.shards)
        rows_dead = self._manifest.dead_rows()
        if shards_before <= 1 and rows_dead == 0:
            return {
                "shards_before": shards_before,
                "shards_after": shards_before,
                "rows_reclaimed": 0,
            }
        obs.count("store.compactions")
        with obs.trace_span(
            "store.compact", shards=shards_before, dead_rows=rows_dead
        ):
            return self._compact(shards_before, rows_dead, lock_timeout)

    def _compact(
        self,
        shards_before: int,
        rows_dead: int,
        lock_timeout: float | None = None,
    ) -> dict[str, Any]:
        pieces: list[SketchBank] = []
        merged_spans: list[TableSpan] = []
        offset = 0
        for shard, span in self._manifest.live_spans():
            pieces.append(self._banks[shard.shard_id][span.lo : span.hi])
            width = span.hi - span.lo
            merged_spans.append(
                TableSpan(
                    name=span.name,
                    num_rows=span.num_rows,
                    columns=span.columns,
                    lo=offset,
                    hi=offset + width,
                )
            )
            offset += width
        if not pieces:
            raise StoreError(f"compact on {self.path}: cannot compact an empty store")
        merged = SketchBank.concat(pieces)

        with self._writer_lock(lock_timeout, op="compact"):
            shard_id = self._manifest.next_shard_id
            filename = shard_filename(shard_id)
            old_files = [shard.filename for shard in self._manifest.shards]
            write_shard(self.path / filename, merged)
            faults.failpoint(FP_COMPACT_SHARD_DURABLE)
            self._manifest.shards = [
                ShardRecord(
                    shard_id=shard_id, filename=filename, tables=tuple(merged_spans)
                )
            ]
            self._manifest.tombstones = set()
            self._manifest.next_shard_id = shard_id + 1
            # The LSH index is rebuilt from the merged bank directly —
            # the served in-memory state is swapped only post-commit.
            stale_index, lsh_snapshot = self._write_compact_index_locked(
                merged, merged_spans
            )
            self._manifest.save(self.path / _MANIFEST_NAME)
            faults.failpoint(FP_COMPACT_MANIFEST_SAVED)

        # Post-commit: swap the in-memory view to the merged shard.
        self._release_buffers()
        self._banks = {shard_id: merged}
        self._buffers = {shard_id: None}
        self._index = self._build_index()
        if lsh_snapshot is not None:
            self._index.attach_lsh(lsh_snapshot)
        for old in old_files:
            if old != filename:
                with contextlib.suppress(OSError):
                    (self.path / old).unlink()
        self._remove_stale_index(stale_index)
        self.generation = store_generation(self.path)
        return {
            "shards_before": shards_before,
            "shards_after": 1,
            "rows_reclaimed": rows_dead,
        }

    # ------------------------------------------------------------------
    # LSH index persistence
    # ------------------------------------------------------------------

    def _desired_banding(self) -> tuple[int, int]:
        """The **store-owned** banding for the persisted index.

        The existing record's split, or the auto-tuned split at the
        store's recall target.  Query sessions may build the in-memory
        index with their own tuning, but persistence never adopts it —
        otherwise a session-specific deep banding would become every
        future reader's default, silently collapsing their recall.
        """
        record = self._manifest.index
        if record is not None:
            return (record.bands, record.rows_per_band)
        return tune(
            self.sketcher.signature_length(),
            self.LSH_TARGET_SIM,
            self.LSH_TARGET_RECALL,
        )

    def _committed_lake_index(self, desired: tuple[int, int]) -> LakeIndex:
        """The in-memory index over committed tables, at ``desired``
        banding (rebuilt if a query path tuned it differently)."""
        lake = self._index.lsh_index(bands=desired[0], rows_per_band=desired[1])
        if (lake.bands, lake.rows_per_band) != desired:
            self._index.drop_lsh()
            lake = self._index.lsh_index(
                bands=desired[0], rows_per_band=desired[1]
            )
        return lake

    def _emit_index_locked(self, lsh: SignatureLSH, tables: int) -> str | None:
        """Write one index generation + repoint the manifest record.

        Must run under the writer lock, before the manifest is saved:
        the index file lands first (a crash leaves an orphan the old
        manifest never references), then the manifest repoints, then
        the caller deletes the stale generation after the commit.
        Returns the superseded filename, if any.
        """
        payload = pack_lsh_index(lsh)
        filename = index_filename(self._manifest.next_index_id)
        faults.failpoint(FP_INDEX_EMIT)
        write_bytes_atomic(self.path / filename, payload)
        old = self._manifest.index
        self._manifest.index = IndexRecord(
            filename=filename,
            bands=lsh.bands,
            rows_per_band=lsh.rows_per_band,
            tables=tables,
        )
        self._manifest.next_index_id += 1
        return old.filename if old is not None else None

    def _write_append_index_locked(
        self, bank: SketchBank, spans: Sequence[TableSpan]
    ) -> str | None:
        """Persist the index for an append batch; no served-state writes.

        Extends a *copy* of the committed-tables index with the new
        spans' indicator rows (digests are row-independent, so the copy
        is byte-identical to a from-scratch build over the post-append
        live-span order — ``SketchIndex`` moves replaced entries to the
        end, exactly where the replacing span lands).  The in-memory
        index picks the same rows up lazily after the commit.
        """
        if not LakeIndex.supports(self.sketcher):
            return None
        desired = self._desired_banding()
        lake = self._committed_lake_index(desired)
        matrix = lake.lsh.digest_matrix()
        # A replacing append tombstones the old span: its digest row is
        # dropped and the replacement lands at the end with the rest of
        # the batch — exactly the post-append live-span order.
        batch_names = {span.name for span in spans}
        keep = np.array(
            [name not in batch_names for name in self._index.table_names()],
            dtype=bool,
        )
        if not keep.all():
            matrix = matrix[keep]
        snapshot = LakeIndex(
            SignatureLSH.from_digests(desired[0], desired[1], matrix)
        )
        snapshot.extend(self.sketcher, bank[[span.lo for span in spans]])
        return self._emit_index_locked(
            snapshot.lsh, int(matrix.shape[0]) + len(spans)
        )

    def _write_compact_index_locked(
        self, merged: SketchBank, merged_spans: Sequence[TableSpan]
    ) -> tuple[str | None, LakeIndex | None]:
        """Rebuild + persist the index over a compacted lake's rows.

        Built from the merged bank directly (not the still-serving
        in-memory index), so the served state stays untouched until the
        manifest commit succeeds.  Returns ``(stale_file, snapshot)``;
        the caller attaches the snapshot to the rebuilt index.
        """
        if not LakeIndex.supports(self.sketcher):
            return None, None
        desired = self._desired_banding()
        indicator_rows = (
            merged[[span.lo for span in merged_spans]] if merged_spans else None
        )
        snapshot = LakeIndex.build(
            self.sketcher,
            indicator_rows,
            bands=desired[0],
            rows_per_band=desired[1],
        )
        return self._emit_index_locked(snapshot.lsh, len(snapshot)), snapshot

    def _drop_index_record(self) -> str | None:
        """Detach the persisted index (``append(index=False)``)."""
        record = self._manifest.index
        self._manifest.index = None
        return record.filename if record is not None else None

    def _remove_stale_index(self, filename: str | None) -> None:
        """Best-effort cleanup of a superseded index generation."""
        if filename is None:
            return
        current = self._manifest.index
        if current is not None and current.filename == filename:
            return
        with contextlib.suppress(OSError):
            (self.path / filename).unlink()

    # ------------------------------------------------------------------
    # accounting / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Catalog and footprint summary (CLI ``stats`` output)."""
        self._check_open()
        live_rows = sum(
            span.hi - span.lo for _, span in self._manifest.live_spans()
        )
        file_bytes = sum(
            (self.path / shard.filename).stat().st_size
            for shard in self._manifest.shards
            if (self.path / shard.filename).is_file()
        )
        record = self._manifest.index
        index_bytes = 0
        if record is not None and (self.path / record.filename).is_file():
            index_bytes = (self.path / record.filename).stat().st_size
            file_bytes += index_bytes
        return {
            "path": str(self.path),
            "generation": self.generation,
            "sketcher": dict(self._manifest.sketcher),
            "read_only": self._read_only,
            "degraded": list(self.degraded),
            "tables": len(self._index),
            "value_columns": len(self._index.value_owners()) if len(self._index) else 0,
            "shards": len(self._manifest.shards),
            "live_rows": live_rows,
            "dead_rows": self._manifest.dead_rows(),
            "tombstones": len(self._manifest.tombstones),
            "storage_words": self._index.storage_words() if len(self._index) else 0.0,
            "file_bytes": file_bytes,
            "lsh_index": (
                {
                    "bands": record.bands,
                    "rows_per_band": record.rows_per_band,
                    "tables": record.tables,
                    "file_bytes": index_bytes,
                }
                if record is not None
                else None
            ),
            # Mapped/loaded bank footprint; with zero-copy open this is
            # the mmapped size, not resident memory.
            "bank_bytes": sum(bank.nbytes() for bank in self._banks.values()),
        }

    def orphaned_files(self) -> list[str]:
        """Shard-like files in the directory the manifest does not own.

        Leftovers of interrupted appends — both unreferenced ``*.rpro``
        files whose manifest commit never happened and stale ``*.tmp``
        files from writes that died mid-stream; safe to delete
        (:meth:`repair` does).  The retained previous-generation
        manifest and the ``quarantine/`` directory are not orphans.
        """
        owned = {shard.filename for shard in self._manifest.shards}
        if self._manifest.index is not None:
            owned.add(self._manifest.index.filename)
        found = []
        for entry in sorted(self.path.iterdir()):
            if entry.is_dir() or entry.name == _MANIFEST_NAME or entry.name in owned:
                continue
            if entry.suffix == SHARD_SUFFIX or entry.name.endswith(".tmp"):
                found.append(entry.name)
        return found

    # ------------------------------------------------------------------
    # recovery (fsck / repair / salvage)
    # ------------------------------------------------------------------

    @classmethod
    def fsck(cls, path: str | Path) -> dict[str, Any]:
        """Verify a store's on-disk integrity without opening it.

        Checks manifest ↔ shard CRCs ↔ index catalog and classifies
        every file as clean / orphan / corrupt / missing.  See
        :func:`repro.store.recovery.fsck`.
        """
        from repro.store.recovery import fsck

        return fsck(path)

    @classmethod
    def repair(cls, path: str | Path) -> dict[str, Any]:
        """Restore a damaged store to a servable, writable state.

        Quarantines corrupt shards, drops their catalog entries,
        rebuilds the LSH index, and removes stale temp files.  See
        :func:`repro.store.recovery.repair`.
        """
        from repro.store.recovery import repair

        return repair(path)

    def close(self) -> None:
        """Release the store (memory maps are dropped; banks derived
        from this store must not be used afterwards)."""
        if self._closed:
            return
        self._closed = True
        self._index = None  # type: ignore[assignment]
        self._banks = {}
        self._release_buffers()

    def _release_buffers(self) -> None:
        for buffer in self._buffers.values():
            if buffer is not None:
                # The map survives until the last referencing array is
                # collected; closing eagerly fails while views exist.
                with contextlib.suppress(BufferError):
                    buffer.close()
        self._buffers = {}

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError(f"store {self.path}: the store is closed")

    def _check_writable(self, op: str) -> None:
        self._check_open()
        if self._read_only:
            raise StoreError(
                f"{op} on {self.path}: store was opened in salvage "
                f"(read-only) mode; run `python -m repro.store repair` "
                f"to make it writable again"
            )

    def __enter__(self) -> "LakeStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        status = "closed" if self._closed else f"tables={len(self._index)}"
        return f"LakeStore({str(self.path)!r}, {status})"


def is_lake_store(path: str | Path) -> bool:
    """True if ``path`` looks like an initialized lake directory.

    A directory whose live manifest is corrupt but whose retained
    previous generation loads still counts — :meth:`LakeStore.open`
    can serve it through the fallback and ``repair`` can fix it.
    """
    manifest_path = Path(path) / _MANIFEST_NAME
    try:
        Manifest.load(manifest_path)
    except ManifestError:
        try:
            Manifest.load(previous_manifest_path(manifest_path))
        except ManifestError:
            return False
    return True
