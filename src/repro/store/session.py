"""``QuerySession`` — the serving front end over an opened lake.

A session is what a request handler holds: it wraps
:class:`~repro.datasearch.search.DatasetSearch` over a
:class:`~repro.store.lake.LakeStore` and adds the serving-side
conveniences the raw engine deliberately lacks:

* query tables are sketched **once per session** — repeated searches
  from the same analyst table (different columns, different ``top_k``)
  reuse the cached :class:`~repro.datasearch.join_estimates.JoinSketch`;
* the engine is cached on the identity of ``store.index`` — appends
  mutate the index in place, so the cached engine keeps seeing new
  tables for free, while a compaction (or any event that rebuilds the
  index object) transparently invalidates it;
* a batch of query tables is served through
  :meth:`~repro.datasearch.search.DatasetSearch.search_many`, which
  traverses the stored banks once per batch instead of once per query;
* results are plain :class:`~repro.datasearch.search.SearchHit` lists,
  identical to what the in-memory engine returns for the same lake —
  the store changes *where sketches live*, never *what they answer*.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro import obs
from repro.datasearch.join_estimates import JoinSketch
from repro.datasearch.search import DatasetSearch, SearchHit
from repro.datasearch.table import Table
from repro.store.lake import LakeStore

__all__ = ["QuerySession"]


class QuerySession:
    """Stateful query front end over a :class:`LakeStore`."""

    def __init__(
        self,
        store: LakeStore,
        min_containment: float = 0.05,
        candidates: str = "scan",
    ) -> None:
        """``candidates`` picks the session's default joinability
        candidate generator: ``"scan"`` (exact full-lake pass) or
        ``"lsh"`` (sublinear banded-signature shortlist, re-checked
        exactly — hits are a subset of the scan path).  Every query
        method also takes a per-call override."""
        self.store = store
        self.min_containment = min_containment
        self.candidates = candidates
        self._query_cache: dict[str, JoinSketch] = {}
        self._engine: DatasetSearch | None = None

    @property
    def engine(self) -> DatasetSearch:
        """A search engine over the store's *current* index.

        Cached on the index object's identity: in-place index growth
        (appends) keeps the cached engine valid, while a store event
        that rebuilds the index — compaction, reopening — swaps the
        object and forces a fresh engine on the next access.  Mutating
        ``session.min_containment`` or ``session.candidates`` also
        invalidates it.
        """
        index = self.store.index
        engine = self._engine
        if (
            engine is None
            or engine.index is not index
            or engine.min_containment != self.min_containment
            or engine.candidates != self.candidates
        ):
            engine = DatasetSearch(
                index, self.min_containment, candidates=self.candidates
            )
            self._engine = engine
        return engine

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def sketch(self, table: Table) -> JoinSketch:
        """Sketch a query table, cached by table name for the session.

        The cache assumes a name identifies one table for the session's
        lifetime; call :meth:`clear_cache` if a query table's contents
        change.
        """
        cached = self._query_cache.get(table.name)
        if cached is None:
            obs.count("session.sketch_cache.misses")
            with obs.trace_span("session.sketch_query", table=table.name):
                cached = self.engine.sketch_query(table)
            self._query_cache[table.name] = cached
        else:
            obs.count("session.sketch_cache.hits")
        return cached

    def joinable(
        self, table: Table, candidates: str | None = None
    ) -> list[tuple[str, float, float]]:
        """Stored tables joinable with ``table`` (name, size, containment)."""
        return self.engine.joinable(self.sketch(table), candidates=candidates)

    def search(
        self,
        table: Table,
        query_column: str,
        top_k: int = 10,
        by: str = "correlation",
        candidates: str | None = None,
    ) -> list[SearchHit]:
        """Rank stored columns against ``table.query_column``."""
        with obs.trace_span("session.search", table=table.name, column=query_column):
            return self.engine.search(
                self.sketch(table),
                query_column,
                top_k=top_k,
                by=by,
                candidates=candidates,
            )

    def search_many(
        self,
        tables: Sequence[Table],
        query_columns: str | Sequence[str],
        top_k: int = 10,
        by: str = "correlation",
        candidates: str | None = None,
    ) -> list[list[SearchHit]]:
        """Rank stored columns against a batch of query tables.

        One hit list per table, identical to calling :meth:`search` per
        table, but the stored banks are traversed once for the whole
        batch (``estimate_cross``) instead of once per query.
        """
        with obs.trace_span("session.search_many", queries=len(tables)):
            return self.engine.search_many(
                [self.sketch(table) for table in tables],
                query_columns,
                top_k=top_k,
                by=by,
                candidates=candidates,
            )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def clear_cache(self) -> None:
        self._query_cache.clear()

    def stats(self) -> dict[str, Any]:
        """The unified serving view: store catalog + session caches.

        On top of :meth:`LakeStore.stats`, folds in everything a
        serving operator previously had to dig out of private state:

        * ``session`` — the query-sketch cache occupancy and the
          engine-cache identity/invalidation state (``engine_cached``
          says a :class:`DatasetSearch` is held; ``engine_current``
          says the next query will reuse it rather than rebuild —
          false after a compaction swapped ``store.index`` or after
          ``min_containment``/``candidates`` changed);
        * ``lsh_memory`` — the in-memory banded candidate index state
          (``None`` until a query builds it), distinct from the
          persisted ``lsh_index`` record;
        * ``wmh_cache`` — the live WMH :class:`MinimaCache` counters
          (hits/misses/evictions/bytes), previously invisible outside
          ``core/wmh.py``.
        """
        stats = self.store.stats()
        stats["cached_query_sketches"] = len(self._query_cache)
        engine = self._engine
        index = self.store.index
        stats["session"] = {
            "min_containment": self.min_containment,
            "candidates": self.candidates,
            "cached_query_sketches": len(self._query_cache),
            "engine_cached": engine is not None,
            "engine_current": (
                engine is not None
                and engine.index is index
                and engine.min_containment == self.min_containment
                and engine.candidates == self.candidates
            ),
        }
        stats["lsh_memory"] = index.lsh_state()
        live_cache = getattr(self.store.sketcher, "_live_cache", None)
        cache = live_cache() if callable(live_cache) else None
        stats["wmh_cache"] = cache.stats() if cache is not None else None
        return stats
