"""``QuerySession`` — the serving front end over an opened lake.

A session is what a request handler holds: it wraps
:class:`~repro.datasearch.search.DatasetSearch` over a
:class:`~repro.store.lake.LakeStore` and adds the serving-side
conveniences the raw engine deliberately lacks:

* query tables are sketched **once per session** — repeated searches
  from the same analyst table (different columns, different ``top_k``)
  reuse the cached :class:`~repro.datasearch.join_estimates.JoinSketch`;
* the engine is re-derived from ``store.index`` on every call, so a
  session transparently sees tables appended or compacted after it was
  created;
* results are plain :class:`~repro.datasearch.search.SearchHit` lists,
  identical to what the in-memory engine returns for the same lake —
  the store changes *where sketches live*, never *what they answer*.
"""

from __future__ import annotations

from typing import Any

from repro.datasearch.join_estimates import JoinSketch
from repro.datasearch.search import DatasetSearch, SearchHit
from repro.datasearch.table import Table
from repro.store.lake import LakeStore

__all__ = ["QuerySession"]


class QuerySession:
    """Stateful query front end over a :class:`LakeStore`."""

    def __init__(self, store: LakeStore, min_containment: float = 0.05) -> None:
        self.store = store
        self.min_containment = min_containment
        self._query_cache: dict[str, JoinSketch] = {}

    @property
    def engine(self) -> DatasetSearch:
        """A search engine over the store's *current* index."""
        return DatasetSearch(self.store.index, self.min_containment)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def sketch(self, table: Table) -> JoinSketch:
        """Sketch a query table, cached by table name for the session.

        The cache assumes a name identifies one table for the session's
        lifetime; call :meth:`clear_cache` if a query table's contents
        change.
        """
        cached = self._query_cache.get(table.name)
        if cached is None:
            cached = self.engine.sketch_query(table)
            self._query_cache[table.name] = cached
        return cached

    def joinable(self, table: Table) -> list[tuple[str, float, float]]:
        """Stored tables joinable with ``table`` (name, size, containment)."""
        return self.engine.joinable(self.sketch(table))

    def search(
        self,
        table: Table,
        query_column: str,
        top_k: int = 10,
        by: str = "correlation",
    ) -> list[SearchHit]:
        """Rank stored columns against ``table.query_column``."""
        return self.engine.search(self.sketch(table), query_column, top_k=top_k, by=by)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def clear_cache(self) -> None:
        self._query_cache.clear()

    def stats(self) -> dict[str, Any]:
        """Store stats plus session-side cache occupancy."""
        stats = self.store.stats()
        stats["cached_query_sketches"] = len(self._query_cache)
        return stats
