"""``QuerySession`` — the serving front end over an opened lake.

A session is what a request handler holds: it wraps
:class:`~repro.datasearch.search.DatasetSearch` over a
:class:`~repro.store.lake.LakeStore` and adds the serving-side
conveniences the raw engine deliberately lacks:

* query tables are sketched **once per session** — repeated searches
  from the same analyst table (different columns, different ``top_k``)
  reuse the cached :class:`~repro.datasearch.join_estimates.JoinSketch`;
* the engine is cached on the identity of ``store.index`` — appends
  mutate the index in place, so the cached engine keeps seeing new
  tables for free, while a compaction (or any event that rebuilds the
  index object) transparently invalidates it;
* a batch of query tables is served through
  :meth:`~repro.datasearch.search.DatasetSearch.search_many`, which
  traverses the stored banks once per batch instead of once per query;
* results are plain :class:`~repro.datasearch.search.SearchHit` lists,
  identical to what the in-memory engine returns for the same lake —
  the store changes *where sketches live*, never *what they answer*.

Sessions are **thread-safe**: the query-sketch cache and the lazy
engine build are guarded by one lock, so concurrent readers (the
``repro.serve`` request threads) never race a cache mutation against
``stats()`` iteration or build the engine twice.  The search itself
runs outside the lock — only the tiny bookkeeping sections serialize.
"""

from __future__ import annotations

import threading
from typing import Any, Sequence

from repro import obs
from repro.datasearch.join_estimates import JoinSketch
from repro.datasearch.search import DatasetSearch, SearchHit
from repro.datasearch.table import Table
from repro.store.lake import LakeStore

__all__ = ["QuerySession"]


class QuerySession:
    """Stateful query front end over a :class:`LakeStore`."""

    def __init__(
        self,
        store: LakeStore,
        min_containment: float = 0.05,
        candidates: str = "scan",
        max_cached_queries: int | None = None,
    ) -> None:
        """``candidates`` picks the session's default joinability
        candidate generator: ``"scan"`` (exact full-lake pass) or
        ``"lsh"`` (sublinear banded-signature shortlist, re-checked
        exactly — hits are a subset of the scan path).  Every query
        method also takes a per-call override.  ``max_cached_queries``
        bounds the query-sketch cache (oldest entry evicted first) —
        long-lived servers sketching arbitrary client tables set this;
        ``None`` keeps the historical unbounded cache."""
        self.store = store
        self.min_containment = min_containment
        self.candidates = candidates
        self.max_cached_queries = max_cached_queries
        self._query_cache: dict[str, JoinSketch] = {}
        self._engine: DatasetSearch | None = None
        self._lock = threading.RLock()

    def _engine_current(self, engine: DatasetSearch | None) -> bool:
        return (
            engine is not None
            and engine.index is self.store.index
            and engine.min_containment == self.min_containment
            and engine.candidates == self.candidates
        )

    @property
    def engine(self) -> DatasetSearch:
        """A search engine over the store's *current* index.

        Cached on the index object's identity: in-place index growth
        (appends) keeps the cached engine valid, while a store event
        that rebuilds the index — compaction, reopening — swaps the
        object and forces a fresh engine on the next access.  Mutating
        ``session.min_containment`` or ``session.candidates`` also
        invalidates it.  Concurrent readers build the engine exactly
        once: the first thread constructs it under the lock, the rest
        re-check and adopt it.
        """
        engine = self._engine
        if self._engine_current(engine):
            return engine
        with self._lock:
            engine = self._engine
            if not self._engine_current(engine):
                engine = DatasetSearch(
                    self.store.index, self.min_containment, candidates=self.candidates
                )
                self._engine = engine
            return engine

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def sketch(self, table: Table) -> JoinSketch:
        """Sketch a query table, cached by table name for the session.

        The cache assumes a name identifies one table for the session's
        lifetime; call :meth:`clear_cache` if a query table's contents
        change.  Two threads missing on the same name may both sketch
        it (sketching is deterministic, so either result is THE
        result); the first insert wins and the duplicate is dropped.
        """
        with self._lock:
            cached = self._query_cache.get(table.name)
        if cached is not None:
            obs.count("session.sketch_cache.hits")
            return cached
        obs.count("session.sketch_cache.misses")
        with obs.trace_span("session.sketch_query", table=table.name):
            built = self.engine.sketch_query(table)
        with self._lock:
            cached = self._query_cache.setdefault(table.name, built)
            if self.max_cached_queries is not None:
                while len(self._query_cache) > self.max_cached_queries:
                    oldest = next(iter(self._query_cache))
                    del self._query_cache[oldest]
                    obs.count("session.sketch_cache.evictions")
        return cached

    def joinable(
        self, table: Table, candidates: str | None = None
    ) -> list[tuple[str, float, float]]:
        """Stored tables joinable with ``table`` (name, size, containment)."""
        return self.engine.joinable(self.sketch(table), candidates=candidates)

    def search(
        self,
        table: Table,
        query_column: str,
        top_k: int = 10,
        by: str = "correlation",
        candidates: str | None = None,
    ) -> list[SearchHit]:
        """Rank stored columns against ``table.query_column``."""
        with obs.trace_span("session.search", table=table.name, column=query_column):
            return self.engine.search(
                self.sketch(table),
                query_column,
                top_k=top_k,
                by=by,
                candidates=candidates,
            )

    def search_many(
        self,
        tables: Sequence[Table],
        query_columns: str | Sequence[str],
        top_k: int = 10,
        by: str = "correlation",
        candidates: str | None = None,
    ) -> list[list[SearchHit]]:
        """Rank stored columns against a batch of query tables.

        One hit list per table, identical to calling :meth:`search` per
        table, but the stored banks are traversed once for the whole
        batch (``estimate_cross``) instead of once per query.
        """
        with obs.trace_span("session.search_many", queries=len(tables)):
            return self.engine.search_many(
                [self.sketch(table) for table in tables],
                query_columns,
                top_k=top_k,
                by=by,
                candidates=candidates,
            )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def clear_cache(self) -> None:
        with self._lock:
            self._query_cache.clear()

    def warnings(self) -> list[str]:
        """Operator-visible degradation notes for this session's store.

        Empty for a healthy store.  Carries the ``store.degraded``
        conditions the open survived (manifest fallback, salvaged
        shards, dropped LSH index) plus a ``query.route.scan_fallback``
        note when the persisted candidate index was unusable — callers
        of the CLI ``--json`` output and the ``repro.serve`` responses
        read these to detect salvage or index-fallback serving without
        scraping obs counters.
        """
        notes = [f"store.degraded: {note}" for note in self.store.degraded]
        if any("lsh_index dropped" in note for note in self.store.degraded):
            notes.append(
                "query.route.scan_fallback: persisted LSH index unusable; "
                "candidates served by scan or an in-memory rebuild"
            )
        return notes

    def stats(self) -> dict[str, Any]:
        """The unified serving view: store catalog + session caches.

        On top of :meth:`LakeStore.stats`, folds in everything a
        serving operator previously had to dig out of private state:

        * ``session`` — the query-sketch cache occupancy and the
          engine-cache identity/invalidation state (``engine_cached``
          says a :class:`DatasetSearch` is held; ``engine_current``
          says the next query will reuse it rather than rebuild —
          false after a compaction swapped ``store.index`` or after
          ``min_containment``/``candidates`` changed);
        * ``lsh_memory`` — the in-memory banded candidate index state
          (``None`` until a query builds it), distinct from the
          persisted ``lsh_index`` record;
        * ``wmh_cache`` — the live WMH :class:`MinimaCache` counters
          (hits/misses/evictions/bytes), previously invisible outside
          ``core/wmh.py``.
        """
        stats = self.store.stats()
        index = self.store.index
        with self._lock:
            cached_sketches = len(self._query_cache)
            engine = self._engine
        stats["cached_query_sketches"] = cached_sketches
        stats["session"] = {
            "min_containment": self.min_containment,
            "candidates": self.candidates,
            "cached_query_sketches": cached_sketches,
            "max_cached_queries": self.max_cached_queries,
            "engine_cached": engine is not None,
            "engine_current": (
                engine is not None
                and engine.index is index
                and engine.min_containment == self.min_containment
                and engine.candidates == self.candidates
            ),
        }
        stats["lsh_memory"] = index.lsh_state()
        live_cache = getattr(self.store.sketcher, "_live_cache", None)
        cache = live_cache() if callable(live_cache) else None
        stats["wmh_cache"] = cache.stats() if cache is not None else None
        return stats
