"""Entry point for ``python -m repro.store``."""

from repro.store.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
