"""Command-line front end: ``python -m repro.store <command>``.

Commands
--------
``ingest STORE CSV...``
    Create the store if needed (``--method``/``--storage``/``--seed``
    pick the sketcher for a *new* store; an existing store keeps its
    stored configuration) and append the CSV tables as one shard.
``query STORE CSV... --column COL``
    Sketch the CSV(s) as the analyst's query table(s) and print the
    ranked joinable-and-correlated columns of the lake.  Several CSVs
    are served as **one batch** (``QuerySession.search_many``): the
    stored banks are traversed once for the whole batch, and results
    are identical to querying the files one at a time.  ``--json``
    always emits ``[{"query", "column", "hits": [...]}, ...]`` — one
    entry per CSV, the same schema for one file or many.  ``--trace
    out.jsonl`` additionally writes the span trace of the run (one
    JSON line per span; see ``repro.obs.tracing``) — rankings are
    byte-identical with tracing on or off.
``stats STORE``
    Print the catalog/footprint summary as JSON; ``--telemetry`` folds
    in the live metrics-registry snapshot (``repro.obs``) under a
    ``"telemetry"`` key.
``compact STORE``
    Merge shards and reclaim tombstoned rows.
``fsck STORE``
    Verify manifest ↔ shard CRCs ↔ index catalog without mutating
    anything; print the classification report as JSON.  Exit status 1
    when problems were found.
``repair STORE``
    Restore a damaged store: quarantine corrupt shards, drop their
    catalog entries (resurrecting tables from surviving older spans
    where possible), rebuild the LSH index, and clean stale temp
    files.  Prints the repair report as JSON.

CSV convention: the key column (``--key-column``, default: the first
header field) holds join keys; every other column must be numeric.
Duplicate keys are aggregated with ``--aggregate`` (default ``sum``),
the paper's many-to-many -> one-to-one reduction.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import obs
from repro.datasearch.table import AGGREGATORS
from repro.experiments.runner import method_registry
from repro.store.csvio import load_csv_table
from repro.store.lake import LakeStore, StoreError, is_lake_store
from repro.store.session import QuerySession

__all__ = ["main", "load_csv_table"]


def _open_or_create(args: argparse.Namespace) -> LakeStore:
    if is_lake_store(args.store):
        return LakeStore.open(args.store)
    registry = method_registry()
    if args.method not in registry:
        raise SystemExit(
            f"unknown method {args.method!r}; choose from {sorted(registry)}"
        )
    sketcher = registry[args.method].build(args.storage, args.seed)
    return LakeStore.create(args.store, sketcher)


def _cmd_ingest(args: argparse.Namespace) -> int:
    # CSVs stream through the chunked ingest pipeline: only headers are
    # read up front, bodies parse inside the chunk stages, so the
    # command's memory footprint is set by --chunk-bytes, not by how
    # many files are listed.
    with _open_or_create(args) as store:
        shard_id, report = store.ingest_csv(
            args.csv,
            key_column=args.key_column,
            aggregate=args.aggregate,
            workers=args.workers,
            index=args.index,
            chunk_bytes=args.chunk_bytes,
        )
        stats = store.stats()
    summary = (
        f"ingested {len(args.csv)} table(s) into shard {shard_id} of "
        f"{args.store} ({stats['tables']} live tables, "
        f"{stats['file_bytes']} bytes on disk)"
    )
    if report is not None:
        summary += (
            f"\n  {report.chunks} chunk(s), {report.workers} worker(s), "
            f"{report.tables_per_s():.1f} tables/s, "
            f"peak chunk {report.peak_chunk_bytes} bytes"
        )
        # Per-stage accounting: each stage's summed seconds with the
        # unit of work it processed (overlapping stages under pool
        # workers, so the seconds can exceed wall time).
        stage_units = {
            "parse": f"{report.input_rows} rows",
            "vectorize": f"{report.nnz} entries",
            "sketch": f"{report.bank_rows} bank rows",
            "write": f"{report.bank_bytes} bytes",
        }
        for stage, seconds in report.stage_seconds.items():
            units = stage_units.get(stage, "")
            summary += f"\n  {stage:>9s}: {seconds:8.3f}s  {units}"
    print(summary)
    return 0


def _hit_payload(hit) -> dict:
    return {
        "table": hit.table_name,
        "column": hit.column,
        "score": hit.score,
        "correlation": hit.correlation,
        "join_size": hit.join_size,
        "containment": hit.containment,
    }


def _print_hits(store: str, table_name: str, column: str, hits) -> None:
    if not hits:
        print("no joinable tables cleared the containment threshold")
        return
    print(f"top {len(hits)} of {store} for {table_name}.{column}:")
    for rank, hit in enumerate(hits, start=1):
        print(
            f"  {rank:2d}. {hit.table_name}.{hit.column}  "
            f"score={hit.score:.4f}  corr={hit.correlation:+.4f}  "
            f"join~{hit.join_size:.0f}  containment={hit.containment:.2f}"
        )


def _cmd_query(args: argparse.Namespace) -> int:
    if args.trace:
        with obs.tracing(args.trace):
            return _run_query(args)
    return _run_query(args)


def _run_query(args: argparse.Namespace) -> int:
    tables = [
        load_csv_table(path, key_column=args.key_column, aggregate=args.aggregate)
        for path in args.csv
    ]
    batched = len(tables) > 1
    try:
        store = LakeStore.open(args.store)
    except StoreError:
        # Serve what survives rather than refusing outright: a corrupt
        # shard degrades the query to the salvaged survivors (flagged
        # in the warnings field); a store that cannot even salvage
        # re-raises from the salvage open below.
        store = LakeStore.open(args.store, salvage=True)
    with store:
        session = QuerySession(
            store,
            min_containment=args.min_containment,
            candidates=args.candidates,
        )
        if batched:
            # One search_many call: the whole batch shares each bank
            # traversal instead of paying it once per CSV.
            all_hits = session.search_many(
                tables, args.column, top_k=args.top_k, by=args.by
            )
        else:
            all_hits = [
                session.search(tables[0], args.column, top_k=args.top_k, by=args.by)
            ]
        # Degraded-mode signals (salvage open, manifest fallback,
        # dropped LSH index → scan fallback) ride along with every
        # result, so callers detect degraded serving from the output
        # itself instead of scraping obs counters.
        warnings = session.warnings()
    if args.json:
        # One stable schema regardless of how many CSVs were passed, so
        # scripts globbing query files never see the shape flip.
        payload = [
            {
                "query": table.name,
                "column": args.column,
                "warnings": warnings,
                "hits": [_hit_payload(hit) for hit in hits],
            }
            for table, hits in zip(tables, all_hits)
        ]
        print(json.dumps(payload, indent=2))
        return 0
    for note in warnings:
        print(f"warning: {note}", file=sys.stderr)
    for i, (table, hits) in enumerate(zip(tables, all_hits)):
        if i:
            print()
        _print_hits(args.store, table.name, args.column, hits)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with LakeStore.open(args.store) as store:
        stats = store.stats()
        if args.telemetry:
            stats["telemetry"] = obs.runtime_snapshot()
        print(json.dumps(stats, indent=2))
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    with LakeStore.open(args.store) as store:
        result = store.compact()
        file_bytes = store.stats()["file_bytes"]
    print(
        f"compacted {result['shards_before']} shard(s) -> "
        f"{result['shards_after']}, reclaimed {result['rows_reclaimed']} "
        f"rows ({file_bytes} bytes on disk)"
    )
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    report = LakeStore.fsck(args.store)
    print(json.dumps(report, indent=2))
    return 0 if report["clean"] else 1


def _cmd_repair(args: argparse.Namespace) -> int:
    report = LakeStore.repair(args.store)
    print(json.dumps(report, indent=2))
    return 0


def _add_csv_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--key-column",
        default=None,
        help="join-key column (default: first CSV header field)",
    )
    parser.add_argument(
        "--aggregate",
        default="sum",
        choices=sorted(AGGREGATORS),
        help="duplicate-key reduction (default: sum)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Persistent sketch lake store: ingest once, query forever.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ingest = commands.add_parser("ingest", help="sketch CSV tables into the lake")
    ingest.add_argument("store", help="lake directory (created if absent)")
    ingest.add_argument("csv", nargs="+", help="CSV tables to ingest")
    ingest.add_argument(
        "--method",
        default="WMH",
        help="sketching method for a NEW store (default: WMH)",
    )
    ingest.add_argument(
        "--storage",
        type=int,
        default=300,
        help="per-sketch storage budget in 64-bit words (default: 300)",
    )
    ingest.add_argument("--seed", type=int, default=0, help="sketching seed")
    ingest.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sketch the batch across this many processes "
        "(results are bit-identical for any worker count)",
    )
    ingest.add_argument(
        "--chunk-bytes",
        type=int,
        default=None,
        help="per-chunk ingest byte budget (default: "
        "$REPRO_INGEST_CHUNK_BYTES or 64 MiB); bounds peak memory, "
        "never changes the stored bytes",
    )
    ingest.add_argument(
        "--no-index",
        dest="index",
        action="store_false",
        help="skip maintaining the persisted LSH candidate index "
        "(queries then fall back to full scans or an in-memory rebuild)",
    )
    _add_csv_options(ingest)
    ingest.set_defaults(handler=_cmd_ingest)

    query = commands.add_parser("query", help="rank the lake against query CSVs")
    query.add_argument("store", help="lake directory")
    query.add_argument(
        "csv",
        nargs="+",
        help="query table CSV(s); several files are served as one "
        "batched search_many call",
    )
    query.add_argument("--column", required=True, help="query value column")
    query.add_argument("--top-k", type=int, default=10)
    query.add_argument(
        "--by", default="correlation", choices=("correlation", "inner_product")
    )
    query.add_argument("--min-containment", type=float, default=0.05)
    query.add_argument(
        "--candidates",
        default="scan",
        choices=("scan", "lsh"),
        help="joinability candidate generator: exact full scan, or the "
        "sublinear LSH shortlist re-checked exactly (default: scan)",
    )
    query.add_argument("--json", action="store_true", help="machine-readable output")
    query.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write the span trace of this run as JSONL to PATH "
        "(rankings are identical with tracing on or off)",
    )
    _add_csv_options(query)
    query.set_defaults(handler=_cmd_query)

    stats = commands.add_parser("stats", help="print catalog + footprint JSON")
    stats.add_argument("store", help="lake directory")
    stats.add_argument(
        "--telemetry",
        action="store_true",
        help="include the live metrics-registry snapshot",
    )
    stats.set_defaults(handler=_cmd_stats)

    compact = commands.add_parser("compact", help="merge shards, drop tombstones")
    compact.add_argument("store", help="lake directory")
    compact.set_defaults(handler=_cmd_compact)

    fsck = commands.add_parser(
        "fsck", help="verify on-disk integrity (exit 1 on problems)"
    )
    fsck.add_argument("store", help="lake directory")
    fsck.set_defaults(handler=_cmd_fsck)

    repair = commands.add_parser(
        "repair", help="quarantine corruption and restore a servable store"
    )
    repair.add_argument("store", help="lake directory")
    repair.set_defaults(handler=_cmd_repair)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        return 0
    except (StoreError, ValueError, KeyError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
