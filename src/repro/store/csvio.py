"""CSV ingestion sources: parse lazily, plan from the header.

:func:`load_csv_table` is the eager reader (one CSV → one
:class:`~repro.datasearch.table.Table`).  :func:`csv_source` wraps the
same reader as a :class:`~repro.parallel.streaming.SourceTable`: only
the **header row** is read up front (it fixes the table's name,
value columns, and byte estimate — everything the streaming planner
needs), and the body is parsed inside whichever chunk stage the file
lands in.  Ingesting a thousand CSVs therefore never holds a thousand
parsed tables; at most one chunk's worth of files is in memory.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

from repro.datasearch.table import Table
from repro.parallel.streaming import SourceTable

__all__ = ["csv_source", "load_csv_table", "read_csv_header"]

#: Bytes-per-CSV-byte estimate for a parsed chunk's footprint.  Text
#: cells expand to float64 triples (indicator/value/square rows) of
#: roughly comparable size; 3x errs toward smaller chunks, which only
#: costs a little per-chunk overhead, never correctness.
_CSV_EXPANSION = 3


def load_csv_table(
    path: str | Path,
    key_column: str | None = None,
    aggregate: str = "sum",
    name: str | None = None,
) -> Table:
    """Read one CSV file into a :class:`Table`.

    The table name defaults to the file stem; the key column to the
    first header field.  All non-key columns are parsed as floats.
    """
    path = Path(path)
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if not reader.fieldnames:
            raise ValueError(f"{path}: empty CSV (no header row)")
        fields = list(reader.fieldnames)
        key = key_column if key_column is not None else fields[0]
        if key not in fields:
            raise ValueError(
                f"{path}: key column {key!r} not in header {fields}"
            )
        value_fields = [field for field in fields if field != key]
        keys: list[str] = []
        columns: dict[str, list[float]] = {field: [] for field in value_fields}
        for line, row in enumerate(reader, start=2):
            keys.append(row[key])
            for field in value_fields:
                raw = (row[field] or "").strip()
                try:
                    columns[field].append(float(raw) if raw else 0.0)
                except ValueError as exc:
                    raise ValueError(
                        f"{path}:{line}: column {field!r} is not numeric "
                        f"(got {row[field]!r})"
                    ) from exc
    return Table.aggregated(
        name=name if name is not None else path.stem,
        keys=keys,
        columns=columns,
        how=aggregate,
    )


def read_csv_header(path: str | Path) -> list[str]:
    """The header fields of ``path`` (only the first row is read)."""
    with open(path, newline="", encoding="utf-8") as handle:
        fields = next(csv.reader(handle), None)
    if not fields:
        raise ValueError(f"{path}: empty CSV (no header row)")
    return fields


@dataclass(frozen=True)
class _CSVLoader:
    """Picklable deferred parse of one CSV file."""

    path: str
    key_column: str | None
    aggregate: str
    name: str

    def __call__(self) -> Table:
        return load_csv_table(
            self.path,
            key_column=self.key_column,
            aggregate=self.aggregate,
            name=self.name,
        )


def csv_source(
    path: str | Path,
    key_column: str | None = None,
    aggregate: str = "sum",
    name: str | None = None,
) -> SourceTable:
    """A lazy :class:`SourceTable` over one CSV file.

    Reads only the header: the value columns (and hence the bank-row
    count) are fixed by it, and the byte estimate comes from the file
    size.  The body parse happens in the chunk stage via the returned
    source's loader.
    """
    path = Path(path)
    fields = read_csv_header(path)
    key = key_column if key_column is not None else fields[0]
    if key not in fields:
        raise ValueError(f"{path}: key column {key!r} not in header {fields}")
    table_name = name if name is not None else path.stem
    return SourceTable(
        name=table_name,
        columns=tuple(field for field in fields if field != key),
        est_bytes=int(path.stat().st_size) * _CSV_EXPANSION + 4096,
        loader=_CSVLoader(
            path=str(path),
            key_column=key_column,
            aggregate=aggregate,
            name=table_name,
        ),
    )
