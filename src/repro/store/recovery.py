"""Store recovery: ``fsck`` (diagnose) and ``repair`` (restore).

A lake directory can degrade in exactly the ways its commit protocol
leaves open: orphaned files from interrupted appends, a torn or
bit-rotted manifest (disk corruption — the rename is atomic, so a
crash alone cannot tear it), shard files whose CRC no longer matches,
and an LSH index that disagrees with the catalog.  ``fsck`` walks the
full manifest ↔ shard ↔ index graph and classifies every file without
mutating anything; ``repair`` takes the writer lock and restores the
store to a servable, writable state:

* a corrupt live manifest is replaced by the retained previous
  generation;
* corrupt or missing shards are **quarantined** (moved into
  ``quarantine/``, never deleted — the bytes may still matter for
  forensics), their catalog entries dropped, and any table they held
  is resurrected from the latest surviving tombstoned span where one
  exists;
* the persisted LSH index is rebuilt from the surviving banks whenever
  it cannot be verified against the repaired catalog;
* unreferenced ``*.rpro`` files move to quarantine and stale ``*.tmp``
  files are deleted.

Both entry points are also exposed as ``python -m repro.store
fsck|repair`` and as :meth:`LakeStore.fsck` / :meth:`LakeStore.repair`.
Every action is counted under ``store.recovery.*``.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import Any

try:  # advisory inter-process write locking (POSIX only)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro import obs
from repro.core.base import SketchMismatchError, Sketcher
from repro.datasearch.lshindex import LakeIndex
from repro.io.serialize import (
    SerializationError,
    pack_lsh_index,
    unpack_lsh_index,
)
from repro.mips.lsh import tune
from repro.core.bank import SketchBank
from repro.store.config import build_sketcher
from repro.store.manifest import (
    IndexRecord,
    Manifest,
    ManifestError,
    previous_manifest_path,
)
from repro.store.shard import (
    SHARD_SUFFIX,
    index_filename,
    read_shard,
    write_bytes_atomic,
)

__all__ = ["fsck", "repair"]

# Late import targets live in repro.store.lake, which imports this
# module lazily from LakeStore.fsck/repair — importing lake at call
# time (not module top) keeps the package import graph acyclic no
# matter which module loads first.


def _lake():
    from repro.store import lake

    return lake


def _load_any_manifest(path: Path) -> tuple[Manifest, bool]:
    """The live manifest, or the previous generation (restored flag)."""
    manifest_path = path / _lake()._MANIFEST_NAME
    try:
        return Manifest.load(manifest_path), False
    except ManifestError as primary:
        prev = previous_manifest_path(manifest_path)
        if not prev.is_file():
            raise
        try:
            return Manifest.load(prev), True
        except ManifestError:
            raise primary from None


def _verify_shard(
    shard_path: Path, sketcher: Sketcher, zero_copy: bool = False
) -> SketchBank:
    """Read one shard fully and check CRC + sketcher compatibility.

    Raises :class:`StoreError` (missing), :class:`SerializationError`
    (torn/corrupt payload), or :class:`SketchMismatchError` (bank does
    not belong to this sketcher).
    """
    if not shard_path.is_file():
        raise _lake().StoreError(f"missing shard {shard_path.name}")
    bank, _ = read_shard(shard_path, zero_copy=zero_copy)
    sketcher._check_bank(bank)
    return bank


def _index_problem(path: Path, manifest: Manifest) -> str | None:
    """Why the recorded LSH index cannot be trusted, or ``None``.

    Mirrors the open-time validation of ``LakeStore._load_lsh_index``;
    a manifest without an index section is fine (older stores rebuild
    lazily).
    """
    record = manifest.index
    if record is None:
        return None
    index_path = path / record.filename
    if not index_path.is_file():
        return f"missing LSH index {record.filename}"
    try:
        lsh = unpack_lsh_index(index_path.read_bytes())
    except SerializationError as exc:
        return f"corrupt LSH index {record.filename}: {exc}"
    live_count = sum(1 for _ in manifest.live_spans())
    if (
        lsh.bands != record.bands
        or lsh.rows_per_band != record.rows_per_band
        or len(lsh) != record.tables
        or record.tables != live_count
    ):
        return (
            f"LSH index {record.filename} does not match the manifest "
            f"catalog ({len(lsh)} indexed rows for {live_count} live tables)"
        )
    return None


def _scan_orphans(path: Path, manifest: Manifest) -> list[str]:
    """Shard-like files the manifest does not own (sorted names)."""
    lake = _lake()
    owned = {shard.filename for shard in manifest.shards}
    if manifest.index is not None:
        owned.add(manifest.index.filename)
    found = []
    for entry in sorted(path.iterdir()):
        if entry.is_dir() or entry.name == lake._MANIFEST_NAME or entry.name in owned:
            continue
        if entry.suffix == SHARD_SUFFIX or entry.name.endswith(".tmp"):
            found.append(entry.name)
    return found


def fsck(path: str | Path) -> dict[str, Any]:
    """Verify a store's on-disk integrity; classify, never mutate.

    Returns a report::

        {
          "path": ...,
          "clean": bool,          # nothing below found a problem
          "manifest": "ok" | "recovered-previous" | "unreadable: ...",
          "shards": {filename: "ok" | "missing" | "corrupt: ..."},
          "index": "ok" | "absent" | "<problem>",
          "orphans": [filenames],
          "problems": [human-readable strings],
        }

    Shard checks read every byte (CRC over the full payload) — this is
    O(store size) by design.  Raises :class:`StoreError` only when
    ``path`` is not a store directory at all.
    """
    lake = _lake()
    path = Path(path)
    if not path.is_dir():
        raise lake.StoreError(f"fsck {path}: not a directory")
    obs.count("store.recovery.fsck")
    report: dict[str, Any] = {
        "path": str(path),
        "clean": True,
        "manifest": "ok",
        "shards": {},
        "index": "absent",
        "orphans": [],
        "problems": [],
    }

    def problem(text: str) -> None:
        report["clean"] = False
        report["problems"].append(text)

    try:
        manifest, restored = _load_any_manifest(path)
    except ManifestError as exc:
        report["manifest"] = f"unreadable: {exc}"
        problem(f"manifest: {exc}")
        return report
    if restored:
        report["manifest"] = "recovered-previous"
        problem("manifest: live generation unreadable; previous loads")

    try:
        sketcher = build_sketcher(manifest.sketcher)
    except Exception as exc:  # config records are open input; classify
        problem(f"sketcher config: {exc}")
        return report

    for shard in manifest.shards:
        shard_path = path / shard.filename
        try:
            _verify_shard(shard_path, sketcher)
        except lake.StoreError:
            report["shards"][shard.filename] = "missing"
            problem(f"shard {shard.filename}: missing")
        except (SerializationError, SketchMismatchError) as exc:
            report["shards"][shard.filename] = f"corrupt: {exc}"
            problem(f"shard {shard.filename}: corrupt ({exc})")
        else:
            report["shards"][shard.filename] = "ok"

    if manifest.index is not None:
        index_problem = _index_problem(path, manifest)
        if index_problem is None:
            report["index"] = "ok"
        else:
            report["index"] = index_problem
            problem(f"index: {index_problem}")

    report["orphans"] = _scan_orphans(path, manifest)
    for orphan in report["orphans"]:
        problem(f"orphan: {orphan}")
    return report


def _quarantine(path: Path, filename: str) -> None:
    """Move ``filename`` into the store's ``quarantine/`` directory."""
    lake = _lake()
    target_dir = path / lake._QUARANTINE_DIR
    target_dir.mkdir(exist_ok=True)
    source = path / filename
    if source.is_file():
        os.replace(source, target_dir / filename)


def _resurrect_lost_tables(
    manifest: Manifest, lost_names: list[str], surviving_ids: set[int]
) -> list[str]:
    """Un-tombstone the latest surviving span of each lost table name.

    A quarantined shard held the *live* span of these tables; an older
    append of the same name may still exist as a tombstoned span in a
    surviving shard.  Serving yesterday's version beats serving
    nothing — the report says exactly which names came back (and which
    are gone for good).
    """
    resurrected = []
    for name in lost_names:
        candidates = [
            shard.shard_id
            for shard in manifest.shards
            if shard.shard_id in surviving_ids
            and any(span.name == name for span in shard.tables)
            and (shard.shard_id, name) in manifest.tombstones
        ]
        if candidates:
            manifest.tombstones.discard((max(candidates), name))
            resurrected.append(name)
    return resurrected


def _rebuild_index(
    path: Path, manifest: Manifest, sketcher: Sketcher, banks: dict[int, SketchBank]
) -> bool:
    """Rebuild + persist the LSH index from surviving banks.

    Returns ``True`` when a fresh generation was written; ``False``
    when the sketcher has no signature keys or nothing is live (the
    manifest's index section is cleared instead).
    """
    lake = _lake()
    record = manifest.index
    pieces = [
        banks[shard.shard_id][span.lo : span.lo + 1]
        for shard, span in manifest.live_spans()
    ]
    if not LakeIndex.supports(sketcher) or not pieces:
        manifest.index = None
        return False
    if record is not None:
        bands, rows_per_band = record.bands, record.rows_per_band
    else:
        bands, rows_per_band = tune(
            sketcher.signature_length(),
            lake.LakeStore.LSH_TARGET_SIM,
            lake.LakeStore.LSH_TARGET_RECALL,
        )
    snapshot = LakeIndex.build(
        sketcher,
        SketchBank.concat(pieces),
        bands=bands,
        rows_per_band=rows_per_band,
    )
    filename = index_filename(manifest.next_index_id)
    write_bytes_atomic(path / filename, pack_lsh_index(snapshot.lsh))
    manifest.index = IndexRecord(
        filename=filename,
        bands=bands,
        rows_per_band=rows_per_band,
        tables=len(snapshot),
    )
    manifest.next_index_id += 1
    obs.count("store.recovery.index_rebuilt")
    return True


def repair(path: str | Path) -> dict[str, Any]:
    """Restore a damaged store to a servable, writable state.

    Under the writer lock: restore the manifest from its previous
    generation if the live one is unreadable, quarantine every shard
    that fails verification (dropping its catalog entries and
    resurrecting lost tables from surviving tombstoned spans where
    possible), rebuild the LSH index when it cannot be verified against
    the repaired catalog, move unreferenced ``*.rpro`` files to
    ``quarantine/``, delete stale ``*.tmp`` files, and commit the
    repaired manifest.  Idempotent: repairing a healthy store changes
    nothing.

    Returns a report: ``manifest_restored``, ``quarantined``,
    ``tables_lost``, ``tables_resurrected``, ``index`` (``"kept"`` /
    ``"rebuilt"`` / ``"none"``), ``tmp_removed``, and ``actions`` (the
    human-readable log).  Raises :class:`StoreError` when no manifest
    generation is readable — there is nothing to repair *to*.
    """
    lake = _lake()
    path = Path(path)
    if not path.is_dir():
        raise lake.StoreError(f"repair {path}: not a directory")
    obs.count("store.recovery.repairs")
    with obs.trace_span("store.repair", path=str(path)):
        with open(path / lake._LOCK_NAME, "a+") as handle:
            if fcntl is not None:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError as exc:
                    raise lake.StoreError(
                        f"repair on {path}: another process holds the writer lock"
                    ) from exc
            return _repair_locked(path)


def _repair_locked(path: Path) -> dict[str, Any]:
    lake = _lake()
    manifest_path = path / lake._MANIFEST_NAME
    report: dict[str, Any] = {
        "path": str(path),
        "manifest_restored": False,
        "quarantined": [],
        "tables_lost": [],
        "tables_resurrected": [],
        "index": "kept",
        "tmp_removed": [],
        "actions": [],
    }

    try:
        manifest, restored = _load_any_manifest(path)
    except ManifestError as exc:
        raise lake.StoreError(
            f"repair {path}: no readable manifest generation ({exc})"
        ) from exc
    if restored:
        # keep_previous=False: the previous generation is the only good
        # copy — retaining the corrupt live bytes over it would leave a
        # crash window with *no* readable manifest.
        manifest.save(manifest_path, keep_previous=False)
        report["manifest_restored"] = True
        report["actions"].append("restored manifest from previous generation")
        obs.count("store.recovery.manifest_restored")

    sketcher = build_sketcher(manifest.sketcher)

    # Verify every shard; quarantine what fails.
    banks: dict[int, SketchBank] = {}
    for shard in manifest.shards:
        try:
            banks[shard.shard_id] = _verify_shard(path / shard.filename, sketcher)
        except (lake.StoreError, SerializationError, SketchMismatchError) as exc:
            _quarantine(path, shard.filename)
            report["quarantined"].append(shard.filename)
            report["actions"].append(f"quarantined shard {shard.filename}: {exc}")
            obs.count("store.recovery.shards_quarantined")

    if report["quarantined"]:
        surviving_ids = set(banks)
        lost_names = sorted(
            span.name
            for shard in manifest.shards
            if shard.shard_id not in surviving_ids
            for span in shard.tables
            if manifest.is_live(shard.shard_id, span.name)
        )
        manifest.shards = [
            shard for shard in manifest.shards if shard.shard_id in surviving_ids
        ]
        manifest.tombstones = {
            (sid, name)
            for sid, name in manifest.tombstones
            if sid in surviving_ids
        }
        resurrected = _resurrect_lost_tables(manifest, lost_names, surviving_ids)
        report["tables_resurrected"] = resurrected
        report["tables_lost"] = [n for n in lost_names if n not in resurrected]
        for name in resurrected:
            report["actions"].append(
                f"resurrected table {name!r} from a surviving older span"
            )
        for name in report["tables_lost"]:
            report["actions"].append(f"table {name!r} lost with its only shard")

    # The index must verify against the *repaired* catalog; rebuild
    # from the surviving banks otherwise.
    if _index_problem(path, manifest) is not None or (
        manifest.index is None and LakeIndex.supports(sketcher) and banks
    ):
        if _rebuild_index(path, manifest, sketcher, banks):
            report["index"] = "rebuilt"
            report["actions"].append("rebuilt the LSH candidate index")
        else:
            report["index"] = "none"
            report["actions"].append("dropped the unverifiable LSH index record")

    manifest.save(manifest_path)

    # Orphan sweep (after the save: files the repaired manifest now
    # owns are no longer orphans; superseded index generations are).
    for orphan in _scan_orphans(path, manifest):
        if orphan.endswith(".tmp"):
            with contextlib.suppress(OSError):
                (path / orphan).unlink()
            report["tmp_removed"].append(orphan)
            report["actions"].append(f"removed stale temp file {orphan}")
        else:
            _quarantine(path, orphan)
            report["quarantined"].append(orphan)
            report["actions"].append(f"quarantined unreferenced file {orphan}")
        obs.count("store.recovery.orphans_removed")
    return report
