"""Persistent sketch lake store (the durable layer under dataset search).

``repro.store`` turns the in-memory sketch lake into an on-disk
subsystem: :class:`LakeStore` persists sketched tables as immutable
binary shard files plus a JSON manifest, supports batched incremental
:meth:`~LakeStore.append` (new tables only are sketched), same-name
replacement via tombstones with an explicit
:meth:`~LakeStore.compact`, and zero-copy reopening that rebuilds the
:class:`~repro.datasearch.index.SketchIndex` straight from stored
banks.  :class:`QuerySession` is the serving front end;
``python -m repro.store`` the CLI.  :func:`fsck` / :func:`repair`
(also ``python -m repro.store fsck|repair``) diagnose and restore
damaged store directories.
"""

from repro.store.config import build_sketcher, check_sketcher_config, sketcher_config
from repro.store.lake import (
    LOCK_TIMEOUT_ENV,
    LakeStore,
    StoreError,
    is_lake_store,
    store_generation,
)
from repro.store.manifest import MANIFEST_VERSION, Manifest, ManifestError
from repro.store.recovery import fsck, repair
from repro.store.session import QuerySession

__all__ = [
    "LOCK_TIMEOUT_ENV",
    "MANIFEST_VERSION",
    "LakeStore",
    "Manifest",
    "ManifestError",
    "QuerySession",
    "StoreError",
    "build_sketcher",
    "check_sketcher_config",
    "fsck",
    "is_lake_store",
    "repair",
    "sketcher_config",
    "store_generation",
]
