"""Sketcher configuration as data: serialize, rebuild, compare.

A persistent sketch lake is only usable if the *exact* sketching
configuration that produced it can be recovered: every sketch in the
store was drawn with one (method, seed, size) triple, and mixing
configurations silently produces garbage estimates (the paper's
estimators all require identically-configured sketches).  The manifest
therefore records ``{"kind": <Sketcher.name>, "params": {...}}`` —
precisely the comparability key the in-memory layer already uses for
bank checks (``Sketcher._bank_params``) — and this module converts
between that record and a live :class:`~repro.core.base.Sketcher`.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.base import Sketcher, SketchMismatchError
from repro.core.wmh import WeightedMinHash
from repro.sketches.bbit import BbitMinHash
from repro.sketches.countsketch import CountSketch
from repro.sketches.icws import ICWS
from repro.sketches.jl import JohnsonLindenstrauss
from repro.sketches.kmv import KMinimumValues
from repro.sketches.minhash import MinHash
from repro.sketches.priority import PrioritySampling
from repro.sketches.simhash import SimHash

__all__ = [
    "SKETCHER_CLASSES",
    "sketcher_config",
    "build_sketcher",
    "check_sketcher_config",
]

#: Every constructible sketching method, keyed by ``Sketcher.name``.
#: Constructor keyword arguments match ``_bank_params()`` keys for each
#: class, which is what makes ``build_sketcher(sketcher_config(s))`` an
#: exact round trip.
SKETCHER_CLASSES: dict[str, type[Sketcher]] = {
    cls.name: cls
    for cls in (
        WeightedMinHash,
        MinHash,
        KMinimumValues,
        JohnsonLindenstrauss,
        CountSketch,
        ICWS,
        SimHash,
        PrioritySampling,
        BbitMinHash,
    )
}


def sketcher_config(sketcher: Sketcher) -> dict[str, Any]:
    """The JSON-safe configuration record identifying ``sketcher``."""
    if sketcher.name not in SKETCHER_CLASSES:
        raise SketchMismatchError(
            f"sketcher kind {sketcher.name!r} is not registered for "
            f"persistence; known kinds: {sorted(SKETCHER_CLASSES)}"
        )
    return {"kind": sketcher.name, "params": dict(sketcher._bank_params())}


def build_sketcher(config: Mapping[str, Any]) -> Sketcher:
    """Reconstruct the sketcher a stored configuration describes."""
    kind = config.get("kind")
    if kind not in SKETCHER_CLASSES:
        raise SketchMismatchError(
            f"unknown sketcher kind {kind!r}; known kinds: "
            f"{sorted(SKETCHER_CLASSES)}"
        )
    params = dict(config.get("params", {}))
    sketcher = SKETCHER_CLASSES[kind](**params)
    rebuilt = sketcher._bank_params()
    if rebuilt != dict(config.get("params", {})):
        raise SketchMismatchError(
            f"stored params {dict(config.get('params', {}))} did not survive "
            f"reconstruction (got {rebuilt}); the store predates a config change"
        )
    return sketcher


def check_sketcher_config(config: Mapping[str, Any], sketcher: Sketcher) -> None:
    """Refuse a sketcher that does not match the stored configuration."""
    expected = {"kind": config.get("kind"), "params": dict(config.get("params", {}))}
    actual = sketcher_config(sketcher)
    if actual != expected:
        raise SketchMismatchError(
            f"store was sketched with {expected}, but the provided sketcher "
            f"is {actual}; open the store without a sketcher to use the "
            f"stored configuration"
        )
