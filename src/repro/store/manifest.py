"""The lake manifest: the store's single source of truth.

A :class:`~repro.store.lake.LakeStore` directory holds binary shard
files plus one ``manifest.json``.  The manifest is the *commit record*:
a shard exists, logically, only once the manifest lists it.  Writes go
shard-file-first, manifest-last (both atomically), so a crash mid-append
leaves at worst an orphaned shard file that the next open ignores —
never a manifest pointing at missing or partial data.

The manifest records:

* ``version`` — manifest schema version, checked on open;
* ``sketcher`` — the configuration record of
  :func:`repro.store.config.sketcher_config`;
* ``shards`` — ordered shard descriptors, each with the per-table spans
  (``[lo, hi)`` row ranges) inside the shard's packed bank;
* ``tombstones`` — ``(shard_id, table_name)`` pairs whose spans are
  dead (superseded by a later append of the same table name);
* ``index`` (optional, version 2) — the persisted LSH candidate index:
  its file, banding, and the number of live tables it covers, in
  live-span order.  Absent for stores written before version 2 or for
  sketchers without signature keys; readers then rebuild the index
  lazily in memory.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro import faults, obs

__all__ = [
    "MANIFEST_VERSION",
    "ManifestError",
    "TableSpan",
    "ShardRecord",
    "IndexRecord",
    "Manifest",
    "previous_manifest_path",
]

# Crash points of the manifest commit itself — the last (and most
# delicate) step of every store write.  ``save.write`` is torn-capable:
# armed in ``torn`` mode it leaves a half-written tmp file behind,
# which must never be confused with a committed manifest.
FP_SAVE_KEEP = faults.register(
    "manifest.save.keep_previous", "before retaining the previous generation"
)
FP_SAVE_WRITE = faults.register(
    "manifest.save.write", "payload write of the manifest tmp (torn-capable)"
)
FP_SAVE_FSYNC = faults.register(
    "manifest.save.fsync", "before fsync of the manifest tmp"
)
FP_SAVE_RENAME = faults.register(
    "manifest.save.rename", "before the manifest tmp -> manifest.json rename"
)
FP_SAVE_DIRSYNC = faults.register(
    "manifest.save.dirsync", "after the manifest rename, before the dir fsync"
)
FP_LOAD = faults.register("manifest.load", "at the top of Manifest.load")


def previous_manifest_path(path: Path) -> Path:
    """Where :meth:`Manifest.save` retains the superseded generation.

    ``manifest.json`` -> ``manifest.prev.json``: the recovery fallback
    :class:`~repro.store.lake.LakeStore` opens when the live manifest
    is torn or corrupt (disk corruption — a crash alone cannot tear it,
    the rename is atomic).
    """
    return path.with_name(f"{path.stem}.prev{path.suffix}")

#: Manifest schema version; bump on incompatible layout changes.
#: Version 2 added the optional LSH-index section (``index`` +
#: ``next_index_id``); version-1 manifests (no index) still load, and
#: are upgraded in place on the next save.
MANIFEST_VERSION = 2

#: Versions this build can read.
_READABLE_VERSIONS = (1, 2)

#: Marker distinguishing a lake manifest from arbitrary JSON.
_FORMAT = "repro-lake"


class ManifestError(ValueError):
    """Raised on a missing, malformed, or incompatible manifest."""


@dataclass(frozen=True)
class TableSpan:
    """One table's row range inside a shard's bank."""

    name: str
    num_rows: int
    columns: tuple[str, ...]
    lo: int
    hi: int

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "num_rows": self.num_rows,
            "columns": list(self.columns),
            "lo": self.lo,
            "hi": self.hi,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "TableSpan":
        return cls(
            name=data["name"],
            num_rows=int(data["num_rows"]),
            columns=tuple(data["columns"]),
            lo=int(data["lo"]),
            hi=int(data["hi"]),
        )


@dataclass(frozen=True)
class ShardRecord:
    """One shard file: its id, filename, and table spans."""

    shard_id: int
    filename: str
    tables: tuple[TableSpan, ...]

    def to_json(self) -> dict[str, Any]:
        return {
            "id": self.shard_id,
            "file": self.filename,
            "tables": [span.to_json() for span in self.tables],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ShardRecord":
        return cls(
            shard_id=int(data["id"]),
            filename=data["file"],
            tables=tuple(TableSpan.from_json(t) for t in data["tables"]),
        )


@dataclass(frozen=True)
class IndexRecord:
    """The persisted LSH candidate index: file, banding, coverage.

    ``tables`` is the number of live tables the index file covers, one
    digest row per table in live-span order — what lets ``open`` verify
    the index matches the catalog before trusting it.
    """

    filename: str
    bands: int
    rows_per_band: int
    tables: int

    def to_json(self) -> dict[str, Any]:
        return {
            "file": self.filename,
            "bands": self.bands,
            "rows_per_band": self.rows_per_band,
            "tables": self.tables,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "IndexRecord":
        return cls(
            filename=data["file"],
            bands=int(data["bands"]),
            rows_per_band=int(data["rows_per_band"]),
            tables=int(data["tables"]),
        )


@dataclass
class Manifest:
    """In-memory form of ``manifest.json``."""

    sketcher: dict[str, Any]
    shards: list[ShardRecord] = field(default_factory=list)
    tombstones: set[tuple[int, str]] = field(default_factory=set)
    next_shard_id: int = 1
    version: int = MANIFEST_VERSION
    index: IndexRecord | None = None
    next_index_id: int = 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def is_live(self, shard_id: int, table_name: str) -> bool:
        return (shard_id, table_name) not in self.tombstones

    def live_spans(self) -> Iterator[tuple[ShardRecord, TableSpan]]:
        """All non-tombstoned table spans, in shard (= ingest) order."""
        for shard in self.shards:
            for span in shard.tables:
                if self.is_live(shard.shard_id, span.name):
                    yield shard, span

    def live_table_shard(self) -> dict[str, int]:
        """Live table name -> id of the shard currently holding it."""
        return {span.name: shard.shard_id for shard, span in self.live_spans()}

    def dead_rows(self) -> int:
        """Bank rows occupied by tombstoned spans (reclaimed by compact)."""
        return sum(
            span.hi - span.lo
            for shard in self.shards
            for span in shard.tables
            if not self.is_live(shard.shard_id, span.name)
        )

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "format": _FORMAT,
            "version": self.version,
            "sketcher": self.sketcher,
            "next_shard_id": self.next_shard_id,
            "shards": [shard.to_json() for shard in self.shards],
            "tombstones": sorted([sid, name] for sid, name in self.tombstones),
            "next_index_id": self.next_index_id,
        }
        if self.index is not None:
            payload["index"] = self.index.to_json()
        return payload

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "Manifest":
        if data.get("format") != _FORMAT:
            raise ManifestError(
                f"not a lake manifest (format {data.get('format')!r})"
            )
        version = int(data.get("version", -1))
        if version not in _READABLE_VERSIONS:
            raise ManifestError(
                f"unsupported manifest version {version} "
                f"(this build reads versions {list(_READABLE_VERSIONS)})"
            )
        index = data.get("index")
        return cls(
            sketcher=dict(data["sketcher"]),
            shards=[ShardRecord.from_json(s) for s in data.get("shards", [])],
            tombstones={
                (int(sid), str(name)) for sid, name in data.get("tombstones", [])
            },
            next_shard_id=int(data.get("next_shard_id", 1)),
            version=version,
            index=IndexRecord.from_json(index) if index is not None else None,
            next_index_id=int(data.get("next_index_id", 1)),
        )

    def save(self, path: Path, keep_previous: bool = True) -> None:
        """Atomically and durably write the manifest.

        tmp file + fsync + rename + directory fsync: the last step is
        what makes the rename itself survive a power cut, so the
        shard-first / manifest-last commit order holds on disk, not
        just in the page cache.  Saving always writes the current
        schema version — opening an old store and committing to it
        upgrades the manifest in place.

        ``keep_previous`` first retains the superseded generation at
        :func:`previous_manifest_path` (itself written atomically, so a
        crash mid-retention leaves both generations intact) — the
        fallback ``LakeStore.open`` reads when ``manifest.json`` turns
        out torn or bit-rotted.
        """
        self.version = MANIFEST_VERSION
        payload = json.dumps(self.to_json(), indent=2, sort_keys=False) + "\n"
        if keep_previous and path.is_file():
            faults.failpoint(FP_SAVE_KEEP)
            prev = previous_manifest_path(path)
            prev_tmp = prev.with_name(prev.name + ".tmp")
            prev_tmp.write_bytes(path.read_bytes())
            os.replace(prev_tmp, prev)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            faults.torn_write(FP_SAVE_WRITE, handle, payload.encode("utf-8"))
            handle.flush()
            faults.failpoint(FP_SAVE_FSYNC)
            os.fsync(handle.fileno())
        faults.failpoint(FP_SAVE_RENAME)
        os.replace(tmp, path)
        faults.failpoint(FP_SAVE_DIRSYNC)
        fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        obs.count("store.manifest_commits")
        obs.count("store.fsyncs", 2)

    @classmethod
    def load(cls, path: Path) -> "Manifest":
        faults.failpoint(FP_LOAD)
        if not path.is_file():
            raise ManifestError(f"no manifest at {path}")
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ManifestError(f"malformed manifest {path}: {exc}") from exc
        if not isinstance(data, dict):
            raise ManifestError(f"malformed manifest {path}: not an object")
        try:
            return cls.from_json(data)
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, ManifestError):
                raise
            raise ManifestError(f"malformed manifest {path}: {exc}") from exc
